"""Pipelined multi-FPGA execution: plans, performance, timelines.

A :class:`PipelinePlan` is the fully-priced result of partitioning one
:class:`~repro.nn.model_zoo.TransformerConfig` across devices: stage
assignments, per-stage cycles, the inter-stage activation transfer, and
the derived pipeline quantities —

* **fill latency** — one item traversing every stage and link (this is
  also the single-inference latency);
* **steady-state period** — the bottleneck resource (slowest stage or
  the link), which sets throughput once the pipeline is full;
* **bubbles** — per-stage idle cycles each period, the imbalance the
  partitioner could not remove.

``K=1`` degenerates to the single-device analytic model *exactly*:
one stage, no links, fill = ``num_layers x layer.total`` — the same
total :meth:`~repro.core.latency.LatencyModel.evaluate` reports
(property-tested).

:meth:`PipelinePlan.timeline` renders an item stream through the
stages as a :class:`~repro.core.timeline.Timeline`, so ``gantt()``
shows fill, steady state, and drain across devices and links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.accelerator import ProTEA
from ..core.timeline import Timeline, TimelineEvent
from ..isa.controller import ResynthesisRequiredError
from ..nn.model_zoo import TransformerConfig
from .interconnect import AURORA_64B66B, InterconnectLink
from .partition import (
    StagePlan,
    activation_bytes,
    balanced_partition,
    tp_allreduce_cycles,
    tp_layer_latency,
    validate_tensor_parallel,
)

__all__ = ["PipelinePlan", "DecodePipelineReport", "PipelinePartitioner"]


@dataclass(frozen=True)
class DecodePipelineReport:
    """Pipeline-parallel autoregressive decode: one token per microbatch.

    Each generated token's single activation row flows through the
    stages.  Tokens of *one* sequence are strictly sequential (token
    ``t+1`` needs token ``t``), so a lone sequence pays the whole
    per-token path each step; with at least ``num_stages`` concurrent
    sequences interleaved (continuous batching), stages stay full and
    the bottleneck stage sets the aggregate token rate.
    """

    config: TransformerConfig
    clock_mhz: float
    link: InterconnectLink
    prompt_len: int
    cache_len: int
    #: Per-stage cycles to decode one token at ``cache_len``.
    stage_cycles: Tuple[int, ...]
    #: One token's activation row crossing a stage boundary.
    link_cycles: int
    #: Prompt prefill through the pipeline (emits the first token).
    prefill_fill_cycles: int

    @property
    def num_stages(self) -> int:
        return len(self.stage_cycles)

    @property
    def per_token_cycles(self) -> int:
        """One token end to end: every stage plus every link hop."""
        return (sum(self.stage_cycles)
                + (self.num_stages - 1) * self.link_cycles)

    @property
    def per_token_ms(self) -> float:
        return self.per_token_cycles / (self.clock_mhz * 1e3)

    @property
    def ttft_ms(self) -> float:
        """Prompt prefill through every stage (first token out)."""
        return self.prefill_fill_cycles / (self.clock_mhz * 1e3)

    @property
    def bottleneck_cycles(self) -> int:
        worst = max(self.stage_cycles)
        return max(worst, self.link_cycles if self.num_stages > 1 else 0)

    @property
    def sequential_tokens_per_s(self) -> float:
        """Decode rate of a single sequence (no overlap possible)."""
        return self.clock_mhz * 1e6 / self.per_token_cycles

    @property
    def steady_tokens_per_s(self) -> float:
        """Aggregate rate with >= num_stages interleaved sequences."""
        return self.clock_mhz * 1e6 / self.bottleneck_cycles

    def as_dict(self) -> dict:
        return {
            "model": self.config.name,
            "clock_mhz": self.clock_mhz,
            "link": self.link.name,
            "prompt_tokens": self.prompt_len,
            "cache_len": self.cache_len,
            "pipeline_stages": self.num_stages,
            "stage_cycles": list(self.stage_cycles),
            "link_cycles_per_token": self.link_cycles,
            "ttft_ms": self.ttft_ms,
            "per_token_ms": self.per_token_ms,
            "sequential_tokens_per_s": self.sequential_tokens_per_s,
            "steady_tokens_per_s": self.steady_tokens_per_s,
        }


@dataclass(frozen=True)
class PipelinePlan:
    """A priced partition of one workload across a device group."""

    config: TransformerConfig
    clock_mhz: float
    link: InterconnectLink
    stages: Tuple[StagePlan, ...]
    #: Bytes of the activation tensor crossing each stage boundary.
    boundary_bytes: int
    #: Cycles of one boundary crossing at the kernel clock.
    link_cycles: int

    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def n_devices(self) -> int:
        return sum(s.tp_ways for s in self.stages)

    @property
    def stage_cycles(self) -> Tuple[int, ...]:
        return tuple(s.cycles for s in self.stages)

    @property
    def interconnect_cycles(self) -> int:
        """Total link cycles one item pays end to end."""
        return (self.num_stages - 1) * self.link_cycles

    @property
    def fill_cycles(self) -> int:
        """First item in → first item out (also one inference)."""
        return sum(self.stage_cycles) + self.interconnect_cycles

    @property
    def fill_ms(self) -> float:
        return self.fill_cycles / (self.clock_mhz * 1e3)

    @property
    def latency_ms(self) -> float:
        """Single-inference latency (= fill)."""
        return self.fill_ms

    @property
    def bottleneck_cycles(self) -> int:
        """Steady-state period: the slowest stage or the link."""
        worst_stage = max(self.stage_cycles)
        return max(worst_stage,
                   self.link_cycles if self.num_stages > 1 else 0)

    @property
    def steady_state_inf_per_s(self) -> float:
        """Items per second once the pipeline is full."""
        return self.clock_mhz * 1e6 / self.bottleneck_cycles

    @property
    def bubble_cycles(self) -> Tuple[int, ...]:
        """Per-stage idle cycles every steady-state period."""
        period = self.bottleneck_cycles
        return tuple(period - c for c in self.stage_cycles)

    @property
    def bubble_fraction(self) -> float:
        """Fraction of steady-state device time lost to imbalance."""
        period = self.bottleneck_cycles
        return sum(self.bubble_cycles) / (period * self.num_stages)

    def speedup_over(self, single_device_cycles: int) -> float:
        """Steady-state speedup versus one device at the same clock."""
        if single_device_cycles <= 0:
            raise ValueError("single_device_cycles must be positive")
        return single_device_cycles / self.bottleneck_cycles

    # ------------------------------------------------------------------
    def batch_cycles(self, n_items: int) -> int:
        """Makespan of ``n_items`` streamed through the pipeline."""
        if n_items < 1:
            raise ValueError("n_items must be >= 1")
        return self.fill_cycles + (n_items - 1) * self.bottleneck_cycles

    def timeline(self, n_items: int = 4) -> Timeline:
        """Schedule ``n_items`` through stages and links.

        Resources are ``fpga<i>`` per stage and ``link<i>-<i+1>`` per
        boundary; the event's ``layer`` field carries the item index so
        ``gantt()`` shows fill, steady state, and drain.
        """
        if n_items < 1:
            raise ValueError("n_items must be >= 1")
        events: List[TimelineEvent] = []
        dev_free = [0] * self.num_stages
        link_free = [0] * max(0, self.num_stages - 1)
        for item in range(n_items):
            ready = 0
            for s, stage in enumerate(self.stages):
                start = max(ready, dev_free[s])
                end = start + stage.cycles
                events.append(TimelineEvent(
                    name=f"item{item}.stage{s}", resource=f"fpga{s}",
                    start=start, end=end, layer=item))
                dev_free[s] = end
                ready = end
                if s < self.num_stages - 1 and self.link_cycles:
                    lstart = max(ready, link_free[s])
                    lend = lstart + self.link_cycles
                    events.append(TimelineEvent(
                        name=f"item{item}.xfer{s}",
                        resource=f"link{s}-{s + 1}",
                        start=lstart, end=lend, layer=item))
                    link_free[s] = lend
                    ready = lend
        return Timeline(events=events)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-friendly flattening (CLI ``--json`` output)."""
        return {
            "model": self.config.name,
            "clock_mhz": self.clock_mhz,
            "devices": self.n_devices,
            "pipeline_stages": self.num_stages,
            "stages": [
                {
                    "stage": s.index,
                    "layers": [s.layer_start, s.layer_end],
                    "num_layers": s.num_layers,
                    "tp_ways": s.tp_ways,
                    "cycles": s.cycles,
                    "tp_comm_cycles_per_layer": s.tp_comm_cycles,
                    "bubble_cycles": self.bubble_cycles[s.index],
                }
                for s in self.stages
            ],
            "interconnect": {
                "link": self.link.name,
                "boundary_bytes": self.boundary_bytes,
                "cycles_per_boundary": self.link_cycles,
                "total_cycles": self.interconnect_cycles,
            },
            "fill": {"cycles": self.fill_cycles, "ms": self.fill_ms},
            "latency_ms": self.latency_ms,
            "steady_state": {
                "period_cycles": self.bottleneck_cycles,
                "inf_per_s": self.steady_state_inf_per_s,
                "bubble_fraction": self.bubble_fraction,
            },
        }


class PipelinePartitioner:
    """Partition workloads across K instances of one synthesized design.

    The lower-level cost models arrive as parameters — the accelerator's
    :class:`~repro.core.latency.LatencyModel` prices stage compute, the
    :class:`~repro.parallel.interconnect.InterconnectLink` prices stage
    boundaries — and this class composes them into
    :class:`PipelinePlan` objects.
    """

    def __init__(self, accel: ProTEA,
                 link: InterconnectLink = AURORA_64B66B):
        self.accel = accel
        self.link = link

    # ------------------------------------------------------------------
    def plan(
        self,
        config: TransformerConfig,
        n_devices: int,
        tp_ways: int = 1,
    ) -> PipelinePlan:
        """Partition ``config`` across ``n_devices`` with ``tp_ways``
        tensor-parallel devices per pipeline stage.

        Raises ``ValueError`` for infeasible shapes and
        :class:`~repro.isa.controller.ResynthesisRequiredError` when a
        stage's sub-workload exceeds the synthesized maxima.
        """
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if tp_ways < 1 or n_devices % tp_ways:
            raise ValueError(
                f"n_devices={n_devices} not divisible by tp_ways={tp_ways}")
        validate_tensor_parallel(config, tp_ways)
        n_stages = n_devices // tp_ways
        if n_stages > config.num_layers:
            raise ValueError(
                f"{config.name}: cannot pipeline {config.num_layers} "
                f"layer(s) across {n_stages} stages — lower the depth or "
                f"raise tp_ways")

        model = self.accel.latency_model
        clock = self.accel.clock_mhz
        layer = tp_layer_latency(model, config.seq_len, config.d_model,
                                 config.num_heads, tp_ways)
        comm = tp_allreduce_cycles(model, config, tp_ways, self.link, clock)
        per_layer = layer.total + comm
        ranges = balanced_partition([per_layer] * config.num_layers,
                                    n_stages)
        stages = tuple(
            StagePlan(index=i, layer_start=a, layer_end=b,
                      tp_ways=tp_ways, layer=layer, tp_comm_cycles=comm)
            for i, (a, b) in enumerate(ranges)
        )
        for stage in stages:
            stage.validate(self.accel.synth, config)
        boundary = activation_bytes(model, config.seq_len, config.d_model)
        link_cycles = (self.link.transfer_cycles(boundary, clock)
                       if n_stages > 1 else 0)
        return PipelinePlan(
            config=config,
            clock_mhz=clock,
            link=self.link,
            stages=stages,
            boundary_bytes=boundary,
            link_cycles=link_cycles,
        )

    # ------------------------------------------------------------------
    def decode_report(
        self,
        config: TransformerConfig,
        n_devices: int,
        prompt_len: int,
        output_len: int,
    ) -> DecodePipelineReport:
        """Pipeline-parallel decode mode for ``config``.

        Stages reuse the standard balanced layer split (per-layer decode
        cost is layer-uniform, so the full-sequence balance is also the
        decode balance); each stage then prices one token at the *final*
        cache length — the conservative steady-state bound.  Tensor
        parallelism is a prefill-side lever (it needs whole rows to
        split); decode mode always runs pure pipeline (``tp_ways=1``).
        """
        if prompt_len < 1 or output_len < 1:
            raise ValueError("prompt_len and output_len must be >= 1")
        total = prompt_len + output_len
        if total > self.accel.synth.max_seq_len:
            raise ResynthesisRequiredError(
                f"generation needs a {total}-position KV cache; the "
                f"synthesized buffers stop at max_seq_len="
                f"{self.accel.synth.max_seq_len}")
        plan = self.plan(config.with_(seq_len=prompt_len), n_devices,
                         tp_ways=1)
        model = self.accel.latency_model
        cache_len = max(total - 1, prompt_len + 1)
        per_layer = model.decode_layer_cycles(
            cache_len, config.d_model, config.num_heads).total
        stage_cycles = tuple(s.num_layers * per_layer for s in plan.stages)
        row_bytes = activation_bytes(model, 1, config.d_model)
        link_cycles = (self.link.transfer_cycles(row_bytes,
                                                 self.accel.clock_mhz)
                       if plan.num_stages > 1 else 0)
        return DecodePipelineReport(
            config=config,
            clock_mhz=self.accel.clock_mhz,
            link=self.link,
            prompt_len=prompt_len,
            cache_len=cache_len,
            stage_cycles=stage_cycles,
            link_cycles=link_cycles,
            prefill_fill_cycles=plan.fill_cycles,
        )

    # ------------------------------------------------------------------
    def feasible_shapes(
        self, config: TransformerConfig, n_devices: int
    ) -> List[Tuple[int, int]]:
        """All ``(n_stages, tp_ways)`` factorizations of ``n_devices``
        that are structurally feasible for ``config``."""
        shapes = []
        for tp in range(1, n_devices + 1):
            if n_devices % tp or config.num_heads % tp:
                continue
            n_stages = n_devices // tp
            if n_stages <= config.num_layers:
                shapes.append((n_stages, tp))
        return shapes

    def best_plan(
        self,
        config: TransformerConfig,
        n_devices: int,
        objective: str = "throughput",
    ) -> PipelinePlan:
        """Best feasible pipeline-depth x tensor-width factorization.

        ``objective="throughput"`` minimizes the steady-state period
        (deep pipelines win: each stage holds fewer layers);
        ``objective="latency"`` minimizes the fill — a single request's
        end-to-end time — which favors tensor splits, since only they
        shrink the serialized weight-streaming on a request's critical
        path.  Ties break toward the other metric, then the shallower
        pipeline.
        """
        if objective not in ("throughput", "latency"):
            raise ValueError(
                f"unknown objective {objective!r}; "
                "available: ['latency', 'throughput']")
        shapes = self.feasible_shapes(config, n_devices)
        plans = []
        for _, tp in shapes:
            try:
                plans.append(self.plan(config, n_devices, tp))
            except ResynthesisRequiredError:
                # A stage's layer slice exceeds the synthesized maxima at
                # this depth — the shape is infeasible, not the workload.
                continue
        if not plans:
            raise ValueError(
                f"{config.name}: no feasible (stages, tp) factorization of "
                f"{n_devices} devices — num_layers={config.num_layers}, "
                f"num_heads={config.num_heads}, synthesized max_layers="
                f"{self.accel.synth.max_layers}")
        if objective == "throughput":
            key = lambda p: (p.bottleneck_cycles, p.fill_cycles,  # noqa: E731
                             p.num_stages)
        else:
            key = lambda p: (p.fill_cycles, p.bottleneck_cycles,  # noqa: E731
                             p.num_stages)
        return min(plans, key=key)

    # ------------------------------------------------------------------
    def scaling_curve(
        self,
        config: TransformerConfig,
        device_counts: Tuple[int, ...] = (1, 2, 4, 8),
    ) -> Dict[int, PipelinePlan]:
        """Best plan per device count (skipping infeasible counts)."""
        curve: Dict[int, PipelinePlan] = {}
        for k in device_counts:
            try:
                curve[k] = self.best_plan(config, k)
            except ValueError:
                continue
        return curve
