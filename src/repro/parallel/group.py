"""A multi-FPGA pipeline group that serves like one instance.

:class:`PipelineGroup` presents the same surface the serving layer
expects of a single :class:`~repro.core.accelerator.ProTEA` —
``synth``, ``clock_mhz``, ``program()``, ``latency_report()`` — while
pricing every request through a :class:`~repro.parallel.pipeline.
PipelinePlan`.  That duck typing is the point: a group drops straight
into :class:`~repro.serving.cluster.ClusterSimulator` and
:func:`~repro.serving.slo.plan_capacity`, so fleet searches can trade
*replica count* against *pipeline depth* with no serving-layer changes.

A group can also serve models a single device cannot: each stage
programs only its own layer range, so ``num_layers`` may exceed the
synthesized ``max_layers`` as long as every stage's slice fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.accelerator import ProTEA
from ..nn.model_zoo import TransformerConfig
from .interconnect import AURORA_64B66B, InterconnectLink
from .pipeline import PipelinePartitioner, PipelinePlan

__all__ = ["PipelineReport", "PipelineGroup"]


@dataclass(frozen=True)
class PipelineReport:
    """Latency-report view of one plan (mirrors
    :class:`~repro.core.latency.LatencyReport`'s consumer surface)."""

    plan: PipelinePlan

    @property
    def config(self) -> TransformerConfig:
        return self.plan.config

    @property
    def total_cycles(self) -> int:
        return self.plan.fill_cycles

    @property
    def latency_ms(self) -> float:
        return self.plan.latency_ms

    @property
    def latency_s(self) -> float:
        return self.latency_ms / 1e3

    @property
    def steady_state_inf_per_s(self) -> float:
        return self.plan.steady_state_inf_per_s


class PipelineGroup:
    """``n_devices`` pipelined instances of one synthesized design.

    ``tp_ways=None`` (the default) picks the best feasible
    pipeline-depth x tensor-width factorization per workload; a fixed
    ``tp_ways`` forces that width.  The search objective defaults to
    ``"latency"`` because the serving layer charges each invocation its
    end-to-end (fill) time — tensor splits shrink that, pipeline depth
    does not.  Plans are memoized per config — the cycle model is
    deterministic, so the cache is exact.
    """

    def __init__(
        self,
        accel: ProTEA,
        n_devices: int,
        link: InterconnectLink = AURORA_64B66B,
        tp_ways: Optional[int] = None,
        objective: str = "latency",
    ):
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        self.accel = accel
        self.n_devices = n_devices
        self.tp_ways = tp_ways
        self.objective = objective
        self.partitioner = PipelinePartitioner(accel, link)
        self._plans: Dict[TransformerConfig, PipelinePlan] = {}
        self._config: Optional[TransformerConfig] = None

    # ------------------------------------------------------------------
    # ProTEA-compatible surface (what the serving layer touches)
    # ------------------------------------------------------------------
    @property
    def synth(self):
        return self.accel.synth

    @property
    def clock_mhz(self) -> float:
        return self.accel.clock_mhz

    @property
    def device(self):
        return self.accel.device

    @property
    def link(self) -> InterconnectLink:
        return self.partitioner.link

    def plan_for(self, config: TransformerConfig) -> PipelinePlan:
        """The (memoized) partition plan serving ``config``."""
        if config not in self._plans:
            if self.tp_ways is None:
                plan = self.partitioner.best_plan(config, self.n_devices,
                                                  objective=self.objective)
            else:
                plan = self.partitioner.plan(config, self.n_devices,
                                             self.tp_ways)
            self._plans[config] = plan
        return self._plans[config]

    def program(self, config: TransformerConfig) -> "PipelineGroup":
        """Deploy ``config`` across the group (validates every stage)."""
        self.plan_for(config)  # raises if any stage cannot be programmed
        self._config = config
        return self

    @property
    def config(self) -> TransformerConfig:
        if self._config is None:
            raise RuntimeError("group not programmed; call program()")
        return self._config

    def latency_report(
        self, config: Optional[TransformerConfig] = None
    ) -> PipelineReport:
        """Pipeline latency of ``config`` (default: programmed)."""
        cfg = config or self.config
        return PipelineReport(plan=self.plan_for(cfg))

    def latency_ms(self, config: Optional[TransformerConfig] = None) -> float:
        return self.latency_report(config).latency_ms

    # ------------------------------------------------------------------
    def as_instance_spec(
        self,
        speed: float = 1.0,
        models: Optional[tuple] = None,
        reprogram_latency_ms: Optional[float] = None,
    ):
        """This group as one instance of a heterogeneous serving fleet.

        The returned :class:`~repro.sim.fleet.InstanceSpec` carries the
        group as its pricing ``target``, so a
        :class:`~repro.serving.cluster.ClusterSimulator` fleet can mix
        pipeline groups (deep models, higher per-request latency,
        ``num_layers`` beyond one device) with plain single-FPGA
        replicas — capability sets typically pin the big models to the
        group instances.
        """
        from ..sim.fleet import InstanceSpec

        return InstanceSpec(
            speed=speed, models=models,
            reprogram_latency_ms=reprogram_latency_ms, target=self)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line group description (examples/reports)."""
        return (
            f"PipelineGroup: {self.n_devices} x {self.accel.device.name} "
            f"@ {self.clock_mhz:.0f} MHz over {self.link.name} "
            f"({self.link.payload_gbps:.0f} Gb/s payload, "
            f"{self.link.latency_us:g} us)"
        )
