"""Layer-wise pipeline splits and head-wise tensor-parallel stage math.

Two partitioning axes over one :class:`~repro.core.latency.LatencyModel`:

* **pipeline** — contiguous layer ranges assigned to stages, balanced
  by :func:`balanced_partition` (DP over per-layer cycle costs,
  minimizing the bottleneck stage — the classic linear-partition
  problem, exact, deterministic);
* **tensor** — within a stage, attention heads split across ``tp``
  devices (each keeps the model's ``d_k``), with the FFN GEMMs split
  Megatron-style: the output projection reduces only the local heads'
  columns (row-parallel), FFN2 computes a ``4 d_model / tp`` column
  slice, FFN3 reduces its local rows (row-parallel).  Two ring
  all-reduces of the ``SL x d_model`` activation per layer stitch the
  partials back together.

:func:`tp_layer_latency` mirrors
:meth:`~repro.core.latency.LatencyModel.layer_cycles` exactly at
``tp=1`` (property-tested) and applies the split divisors above for
``tp>1``.  Because ProTEA's per-head engines already run all heads in
parallel, tensor parallelism buys no *compute* cycles — what it buys is
weight streaming: each device fetches only its own heads' Wq/Wk/Wv and
its FFN slice through the single-buffered AXI weight port, which is
precisely the serialized-load term that dominates the published design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.latency import LatencyModel, LayerLatency
from ..isa.controller import ConfigRegisterFile
from ..nn.model_zoo import TransformerConfig
from .interconnect import InterconnectLink

__all__ = [
    "balanced_partition",
    "tp_layer_latency",
    "validate_tensor_parallel",
    "activation_bytes",
    "tp_allreduce_cycles",
    "StagePlan",
]


def balanced_partition(costs: Sequence[int], k: int) -> List[Tuple[int, int]]:
    """Split ``costs`` into ``k`` contiguous segments minimizing the
    maximum segment sum.

    Returns ``[(start, end), ...]`` half-open ranges covering
    ``range(len(costs))``.  Exact DP (``O(n^2 k)``); ties break toward
    the earliest feasible split so results are deterministic.
    """
    n = len(costs)
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > n:
        raise ValueError(f"cannot split {n} layers into {k} stages")
    prefix = [0] * (n + 1)
    for i, c in enumerate(costs):
        if c < 0:
            raise ValueError("costs must be non-negative")
        prefix[i + 1] = prefix[i] + c

    def seg(a: int, b: int) -> int:
        return prefix[b] - prefix[a]

    # best[j][i]: minimal bottleneck splitting costs[:i] into j segments.
    INF = float("inf")
    best = [[INF] * (n + 1) for _ in range(k + 1)]
    cut = [[0] * (n + 1) for _ in range(k + 1)]
    best[0][0] = 0
    for j in range(1, k + 1):
        # Every segment must be non-empty: first j segments cover >= j
        # layers, and leave >= k - j layers for the rest.
        for i in range(j, n - (k - j) + 1):
            for m in range(j - 1, i):
                if best[j - 1][m] == INF:
                    continue
                cand = max(best[j - 1][m], seg(m, i))
                if cand < best[j][i]:
                    best[j][i] = cand
                    cut[j][i] = m
    bounds = [n]
    i = n
    for j in range(k, 0, -1):
        i = cut[j][i]
        bounds.append(i)
    bounds.reverse()
    return [(bounds[s], bounds[s + 1]) for s in range(k)]


def validate_tensor_parallel(config: TransformerConfig, tp: int) -> None:
    """Structural feasibility of a head-wise ``tp``-way split."""
    if tp < 1:
        raise ValueError("tp must be >= 1")
    if config.num_heads % tp:
        raise ValueError(
            f"{config.name}: num_heads={config.num_heads} not divisible "
            f"by tp={tp} — head-wise splits need whole heads per device"
        )


def activation_bytes(model: LatencyModel, seq_len: int, d_model: int) -> int:
    """Off-device bytes of one ``SL x d_model`` activation tensor."""
    elem = (model.attention.formats.activation.total_bits + 7) // 8
    return seq_len * d_model * elem


def tp_allreduce_cycles(
    model: LatencyModel,
    config: TransformerConfig,
    tp: int,
    link: InterconnectLink,
    clock_mhz: float,
) -> int:
    """Per-layer collective cost of a ``tp``-way stage.

    Two ring all-reduces of the activation tensor: one after the
    row-parallel output projection (pre-LN1), one after the
    row-parallel FFN3 (pre-LN2).
    """
    if tp == 1:
        return 0
    nbytes = activation_bytes(model, config.seq_len, config.d_model)
    return 2 * link.allreduce_cycles(nbytes, tp, clock_mhz)


def tp_layer_latency(
    model: LatencyModel,
    seq_len: int,
    d_model: int,
    num_heads: int,
    tp: int = 1,
) -> LayerLatency:
    """One encoder layer's per-device cycle breakdown under a ``tp``-way
    head split (``tp=1`` reproduces ``LatencyModel.layer_cycles``
    exactly; collective costs are priced separately by
    :func:`tp_allreduce_cycles`)."""
    if num_heads % tp:
        raise ValueError(f"num_heads={num_heads} not divisible by tp={tp}")
    synth = model.synth
    heads_local = num_heads // tp
    att = model.attention.compute_cycles(seq_len, d_model, num_heads)
    ffn = model.ffn.compute_cycles(seq_len, d_model)

    # --- MHA: per-head engines run in parallel, so compute cycles are
    # head-count independent; only the local heads' weights stream in.
    tiles_mha = max(1, math.ceil(d_model / synth.ts_mha))
    w_tile = model.attention.weight_bytes_per_tile(d_model, num_heads)
    x_tile = model.attention.input_bytes_per_tile(seq_len)
    qkv_tile_load = heads_local * model._xfer(w_tile) + model._xfer(x_tile)
    qkv_per_tile = att["qkv"] // tiles_mha
    qkv_stage = model._stage(tiles_mha, qkv_tile_load, qkv_per_tile)

    # --- FFN: Megatron split at tile granularity.  The synthesized
    # output-grid sweep is hardware (zero-gated lanes still cycle), so
    # the split shrinks reduction-tile counts and *real* loaded tiles.
    elem = (model.attention.formats.weight_bits + 7) // 8
    t_in = max(1, math.ceil(d_model / synth.ts_ffn))
    r_local = max(1, math.ceil(t_in / tp))  # row-parallel reduction tiles
    t4 = max(1, math.ceil(4 * d_model / synth.ts_ffn))
    c4_local = max(1, math.ceil(t4 / tp))   # FFN2 column slice
    t_out = synth.tiles_ffn_max
    grid = model.ffn.tile_grid(d_model)
    inv = {
        "ffn1": r_local * t_out,
        "ffn2": grid["ffn2"],
        "ffn3": r_local * t_out,
    }
    real = {
        "ffn1": r_local * t_in,
        "ffn2": t_in * c4_local,
        "ffn3": r_local * t_in,
    }
    ffn12_tile_bytes = synth.ts_ffn * synth.ts_ffn * elem
    ffn3_tile_bytes = 4 * synth.ts_ffn * synth.ts_ffn * elem

    stages = {}
    loads = {"qkv": tiles_mha * qkv_tile_load}
    compute = {
        "qkv": att["qkv"],
        "qk": att["qk"],
        "softmax": att["softmax"],
        "sv": att["sv"],
    }
    for name, tile_bytes in (("ffn1", ffn12_tile_bytes),
                             ("ffn2", ffn12_tile_bytes),
                             ("ffn3", ffn3_tile_bytes)):
        per_inv = ffn[name] // grid[name]
        n_loaded = min(real[name], inv[name])
        load = model._xfer(tile_bytes)
        loaded_part = model._stage(n_loaded, load, per_inv)
        dry_part = (inv[name] - n_loaded) * per_inv
        stages[name] = loaded_part + dry_part
        loads[name] = n_loaded * load
        compute[name] = inv[name] * per_inv
    compute["ln"] = ffn["ln"]

    total = (
        qkv_stage
        + att["qk"] + att["softmax"] + att["sv"]
        + stages["ffn1"] + stages["ffn2"] + stages["ffn3"]
        + ffn["ln"]
    )
    return LayerLatency(compute=compute, loads=loads, total=total)


@dataclass(frozen=True)
class StagePlan:
    """One pipeline stage: a contiguous layer range on ``tp_ways``
    devices."""

    index: int
    layer_start: int
    layer_end: int
    tp_ways: int
    #: Per-device cycle breakdown of one of this stage's layers.
    layer: LayerLatency
    #: Per-layer tensor-parallel collective cycles (0 when tp_ways=1).
    tp_comm_cycles: int = 0

    def __post_init__(self) -> None:
        if self.layer_end <= self.layer_start:
            raise ValueError("stage must own at least one layer")
        if self.tp_ways < 1:
            raise ValueError("tp_ways must be >= 1")

    @property
    def num_layers(self) -> int:
        return self.layer_end - self.layer_start

    @property
    def cycles(self) -> int:
        """Stage service time for one item (compute + collectives)."""
        return self.num_layers * (self.layer.total + self.tp_comm_cycles)

    def validate(self, csr_synth, config: TransformerConfig) -> None:
        """Check the per-device sub-workload against the synthesized
        maxima — each device programs only its own layer count."""
        sub = config.with_(name=f"{config.name}/stage{self.index}",
                           num_layers=self.num_layers)
        ConfigRegisterFile(csr_synth).program(sub)
