"""Multi-FPGA model parallelism: partition one workload across devices.

The layers below answer "one inference on one device takes X ms"
(:mod:`repro.core`) and "a fleet of independent devices serves Y req/s"
(:mod:`repro.serving`).  This package adds the missing axis between
them — **model parallelism**: a workload too large (or an SLO too
tight) for one device is split across K instances of the same
synthesized design,

* **pipeline-wise** — contiguous layer ranges per stage, balanced by an
  exact DP over per-layer cycle costs (:mod:`.partition`);
* **tensor-wise** — attention heads and FFN tile slices within a stage
  (:mod:`.partition`), all-reduced over the interconnect;

with stage boundaries priced by a serial-link cost model
(:mod:`.interconnect`, Aurora/Ethernet/PCIe presets) and the composed
pipeline — fill latency, steady-state throughput, per-stage bubbles,
Gantt timelines — evaluated by :mod:`.pipeline`.  :mod:`.group` wraps a
plan as a drop-in serving instance so fleet searches trade replica
count against pipeline depth.

Quickstart::

    from repro import ProTEA, SynthParams, get_model
    from repro.parallel import PipelinePartitioner

    accel = ProTEA.synthesize(SynthParams())
    plan = PipelinePartitioner(accel).best_plan(get_model("bert-variant"), 4)
    print(plan.latency_ms, plan.steady_state_inf_per_s)
    print(plan.timeline(n_items=6).gantt())
"""

from .group import PipelineGroup, PipelineReport
from .interconnect import (
    AURORA_64B66B,
    ETHERNET_10G,
    ETHERNET_100G,
    LINKS,
    PCIE_GEN4_X8,
    InterconnectLink,
    get_link,
)
from .partition import (
    StagePlan,
    activation_bytes,
    balanced_partition,
    tp_allreduce_cycles,
    tp_layer_latency,
    validate_tensor_parallel,
)
from .pipeline import DecodePipelineReport, PipelinePartitioner, PipelinePlan

__all__ = [
    # interconnect
    "InterconnectLink", "AURORA_64B66B", "ETHERNET_100G", "ETHERNET_10G",
    "PCIE_GEN4_X8", "LINKS", "get_link",
    # partition
    "balanced_partition", "tp_layer_latency", "validate_tensor_parallel",
    "activation_bytes", "tp_allreduce_cycles", "StagePlan",
    # pipeline
    "PipelinePartitioner", "PipelinePlan", "DecodePipelineReport",
    # serving adapter
    "PipelineGroup", "PipelineReport",
]
