"""Inter-device interconnect cost model for multi-FPGA pipelines.

The single-device substrates (:mod:`repro.memory`) price on-card
traffic — AXI bursts into HBM.  Crossing *between* cards is a different
medium: a serial transceiver link (Aurora over QSFP28, Ethernet through
a switch, or PCIe peer-to-peer through the host).  The cost of moving
an activation tensor from stage *i* to stage *i+1* is

``time = latency + (payload + overhead) / (bandwidth x efficiency)``

where ``latency`` is the first-bit flight time (serializer, switch
hops), ``efficiency`` the line-coding/protocol tax (64b/66b for Aurora,
preamble + IFG + headers for Ethernet), and ``overhead`` the per-message
framing bytes.  Costs convert to kernel cycles so the pipeline engine
can compose them with :class:`~repro.core.latency.LayerLatency` cycle
counts — the same lower-level-model-as-parameter layering the memory
subsystem uses.

Collectives: tensor-parallel stages all-reduce partial activations.
The ring all-reduce moves ``2 (w-1)/w`` of the payload per member in
``2 (w-1)`` latency-bearing steps — both charged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

__all__ = [
    "InterconnectLink",
    "AURORA_64B66B",
    "ETHERNET_100G",
    "ETHERNET_10G",
    "PCIE_GEN4_X8",
    "LINKS",
    "get_link",
]


@dataclass(frozen=True)
class InterconnectLink:
    """One point-to-point device-to-device link.

    Parameters
    ----------
    name:
        Registry key (also printed in reports).
    bandwidth_gbps:
        Raw line rate per direction in Gbit/s.
    latency_us:
        First-bit latency per message (serdes + flight + switch hops).
    efficiency:
        Fraction of the line rate available to payload after line
        coding and protocol framing (e.g. 64/66 for Aurora).
    overhead_bytes:
        Per-message framing bytes added to the payload.
    """

    name: str
    bandwidth_gbps: float
    latency_us: float
    efficiency: float = 1.0
    overhead_bytes: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.latency_us < 0:
            raise ValueError("latency_us must be non-negative")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        if self.overhead_bytes < 0:
            raise ValueError("overhead_bytes must be non-negative")

    # ------------------------------------------------------------------
    @property
    def payload_gbps(self) -> float:
        """Effective payload bandwidth per direction."""
        return self.bandwidth_gbps * self.efficiency

    def transfer_us(self, nbytes: int) -> float:
        """Wall time to move one ``nbytes`` message (zero bytes free)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        bits = (nbytes + self.overhead_bytes) * 8
        return self.latency_us + bits / (self.payload_gbps * 1e3)

    def transfer_cycles(self, nbytes: int, clock_mhz: float) -> int:
        """Message cost in kernel cycles at ``clock_mhz``."""
        if clock_mhz <= 0:
            raise ValueError("clock must be positive")
        return math.ceil(self.transfer_us(nbytes) * clock_mhz)

    # ------------------------------------------------------------------
    def allreduce_us(self, nbytes: int, ways: int) -> float:
        """Per-member wall time of a ring all-reduce of ``nbytes``.

        ``2 (w-1)`` steps each moving an ``nbytes / w`` shard: the
        classic bandwidth-optimal ring, so wide groups pay latency in
        step count, not payload.
        """
        if ways < 1:
            raise ValueError("ways must be >= 1")
        if ways == 1 or nbytes == 0:
            return 0.0
        shard = math.ceil(nbytes / ways)
        return 2 * (ways - 1) * self.transfer_us(shard)

    def allreduce_cycles(self, nbytes: int, ways: int,
                         clock_mhz: float) -> int:
        """Ring all-reduce cost in kernel cycles."""
        if clock_mhz <= 0:
            raise ValueError("clock must be positive")
        return math.ceil(self.allreduce_us(nbytes, ways) * clock_mhz)


#: Aurora 64B/66B over 4 x 25.78G QSFP28 lanes — the FPGA-native
#: point-to-point fabric (no switch, sub-microsecond).
AURORA_64B66B = InterconnectLink(
    name="aurora",
    bandwidth_gbps=103.1,
    latency_us=0.6,
    efficiency=64 / 66,
    overhead_bytes=16,
)

#: 100G Ethernet through a ToR switch (headers + preamble + IFG, a few
#: microseconds of switching).
ETHERNET_100G = InterconnectLink(
    name="eth100g",
    bandwidth_gbps=100.0,
    latency_us=4.0,
    efficiency=0.94,
    overhead_bytes=58,
)

#: 10G Ethernet — the budget fabric; bandwidth-bound for activations.
ETHERNET_10G = InterconnectLink(
    name="eth10g",
    bandwidth_gbps=10.0,
    latency_us=8.0,
    efficiency=0.94,
    overhead_bytes=58,
)

#: PCIe Gen4 x8 peer-to-peer through the host root complex.
PCIE_GEN4_X8 = InterconnectLink(
    name="pcie4x8",
    bandwidth_gbps=128.0,
    latency_us=1.5,
    efficiency=0.85,
    overhead_bytes=24,
)

LINKS: Dict[str, InterconnectLink] = {
    link.name: link
    for link in (AURORA_64B66B, ETHERNET_100G, ETHERNET_10G, PCIE_GEN4_X8)
}


def get_link(name: str) -> InterconnectLink:
    """Look up a preset link (raises ``KeyError`` with choices)."""
    try:
        return LINKS[name]
    except KeyError:
        raise KeyError(
            f"unknown link {name!r}; available: {sorted(LINKS)}"
        ) from None
