"""Baseline performance models: CPUs, GPUs, competitor FPGA designs,
and the paper's sparsity what-if arithmetic."""

from .cpu import CPU_PLATFORMS, intel_i5_4460, intel_i5_5257u
from .fpga_competitors import TABLE2_COMPETITORS, CompetitorRecord, get_competitor
from .gpu import GPU_PLATFORMS, jetson_tx2, rtx_3060, titan_xp_hep, titan_xp_nlp
from .roofline import PlatformModel, anchored_platform
from .sparsity import SparsityWhatIf, sparsity_adjusted_latency, what_if

__all__ = [
    "PlatformModel",
    "anchored_platform",
    "intel_i5_5257u",
    "intel_i5_4460",
    "CPU_PLATFORMS",
    "jetson_tx2",
    "titan_xp_hep",
    "titan_xp_nlp",
    "rtx_3060",
    "GPU_PLATFORMS",
    "CompetitorRecord",
    "TABLE2_COMPETITORS",
    "get_competitor",
    "sparsity_adjusted_latency",
    "SparsityWhatIf",
    "what_if",
]
