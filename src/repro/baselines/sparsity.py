"""Sparsity/compression what-if arithmetic (Table II discussion).

The paper's own adjustments, reproduced exactly:

* "[21] applied a high sparsity of 90% ... If the same sparsity level
  were applied to ProTEA, its latency would mathematically be reduced
  to 0.448 ms (calculated as 4.48 − 4.48 × 0.9), making it 1.4x
  slower."
* "FTRANS compressed the model by 93%.  The same compression would
  make ProTEA 9.4x faster because its latency would be 0.31 ms
  (calculated as 4.48 − 4.48 × 0.93)."

These are *ideal* skip-every-zero adjustments — the strongest possible
case for the sparse competitor — which is why the paper uses them for
a conservative comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["sparsity_adjusted_latency", "SparsityWhatIf", "what_if"]


def sparsity_adjusted_latency(latency_ms: float, sparsity: float) -> float:
    """Ideal dense→sparse latency: ``latency x (1 − sparsity)``."""
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must be in [0, 1)")
    if latency_ms <= 0:
        raise ValueError("latency must be positive")
    return latency_ms * (1.0 - sparsity)


@dataclass(frozen=True)
class SparsityWhatIf:
    """Outcome of granting ProTEA a competitor's sparsity level."""

    dense_latency_ms: float
    sparsity: float
    adjusted_latency_ms: float
    competitor_latency_ms: float

    @property
    def speedup_vs_competitor(self) -> float:
        """>1 means adjusted ProTEA beats the competitor."""
        return self.competitor_latency_ms / self.adjusted_latency_ms

    @property
    def verdict(self) -> str:
        s = self.speedup_vs_competitor
        if s >= 1.0:
            return f"{s:.1f}x faster"
        return f"{1.0 / s:.1f}x slower"


def what_if(
    protea_dense_ms: float, sparsity: float, competitor_ms: float
) -> SparsityWhatIf:
    """The paper's what-if: apply ``sparsity`` to ProTEA, compare."""
    adjusted = sparsity_adjusted_latency(protea_dense_ms, sparsity)
    return SparsityWhatIf(
        dense_latency_ms=protea_dense_ms,
        sparsity=sparsity,
        adjusted_latency_ms=adjusted,
        competitor_latency_ms=competitor_ms,
    )
