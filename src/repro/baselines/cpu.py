"""CPU comparators of Table III.

Published anchors (Table III of the paper):

* Intel i5-5257U @ 2.7 GHz — 3.54 ms on model #1 (from [21]).
* Intel i5-4460 @ 3.2 GHz — 4.66 ms on model #3 (from [25]).

Hardware bandwidths from the respective Intel ARK entries.
"""

from __future__ import annotations

from ..nn.model_zoo import get_model
from .roofline import PlatformModel, anchored_platform

__all__ = ["intel_i5_5257u", "intel_i5_4460", "CPU_PLATFORMS"]


def intel_i5_5257u() -> PlatformModel:
    """Broadwell dual-core laptop CPU (anchor: model #1, 3.54 ms)."""
    return anchored_platform(
        name="Intel i5-5257U CPU",
        frequency_ghz=2.7,
        mem_bandwidth_gbps=25.6,
        anchor_config=get_model("model1-peng-isqed21"),
        anchor_latency_ms=3.54,
        overhead_ms=0.1,
        notes="published in [21]; their CPU run uses the pruned model",
    )


def intel_i5_4460() -> PlatformModel:
    """Haswell desktop CPU (anchor: model #3, 4.66 ms)."""
    return anchored_platform(
        name="Intel i5-4460 CPU",
        frequency_ghz=3.2,
        mem_bandwidth_gbps=25.6,
        anchor_config=get_model("model3-efa-trans"),
        anchor_latency_ms=4.66,
        overhead_ms=0.1,
        notes="published in [25]",
    )


def CPU_PLATFORMS() -> dict:
    """Name → model mapping of every CPU comparator."""
    return {p.name: p for p in (intel_i5_5257u(), intel_i5_4460())}
