"""GPU comparators of Table III.

Published anchors:

* Jetson TX2 @ 1.3 GHz — 0.673 ms on model #1 (from [21]).
* NVIDIA Titan XP @ 1.4 GHz — 1.062 ms on model #2 (from [23]) and
  147 ms on model #4 (from [28]); two separate anchored instances
  because the cited works measured under very different software
  stacks (the 147 ms number includes framework overheads the 1.062 ms
  HEP measurement does not).
* NVIDIA RTX 3060 @ 1.3 GHz — 0.71 ms on model #3 (from [25]).
"""

from __future__ import annotations

from ..nn.model_zoo import get_model
from .roofline import PlatformModel, anchored_platform

__all__ = [
    "jetson_tx2",
    "titan_xp_hep",
    "titan_xp_nlp",
    "rtx_3060",
    "GPU_PLATFORMS",
]


def jetson_tx2() -> PlatformModel:
    """Embedded Pascal GPU (anchor: model #1, 0.673 ms)."""
    return anchored_platform(
        name="Jetson TX2 GPU",
        frequency_ghz=1.3,
        mem_bandwidth_gbps=59.7,
        anchor_config=get_model("model1-peng-isqed21"),
        anchor_latency_ms=0.673,
        overhead_ms=0.05,
        notes="published in [21] (pruned model)",
    )


def titan_xp_hep() -> PlatformModel:
    """Titan XP under the HEP stack of [23] (anchor: model #2, 1.062 ms)."""
    return anchored_platform(
        name="NVIDIA Titan XP GPU",
        frequency_ghz=1.4,
        mem_bandwidth_gbps=547.6,
        anchor_config=get_model("model2-lhc-trigger"),
        anchor_latency_ms=1.062,
        overhead_ms=0.5,  # tiny model: latency is dominated by launch cost
        notes="published in [23]",
    )


def titan_xp_nlp() -> PlatformModel:
    """Titan XP under the NLP stack of [28] (anchor: model #4, 147 ms)."""
    return anchored_platform(
        name="NVIDIA Titan XP GPU",
        frequency_ghz=1.4,
        mem_bandwidth_gbps=547.6,
        anchor_config=get_model("model4-qi-iccad21"),
        anchor_latency_ms=147.0,
        overhead_ms=1.0,
        notes="published in [28]; includes framework overheads",
    )


def rtx_3060() -> PlatformModel:
    """Ampere desktop GPU (anchor: model #3, 0.71 ms)."""
    return anchored_platform(
        name="NVIDIA RTX 3060 GPU",
        frequency_ghz=1.3,
        mem_bandwidth_gbps=360.0,
        anchor_config=get_model("model3-efa-trans"),
        anchor_latency_ms=0.71,
        overhead_ms=0.05,
        notes="published in [25]; aggressive sparsity on their side",
    )


def GPU_PLATFORMS() -> dict:
    """Name → model mapping (NLP Titan XP keyed separately)."""
    return {
        "Jetson TX2 GPU": jetson_tx2(),
        "NVIDIA Titan XP GPU (HEP)": titan_xp_hep(),
        "NVIDIA Titan XP GPU (NLP)": titan_xp_nlp(),
        "NVIDIA RTX 3060 GPU": rtx_3060(),
    }
