"""Roofline-style analytic performance models for CPUs and GPUs.

Table III's comparators are other groups' published measurements; we
cannot rerun a Titan XP offline.  Each platform is therefore modelled
as a roofline anchored at its *published* (workload, latency) pair:

``latency(config) = overhead + max(ops/compute_tput, bytes/mem_bw)``

where ``compute_tput`` is the **effective** sustained throughput
back-solved from the anchor (it folds in framework overheads, sparsity
tricks, kernel-launch costs — everything that made the published
number what it is).  Predictions for the anchor workload reproduce the
published latency exactly by construction; other workloads scale along
the roofline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.metrics import encoder_ops
from ..nn.model_zoo import TransformerConfig

__all__ = ["PlatformModel", "anchored_platform"]


def _model_bytes(config: TransformerConfig, bytes_per_elem: int) -> int:
    """Weight + activation traffic of one inference (single batch)."""
    d, dff, sl, n = (config.d_model, config.d_ff, config.seq_len,
                     config.num_layers)
    weights = n * (4 * d * d + d * dff + dff * d)
    acts = n * sl * (6 * d + 2 * dff)
    return (weights + acts) * bytes_per_elem


@dataclass(frozen=True)
class PlatformModel:
    """One CPU/GPU platform as a calibrated roofline."""

    name: str
    frequency_ghz: float
    compute_tput_gops: float        # effective sustained GOPS
    mem_bandwidth_gbps: float
    overhead_ms: float = 0.05       # launch/dispatch floor
    bytes_per_elem: int = 4         # fp32 unless the cited work says less
    anchor: Optional[str] = None    # provenance note
    notes: str = ""

    def __post_init__(self) -> None:
        if min(self.frequency_ghz, self.compute_tput_gops,
               self.mem_bandwidth_gbps) <= 0:
            raise ValueError(f"{self.name}: rates must be positive")

    def latency_ms(self, config: TransformerConfig) -> float:
        """Roofline latency of one inference of ``config``."""
        ops = encoder_ops(config)
        compute_ms = ops / (self.compute_tput_gops * 1e9) * 1e3
        mem_ms = (_model_bytes(config, self.bytes_per_elem)
                  / (self.mem_bandwidth_gbps * 1e9) * 1e3)
        return self.overhead_ms + max(compute_ms, mem_ms)

    def throughput_gops(self, config: TransformerConfig) -> float:
        return encoder_ops(config) / (self.latency_ms(config) * 1e-3) / 1e9


def anchored_platform(
    name: str,
    frequency_ghz: float,
    mem_bandwidth_gbps: float,
    anchor_config: TransformerConfig,
    anchor_latency_ms: float,
    overhead_ms: float = 0.05,
    bytes_per_elem: int = 4,
    notes: str = "",
) -> PlatformModel:
    """Back-solve the effective throughput from a published latency.

    Raises if the anchor is impossible (latency below the overhead or
    the memory floor) — which would indicate a mis-transcribed anchor.
    """
    ops = encoder_ops(anchor_config)
    mem_ms = (_model_bytes(anchor_config, bytes_per_elem)
              / (mem_bandwidth_gbps * 1e9) * 1e3)
    compute_budget_ms = anchor_latency_ms - overhead_ms
    if compute_budget_ms <= 0:
        raise ValueError(
            f"{name}: anchor latency {anchor_latency_ms} ms below the "
            f"overhead floor {overhead_ms} ms"
        )
    if mem_ms > anchor_latency_ms:
        # Published number is already memory-bound; credit the compute
        # side with matching the bound.
        compute_budget_ms = mem_ms
    tput = ops / (compute_budget_ms * 1e-3) / 1e9
    return PlatformModel(
        name=name,
        frequency_ghz=frequency_ghz,
        compute_tput_gops=tput,
        mem_bandwidth_gbps=mem_bandwidth_gbps,
        overhead_ms=overhead_ms,
        bytes_per_elem=bytes_per_elem,
        anchor=f"{anchor_config.name} @ {anchor_latency_ms} ms",
        notes=notes,
    )
