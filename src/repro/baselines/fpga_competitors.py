"""Published FPGA-accelerator records (Table II comparators).

Each record carries the metrics exactly as the paper tabulates them,
plus which model-zoo workload ProTEA runs for that comparison row.
These numbers are *published constants* — the substitution rule for
closed comparators — while every ProTEA-side number in the regenerated
table comes from our simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["CompetitorRecord", "TABLE2_COMPETITORS", "get_competitor"]


@dataclass(frozen=True)
class CompetitorRecord:
    """One comparator row of Table II."""

    key: str
    citation: str
    precision: str
    fpga: str
    dsp: int
    latency_ms: float
    gops: float
    gops_per_dsp_x1000: float
    method: str           # 'HLS' | 'HDL'
    sparsity: float       # fraction (0.9 == 90%)
    protea_model: str     # model-zoo key ProTEA runs for this row
    paper_protea_latency_ms: float  # what the paper measured for ProTEA
    notes: str = ""

    @property
    def is_sparse(self) -> bool:
        return self.sparsity > 0.0


TABLE2_COMPETITORS: Tuple[CompetitorRecord, ...] = (
    CompetitorRecord(
        key="peng21",
        citation="[21] Peng et al., ISQED'21",
        precision="-",
        fpga="Alveo U200",
        dsp=3368,
        latency_ms=0.32,
        gops=555.0,
        gops_per_dsp_x1000=164.0,
        method="HLS",
        sparsity=0.90,
        protea_model="model1-peng-isqed21",
        paper_protea_latency_ms=4.48,
        notes="column-balanced block pruning",
    ),
    CompetitorRecord(
        key="wojcicki22",
        citation="[23] Wojcicki et al., ICFPT'22",
        precision="Float32",
        fpga="Alveo U250",
        dsp=4351,
        latency_ms=1.2,
        gops=0.0006,
        gops_per_dsp_x1000=0.00013,
        method="HLS",
        sparsity=0.0,
        protea_model="model2-lhc-trigger",
        paper_protea_latency_ms=0.425,
        notes="LHC trigger TNN, tiny workload",
    ),
    CompetitorRecord(
        key="efa-trans",
        citation="[25] Yang & Su, EFA-Trans",
        precision="Int8",
        fpga="ZCU102",
        dsp=1024,
        latency_ms=1.47,
        gops=279.0,
        gops_per_dsp_x1000=272.0,
        method="HDL",
        sparsity=0.0,
        protea_model="model3-efa-trans",
        paper_protea_latency_ms=5.18,
        notes="HDL design; dense mode of a dense/sparse-switchable core",
    ),
    CompetitorRecord(
        key="qi21",
        citation="[28] Qi et al., ICCAD'21",
        precision="-",
        fpga="Alveo U200",
        dsp=4145,
        latency_ms=15.8,
        gops=75.94,
        gops_per_dsp_x1000=18.0,
        method="HLS",
        sparsity=0.0,
        protea_model="model4-qi-iccad21",
        paper_protea_latency_ms=9.12,
    ),
    CompetitorRecord(
        key="ftrans",
        citation="[29] Li et al., FTRANS",
        precision="Fix16",
        fpga="VCU118",
        dsp=5647,
        latency_ms=2.94,
        gops=60.0,
        gops_per_dsp_x1000=11.0,
        method="HLS",
        sparsity=0.93,
        protea_model="ftrans-workload",
        paper_protea_latency_ms=4.48,
        notes="block-circulant compression (93%)",
    ),
)


def get_competitor(key: str) -> CompetitorRecord:
    """Look up a comparator by key."""
    for rec in TABLE2_COMPETITORS:
        if rec.key == key:
            return rec
    raise KeyError(
        f"unknown competitor {key!r}; available: "
        f"{[r.key for r in TABLE2_COMPETITORS]}"
    )
