"""On-chip buffer write model: filling partitioned BRAM tile buffers.

Loading a tile is not free even when the AXI side streams at full
rate: the unpacker writes ``write_lanes`` elements per cycle into the
partitioned banks (limited by bank write ports and the AXI beat
width).  The effective load time of a tile is the max of the off-chip
transfer and the on-chip fill.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["BufferFillModel"]


@dataclass(frozen=True)
class BufferFillModel:
    """Element-level write cost into a partitioned on-chip buffer.

    Parameters
    ----------
    write_lanes:
        Elements written per cycle.  An AXI beat of ``data_bits`` bits
        carries ``data_bits/element_bits`` elements; with cyclic
        partitioning those land in distinct banks and can be written in
        parallel, so lanes default to the beat width.
    element_bits:
        Storage width of one element.
    """

    write_lanes: int = 8
    element_bits: int = 8

    def __post_init__(self) -> None:
        if self.write_lanes < 1:
            raise ValueError("write_lanes must be >= 1")
        if self.element_bits < 1:
            raise ValueError("element_bits must be >= 1")

    def fill_cycles(self, elements: int) -> int:
        """Cycles to write ``elements`` into the buffer."""
        if elements < 0:
            raise ValueError("elements must be non-negative")
        return math.ceil(elements / self.write_lanes)

    @classmethod
    def from_axi_beat(cls, data_bits: int, element_bits: int = 8) -> "BufferFillModel":
        """Lanes implied by unpacking one AXI beat per cycle."""
        return cls(write_lanes=max(1, data_bits // element_bits),
                   element_bits=element_bits)
