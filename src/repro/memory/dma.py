"""Tile-load scheduling and load/compute overlap.

The paper: "The reported latency reflects the computation time,
accounting for the overlap of data loading and computation."  With
double buffering, tile ``i+1`` loads while tile ``i`` computes, so a
sequence of (load, compute) pairs costs::

    total = load₀ + Σᵢ max(loadᵢ₊₁, computeᵢ) + compute_last

Without a second buffer the phases serialize.  ProTEA's weight buffers
are single-buffered in the published design (BRAM is spent on width,
not depth), so the default pipeline degree is configurable per engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["TilePhase", "overlapped_cycles", "serialized_cycles", "OverlapReport"]


@dataclass(frozen=True)
class TilePhase:
    """Cost of one tile iteration: its load and its compute cycles."""

    load: int
    compute: int

    def __post_init__(self) -> None:
        if self.load < 0 or self.compute < 0:
            raise ValueError("cycles must be non-negative")


@dataclass(frozen=True)
class OverlapReport:
    """Totals for one tiled engine invocation sequence."""

    total: int
    load_only: int
    compute_only: int
    overlap_saved: int

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the ideal saving actually achieved (0 when
        nothing could overlap)."""
        ideal = min(self.load_only, self.compute_only)
        return 0.0 if ideal == 0 else self.overlap_saved / ideal


def serialized_cycles(phases: Sequence[TilePhase]) -> OverlapReport:
    """Single-buffered: every load blocks its compute."""
    load = sum(p.load for p in phases)
    comp = sum(p.compute for p in phases)
    return OverlapReport(total=load + comp, load_only=load,
                         compute_only=comp, overlap_saved=0)


def overlapped_cycles(phases: Sequence[TilePhase]) -> OverlapReport:
    """Double-buffered: load of tile i+1 hides under compute of tile i."""
    if not phases:
        return OverlapReport(0, 0, 0, 0)
    load = sum(p.load for p in phases)
    comp = sum(p.compute for p in phases)
    total = phases[0].load
    for prev, nxt in zip(phases, phases[1:]):
        total += max(prev.compute, nxt.load)
    total += phases[-1].compute
    return OverlapReport(total=total, load_only=load, compute_only=comp,
                         overlap_saved=(load + comp) - total)


def uniform_phases(n_tiles: int, load: int, compute: int) -> List[TilePhase]:
    """Convenience for engines whose tiles are all the same shape."""
    if n_tiles < 0:
        raise ValueError("n_tiles must be non-negative")
    return [TilePhase(load=load, compute=compute) for _ in range(n_tiles)]


def tiled_engine_cycles(
    n_tiles: int, load: int, compute: int, double_buffered: bool
) -> Tuple[int, OverlapReport]:
    """Total cycles of an engine that iterates ``n_tiles`` uniform tiles."""
    phases = uniform_phases(n_tiles, load, compute)
    report = overlapped_cycles(phases) if double_buffered else serialized_cycles(phases)
    return report.total, report
