"""Memory-system substrate: HBM channels, AXI transactions, buffer
fill costs and double-buffered load/compute overlap."""

from .axi import AXI4Master, AXILiteSlave
from .bram import BufferFillModel
from .dma import (
    OverlapReport,
    TilePhase,
    overlapped_cycles,
    serialized_cycles,
    tiled_engine_cycles,
    uniform_phases,
)
from .hbm import HBMChannel, HBMSubsystem

__all__ = [
    "AXI4Master",
    "AXILiteSlave",
    "HBMChannel",
    "HBMSubsystem",
    "BufferFillModel",
    "TilePhase",
    "OverlapReport",
    "overlapped_cycles",
    "serialized_cycles",
    "uniform_phases",
    "tiled_engine_cycles",
]
