"""Off-chip HBM model: channels, bandwidth, contention.

The U55C exposes 32 HBM2 pseudo-channels (~14.4 GB/s each, 460 GB/s
aggregate).  Each engine group's AXI master maps to a pseudo-channel;
when several engines load concurrently the per-channel bandwidth is
what each sees — the aggregate ceiling only binds if a single channel
is shared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .axi import AXI4Master

__all__ = ["HBMChannel", "HBMSubsystem"]


@dataclass(frozen=True)
class HBMChannel:
    """One pseudo-channel with a peak bandwidth and access latency."""

    bandwidth_gbps: float = 14.4
    access_latency_ns: float = 120.0

    def bytes_per_cycle(self, clock_mhz: float) -> float:
        """Sustainable bytes per kernel cycle at ``clock_mhz``."""
        if clock_mhz <= 0:
            raise ValueError("clock must be positive")
        return self.bandwidth_gbps * 1e9 / (clock_mhz * 1e6)

    def access_latency_cycles(self, clock_mhz: float) -> int:
        """First-word latency in kernel cycles."""
        return math.ceil(self.access_latency_ns * clock_mhz / 1000.0)


@dataclass(frozen=True)
class HBMSubsystem:
    """The card's memory system as seen by the accelerator.

    ``transfer_cycles`` takes the max of the AXI protocol cost and the
    channel-bandwidth cost so narrow AXI ports are port-limited and
    wide ones are DRAM-limited — whichever binds.
    """

    channels: int = 32
    channel: HBMChannel = HBMChannel()
    clock_mhz: float = 200.0

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError("need at least one channel")

    def transfer_cycles(
        self, nbytes: int, port: AXI4Master, concurrent_streams: int = 1
    ) -> int:
        """Cycles to move ``nbytes`` through one AXI port.

        ``concurrent_streams`` > channels means channel sharing: each
        stream sees a proportionally reduced bandwidth.
        """
        if nbytes == 0:
            return 0
        if concurrent_streams < 1:
            raise ValueError("concurrent_streams must be >= 1")
        protocol = port.transfer_cycles(nbytes)
        share = max(1.0, concurrent_streams / self.channels)
        bpc = self.channel.bytes_per_cycle(self.clock_mhz) / share
        dram = self.channel.access_latency_cycles(self.clock_mhz) + math.ceil(
            nbytes / bpc
        )
        return max(protocol, dram)

    def aggregate_bandwidth_gbps(self) -> float:
        """Card-level peak bandwidth."""
        return self.channels * self.channel.bandwidth_gbps
