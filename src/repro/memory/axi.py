"""AXI4 master and AXI4-Lite slave transaction cost models.

The accelerator fetches inputs and weights from HBM "using AXI4 master
interfaces when the load instruction ... is received" and takes control
signals "through an AXI-lite slave interface" (Section IV).  The cycle
cost of a read is what matters for latency:

``cycles(bytes) = bursts · setup + beats``

with ``beats = ceil(bytes / (data_bits/8))`` and bursts capped at 256
beats (AXI4 ARLEN).  AXI-Lite configuration writes are single-beat,
several cycles each — negligible against compute but modelled so the
runtime-reprogramming path has a real cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AXI4Master", "AXILiteSlave"]


@dataclass(frozen=True)
class AXI4Master:
    """One AXI4 read/write master port.

    Parameters
    ----------
    data_bits:
        Data bus width (the paper's HBM ports are 256- or 512-bit; the
        calibrated default models the effective per-engine load path).
    max_burst_beats:
        AXI4 limit of 256 beats per burst.
    setup_cycles:
        Address-phase plus first-data latency per burst (HBM read
        latency through the switch is tens of cycles).
    """

    data_bits: int = 64
    max_burst_beats: int = 256
    setup_cycles: int = 32

    def __post_init__(self) -> None:
        if self.data_bits % 8 or self.data_bits < 8:
            raise ValueError("data_bits must be a positive multiple of 8")
        if self.max_burst_beats < 1 or self.max_burst_beats > 256:
            raise ValueError("max_burst_beats must be in [1, 256]")
        if self.setup_cycles < 1:
            raise ValueError("setup_cycles must be >= 1")

    @property
    def bytes_per_beat(self) -> int:
        return self.data_bits // 8

    def beats(self, nbytes: int) -> int:
        """Data beats needed for ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return math.ceil(nbytes / self.bytes_per_beat)

    def bursts(self, nbytes: int) -> int:
        """Bursts needed (ARLEN-limited)."""
        return math.ceil(self.beats(nbytes) / self.max_burst_beats) if nbytes else 0

    def transfer_cycles(self, nbytes: int, contiguous: bool = True) -> int:
        """Cycles to read/write ``nbytes``.

        Non-contiguous transfers (strided tile rows) pay a burst setup
        per row-equivalent chunk; callers pass ``contiguous=False`` and
        pre-split via :meth:`strided_transfer_cycles` instead.
        """
        if nbytes == 0:
            return 0
        if not contiguous:
            raise ValueError("use strided_transfer_cycles for non-contiguous data")
        return self.bursts(nbytes) * self.setup_cycles + self.beats(nbytes)

    def strided_transfer_cycles(self, nbytes_per_chunk: int, chunks: int) -> int:
        """Cycles for ``chunks`` separate contiguous regions.

        Models loading one weight tile whose rows are strided in DRAM:
        every row restarts a burst.
        """
        if chunks < 0:
            raise ValueError("chunks must be non-negative")
        return chunks * self.transfer_cycles(nbytes_per_chunk)


@dataclass(frozen=True)
class AXILiteSlave:
    """Control/status register access over AXI4-Lite."""

    write_cycles: int = 6
    read_cycles: int = 6

    def configure_cycles(self, num_registers: int) -> int:
        """Cycles for the MicroBlaze to program ``num_registers`` CSRs."""
        if num_registers < 0:
            raise ValueError("num_registers must be non-negative")
        return num_registers * self.write_cycles
