"""Multi-instance serving simulation on top of the cycle-level model.

The single-instance layers answer "one inference takes X ms"; this
package answers the deployment question above it: *how does a fleet of
N runtime-reprogrammable instances behave under an open-loop request
stream?*  It is a discrete-event simulator with

* seedable workload generators (:mod:`.workload`),
* batching policies + the batched service-time kernel (:mod:`.batching`),
* dispatch schedulers including model-affinity (:mod:`.scheduler`),
* the event-driven cluster itself (:mod:`.cluster`),
* metrics / SLO attainment / capacity planning (:mod:`.slo`),
* paper-style text reports (:mod:`.report`).

Quickstart::

    from repro import ProTEA, SynthParams
    from repro.serving import (ModelMix, PoissonArrivals, simulate,
                               summarize)

    accel = ProTEA.synthesize(SynthParams())
    reqs = PoissonArrivals(500, ModelMix("model2-lhc-trigger"),
                           seed=0).generate(1_000)
    report = summarize(simulate(accel, reqs, n_instances=4))
    print(report.throughput_rps, report.p99_ms)
"""

from .batching import (
    BatchingPolicy,
    ServiceTimeModel,
    fixed_size,
    get_batching,
    no_batching,
    timeout,
)
from .cluster import (
    ClusterSimulator,
    InstanceStats,
    RequestRecord,
    SimulationResult,
    simulate,
)
from .generation import (
    GenerationClusterSimulator,
    GenerationInstanceStats,
    GenerationRecord,
    GenerationServiceModel,
    GenerationSimulationResult,
    simulate_generation,
)
from .report import (
    render_capacity_plan,
    render_generation_report,
    render_serving_report,
)
from .scheduler import (
    SCHEDULERS,
    LeastLoaded,
    ModelAffinity,
    RoundRobin,
    Scheduler,
    get_scheduler,
)
from .slo import (
    CapacityPlan,
    GenerationServingReport,
    ModelMetrics,
    ServingReport,
    percentile,
    plan_capacity,
    summarize,
    summarize_generation,
)
from .workload import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    GenerationRequest,
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    Request,
    TraceReplay,
    attach_generation_lengths,
    attach_priorities,
)

__all__ = [
    # workload
    "Request", "GenerationRequest", "LengthSampler", "ModelMix",
    "ArrivalProcess", "PoissonArrivals", "BurstyArrivals",
    "DiurnalArrivals", "TraceReplay", "attach_generation_lengths",
    "attach_priorities",
    # batching
    "BatchingPolicy", "no_batching", "fixed_size", "timeout",
    "get_batching", "ServiceTimeModel",
    # scheduling
    "Scheduler", "RoundRobin", "LeastLoaded", "ModelAffinity",
    "SCHEDULERS", "get_scheduler",
    # cluster
    "ClusterSimulator", "simulate", "SimulationResult", "RequestRecord",
    "InstanceStats",
    # generation (token-level continuous batching)
    "GenerationClusterSimulator", "simulate_generation",
    "GenerationSimulationResult", "GenerationRecord",
    "GenerationInstanceStats", "GenerationServiceModel",
    # slo
    "percentile", "ModelMetrics", "ServingReport", "summarize",
    "GenerationServingReport", "summarize_generation",
    "CapacityPlan", "plan_capacity",
    # report
    "render_serving_report", "render_capacity_plan",
    "render_generation_report",
]
