"""Batching policies and the batched service-time kernel.

Batch service time reuses the per-inference cycle model: a batch of B
same-model requests is packed into accelerator invocations whose
``seq_len`` is the concatenation of the member sequences, capped by the
synthesized ``max_seq_len``.  Each invocation's latency comes from
:meth:`ProTEA.latency_report`, so batching wins exactly what the
hardware wins — the per-invocation weight streams are amortized over
more tokens — and nothing more.

Policies (how the dispatcher forms a batch from an instance's FIFO):

* ``no_batching()`` — every request is its own invocation.
* ``fixed_size(B)`` — greedy: take up to B queued same-model requests
  the moment the instance frees; never waits for stragglers.
* ``timeout(B, ms)`` — dynamic batching: wait until B requests of the
  head model queue up or the head request has aged ``ms``, whichever
  comes first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.accelerator import ProTEA
from ..nn.model_zoo import TransformerConfig

__all__ = [
    "BatchingPolicy",
    "no_batching",
    "fixed_size",
    "timeout",
    "get_batching",
    "ServiceTimeModel",
]

_EPS = 1e-9


@dataclass(frozen=True)
class BatchingPolicy:
    """Max batch size + optional head-of-line wait deadline."""

    name: str
    max_batch: int = 1
    timeout_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.timeout_ms is not None and self.timeout_ms < 0:
            raise ValueError("timeout_ms must be >= 0")

    def decide(self, prefix_len: int, head_wait_ms: float) -> Optional[int]:
        """Batch size to dispatch now, or ``None`` to keep waiting.

        ``prefix_len`` is the run of same-model requests at the head of
        the queue; ``head_wait_ms`` how long the head has been queued.
        """
        if prefix_len >= self.max_batch:
            return self.max_batch
        if self.timeout_ms is None:
            return prefix_len
        if head_wait_ms + _EPS >= self.timeout_ms:
            return prefix_len
        return None


def no_batching() -> BatchingPolicy:
    return BatchingPolicy(name="none", max_batch=1)


def fixed_size(max_batch: int) -> BatchingPolicy:
    return BatchingPolicy(name=f"fixed-{max_batch}", max_batch=max_batch)


def timeout(max_batch: int, timeout_ms: float) -> BatchingPolicy:
    return BatchingPolicy(name=f"timeout-{max_batch}@{timeout_ms:g}ms",
                          max_batch=max_batch, timeout_ms=timeout_ms)


def get_batching(name: str, max_batch: int = 8,
                 timeout_ms: float = 2.0) -> BatchingPolicy:
    """CLI-facing factory: ``none`` | ``fixed`` | ``timeout``."""
    if name == "none":
        return no_batching()
    if name == "fixed":
        return fixed_size(max_batch)
    if name == "timeout":
        return timeout(max_batch, timeout_ms)
    raise KeyError(f"unknown batching policy {name!r}; "
                   "available: ['fixed', 'none', 'timeout']")


class ServiceTimeModel:
    """Maps (model, batch size) → milliseconds on one instance.

    Latency reports are memoized per ``(model, invocation seq_len)``;
    the cycle model is deterministic, so the cache is exact.
    """

    def __init__(self, accel: "ProTEA",
                 models: Mapping[str, TransformerConfig]):
        self.accel = accel
        self.models = dict(models)
        self._cache: Dict[Tuple[str, int], float] = {}

    def config(self, model: str) -> TransformerConfig:
        """Look up + servability-check a model (lazily: the table may
        hold zoo entries the workload never requests)."""
        try:
            cfg = self.models[model]
        except KeyError:
            raise KeyError(
                f"unknown model {model!r}; available: {sorted(self.models)}"
            ) from None
        max_sl = self.accel.synth.max_seq_len
        if cfg.seq_len > max_sl:
            raise ValueError(
                f"model {model!r} has seq_len={cfg.seq_len} beyond the "
                f"synthesized max_seq_len={max_sl}; it cannot be served"
            )
        return cfg

    def invocation_seq_lens(self, model: str, batch_size: int) -> List[int]:
        """Token-packing plan: one entry per accelerator invocation."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        cfg = self.config(model)
        per_inv = max(1, self.accel.synth.max_seq_len // cfg.seq_len)
        full, rem = divmod(batch_size, per_inv)
        lens = [per_inv * cfg.seq_len] * full
        if rem:
            lens.append(rem * cfg.seq_len)
        return lens

    def _invocation_ms(self, model: str, seq_len: int) -> float:
        key = (model, seq_len)
        if key not in self._cache:
            cfg = self.config(model).with_(seq_len=seq_len)
            self._cache[key] = self.accel.latency_report(cfg).latency_ms
        return self._cache[key]

    def batch_service_ms(self, model: str, batch_size: int) -> float:
        """Total service time of a same-model batch (no switch cost)."""
        return sum(self._invocation_ms(model, sl)
                   for sl in self.invocation_seq_lens(model, batch_size))
