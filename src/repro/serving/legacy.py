"""The pre-kernel closure loops, preserved as reference oracles.

Before the unified kernel, :mod:`repro.serving.cluster` and
:mod:`repro.serving.generation` each shipped a hand-rolled heap loop.
Both survive here — and only here — because two consumers still need
them:

* the trace-identity goldens (``tests/goldens/``) replay every seeded
  scenario through both engines and byte-compare the rendered reports;
* the kernel benchmarks measure the unified engines *against* these
  loops (``sim_kernel_speedup_x``, ``sim_kernel_scale_x``).

They are deliberately frozen: no fleets, no failures, no preemption,
no observability hooks.  Anything a reference loop cannot express it
refuses loudly, so a golden can never silently compare unlike runs.
The hot modules keep their public ``run_legacy`` methods as one-line
delegates into this shim — test support stays importable from where it
always lived without the dead loops riding along in the hot paths.

Both loops share :class:`_Loop`, the event-heap scaffold they used to
duplicate: a binary heap of ``(t_ms, priority, seq, payload)`` tuples
seeded with every arrival, plus the monotonically increasing insertion
sequence that makes same-time/same-priority events pop in push order —
the exact tuple contract the kernel's queues implement.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import islice
from typing import Deque, List, Optional, Sequence, Tuple

from ..core.runtime import RuntimeSession
from .workload import GenerationRequest, Request

__all__ = ["run_legacy_cluster", "run_legacy_generation"]

_EPS = 1e-9
# Event priorities at equal timestamps.  Serve: free an instance before
# new arrivals join, deadline checks last.  Generation: step boundaries
# resolve before the arrivals they might admit.
_P_FREE, _P_ARRIVAL, _P_CHECK = 0, 1, 2
_P_STEP = 0


class _Loop:
    """Event-heap scaffold shared by both reference loops."""

    __slots__ = ("heap", "seq", "trace", "samples")

    def __init__(self, requests: Sequence, arrival_priority: int) -> None:
        self.heap: List[tuple] = [
            (req.t_ms, arrival_priority, i, ("arrival", req))
            for i, req in enumerate(requests)
        ]
        heapq.heapify(self.heap)
        self.seq = len(self.heap)
        self.trace: List[tuple] = []
        self.samples: List[Tuple[float, int]] = []

    def push(self, t: float, prio: int, payload: tuple) -> None:
        heapq.heappush(self.heap, (t, prio, self.seq, payload))
        self.seq += 1

    def pop(self) -> tuple:
        return heapq.heappop(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)


# ----------------------------------------------------------------------
# Serve (request-level batching)
# ----------------------------------------------------------------------

class _Instance:
    """Mutable per-instance state (scheduler-visible via InstanceView)."""

    def __init__(self, idx: int, session: RuntimeSession):
        self.idx = idx
        self.session = session
        self.queue: Deque[Request] = deque()
        self.busy_until = 0.0
        self.last_model: Optional[str] = None
        self.requests = 0
        self.batches = 0
        self.busy_ms = 0.0
        self.pending_check = False

    def backlog(self, now_ms: float) -> int:
        """Queued requests plus the one in service, if any."""
        return len(self.queue) + (1 if self.busy_until > now_ms + _EPS
                                  else 0)

    def stats(self):
        from .cluster import InstanceStats

        return InstanceStats(
            index=self.idx,
            requests=self.requests,
            batches=self.batches,
            busy_ms=self.busy_ms,
            reprogram_count=self.session.reprogram_count,
            switch_count=self.session.switch_count,
            reprogram_time_ms=self.session.reprogram_time_ms,
        )


def run_legacy_cluster(sim, requests: Sequence[Request]):
    """The pre-kernel serve loop (see :meth:`ClusterSimulator.run_legacy`).

    ``sim`` is the :class:`~repro.serving.cluster.ClusterSimulator`
    whose configuration (batching policy, service model, reprogramming
    penalty) the loop replays.
    """
    from .cluster import RequestRecord, SimulationResult

    if not sim.fleet.homogeneous:
        raise ValueError(
            "run_legacy cannot simulate a heterogeneous fleet — "
            "use run() (the kernel engine)")
    if sim.failures is not None:
        raise ValueError(
            "run_legacy cannot inject failures — use run() (the "
            "kernel engine)")
    scheduler = sim._scheduler()
    instances = [
        _Instance(i, RuntimeSession(
            sim.accel, reprogram_latency_ms=sim.reprogram_latency_ms))
        for i in range(sim.n_instances)
    ]
    records: List = []
    loop = _Loop(requests, _P_ARRIVAL)
    trace = loop.trace
    samples = loop.samples

    def sample(now: float) -> None:
        samples.append((now, sum(len(i.queue) for i in instances)))

    def try_dispatch(inst: _Instance, now: float) -> None:
        if inst.busy_until > now + _EPS or not inst.queue:
            return
        model = inst.queue[0].model
        # Scan at most max_batch entries: decide() clamps there, so
        # a deep backlog must not make dispatch O(queue length).
        prefix = 0
        for req in islice(inst.queue, sim.batching.max_batch):
            if req.model != model:
                break
            prefix += 1
        size = sim.batching.decide(prefix, now - inst.queue[0].t_ms)
        if size is None:
            if not inst.pending_check:
                assert sim.batching.timeout_ms is not None
                deadline = inst.queue[0].t_ms + sim.batching.timeout_ms
                # Optionally wake early (jitter study); once inside
                # the jitter window, arm the true deadline so the
                # early wakeup cannot respawn itself forever.
                target = deadline - sim.check_jitter_ms
                if target <= now + _EPS:
                    target = deadline
                loop.push(max(target, now), _P_CHECK, ("check", inst))
                inst.pending_check = True
            return
        batch = [inst.queue.popleft() for _ in range(size)]
        cfg = sim.service.config(model)
        switch_ms = inst.session.switch_cost_ms(cfg)
        inst.session.deploy(cfg)
        total_ms = switch_ms + sim.service.batch_service_ms(model, size)
        complete = now + total_ms
        inst.busy_until = complete
        inst.busy_ms += total_ms
        inst.batches += 1
        inst.requests += size
        records.extend(
            RequestRecord(
                rid=req.rid, model=model, instance=inst.idx,
                batch_size=size, t_arrival_ms=req.t_ms,
                t_dispatch_ms=now, t_complete_ms=complete,
            ) for req in batch
        )
        trace.append(("dispatch", now, inst.idx, model, size, switch_ms))
        loop.push(complete, _P_FREE, ("free", inst))
        sample(now)

    while loop:
        now, _prio, _seq, payload = loop.pop()
        kind = payload[0]
        if kind == "arrival":
            req: Request = payload[1]
            inst = scheduler.pick(instances, req, now)
            inst.queue.append(req)
            inst.last_model = req.model
            trace.append(("arrive", now, req.rid, req.model, inst.idx))
            sample(now)
            try_dispatch(inst, now)
        elif kind == "free":
            inst = payload[1]
            trace.append(("free", now, inst.idx))
            try_dispatch(inst, now)
        else:  # check
            # Deadline checks may be stale: the batch that armed
            # them can have dispatched long ago (dispatch does not
            # unschedule the event).  The guard is try_dispatch
            # itself — it re-derives busy state, queue head, and
            # head age from scratch, so a stale check either no-ops
            # (busy/empty), re-arms for the *current* head, or
            # dispatches exactly what the policy would dispatch
            # anyway.  No reprogram charge happens outside a real
            # dispatch, so stale events cannot double-charge.
            inst = payload[1]
            inst.pending_check = False
            try_dispatch(inst, now)

    makespan = max((r.t_complete_ms for r in records), default=0.0)
    records.sort(key=lambda r: r.rid)
    return SimulationResult(
        records=records,
        instances=[i.stats() for i in instances],
        n_instances=sim.n_instances,
        makespan_ms=makespan,
        queue_samples=samples,
        trace=trace,
        scheduler=scheduler.name,
        batching=sim.batching.name,
    )


# ----------------------------------------------------------------------
# Generation (token-level continuous batching)
# ----------------------------------------------------------------------

class _Sequence:
    """One in-flight request's decoding state."""

    __slots__ = ("req", "cached", "remaining", "t_admit", "t_first")

    def __init__(self, req: GenerationRequest, t_admit: float,
                 t_first: float):
        self.req = req
        #: KV-cache positions held (prompt + emitted tokens).
        self.cached = req.prompt_tokens
        #: Tokens still to emit after the prefill's first token.
        self.remaining = req.output_tokens - 1
        self.t_admit = t_admit
        self.t_first = t_first


class _GenInstance:
    """Mutable per-instance state (scheduler-visible via InstanceView)."""

    def __init__(self, idx: int, session: RuntimeSession):
        self.idx = idx
        self.session = session
        self.queue: Deque[GenerationRequest] = deque()
        self.active: List[_Sequence] = []
        self.busy_until = 0.0
        self.last_model: Optional[str] = None
        self.requests = 0
        self.steps = 0
        self.prefills = 0
        self.tokens = 0
        self.busy_ms = 0.0
        #: Sequences whose step-boundary bookkeeping is pending.
        self.step_done: List[Tuple[_Sequence, bool]] = []

    def backlog(self, now_ms: float) -> int:
        """Waiting plus in-flight sequences (scheduler load signal)."""
        return len(self.queue) + len(self.active)

    def stats(self):
        from .generation import GenerationInstanceStats

        return GenerationInstanceStats(
            index=self.idx,
            requests=self.requests,
            steps=self.steps,
            prefills=self.prefills,
            tokens=self.tokens,
            busy_ms=self.busy_ms,
            switch_count=self.session.switch_count,
            reprogram_time_ms=self.session.reprogram_time_ms,
        )


def run_legacy_generation(sim, requests: Sequence[GenerationRequest]):
    """The pre-kernel generation loop (see
    :meth:`GenerationClusterSimulator.run_legacy`)."""
    from .generation import GenerationRecord, GenerationSimulationResult

    if not sim.fleet.homogeneous:
        raise ValueError(
            "run_legacy cannot simulate a heterogeneous fleet — "
            "use run() (the kernel engine)")
    if sim.failures is not None:
        raise ValueError(
            "run_legacy cannot inject failures — use run() (the "
            "kernel engine)")
    sim._validate(requests)  # before touching .priority: a plain
    # Request workload must get the guided TypeError, not an
    # AttributeError from the priority scan below.
    if sim.preemption or any(r.priority for r in requests):
        raise ValueError(
            "run_legacy cannot preempt — use run() (the kernel "
            "engine) for priority workloads")
    scheduler = sim._scheduler()
    instances = [
        _GenInstance(i, RuntimeSession(
            sim.accel, reprogram_latency_ms=sim.reprogram_latency_ms))
        for i in range(sim.n_instances)
    ]
    records: List = []
    loop = _Loop(requests, _P_ARRIVAL)
    trace = loop.trace
    samples = loop.samples

    def sample(now: float) -> None:
        samples.append((now, sum(i.backlog(now) for i in instances)))

    def start_step(inst: _GenInstance, now: float) -> None:
        """Admit at the boundary, then run one engine step."""
        if inst.busy_until > now + _EPS:
            return
        # --- admissions: same-model joins while slots are free.
        admitted: List[GenerationRequest] = []
        while (inst.queue
               and len(inst.active) + len(admitted) < sim.slots):
            head = inst.queue[0]
            resident = (inst.active[0].req.model if inst.active
                        else admitted[0].model if admitted else None)
            if resident is not None and head.model != resident:
                break  # mixed weights cannot be resident together
            admitted.append(inst.queue.popleft())
        if not admitted and not inst.active:
            return
        model = admitted[0].model if admitted else inst.active[0].req.model
        cfg = sim.service.config(model)
        switch_ms = inst.session.switch_cost_ms(cfg)
        inst.session.deploy(cfg)
        inst.last_model = model

        # Decode sweep covers sequences active *before* this step;
        # the newly admitted prefill inside it and join the next one.
        decoding = list(inst.active)
        duration = switch_ms
        for req in admitted:
            prefill = sim.service.prefill_ms(model, req.prompt_tokens)
            duration += prefill
            seq = _Sequence(req, t_admit=now,
                            t_first=now + duration)
            inst.active.append(seq)
            inst.prefills += 1
            inst.requests += 1
            inst.tokens += 1  # the prefill's first token
            trace.append(("admit", now, inst.idx, req.rid,
                          req.prompt_tokens, req.output_tokens))
        if decoding:
            duration += sim.service.decode_step_ms(
                model, [s.cached + 1 for s in decoding])
        end = now + duration
        inst.busy_until = end
        inst.busy_ms += duration
        inst.steps += 1
        inst.step_done = [(s, True) for s in decoding]
        inst.tokens += len(decoding)
        trace.append(("step", now, inst.idx, model, len(admitted),
                      len(decoding), duration))
        loop.push(end, _P_STEP, ("step", inst))
        sample(now)

    def finish_step(inst: _GenInstance, now: float) -> None:
        """Step boundary: emit tokens, vacate finished sequences."""
        for seq, decoded in inst.step_done:
            if decoded:
                seq.cached += 1
                seq.remaining -= 1
        inst.step_done = []
        still: List[_Sequence] = []
        for seq in inst.active:
            if seq.remaining <= 0 and seq.t_first <= now + _EPS:
                req = seq.req
                complete = seq.t_first if req.output_tokens == 1 else now
                records.append(GenerationRecord(
                    rid=req.rid, model=req.model, instance=inst.idx,
                    prompt_tokens=req.prompt_tokens,
                    output_tokens=req.output_tokens,
                    t_arrival_ms=req.t_ms, t_admit_ms=seq.t_admit,
                    t_first_token_ms=seq.t_first,
                    t_complete_ms=complete))
                trace.append(("finish", now, inst.idx, req.rid))
            else:
                still.append(seq)
        inst.active = still
        sample(now)
        start_step(inst, now)

    while loop:
        now, _prio, _seq, payload = loop.pop()
        kind = payload[0]
        if kind == "arrival":
            req = payload[1]
            inst = scheduler.pick(instances, req, now)
            inst.queue.append(req)
            if inst.last_model is None:
                inst.last_model = req.model
            trace.append(("arrive", now, req.rid, req.model, inst.idx))
            sample(now)
            start_step(inst, now)
        else:  # step boundary
            finish_step(payload[1], now)

    makespan = max((r.t_complete_ms for r in records), default=0.0)
    records.sort(key=lambda r: r.rid)
    return GenerationSimulationResult(
        records=records,
        instances=[i.stats() for i in instances],
        n_instances=sim.n_instances,
        slots=sim.slots,
        makespan_ms=makespan,
        queue_samples=samples,
        trace=trace,
        scheduler=scheduler.name,
    )
