"""Open-loop request workloads for the serving simulator.

Every generator is *deterministic given its seed*: the same seed and
parameters produce the identical request list, which is what makes
simulated event traces reproducible and capacity plans auditable.

Shapes:

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate,
  the classic open-loop baseline.
* :class:`BurstyArrivals` — a 2-state Markov-modulated Poisson process
  (quiet/burst) for flash-crowd traffic.
* :class:`DiurnalArrivals` — a raised-cosine rate ramp (thinning
  method), a compressed day/night cycle.
* :class:`TraceReplay` — replay an explicit ``(t_ms, model)`` list,
  e.g. captured from production logs.

Multi-model mixes are drawn per-request from a :class:`ModelMix` over
``repro.nn.MODEL_ZOO`` names (or any names the simulator's model table
knows).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Sequence, Tuple, Union

__all__ = [
    "Request",
    "ModelMix",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TraceReplay",
]


@dataclass(frozen=True)
class Request:
    """One inference request in the open-loop stream."""

    rid: int
    t_ms: float
    model: str


class ModelMix:
    """A normalized categorical distribution over model names."""

    def __init__(
        self,
        weights: Union[Mapping[str, float], Sequence[Tuple[str, float]], str],
    ):
        if isinstance(weights, str):
            weights = {weights: 1.0}
        items = list(weights.items()) if isinstance(weights, Mapping) else list(weights)
        if not items:
            raise ValueError("model mix must name at least one model")
        total = float(sum(w for _, w in items))
        if total <= 0 or any(w < 0 for _, w in items):
            raise ValueError("model mix weights must be non-negative, sum > 0")
        self.weights: List[Tuple[str, float]] = [
            (name, w / total) for name, w in items
        ]
        self._cum: List[Tuple[float, str]] = []
        acc = 0.0
        for name, w in self.weights:
            acc += w
            self._cum.append((acc, name))

    @property
    def names(self) -> List[str]:
        return [name for name, _ in self.weights]

    def sample(self, rng: random.Random) -> str:
        u = rng.random()
        for edge, name in self._cum:
            if u <= edge:
                return name
        return self._cum[-1][1]  # float round-off guard


def _finalize(times_models: Iterable[Tuple[float, str]]) -> List[Request]:
    """Sort by time and assign sequential ids (stable for ties)."""
    ordered = sorted(times_models, key=lambda tm: tm[0])
    return [Request(rid=i, t_ms=t, model=m) for i, (t, m) in enumerate(ordered)]


class ArrivalProcess:
    """Base: a seedable generator of a finite open-loop request list."""

    def generate(self, duration_ms: float) -> List[Request]:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Constant-rate Poisson arrivals at ``qps`` requests/second."""

    def __init__(self, qps: float, mix: ModelMix, seed: int = 0):
        if qps <= 0:
            raise ValueError("qps must be positive")
        self.qps = qps
        self.mix = mix
        self.seed = seed

    def generate(self, duration_ms: float) -> List[Request]:
        rng = random.Random(self.seed)
        rate_ms = self.qps / 1e3
        out: List[Tuple[float, str]] = []
        t = rng.expovariate(rate_ms)
        while t < duration_ms:
            out.append((t, self.mix.sample(rng)))
            t += rng.expovariate(rate_ms)
        return _finalize(out)


class BurstyArrivals(ArrivalProcess):
    """2-state MMPP: quiet periods at a low rate, bursts at a high one.

    ``qps`` is the *long-run average*; ``burst_factor`` is the ratio of
    burst rate to quiet rate, and ``burst_fraction`` the expected share
    of time spent bursting.  Dwell times in each state are exponential
    with means ``dwell_ms`` (quiet) and ``dwell_ms * burst_fraction /
    (1 - burst_fraction)`` (burst), so the time shares come out right.
    """

    def __init__(
        self,
        qps: float,
        mix: ModelMix,
        seed: int = 0,
        burst_factor: float = 4.0,
        burst_fraction: float = 0.2,
        dwell_ms: float = 200.0,
    ):
        if qps <= 0 or burst_factor < 1 or not (0 < burst_fraction < 1):
            raise ValueError("need qps > 0, burst_factor >= 1, "
                             "0 < burst_fraction < 1")
        self.qps = qps
        self.mix = mix
        self.seed = seed
        self.burst_factor = burst_factor
        self.burst_fraction = burst_fraction
        self.dwell_ms = dwell_ms
        f = burst_fraction
        # average = (1-f)*low + f*low*factor  →  solve for low.
        self.quiet_qps = qps / ((1 - f) + f * burst_factor)
        self.burst_qps = self.quiet_qps * burst_factor

    def generate(self, duration_ms: float) -> List[Request]:
        rng = random.Random(self.seed)
        f = self.burst_fraction
        dwell = {False: self.dwell_ms, True: self.dwell_ms * f / (1 - f)}
        rate_ms = {False: self.quiet_qps / 1e3, True: self.burst_qps / 1e3}
        out: List[Tuple[float, str]] = []
        t, bursting = 0.0, False
        while t < duration_ms:
            phase_end = min(duration_ms, t + rng.expovariate(1.0 / dwell[bursting]))
            nxt = t + rng.expovariate(rate_ms[bursting])
            while nxt < phase_end:
                out.append((nxt, self.mix.sample(rng)))
                nxt += rng.expovariate(rate_ms[bursting])
            t, bursting = phase_end, not bursting
        return _finalize(out)


class DiurnalArrivals(ArrivalProcess):
    """Raised-cosine rate ramp: valley → peak → valley over ``period_ms``.

    The instantaneous rate is ``peak_qps * (floor + (1-floor) *
    (1 - cos(2πt/period)) / 2)``; arrivals are drawn by thinning a
    ``peak_qps`` Poisson stream, which keeps the generator exact and
    seed-deterministic.
    """

    def __init__(
        self,
        peak_qps: float,
        mix: ModelMix,
        seed: int = 0,
        period_ms: float = 1000.0,
        floor: float = 0.1,
    ):
        if peak_qps <= 0 or period_ms <= 0 or not (0 <= floor <= 1):
            raise ValueError("need peak_qps > 0, period_ms > 0, 0 <= floor <= 1")
        self.peak_qps = peak_qps
        self.mix = mix
        self.seed = seed
        self.period_ms = period_ms
        self.floor = floor

    def rate_qps(self, t_ms: float) -> float:
        shape = (1 - math.cos(2 * math.pi * t_ms / self.period_ms)) / 2
        return self.peak_qps * (self.floor + (1 - self.floor) * shape)

    def generate(self, duration_ms: float) -> List[Request]:
        rng = random.Random(self.seed)
        peak_ms = self.peak_qps / 1e3
        out: List[Tuple[float, str]] = []
        t = rng.expovariate(peak_ms)
        while t < duration_ms:
            if rng.random() < self.rate_qps(t) / self.peak_qps:
                out.append((t, self.mix.sample(rng)))
            t += rng.expovariate(peak_ms)
        return _finalize(out)


class TraceReplay(ArrivalProcess):
    """Replay an explicit ``[(t_ms, model), ...]`` arrival trace."""

    def __init__(self, events: Sequence[Tuple[float, str]]):
        for t, _ in events:
            if t < 0:
                raise ValueError("trace timestamps must be non-negative")
        self.events = list(events)

    def generate(self, duration_ms: float = math.inf) -> List[Request]:
        return _finalize((t, m) for t, m in self.events if t < duration_ms)
