"""Open-loop request workloads for the serving simulator.

Every generator is *deterministic given its seed*: the same seed and
parameters produce the identical request list, which is what makes
simulated event traces reproducible and capacity plans auditable.

Shapes:

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate,
  the classic open-loop baseline.
* :class:`BurstyArrivals` — a 2-state Markov-modulated Poisson process
  (quiet/burst) for flash-crowd traffic.
* :class:`DiurnalArrivals` — a raised-cosine rate ramp (thinning
  method), a compressed day/night cycle.
* :class:`TraceReplay` — replay an explicit ``(t_ms, model)`` list,
  e.g. captured from production logs.

Multi-model mixes are drawn per-request from a :class:`ModelMix` over
``repro.nn.MODEL_ZOO`` names (or any names the simulator's model table
knows).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Request",
    "GenerationRequest",
    "LengthSampler",
    "ModelMix",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TraceReplay",
    "attach_generation_lengths",
    "attach_priorities",
]


@dataclass(frozen=True)
class Request:
    """One inference request in the open-loop stream."""

    rid: int
    t_ms: float
    model: str


@dataclass(frozen=True)
class GenerationRequest(Request):
    """One autoregressive request: a prompt plus a token budget.

    Subclasses :class:`Request` so dispatch schedulers and trace tooling
    see the same surface; the extra fields drive the prefill/decode
    split in the generation service mode.  ``priority`` feeds the
    kernel engine's priority admission: higher values admit first, and
    a strictly-higher-priority arrival may preempt an in-flight
    sequence at a step boundary (0 everywhere = plain FIFO).
    """

    prompt_tokens: int = 1
    output_tokens: int = 1
    priority: int = 0

    def __post_init__(self) -> None:
        if self.prompt_tokens < 1 or self.output_tokens < 1:
            raise ValueError("prompt_tokens and output_tokens must be >= 1")

    @property
    def total_tokens(self) -> int:
        """KV-cache positions the request occupies when finished."""
        return self.prompt_tokens + self.output_tokens


class LengthSampler:
    """Seed-deterministic token-length distribution.

    Kinds (all clamped to ``[lo, hi]`` with ``lo >= 1``):

    * ``fixed``     — every sample is ``lo``;
    * ``uniform``   — integer uniform on ``[lo, hi]``;
    * ``geometric`` — ``lo + Geometric(1/mean_extra)``, the classic
      open-ended output-length model, truncated at ``hi``.

    Degenerate parameters are accepted, not rejected: a zero-variance
    uniform (``lo == hi``), a single-token fixed sampler (``lo == 1``),
    and a zero-``mean_extra`` geometric (which collapses to ``fixed``)
    all sample cleanly — capacity sweeps routinely drive distributions
    to their edges and must not die in the sampler.
    """

    def __init__(self, kind: str = "fixed", lo: int = 16,
                 hi: Optional[int] = None, mean_extra: float = 8.0):
        if kind not in ("fixed", "uniform", "geometric"):
            raise ValueError(
                f"unknown length distribution {kind!r}; "
                "available: ['fixed', 'geometric', 'uniform']")
        if lo < 1:
            raise ValueError("lo must be >= 1")
        hi = lo if hi is None else hi
        if hi < lo:
            raise ValueError("need hi >= lo")
        if mean_extra < 0:
            raise ValueError("mean_extra must be >= 0")
        self.kind = kind
        self.lo = lo
        self.hi = hi
        self.mean_extra = mean_extra

    @classmethod
    def parse(cls, spec: str) -> "LengthSampler":
        """CLI form: ``N`` (fixed), ``LO:HI`` (uniform), ``geo:LO:MEAN``."""
        parts = spec.split(":")
        try:
            if len(parts) == 1:
                return cls("fixed", int(parts[0]))
            if parts[0] == "geo" and len(parts) == 3:
                lo = int(parts[1])
                mean = float(parts[2])
                return cls("geometric", lo, lo + int(8 * mean),
                           mean_extra=mean)
            if len(parts) == 2:
                return cls("uniform", int(parts[0]), int(parts[1]))
        except ValueError as exc:
            raise ValueError(f"invalid length spec {spec!r}: {exc}") from None
        raise ValueError(
            f"invalid length spec {spec!r} (expected N, LO:HI, or "
            "geo:LO:MEAN)")

    def sample(self, rng: random.Random) -> int:
        if self.kind == "fixed":
            return self.lo
        if self.kind == "uniform":
            return rng.randint(self.lo, self.hi)
        # geometric: count Bernoulli(p) failures, p = 1/mean_extra.
        # Degenerate mean (zero extra tokens) collapses to ``lo``
        # without consuming a draw that log(1 - 1) would reject.
        if self.mean_extra == 0:
            return min(self.lo, self.hi)
        extra = int(math.log(max(rng.random(), 1e-12))
                    / math.log(1.0 - 1.0 / (self.mean_extra + 1.0)))
        return min(self.lo + extra, self.hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LengthSampler({self.kind!r}, lo={self.lo}, hi={self.hi}, "
                f"mean_extra={self.mean_extra})")


def attach_generation_lengths(
    requests: Sequence[Request],
    prompt: LengthSampler,
    output: LengthSampler,
    seed: int = 0,
    max_total: Optional[int] = None,
) -> List["GenerationRequest"]:
    """Decorate an arrival stream with sampled prompt/output lengths.

    Deterministic given ``seed`` and the request order; any arrival
    process composes with any length distribution.  ``max_total`` caps
    ``prompt + output`` (the synthesized KV-cache capacity): prompts
    clamp first, outputs take the remainder (always >= 1).
    """
    rng = random.Random(seed)
    out: List[GenerationRequest] = []
    for req in requests:
        p = prompt.sample(rng)
        o = output.sample(rng)
        if max_total is not None:
            if max_total < 2:
                raise ValueError("max_total must be >= 2")
            p = min(p, max_total - 1)
            o = min(o, max_total - p)
        out.append(GenerationRequest(
            rid=req.rid, t_ms=req.t_ms, model=req.model,
            prompt_tokens=p, output_tokens=o))
    return out


def attach_priorities(
    requests: Sequence["GenerationRequest"],
    high_fraction: float,
    seed: int = 0,
    high: int = 1,
) -> List["GenerationRequest"]:
    """Mark a seeded random ``high_fraction`` of requests as priority.

    Deterministic given ``seed`` and the request order (one draw per
    request).  The stream is derived as ``Random(f"{seed}/priority")``
    — the :mod:`repro.sim.rng` naming scheme — so passing the same
    seed here and to :func:`attach_generation_lengths` keeps the two
    draws independent: marking must never correlate with sampled
    lengths, or priority-class comparisons would be confounded.  The
    kernel engine admits priority ``high`` requests first and lets
    them preempt in-flight priority-0 sequences at step boundaries.
    """
    if not 0 <= high_fraction <= 1:
        raise ValueError("high_fraction must be in [0, 1]")
    if high < 1:
        raise ValueError("high priority must be >= 1")
    rng = random.Random(f"{seed}/priority")
    return [
        GenerationRequest(
            rid=req.rid, t_ms=req.t_ms, model=req.model,
            prompt_tokens=req.prompt_tokens,
            output_tokens=req.output_tokens,
            priority=high if rng.random() < high_fraction else 0)
        for req in requests
    ]


class ModelMix:
    """A normalized categorical distribution over model names."""

    def __init__(
        self,
        weights: Union[Mapping[str, float], Sequence[Tuple[str, float]], str],
    ):
        if isinstance(weights, str):
            weights = {weights: 1.0}
        items = list(weights.items()) if isinstance(weights, Mapping) else list(weights)
        if not items:
            raise ValueError("model mix must name at least one model")
        total = float(sum(w for _, w in items))
        if total <= 0 or any(w < 0 for _, w in items):
            raise ValueError("model mix weights must be non-negative, sum > 0")
        self.weights: List[Tuple[str, float]] = [
            (name, w / total) for name, w in items
        ]
        self._cum: List[Tuple[float, str]] = []
        acc = 0.0
        for name, w in self.weights:
            acc += w
            self._cum.append((acc, name))

    @property
    def names(self) -> List[str]:
        return [name for name, _ in self.weights]

    def sample(self, rng: random.Random) -> str:
        u = rng.random()
        for edge, name in self._cum:
            if u <= edge:
                return name
        return self._cum[-1][1]  # float round-off guard


def _finalize(times_models: Iterable[Tuple[float, str]]) -> List[Request]:
    """Sort by time and assign sequential ids (stable for ties)."""
    ordered = sorted(times_models, key=lambda tm: tm[0])
    return [Request(rid=i, t_ms=t, model=m) for i, (t, m) in enumerate(ordered)]


class ArrivalProcess:
    """Base: a seedable generator of a finite open-loop request list."""

    def generate(self, duration_ms: float) -> List[Request]:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Constant-rate Poisson arrivals at ``qps`` requests/second."""

    def __init__(self, qps: float, mix: ModelMix, seed: int = 0):
        if qps <= 0:
            raise ValueError("qps must be positive")
        self.qps = qps
        self.mix = mix
        self.seed = seed

    def generate(self, duration_ms: float) -> List[Request]:
        rng = random.Random(self.seed)
        rate_ms = self.qps / 1e3
        out: List[Tuple[float, str]] = []
        t = rng.expovariate(rate_ms)
        while t < duration_ms:
            out.append((t, self.mix.sample(rng)))
            t += rng.expovariate(rate_ms)
        return _finalize(out)


class BurstyArrivals(ArrivalProcess):
    """2-state MMPP: quiet periods at a low rate, bursts at a high one.

    ``qps`` is the *long-run average*; ``burst_factor`` is the ratio of
    burst rate to quiet rate, and ``burst_fraction`` the expected share
    of time spent bursting.  Dwell times in each state are exponential
    with means ``dwell_ms`` (quiet) and ``dwell_ms * burst_fraction /
    (1 - burst_fraction)`` (burst), so the time shares come out right.
    """

    def __init__(
        self,
        qps: float,
        mix: ModelMix,
        seed: int = 0,
        burst_factor: float = 4.0,
        burst_fraction: float = 0.2,
        dwell_ms: float = 200.0,
    ):
        if qps <= 0 or burst_factor < 1 or not (0 < burst_fraction < 1):
            raise ValueError("need qps > 0, burst_factor >= 1, "
                             "0 < burst_fraction < 1")
        if dwell_ms <= 0:
            # A zero dwell would divide by zero inside expovariate;
            # reject it with a named error instead.
            raise ValueError("dwell_ms must be positive")
        self.qps = qps
        self.mix = mix
        self.seed = seed
        self.burst_factor = burst_factor
        self.burst_fraction = burst_fraction
        self.dwell_ms = dwell_ms
        f = burst_fraction
        # average = (1-f)*low + f*low*factor  →  solve for low.
        self.quiet_qps = qps / ((1 - f) + f * burst_factor)
        self.burst_qps = self.quiet_qps * burst_factor

    def generate(self, duration_ms: float) -> List[Request]:
        rng = random.Random(self.seed)
        f = self.burst_fraction
        dwell = {False: self.dwell_ms, True: self.dwell_ms * f / (1 - f)}
        rate_ms = {False: self.quiet_qps / 1e3, True: self.burst_qps / 1e3}
        out: List[Tuple[float, str]] = []
        t, bursting = 0.0, False
        while t < duration_ms:
            phase_end = min(duration_ms, t + rng.expovariate(1.0 / dwell[bursting]))
            nxt = t + rng.expovariate(rate_ms[bursting])
            while nxt < phase_end:
                out.append((nxt, self.mix.sample(rng)))
                nxt += rng.expovariate(rate_ms[bursting])
            t, bursting = phase_end, not bursting
        return _finalize(out)


class DiurnalArrivals(ArrivalProcess):
    """Raised-cosine rate ramp: valley → peak → valley over ``period_ms``.

    The instantaneous rate is ``peak_qps * (floor + (1-floor) *
    (1 - cos(2πt/period)) / 2)``; arrivals are drawn by thinning a
    ``peak_qps`` Poisson stream, which keeps the generator exact and
    seed-deterministic.
    """

    def __init__(
        self,
        peak_qps: float,
        mix: ModelMix,
        seed: int = 0,
        period_ms: float = 1000.0,
        floor: float = 0.1,
    ):
        if peak_qps <= 0 or period_ms <= 0 or not (0 <= floor <= 1):
            raise ValueError("need peak_qps > 0, period_ms > 0, 0 <= floor <= 1")
        self.peak_qps = peak_qps
        self.mix = mix
        self.seed = seed
        self.period_ms = period_ms
        self.floor = floor

    def rate_qps(self, t_ms: float) -> float:
        shape = (1 - math.cos(2 * math.pi * t_ms / self.period_ms)) / 2
        return self.peak_qps * (self.floor + (1 - self.floor) * shape)

    def generate(self, duration_ms: float) -> List[Request]:
        rng = random.Random(self.seed)
        peak_ms = self.peak_qps / 1e3
        out: List[Tuple[float, str]] = []
        t = rng.expovariate(peak_ms)
        while t < duration_ms:
            if rng.random() < self.rate_qps(t) / self.peak_qps:
                out.append((t, self.mix.sample(rng)))
            t += rng.expovariate(peak_ms)
        return _finalize(out)


class TraceReplay(ArrivalProcess):
    """Replay an explicit ``[(t_ms, model), ...]`` arrival trace."""

    def __init__(self, events: Sequence[Tuple[float, str]]):
        for t, _ in events:
            if t < 0:
                raise ValueError("trace timestamps must be non-negative")
        self.events = list(events)

    def generate(self, duration_ms: float = math.inf) -> List[Request]:
        return _finalize((t, m) for t, m in self.events if t < duration_ms)
