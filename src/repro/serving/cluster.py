"""Discrete-event simulation of a multi-instance serving cluster.

The cluster is N synthesized-identical ProTEA instances behind a
dispatcher.  Time advances through a binary heap of events:

* ``arrival``  — a request enters; the scheduler picks an instance and
  the request joins that instance's FIFO.
* ``free``     — an instance finished a batch; it immediately tries to
  form the next one.
* ``check``    — a dynamic-batching deadline fired; the instance
  re-evaluates whether to dispatch a partial batch.

Dispatching a batch charges the reprogramming penalty (via each
instance's :class:`~repro.core.runtime.RuntimeSession`) whenever the
batch's model differs from the workload resident on that instance, then
the batched service time from :class:`.batching.ServiceTimeModel`.
Heap ties break on (event priority, insertion sequence), so a run is a
pure function of (workload, topology, policies) — the acceptance
property behind trace-identical replays.

Since the unified kernel landed, :meth:`ClusterSimulator.run` executes
on :class:`repro.sim.serve.ServeEngine` — bit-identical to the legacy
closure loop on seeded scenarios (pinned by the goldens under
``tests/goldens/``) and measurably faster, plus the scenario layer the
old loop could not express: heterogeneous fleets
(:class:`~repro.sim.fleet.FleetSpec`) and failure/recovery injection
(:class:`~repro.sim.failures.FailurePlan`).  The legacy loop survives
as :meth:`ClusterSimulator.run_legacy`, the reference implementation
the goldens and the kernel-speedup benchmark compare against.

``simulate(..., observer=...)`` attaches any read-only consumer of the
engine's event stream — a :class:`repro.obs.TraceRecorder`,
:class:`repro.obs.MetricsSampler`, or streaming SLO
:class:`repro.obs.Watchdog` (burn-rate alerting over per-request
latency, derived online from the same events); compose several with
:func:`repro.obs.compose`.  Attached or not, the run's trace and
records are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple, Union

from ..core.accelerator import ProTEA
from ..nn.model_zoo import MODEL_ZOO, TransformerConfig
from ..sim.failures import FailurePlan
from ..sim.fleet import FleetSpec
from .batching import BatchingPolicy, ServiceTimeModel, no_batching
from .scheduler import Scheduler, get_scheduler
from .workload import Request

__all__ = ["RequestRecord", "InstanceStats", "SimulationResult",
           "ClusterSimulator", "simulate"]

@dataclass(frozen=True)
class RequestRecord:
    """Per-request outcome of one simulation."""

    rid: int
    model: str
    instance: int
    batch_size: int
    t_arrival_ms: float
    t_dispatch_ms: float
    t_complete_ms: float
    #: Dispatches lost to instance failures before this one completed.
    retries: int = 0
    #: Arrived while at least one instance was down (failure runs).
    degraded: bool = False

    @property
    def wait_ms(self) -> float:
        return self.t_dispatch_ms - self.t_arrival_ms

    @property
    def service_ms(self) -> float:
        return self.t_complete_ms - self.t_dispatch_ms

    @property
    def latency_ms(self) -> float:
        return self.t_complete_ms - self.t_arrival_ms


@dataclass(frozen=True)
class InstanceStats:
    """End-of-run accounting for one instance."""

    index: int
    requests: int
    batches: int
    busy_ms: float
    reprogram_count: int
    switch_count: int
    reprogram_time_ms: float
    #: Faults injected into this instance (failure runs only).
    failures: int = 0
    #: Total time this instance spent down (failure runs only).
    downtime_ms: float = 0.0


@dataclass
class SimulationResult:
    """Everything a run produced: records, trace, per-instance stats."""

    records: List[RequestRecord]
    instances: List[InstanceStats]
    n_instances: int
    makespan_ms: float
    #: ``(t_ms, total queued requests)`` after every queue mutation.
    queue_samples: List[Tuple[float, int]]
    #: Flat event log: ("arrive"|"dispatch"|"free", t_ms, ...) tuples
    #: (failure runs add "fail"/"recover").
    trace: List[tuple]
    scheduler: str = ""
    batching: str = ""
    #: Fleet-time fraction up (None unless failures were injected).
    availability: Optional[float] = None
    total_failures: int = 0
    total_retries: int = 0

    @property
    def total_requests(self) -> int:
        return len(self.records)

    @property
    def total_reprogram_time_ms(self) -> float:
        return sum(i.reprogram_time_ms for i in self.instances)

    @property
    def total_switches(self) -> int:
        return sum(i.switch_count for i in self.instances)


class ClusterSimulator:
    """Event-driven simulator over N instances of one synthesized design."""

    def __init__(
        self,
        accel: ProTEA,
        n_instances: Optional[int] = None,
        scheduler: Union[str, Scheduler] = "least-loaded",
        batching: Optional[BatchingPolicy] = None,
        models: Optional[Mapping[str, TransformerConfig]] = None,
        reprogram_latency_ms: float = 0.0,
        check_jitter_ms: float = 0.0,
        fleet: Optional[FleetSpec] = None,
        failures: Optional[FailurePlan] = None,
    ):
        if fleet is None:
            if n_instances is None:
                raise ValueError("need n_instances or a FleetSpec")
            if n_instances < 1:
                raise ValueError("need at least one instance")
            fleet = FleetSpec.uniform(n_instances)
        elif n_instances is not None and n_instances != fleet.n:
            raise ValueError(
                f"n_instances={n_instances} contradicts the {fleet.n}-"
                "instance FleetSpec (pass one or the other)")
        if reprogram_latency_ms < 0:
            raise ValueError("reprogram_latency_ms must be >= 0")
        if check_jitter_ms < 0:
            raise ValueError("check_jitter_ms must be >= 0")
        self.accel = accel
        self.fleet = fleet
        self.failures = failures
        self.n_instances = fleet.n
        # Keep the spec, not an instance: stateful schedulers (round-
        # robin's cursor) must start fresh every run() or replays of
        # the same workload would diverge.
        self._scheduler_spec = scheduler
        if isinstance(scheduler, str):
            get_scheduler(scheduler)  # validate the name eagerly
        self.batching = batching or no_batching()
        self.service = ServiceTimeModel(accel, models or MODEL_ZOO)
        self.reprogram_latency_ms = reprogram_latency_ms
        #: Fires batching-deadline checks this much *early*.  A check is
        #: a pure wakeup — ``try_dispatch`` re-derives everything from
        #: queue state, and an early check that finds the head under-age
        #: re-arms at the true deadline — so any jitter value must
        #: produce an identical dispatch trace.  Exposed precisely so
        #: tests can prove that (the stale-check no-op property).
        self.check_jitter_ms = check_jitter_ms

    def _scheduler(self) -> Scheduler:
        """A fresh scheduler per run (stateful cursors must reset)."""
        spec = self._scheduler_spec
        return get_scheduler(spec) if isinstance(spec, str) else spec

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request], observer=None,
            profiler=None, detail: str = "full", shards: int = 1,
            shard_jobs: Optional[int] = None):
        """Simulate the full stream on the unified kernel.

        Bit-identical to the legacy closure loop on homogeneous,
        no-failure scenarios (the trace-identity goldens hold the two
        engines to byte-equal rendered reports) and the only path that
        understands heterogeneous fleets and failure injection.

        ``observer``/``profiler`` are forwarded to the engine's
        observability hooks (see :mod:`repro.obs`); observers are
        read-only, so the result is byte-identical with or without
        them.

        ``detail="summary"`` returns a
        :class:`~repro.sim.summary.ServeSummary` instead of a
        :class:`SimulationResult` — no per-request records, traces, or
        depth samples, just the accumulators
        :func:`~repro.serving.slo.summarize` needs (percentiles exact,
        means to the ulp).  The web-scale path.

        ``shards > 1`` partitions the fleet into independent cells (see
        :mod:`repro.sim.shard`) and merges their summaries; it implies
        ``detail="summary"`` and, with ``shard_jobs >= 2``, runs cells
        in worker processes.  ``shards=1`` is always the ordinary
        single-loop run — byte-identical to not passing ``shards`` at
        all.
        """
        if shards != 1:
            from ..sim.shard import run_sharded

            if detail != "summary":
                raise ValueError(
                    "sharded runs are summary-detail only: per-request "
                    "records across cells would defeat the fast path — "
                    "pass detail='summary' (or shards=1)")
            if profiler is not None:
                raise ValueError(
                    "KernelProfiler cannot span shard cells — profile "
                    "a shards=1 run")
            return run_sharded(self, requests, mode="serve",
                               shards=shards, jobs=shard_jobs,
                               observer=observer)
        from ..sim.serve import ServeEngine

        engine = ServeEngine(
            self.accel,
            fleet=self.fleet,
            scheduler=self._scheduler(),
            batching=self.batching,
            models=self.service.models,
            reprogram_latency_ms=self.reprogram_latency_ms,
            check_jitter_ms=self.check_jitter_ms,
            failures=self.failures,
        )
        if observer is not None:
            engine.attach_observer(observer)
        if profiler is not None:
            engine.attach_profiler(profiler)
        return engine.run(requests, detail=detail)

    # ------------------------------------------------------------------
    def _shard_cell(self, fleet: FleetSpec, instance_base: int,
                    requests: Sequence[Request],
                    failure_horizon_ms: float, rng_seed,
                    observer=None):
        """Run one shard cell (summary detail, global instance ids).

        Called by :func:`repro.sim.shard.run_sharded` — in-process on
        the serial path, inside a pool worker on the parallel one.
        """
        from ..sim.serve import ServeEngine

        engine = ServeEngine(
            self.accel,
            fleet=fleet,
            scheduler=self._scheduler(),
            batching=self.batching,
            models=self.service.models,
            reprogram_latency_ms=self.reprogram_latency_ms,
            check_jitter_ms=self.check_jitter_ms,
            failures=self.failures,
            instance_base=instance_base,
            failure_horizon_ms=failure_horizon_ms,
            rng_seed=rng_seed,
        )
        if observer is not None:
            engine.attach_observer(observer)
        return engine.run(requests, detail="summary")

    # ------------------------------------------------------------------
    def run_legacy(self, requests: Sequence[Request]) -> SimulationResult:
        """The pre-kernel closure loop, kept as the reference engine.

        The goldens and the kernel benchmarks run both engines over the
        same seeded scenarios; this one cannot express fleets or
        failures and refuses to silently ignore them.  The loop itself
        lives in :mod:`repro.serving.legacy` (test support, shared with
        the generation oracle) — only this delegate ships in the hot
        module.
        """
        from .legacy import run_legacy_cluster

        return run_legacy_cluster(self, requests)


def simulate(
    accel: ProTEA,
    requests: Sequence[Request],
    n_instances: Optional[int] = None,
    scheduler: Union[str, Scheduler] = "least-loaded",
    batching: Optional[BatchingPolicy] = None,
    models: Optional[Mapping[str, TransformerConfig]] = None,
    reprogram_latency_ms: float = 0.0,
    fleet: Optional[FleetSpec] = None,
    failures: Optional[FailurePlan] = None,
    observer=None,
    profiler=None,
    detail: str = "full",
    shards: int = 1,
    shard_jobs: Optional[int] = None,
):
    """One-call convenience wrapper around :class:`ClusterSimulator`."""
    sim = ClusterSimulator(
        accel, n_instances, scheduler=scheduler, batching=batching,
        models=models, reprogram_latency_ms=reprogram_latency_ms,
        fleet=fleet, failures=failures)
    return sim.run(requests, observer=observer, profiler=profiler,
                   detail=detail, shards=shards, shard_jobs=shard_jobs)
