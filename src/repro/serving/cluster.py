"""Discrete-event simulation of a multi-instance serving cluster.

The cluster is N synthesized-identical ProTEA instances behind a
dispatcher.  Time advances through a binary heap of events:

* ``arrival``  — a request enters; the scheduler picks an instance and
  the request joins that instance's FIFO.
* ``free``     — an instance finished a batch; it immediately tries to
  form the next one.
* ``check``    — a dynamic-batching deadline fired; the instance
  re-evaluates whether to dispatch a partial batch.

Dispatching a batch charges the reprogramming penalty (via each
instance's :class:`~repro.core.runtime.RuntimeSession`) whenever the
batch's model differs from the workload resident on that instance, then
the batched service time from :class:`.batching.ServiceTimeModel`.
Heap ties break on (event priority, insertion sequence), so a run is a
pure function of (workload, topology, policies) — the acceptance
property behind trace-identical replays.

Since the unified kernel landed, :meth:`ClusterSimulator.run` executes
on :class:`repro.sim.serve.ServeEngine` — bit-identical to the legacy
closure loop on seeded scenarios (pinned by the goldens under
``tests/goldens/``) and measurably faster, plus the scenario layer the
old loop could not express: heterogeneous fleets
(:class:`~repro.sim.fleet.FleetSpec`) and failure/recovery injection
(:class:`~repro.sim.failures.FailurePlan`).  The legacy loop survives
as :meth:`ClusterSimulator.run_legacy`, the reference implementation
the goldens and the kernel-speedup benchmark compare against.

``simulate(..., observer=...)`` attaches any read-only consumer of the
engine's event stream — a :class:`repro.obs.TraceRecorder`,
:class:`repro.obs.MetricsSampler`, or streaming SLO
:class:`repro.obs.Watchdog` (burn-rate alerting over per-request
latency, derived online from the same events); compose several with
:func:`repro.obs.compose`.  Attached or not, the run's trace and
records are byte-identical.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import islice
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.accelerator import ProTEA
from ..core.runtime import RuntimeSession
from ..nn.model_zoo import MODEL_ZOO, TransformerConfig
from ..sim.failures import FailurePlan
from ..sim.fleet import FleetSpec
from .batching import BatchingPolicy, ServiceTimeModel, no_batching
from .scheduler import Scheduler, get_scheduler
from .workload import Request

__all__ = ["RequestRecord", "InstanceStats", "SimulationResult",
           "ClusterSimulator", "simulate"]

_EPS = 1e-9
# Event priorities at equal timestamps: free an instance before new
# arrivals join, deadline checks last.
_P_FREE, _P_ARRIVAL, _P_CHECK = 0, 1, 2


@dataclass(frozen=True)
class RequestRecord:
    """Per-request outcome of one simulation."""

    rid: int
    model: str
    instance: int
    batch_size: int
    t_arrival_ms: float
    t_dispatch_ms: float
    t_complete_ms: float
    #: Dispatches lost to instance failures before this one completed.
    retries: int = 0
    #: Arrived while at least one instance was down (failure runs).
    degraded: bool = False

    @property
    def wait_ms(self) -> float:
        return self.t_dispatch_ms - self.t_arrival_ms

    @property
    def service_ms(self) -> float:
        return self.t_complete_ms - self.t_dispatch_ms

    @property
    def latency_ms(self) -> float:
        return self.t_complete_ms - self.t_arrival_ms


@dataclass(frozen=True)
class InstanceStats:
    """End-of-run accounting for one instance."""

    index: int
    requests: int
    batches: int
    busy_ms: float
    reprogram_count: int
    switch_count: int
    reprogram_time_ms: float
    #: Faults injected into this instance (failure runs only).
    failures: int = 0
    #: Total time this instance spent down (failure runs only).
    downtime_ms: float = 0.0


class _Instance:
    """Mutable per-instance state (scheduler-visible via InstanceView)."""

    def __init__(self, idx: int, session: RuntimeSession):
        self.idx = idx
        self.session = session
        self.queue: Deque[Request] = deque()
        self.busy_until = 0.0
        self.last_model: Optional[str] = None
        self.requests = 0
        self.batches = 0
        self.busy_ms = 0.0
        self.pending_check = False

    def backlog(self, now_ms: float) -> int:
        """Queued requests plus the one in service, if any."""
        return len(self.queue) + (1 if self.busy_until > now_ms + _EPS else 0)

    def stats(self) -> InstanceStats:
        return InstanceStats(
            index=self.idx,
            requests=self.requests,
            batches=self.batches,
            busy_ms=self.busy_ms,
            reprogram_count=self.session.reprogram_count,
            switch_count=self.session.switch_count,
            reprogram_time_ms=self.session.reprogram_time_ms,
        )


@dataclass
class SimulationResult:
    """Everything a run produced: records, trace, per-instance stats."""

    records: List[RequestRecord]
    instances: List[InstanceStats]
    n_instances: int
    makespan_ms: float
    #: ``(t_ms, total queued requests)`` after every queue mutation.
    queue_samples: List[Tuple[float, int]]
    #: Flat event log: ("arrive"|"dispatch"|"free", t_ms, ...) tuples
    #: (failure runs add "fail"/"recover").
    trace: List[tuple]
    scheduler: str = ""
    batching: str = ""
    #: Fleet-time fraction up (None unless failures were injected).
    availability: Optional[float] = None
    total_failures: int = 0
    total_retries: int = 0

    @property
    def total_requests(self) -> int:
        return len(self.records)

    @property
    def total_reprogram_time_ms(self) -> float:
        return sum(i.reprogram_time_ms for i in self.instances)

    @property
    def total_switches(self) -> int:
        return sum(i.switch_count for i in self.instances)


class ClusterSimulator:
    """Event-driven simulator over N instances of one synthesized design."""

    def __init__(
        self,
        accel: ProTEA,
        n_instances: Optional[int] = None,
        scheduler: Union[str, Scheduler] = "least-loaded",
        batching: Optional[BatchingPolicy] = None,
        models: Optional[Mapping[str, TransformerConfig]] = None,
        reprogram_latency_ms: float = 0.0,
        check_jitter_ms: float = 0.0,
        fleet: Optional[FleetSpec] = None,
        failures: Optional[FailurePlan] = None,
    ):
        if fleet is None:
            if n_instances is None:
                raise ValueError("need n_instances or a FleetSpec")
            if n_instances < 1:
                raise ValueError("need at least one instance")
            fleet = FleetSpec.uniform(n_instances)
        elif n_instances is not None and n_instances != fleet.n:
            raise ValueError(
                f"n_instances={n_instances} contradicts the {fleet.n}-"
                "instance FleetSpec (pass one or the other)")
        if reprogram_latency_ms < 0:
            raise ValueError("reprogram_latency_ms must be >= 0")
        if check_jitter_ms < 0:
            raise ValueError("check_jitter_ms must be >= 0")
        self.accel = accel
        self.fleet = fleet
        self.failures = failures
        self.n_instances = fleet.n
        # Keep the spec, not an instance: stateful schedulers (round-
        # robin's cursor) must start fresh every run() or replays of
        # the same workload would diverge.
        self._scheduler_spec = scheduler
        if isinstance(scheduler, str):
            get_scheduler(scheduler)  # validate the name eagerly
        self.batching = batching or no_batching()
        self.service = ServiceTimeModel(accel, models or MODEL_ZOO)
        self.reprogram_latency_ms = reprogram_latency_ms
        #: Fires batching-deadline checks this much *early*.  A check is
        #: a pure wakeup — ``try_dispatch`` re-derives everything from
        #: queue state, and an early check that finds the head under-age
        #: re-arms at the true deadline — so any jitter value must
        #: produce an identical dispatch trace.  Exposed precisely so
        #: tests can prove that (the stale-check no-op property).
        self.check_jitter_ms = check_jitter_ms

    def _scheduler(self) -> Scheduler:
        """A fresh scheduler per run (stateful cursors must reset)."""
        spec = self._scheduler_spec
        return get_scheduler(spec) if isinstance(spec, str) else spec

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request], observer=None,
            profiler=None) -> SimulationResult:
        """Simulate the full stream on the unified kernel.

        Bit-identical to :meth:`run_legacy` on homogeneous, no-failure
        scenarios (the trace-identity goldens hold the two loops to
        byte-equal rendered reports) and the only path that understands
        heterogeneous fleets and failure injection.

        ``observer``/``profiler`` are forwarded to the engine's
        observability hooks (see :mod:`repro.obs`); observers are
        read-only, so the result is byte-identical with or without
        them.
        """
        from ..sim.serve import ServeEngine

        engine = ServeEngine(
            self.accel,
            fleet=self.fleet,
            scheduler=self._scheduler(),
            batching=self.batching,
            models=self.service.models,
            reprogram_latency_ms=self.reprogram_latency_ms,
            check_jitter_ms=self.check_jitter_ms,
            failures=self.failures,
        )
        if observer is not None:
            engine.attach_observer(observer)
        if profiler is not None:
            engine.attach_profiler(profiler)
        return engine.run(requests)

    # ------------------------------------------------------------------
    def run_legacy(self, requests: Sequence[Request]) -> SimulationResult:
        """The pre-kernel closure loop, kept as the reference engine.

        The goldens and the kernel-speedup benchmark run both engines
        over the same seeded scenarios; this one cannot express fleets
        or failures and refuses to silently ignore them.
        """
        if not self.fleet.homogeneous:
            raise ValueError(
                "run_legacy cannot simulate a heterogeneous fleet — "
                "use run() (the kernel engine)")
        if self.failures is not None:
            raise ValueError(
                "run_legacy cannot inject failures — use run() (the "
                "kernel engine)")
        scheduler = self._scheduler()
        instances = [
            _Instance(i, RuntimeSession(
                self.accel, reprogram_latency_ms=self.reprogram_latency_ms))
            for i in range(self.n_instances)
        ]
        records: List[RequestRecord] = []
        trace: List[tuple] = []
        samples: List[Tuple[float, int]] = []
        heap: List[tuple] = [
            (req.t_ms, _P_ARRIVAL, i, ("arrival", req))
            for i, req in enumerate(requests)
        ]
        heapq.heapify(heap)
        seq = len(heap)

        def push(t: float, prio: int, payload: tuple) -> None:
            nonlocal seq
            heapq.heappush(heap, (t, prio, seq, payload))
            seq += 1

        def sample(now: float) -> None:
            samples.append((now, sum(len(i.queue) for i in instances)))

        def try_dispatch(inst: _Instance, now: float) -> None:
            if inst.busy_until > now + _EPS or not inst.queue:
                return
            model = inst.queue[0].model
            # Scan at most max_batch entries: decide() clamps there, so
            # a deep backlog must not make dispatch O(queue length).
            prefix = 0
            for req in islice(inst.queue, self.batching.max_batch):
                if req.model != model:
                    break
                prefix += 1
            size = self.batching.decide(prefix, now - inst.queue[0].t_ms)
            if size is None:
                if not inst.pending_check:
                    assert self.batching.timeout_ms is not None
                    deadline = inst.queue[0].t_ms + self.batching.timeout_ms
                    # Optionally wake early (jitter study); once inside
                    # the jitter window, arm the true deadline so the
                    # early wakeup cannot respawn itself forever.
                    target = deadline - self.check_jitter_ms
                    if target <= now + _EPS:
                        target = deadline
                    push(max(target, now), _P_CHECK, ("check", inst))
                    inst.pending_check = True
                return
            batch = [inst.queue.popleft() for _ in range(size)]
            cfg = self.service.config(model)
            switch_ms = inst.session.switch_cost_ms(cfg)
            inst.session.deploy(cfg)
            total_ms = switch_ms + self.service.batch_service_ms(model, size)
            complete = now + total_ms
            inst.busy_until = complete
            inst.busy_ms += total_ms
            inst.batches += 1
            inst.requests += size
            records.extend(
                RequestRecord(
                    rid=req.rid, model=model, instance=inst.idx,
                    batch_size=size, t_arrival_ms=req.t_ms,
                    t_dispatch_ms=now, t_complete_ms=complete,
                ) for req in batch
            )
            trace.append(("dispatch", now, inst.idx, model, size, switch_ms))
            push(complete, _P_FREE, ("free", inst))
            sample(now)

        while heap:
            now, _prio, _seq, payload = heapq.heappop(heap)
            kind = payload[0]
            if kind == "arrival":
                req: Request = payload[1]
                inst = scheduler.pick(instances, req, now)
                inst.queue.append(req)
                inst.last_model = req.model
                trace.append(("arrive", now, req.rid, req.model, inst.idx))
                sample(now)
                try_dispatch(inst, now)
            elif kind == "free":
                inst = payload[1]
                trace.append(("free", now, inst.idx))
                try_dispatch(inst, now)
            else:  # check
                # Deadline checks may be stale: the batch that armed
                # them can have dispatched long ago (dispatch does not
                # unschedule the event).  The guard is try_dispatch
                # itself — it re-derives busy state, queue head, and
                # head age from scratch, so a stale check either no-ops
                # (busy/empty), re-arms for the *current* head, or
                # dispatches exactly what the policy would dispatch
                # anyway.  No reprogram charge happens outside a real
                # dispatch, so stale events cannot double-charge.
                inst = payload[1]
                inst.pending_check = False
                try_dispatch(inst, now)

        makespan = max((r.t_complete_ms for r in records), default=0.0)
        records.sort(key=lambda r: r.rid)
        return SimulationResult(
            records=records,
            instances=[i.stats() for i in instances],
            n_instances=self.n_instances,
            makespan_ms=makespan,
            queue_samples=samples,
            trace=trace,
            scheduler=scheduler.name,
            batching=self.batching.name,
        )


def simulate(
    accel: ProTEA,
    requests: Sequence[Request],
    n_instances: Optional[int] = None,
    scheduler: Union[str, Scheduler] = "least-loaded",
    batching: Optional[BatchingPolicy] = None,
    models: Optional[Mapping[str, TransformerConfig]] = None,
    reprogram_latency_ms: float = 0.0,
    fleet: Optional[FleetSpec] = None,
    failures: Optional[FailurePlan] = None,
    observer=None,
    profiler=None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`ClusterSimulator`."""
    sim = ClusterSimulator(
        accel, n_instances, scheduler=scheduler, batching=batching,
        models=models, reprogram_latency_ms=reprogram_latency_ms,
        fleet=fleet, failures=failures)
    return sim.run(requests, observer=observer, profiler=profiler)
