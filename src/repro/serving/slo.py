"""Serving metrics and SLO-driven capacity planning.

Percentiles use the nearest-rank definition (exact, no interpolation),
so two runs with identical traces report bit-identical metrics.

:func:`plan_capacity` answers the deployment question the paper's
single-instance numbers cannot: *how many reprogrammable instances does
a target traffic level need to stay inside a p99 latency SLO?*  It is
analytic-first: the closed-form model (:mod:`repro.analytic`) proposes
a fleet size, and the event simulation confirms at — and binary-
searches the bracket around — the proposal instead of probing up from
one instance.  The confirming probes replay the same seeded workload
at ``detail="summary"`` (exact for every statistic the planner reads),
so the returned minimum is still confirmed by, and reproducible from,
a direct simulation run; ``mode="probe"`` keeps the seed probe-from-1
search, and ``confirm=False`` skips simulation entirely and returns
the analytic proposal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analytic.capacity import FleetProposal
from ..core.accelerator import ProTEA
from ..nn.model_zoo import TransformerConfig
from ..sim.summary import GenerationSummary, ServeSummary
from .batching import BatchingPolicy
from .cluster import InstanceStats, SimulationResult, simulate
from .generation import GenerationSimulationResult
from .workload import Request

__all__ = ["percentile", "ModelMetrics", "ServingReport", "summarize",
           "GenerationServingReport", "summarize_generation",
           "CapacityPlan", "plan_capacity"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 100]).

    Matches ``numpy.percentile(..., method="inverted_cdf")`` at every
    rank, including the edges (q=0 → smallest sample, q=100 → largest,
    single-sample inputs) — regression-tested against numpy.  An empty
    input has no percentile of any rank and raises instead of leaking
    an index error (or a silent NaN) to the caller.
    """
    if not values:
        raise ValueError("percentile of an empty sequence is undefined")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


def _pct(values: Sequence[float], q: float) -> float:
    """Percentile for report plumbing: empty runs report NaN."""
    return percentile(values, q) if values else math.nan


@dataclass(frozen=True)
class ModelMetrics:
    """Latency/throughput profile of one model within a run."""

    model: str
    count: int
    throughput_rps: float
    mean_latency_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_wait_ms: float
    mean_batch_size: float
    slo_attainment: Optional[float] = None


@dataclass(frozen=True)
class ServingReport:
    """Aggregate + per-model + per-instance view of one simulation."""

    total_requests: int
    horizon_ms: float
    throughput_rps: float
    utilization: float
    mean_latency_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_wait_ms: float
    mean_queue_depth: float
    max_queue_depth: int
    total_switches: int
    total_reprogram_time_ms: float
    scheduler: str
    batching: str
    n_instances: int
    slo_ms: Optional[float] = None
    slo_attainment: Optional[float] = None
    per_model: Dict[str, ModelMetrics] = field(default_factory=dict)
    instances: List[InstanceStats] = field(default_factory=list)
    # Failure-injection metrics (None/0 unless the run injected faults;
    # reports omit them then, keeping non-failure renders byte-stable).
    #: Fleet-time fraction up across the run.
    availability: Optional[float] = None
    total_failures: int = 0
    #: Dispatches lost to faults and re-served elsewhere.
    total_retries: int = 0
    #: Requests that arrived while at least one instance was down.
    degraded_count: Optional[int] = None
    #: Tail latency of the degraded-arrival subset (falls back to the
    #: overall p99 when no request saw a degraded fleet).
    p99_degraded_ms: Optional[float] = None
    #: :meth:`repro.obs.Watchdog.summary` of the attached watchdog
    #: (None unless the run was watched; reports omit it then).
    watch: Optional[dict] = None

    def as_dict(self) -> dict:
        """JSON-friendly flattening (CLI ``--json`` output).

        Empty-run statistics are NaN internally; they become ``null``
        here because ``json.dumps`` would emit literal ``NaN``, which
        strict parsers reject."""
        def num(v: float) -> Optional[float]:
            return None if isinstance(v, float) and math.isnan(v) else v

        out = {
            "total_requests": self.total_requests,
            "horizon_ms": self.horizon_ms,
            "throughput_rps": num(self.throughput_rps),
            "utilization": self.utilization,
            "latency_ms": {
                "mean": num(self.mean_latency_ms),
                "p50": num(self.p50_ms),
                "p95": num(self.p95_ms),
                "p99": num(self.p99_ms),
            },
            "mean_wait_ms": num(self.mean_wait_ms),
            "queue_depth": {"mean": self.mean_queue_depth,
                            "max": self.max_queue_depth},
            "reprogramming": {"switches": self.total_switches,
                              "time_ms": self.total_reprogram_time_ms},
            "scheduler": self.scheduler,
            "batching": self.batching,
            "instances": self.n_instances,
            "per_model": {
                name: {
                    "count": m.count,
                    "throughput_rps": m.throughput_rps,
                    "mean_latency_ms": m.mean_latency_ms,
                    "p50_ms": m.p50_ms,
                    "p95_ms": m.p95_ms,
                    "p99_ms": m.p99_ms,
                    "mean_wait_ms": m.mean_wait_ms,
                    "mean_batch_size": m.mean_batch_size,
                    **({"slo_attainment": m.slo_attainment}
                       if m.slo_attainment is not None else {}),
                }
                for name, m in sorted(self.per_model.items())
            },
            "per_instance": [
                {"index": i.index, "requests": i.requests,
                 "batches": i.batches, "busy_ms": i.busy_ms,
                 "switches": i.switch_count,
                 # switch_ms: time this instance spent reprogramming —
                 # the text report shows it, so the JSON must too.
                 "switch_ms": i.reprogram_time_ms}
                for i in self.instances
            ],
        }
        if self.slo_ms is not None:
            out["slo"] = {"p_latency_ms": self.slo_ms,
                          "attainment": self.slo_attainment}
        if self.availability is not None:
            out["failures"] = {
                "availability": self.availability,
                "count": self.total_failures,
                "retries": self.total_retries,
                "degraded_requests": self.degraded_count,
                "p99_degraded_ms": num(self.p99_degraded_ms),
            }
        if self.watch is not None:
            out["watch"] = self.watch
        return out


def _time_weighted_mean(samples: Sequence[tuple], horizon_ms: float) -> float:
    """Mean of a step function sampled at its change points."""
    if not samples or horizon_ms <= 0:
        return 0.0
    area, depth, prev_t = 0.0, 0, 0.0
    for t, d in samples:
        area += depth * (t - prev_t)
        depth, prev_t = d, t
    area += depth * max(0.0, horizon_ms - prev_t)
    return area / horizon_ms


def summarize(result: Union[SimulationResult, ServeSummary],
              slo_ms: Optional[float] = None,
              watch: Optional[dict] = None) -> ServingReport:
    """Reduce a simulation to its serving metrics.

    Accepts either a full :class:`SimulationResult` or the
    pre-accumulated :class:`~repro.sim.summary.ServeSummary` of a
    ``detail="summary"`` run; both produce the same report (percentile
    fields bit-identical, means equal to the last ulp — the summary
    path accumulates in completion order, not record order).

    ``watch`` is the :meth:`repro.obs.Watchdog.summary` dict of a
    watchdog that observed this run; it rides along into the report
    (and its ``--json``/text renders) untouched.
    """
    if isinstance(result, ServeSummary):
        return _summarize_serve_summary(result, slo_ms, watch)
    recs = result.records
    horizon = result.makespan_ms
    horizon_s = horizon / 1e3 if horizon > 0 else math.nan
    latencies = [r.latency_ms for r in recs]

    def attainment(lats: Sequence[float]) -> Optional[float]:
        if slo_ms is None or not lats:
            return None
        return sum(1 for v in lats if v <= slo_ms) / len(lats)

    per_model: Dict[str, ModelMetrics] = {}
    for model in sorted({r.model for r in recs}):
        mrecs = [r for r in recs if r.model == model]
        lats = [r.latency_ms for r in mrecs]
        per_model[model] = ModelMetrics(
            model=model,
            count=len(mrecs),
            throughput_rps=len(mrecs) / horizon_s,
            mean_latency_ms=sum(lats) / len(lats),
            p50_ms=percentile(lats, 50),
            p95_ms=percentile(lats, 95),
            p99_ms=percentile(lats, 99),
            mean_wait_ms=sum(r.wait_ms for r in mrecs) / len(mrecs),
            mean_batch_size=sum(r.batch_size for r in mrecs) / len(mrecs),
            slo_attainment=attainment(lats),
        )

    degraded_count = p99_degraded = None
    if result.availability is not None:
        touched = [r.latency_ms for r in recs if r.degraded or r.retries]
        degraded_count = sum(1 for r in recs if r.degraded)
        # An undominatable NaN would poison Pareto fronts: when no
        # request saw a degraded fleet, the degraded tail IS the tail.
        p99_degraded = (percentile(touched, 99) if touched
                        else _pct(latencies, 99))

    busy = sum(i.busy_ms for i in result.instances)
    return ServingReport(
        total_requests=len(recs),
        horizon_ms=horizon,
        throughput_rps=len(recs) / horizon_s if recs else 0.0,
        utilization=(busy / (result.n_instances * horizon)
                     if horizon > 0 else 0.0),
        mean_latency_ms=(sum(latencies) / len(latencies)
                         if latencies else math.nan),
        p50_ms=_pct(latencies, 50),
        p95_ms=_pct(latencies, 95),
        p99_ms=_pct(latencies, 99),
        mean_wait_ms=(sum(r.wait_ms for r in recs) / len(recs)
                      if recs else math.nan),
        mean_queue_depth=_time_weighted_mean(result.queue_samples, horizon),
        max_queue_depth=max((d for _, d in result.queue_samples), default=0),
        total_switches=result.total_switches,
        total_reprogram_time_ms=result.total_reprogram_time_ms,
        scheduler=result.scheduler,
        batching=result.batching,
        n_instances=result.n_instances,
        slo_ms=slo_ms,
        slo_attainment=attainment(latencies),
        per_model=per_model,
        instances=list(result.instances),
        availability=result.availability,
        total_failures=result.total_failures,
        total_retries=result.total_retries,
        degraded_count=degraded_count,
        p99_degraded_ms=p99_degraded,
        watch=watch,
    )


def _nearest_rank(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    return ordered[max(1, math.ceil(q / 100 * len(ordered))) - 1]


def _summarize_serve_summary(s: ServeSummary,
                             slo_ms: Optional[float],
                             watch: Optional[dict]) -> ServingReport:
    """:func:`summarize` for the accumulated ``detail="summary"`` form.

    Percentiles come from the exact latency multisets the engine
    collected, so they match the full path bit-for-bit; sums were
    folded in completion order, so means agree to the last ulp.
    """
    horizon = s.makespan_ms
    horizon_s = horizon / 1e3 if horizon > 0 else math.nan
    model_names = sorted(s.model_lats)
    ordered_by_model = {name: sorted(s.model_lats[name])
                        for name in model_names}
    if len(model_names) == 1:
        # Single-model runs dominate the web-scale benchmarks: the
        # per-model sort IS the overall sort, so don't pay it twice.
        only = model_names[0]
        all_lats: List[float] = s.model_lats[only]
        all_sorted = ordered_by_model[only]
    else:
        all_lats = []
        for name in model_names:
            all_lats.extend(s.model_lats[name])
        all_sorted = sorted(all_lats)
    n = len(all_sorted)

    def attainment(lats: Sequence[float]) -> Optional[float]:
        if slo_ms is None or not lats:
            return None
        return sum(1 for v in lats if v <= slo_ms) / len(lats)

    per_model: Dict[str, ModelMetrics] = {}
    for name in model_names:
        lats = s.model_lats[name]
        cnt = len(lats)
        ordered = ordered_by_model[name]
        per_model[name] = ModelMetrics(
            model=name,
            count=cnt,
            throughput_rps=cnt / horizon_s,
            mean_latency_ms=sum(lats) / cnt,
            p50_ms=_nearest_rank(ordered, 50),
            p95_ms=_nearest_rank(ordered, 95),
            p99_ms=_nearest_rank(ordered, 99),
            mean_wait_ms=s.model_wait_sum[name] / cnt,
            mean_batch_size=s.model_batch_sq[name] / cnt,
            slo_attainment=attainment(lats),
        )

    degraded_count = p99_degraded = None
    if s.availability is not None:
        touched = s.touched_lats or []
        degraded_count = s.degraded_count
        p99_degraded = (percentile(touched, 99) if touched
                        else (_nearest_rank(all_sorted, 99) if n
                              else math.nan))

    busy = sum(i.busy_ms for i in s.instances)
    return ServingReport(
        total_requests=n,
        horizon_ms=horizon,
        throughput_rps=n / horizon_s if n else 0.0,
        utilization=(busy / (s.n_instances * horizon)
                     if horizon > 0 else 0.0),
        mean_latency_ms=sum(all_lats) / n if n else math.nan,
        p50_ms=_nearest_rank(all_sorted, 50) if n else math.nan,
        p95_ms=_nearest_rank(all_sorted, 95) if n else math.nan,
        p99_ms=_nearest_rank(all_sorted, 99) if n else math.nan,
        mean_wait_ms=(sum(s.model_wait_sum[name] for name in model_names)
                      / n if n else math.nan),
        mean_queue_depth=s.mean_queue_depth(horizon),
        max_queue_depth=s.max_queue_depth,
        total_switches=s.total_switches,
        total_reprogram_time_ms=s.total_reprogram_time_ms,
        scheduler=s.scheduler,
        batching=s.batching,
        n_instances=s.n_instances,
        slo_ms=slo_ms,
        slo_attainment=attainment(all_sorted),
        per_model=per_model,
        instances=list(s.instances),
        availability=s.availability,
        total_failures=s.total_failures,
        total_retries=s.total_retries,
        degraded_count=degraded_count,
        p99_degraded_ms=p99_degraded,
        watch=watch,
    )


@dataclass(frozen=True)
class GenerationServingReport:
    """Token-level metrics of one continuous-batching simulation.

    TTFT (time to first token) and TPOT (time per output token) are the
    generation SLO pair; **goodput** is the tokens/s produced by
    requests that met *both* SLOs — the capacity a generation service
    can actually sell.
    """

    total_requests: int
    total_tokens: int
    horizon_ms: float
    throughput_rps: float
    tokens_per_s: float
    utilization: float
    mean_ttft_ms: float
    p50_ttft_ms: float
    p95_ttft_ms: float
    p99_ttft_ms: float
    mean_tpot_ms: float
    p99_tpot_ms: float
    mean_latency_ms: float
    p99_latency_ms: float
    mean_wait_ms: float
    mean_queue_depth: float
    total_switches: int
    total_reprogram_time_ms: float
    scheduler: str
    n_instances: int
    slots: int
    ttft_slo_ms: Optional[float] = None
    tpot_slo_ms: Optional[float] = None
    slo_attainment: Optional[float] = None
    goodput_tokens_per_s: Optional[float] = None
    instances: List["object"] = field(default_factory=list)
    # Scenario-layer metrics (omitted from reports when inactive).
    availability: Optional[float] = None
    total_failures: int = 0
    total_retries: int = 0
    total_preemptions: int = 0
    #: :meth:`repro.obs.Watchdog.summary` of the attached watchdog
    #: (None unless the run was watched; reports omit it then).
    watch: Optional[dict] = None

    def as_dict(self) -> dict:
        """JSON-friendly flattening (NaN → null for strict parsers)."""
        def num(v):
            return (None if isinstance(v, float) and math.isnan(v) else v)

        out = {
            "total_requests": self.total_requests,
            "total_tokens": self.total_tokens,
            "horizon_ms": self.horizon_ms,
            "throughput_rps": num(self.throughput_rps),
            "tokens_per_s": num(self.tokens_per_s),
            "utilization": self.utilization,
            "ttft_ms": {"mean": num(self.mean_ttft_ms),
                        "p50": num(self.p50_ttft_ms),
                        "p95": num(self.p95_ttft_ms),
                        "p99": num(self.p99_ttft_ms)},
            "tpot_ms": {"mean": num(self.mean_tpot_ms),
                        "p99": num(self.p99_tpot_ms)},
            "latency_ms": {"mean": num(self.mean_latency_ms),
                           "p99": num(self.p99_latency_ms)},
            "mean_wait_ms": num(self.mean_wait_ms),
            "queue_depth_mean": self.mean_queue_depth,
            "reprogramming": {"switches": self.total_switches,
                              "time_ms": self.total_reprogram_time_ms},
            "scheduler": self.scheduler,
            "instances": self.n_instances,
            "slots": self.slots,
            "per_instance": [
                {"index": i.index, "requests": i.requests,
                 "steps": i.steps, "prefills": i.prefills,
                 "tokens": i.tokens, "busy_ms": i.busy_ms,
                 "switches": i.switch_count,
                 "switch_ms": i.reprogram_time_ms}
                for i in self.instances
            ],
        }
        if self.ttft_slo_ms is not None or self.tpot_slo_ms is not None:
            out["slo"] = {"ttft_ms": self.ttft_slo_ms,
                          "tpot_ms": self.tpot_slo_ms,
                          "attainment": num(self.slo_attainment),
                          "goodput_tokens_per_s":
                              num(self.goodput_tokens_per_s)}
        if self.availability is not None:
            out["failures"] = {"availability": self.availability,
                               "count": self.total_failures,
                               "retries": self.total_retries}
        if self.total_preemptions:
            out["preemptions"] = self.total_preemptions
        if self.watch is not None:
            out["watch"] = self.watch
        return out


def summarize_generation(
    result: Union[GenerationSimulationResult, GenerationSummary],
    ttft_slo_ms: Optional[float] = None,
    tpot_slo_ms: Optional[float] = None,
    watch: Optional[dict] = None,
) -> GenerationServingReport:
    """Reduce a generation simulation to its TTFT/TPOT/goodput metrics.

    Accepts either a full :class:`GenerationSimulationResult` or the
    pre-accumulated :class:`~repro.sim.summary.GenerationSummary` of a
    ``detail="summary"`` run; both produce the same report (percentile
    fields bit-identical, means equal to the last ulp — the summary
    path accumulates in completion order, not record order).

    ``watch`` is the :meth:`repro.obs.Watchdog.summary` dict of a
    watchdog that observed this run (see :func:`summarize`).
    """
    if isinstance(result, GenerationSummary):
        return _summarize_generation_summary(result, ttft_slo_ms,
                                             tpot_slo_ms, watch)
    recs = result.records
    horizon = result.makespan_ms
    horizon_s = horizon / 1e3 if horizon > 0 else math.nan
    ttfts = [r.ttft_ms for r in recs]
    tpots = [r.tpot_ms for r in recs if r.output_tokens > 1]
    lats = [r.latency_ms for r in recs]

    def meets(r) -> bool:
        if ttft_slo_ms is not None and r.ttft_ms > ttft_slo_ms:
            return False
        if (tpot_slo_ms is not None and r.output_tokens > 1
                and r.tpot_ms > tpot_slo_ms):
            return False
        return True

    slo_active = ttft_slo_ms is not None or tpot_slo_ms is not None
    good = [r for r in recs if meets(r)] if slo_active else []
    busy = sum(i.busy_ms for i in result.instances)
    mean = lambda xs: sum(xs) / len(xs) if xs else math.nan  # noqa: E731
    return GenerationServingReport(
        total_requests=len(recs),
        total_tokens=result.total_tokens,
        horizon_ms=horizon,
        throughput_rps=len(recs) / horizon_s if recs else 0.0,
        tokens_per_s=(result.total_tokens / horizon_s if recs else 0.0),
        utilization=(busy / (result.n_instances * horizon)
                     if horizon > 0 else 0.0),
        mean_ttft_ms=mean(ttfts),
        p50_ttft_ms=_pct(ttfts, 50),
        p95_ttft_ms=_pct(ttfts, 95),
        p99_ttft_ms=_pct(ttfts, 99),
        mean_tpot_ms=mean(tpots),
        p99_tpot_ms=_pct(tpots, 99),
        mean_latency_ms=mean(lats),
        p99_latency_ms=_pct(lats, 99),
        mean_wait_ms=mean([r.wait_ms for r in recs]),
        mean_queue_depth=_time_weighted_mean(result.queue_samples, horizon),
        total_switches=result.total_switches,
        total_reprogram_time_ms=result.total_reprogram_time_ms,
        scheduler=result.scheduler,
        n_instances=result.n_instances,
        slots=result.slots,
        ttft_slo_ms=ttft_slo_ms,
        tpot_slo_ms=tpot_slo_ms,
        slo_attainment=(len(good) / len(recs)
                        if slo_active and recs else None),
        goodput_tokens_per_s=(
            sum(r.output_tokens for r in good) / horizon_s
            if slo_active and recs else None),
        instances=list(result.instances),
        availability=result.availability,
        total_failures=result.total_failures,
        total_retries=result.total_retries,
        total_preemptions=result.total_preemptions,
        watch=watch,
    )


def _summarize_generation_summary(
    s: GenerationSummary,
    ttft_slo_ms: Optional[float],
    tpot_slo_ms: Optional[float],
    watch: Optional[dict],
) -> GenerationServingReport:
    """:func:`summarize_generation` for the accumulated summary form.

    Percentiles come from the exact TTFT/TPOT/latency multisets the
    engine collected, so they match the full path bit-for-bit; sums
    were folded in completion order, so means agree to the last ulp.
    Goodput walks the parallel per-request columns (``ttfts``,
    ``req_tpots``, ``out_tokens``) instead of record objects.
    """
    horizon = s.makespan_ms
    horizon_s = horizon / 1e3 if horizon > 0 else math.nan
    n = s.total_requests

    slo_active = ttft_slo_ms is not None or tpot_slo_ms is not None
    good_count = 0
    good_tokens = 0
    if slo_active and n:
        for ttft, tpot, out in zip(s.ttfts, s.req_tpots, s.out_tokens):
            if ttft_slo_ms is not None and ttft > ttft_slo_ms:
                continue
            if (tpot_slo_ms is not None and out > 1
                    and tpot > tpot_slo_ms):
                continue
            good_count += 1
            good_tokens += out

    busy = sum(i.busy_ms for i in s.instances)
    mean = lambda xs: sum(xs) / len(xs) if xs else math.nan  # noqa: E731
    return GenerationServingReport(
        total_requests=n,
        total_tokens=s.total_tokens,
        horizon_ms=horizon,
        throughput_rps=n / horizon_s if n else 0.0,
        tokens_per_s=s.total_tokens / horizon_s if n else 0.0,
        utilization=(busy / (s.n_instances * horizon)
                     if horizon > 0 else 0.0),
        mean_ttft_ms=mean(s.ttfts),
        p50_ttft_ms=_pct(s.ttfts, 50),
        p95_ttft_ms=_pct(s.ttfts, 95),
        p99_ttft_ms=_pct(s.ttfts, 99),
        mean_tpot_ms=mean(s.tpots),
        p99_tpot_ms=_pct(s.tpots, 99),
        mean_latency_ms=mean(s.lats),
        p99_latency_ms=_pct(s.lats, 99),
        mean_wait_ms=s.wait_sum / n if n else math.nan,
        mean_queue_depth=s.mean_queue_depth(horizon),
        total_switches=s.total_switches,
        total_reprogram_time_ms=s.total_reprogram_time_ms,
        scheduler=s.scheduler,
        n_instances=s.n_instances,
        slots=s.slots,
        ttft_slo_ms=ttft_slo_ms,
        tpot_slo_ms=tpot_slo_ms,
        slo_attainment=(good_count / n if slo_active and n else None),
        goodput_tokens_per_s=(good_tokens / horizon_s
                              if slo_active and n else None),
        instances=list(s.instances),
        availability=s.availability,
        total_failures=s.total_failures,
        total_retries=s.total_retries,
        total_preemptions=s.total_preemptions,
        watch=watch,
    )


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of :func:`plan_capacity`."""

    instances: int
    #: Simulated report at ``instances`` (None for analytic-only plans,
    #: i.e. ``confirm=False`` — the estimate then lives in ``analytic``).
    report: Optional[ServingReport]
    target_p99_ms: float
    target_qps: Optional[float]
    #: Fleet sizes probed by confirming simulations: {n: achieved
    #: p99_ms} (empty for analytic-only plans).
    probes: Dict[int, float] = field(default_factory=dict)
    #: The closed-form proposal the search started from (None in
    #: ``mode="probe"``, the seed probe-from-1 search).
    analytic: Optional["FleetProposal"] = None

    @property
    def meets_slo(self) -> bool:
        if self.report is not None:
            return self.report.p99_ms <= self.target_p99_ms
        return self.analytic.estimate.p99_ms <= self.target_p99_ms


def plan_capacity(
    accel: ProTEA,
    requests: Sequence[Request],
    target_p99_ms: float,
    target_qps: Optional[float] = None,
    scheduler: str = "least-loaded",
    batching: Optional[BatchingPolicy] = None,
    models: Optional[Mapping[str, TransformerConfig]] = None,
    reprogram_latency_ms: float = 0.0,
    max_instances: int = 256,
    failures=None,
    *,
    mode: str = "analytic",
    confirm: bool = True,
    probe_detail: str = "summary",
    shards: int = 1,
    shard_jobs: Optional[int] = None,
) -> CapacityPlan:
    """Minimum fleet size meeting the p99 SLO (and target throughput).

    Analytic-first (``mode="analytic"``, the default): the closed-form
    model of :mod:`repro.analytic` proposes a fleet size, a confirming
    simulation checks it, and a gallop + binary search around the
    proposal pins the minimum (queueing delay is monotone
    non-increasing in fleet size for these policies).  A good proposal
    costs 2-3 simulated probes instead of the ~2·log2(n) the seed
    search spends probing up from one instance — and the final answer
    is identical, because the same simulator issues the verdict either
    way.  ``mode="probe"`` keeps the seed search (exponential probing
    from 1, then binary search); ``confirm=False`` skips simulation
    entirely and returns the analytic proposal (``report=None``,
    estimate in ``plan.analytic``).

    Confirming probes run at ``probe_detail`` (``"summary"`` by
    default: exact for every statistic the planner reads, without
    materializing per-request records) and can be sharded across
    worker processes (``shards``/``shard_jobs``, summary detail only —
    see :meth:`ClusterSimulator.run_sharded`).

    Raises ``RuntimeError`` if even ``max_instances`` fails.

    ``failures`` (a :class:`~repro.sim.failures.FailurePlan`) plans
    capacity under fault injection — each instance's fault history is
    seeded per index, so probe fleets share fault draws and the search
    stays monotone in practice.
    """
    if target_p99_ms <= 0:
        raise ValueError("target_p99_ms must be positive")
    if not requests:
        raise ValueError("cannot plan capacity for an empty workload")
    if max_instances < 1:
        raise ValueError(
            "cannot plan capacity over an empty fleet: max_instances "
            "must be >= 1")
    if mode not in ("analytic", "probe"):
        raise ValueError(f"unknown plan mode {mode!r}; "
                         "available: ['analytic', 'probe']")
    if probe_detail not in ("summary", "full"):
        raise ValueError(f"unknown probe detail {probe_detail!r}; "
                         "available: ['full', 'summary']")
    if not confirm and mode != "analytic":
        raise ValueError("confirm=False requires mode='analytic' "
                         "(an unconfirmed plan IS the analytic proposal)")
    if shards != 1 and probe_detail != "summary":
        raise ValueError("sharded probes require probe_detail='summary' "
                         "(per-request records cannot be sharded)")

    proposal = None
    if mode == "analytic":
        # Lazy: repro.analytic builds on the serving layer's service-
        # time model, so importing it at module scope would be a cycle.
        from ..analytic.capacity import propose_fleet

        proposal = propose_fleet(
            accel, requests, target_p99_ms, target_qps,
            batching=batching, models=models,
            reprogram_latency_ms=reprogram_latency_ms,
            max_instances=max_instances, failures=failures)
        if not confirm:
            return CapacityPlan(
                instances=proposal.instances,
                report=None,
                target_p99_ms=target_p99_ms,
                target_qps=target_qps,
                analytic=proposal,
            )

    probes: Dict[int, float] = {}
    reports: Dict[int, ServingReport] = {}
    verdicts: Dict[int, bool] = {}

    def meets(n: int) -> bool:
        if n in verdicts:
            return verdicts[n]
        # Every shard cell needs at least one instance, so probes below
        # the shard count degrade gracefully to one cell per instance.
        eff_shards = min(shards, n)
        result = simulate(accel, requests, n, scheduler=scheduler,
                          batching=batching, models=models,
                          reprogram_latency_ms=reprogram_latency_ms,
                          failures=failures, detail=probe_detail,
                          shards=eff_shards,
                          shard_jobs=shard_jobs if eff_shards > 1 else None)
        report = summarize(result, slo_ms=target_p99_ms)
        probes[n] = report.p99_ms
        reports[n] = report
        ok = report.p99_ms <= target_p99_ms
        if target_qps is not None:
            ok = ok and report.throughput_rps >= 0.95 * target_qps
        verdicts[n] = ok
        return ok

    def _infeasible_msg() -> str:
        # Name the criterion that actually failed: with a throughput
        # target, every probe may meet the latency SLO yet still fall
        # short of 0.95 * target_qps.
        best_p99 = min(probes.values())
        parts = []
        if best_p99 > target_p99_ms:
            parts.append(f"p99 <= {target_p99_ms} ms "
                         f"(best probe: {best_p99:.3f} ms)")
        if target_qps is not None:
            best_tput = max(r.throughput_rps for r in reports.values())
            if best_tput < 0.95 * target_qps:
                parts.append(f"throughput >= {0.95 * target_qps:.1f} req/s "
                             f"(best probe: {best_tput:.1f} req/s)")
        if not parts:  # each criterion met somewhere, never jointly
            parts.append(f"p99 <= {target_p99_ms} ms and "
                         f"throughput >= {0.95 * target_qps:.1f} req/s "
                         f"on the same probe")
        return (f"no fleet of <= {max_instances} instances meets "
                + " and ".join(parts))

    if mode == "probe":
        lo, hi = 0, 1  # lo: largest known-infeasible size
        while not meets(hi):
            lo = hi
            if hi >= max_instances:
                raise RuntimeError(_infeasible_msg())
            hi = min(2 * hi, max_instances)
    elif meets(proposal.instances):
        # Gallop down from the proposal with doubling steps until a
        # fleet misses (or the floor), establishing the bracket.
        hi, lo, step = proposal.instances, 0, 1
        while hi - step >= 1:
            cand = hi - step
            if meets(cand):
                hi = cand
                step *= 2
            else:
                lo = cand
                break
    else:
        # The analytic proposal was optimistic: gallop up until a
        # fleet meets (or max_instances proves infeasible).
        lo, step = proposal.instances, 1
        while True:
            if lo >= max_instances:
                raise RuntimeError(_infeasible_msg())
            cand = min(lo + step, max_instances)
            if meets(cand):
                hi = cand
                break
            lo = cand
            step *= 2
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if meets(mid):
            hi = mid
        else:
            lo = mid
    return CapacityPlan(
        instances=hi,
        report=reports[hi],
        target_p99_ms=target_p99_ms,
        target_qps=target_qps,
        probes=dict(sorted(probes.items())),
        analytic=proposal,
    )
