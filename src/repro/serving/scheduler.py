"""Dispatch policies: which instance gets an arriving request.

Schedulers see lightweight instance views (queue length, busy state,
last assigned model) and must be deterministic — ties always break
toward the lowest instance index, so a seeded workload replays to an
identical assignment.

* :class:`RoundRobin` — cyclic, oblivious.
* :class:`LeastLoaded` — join-shortest-queue on the request backlog.
* :class:`ModelAffinity` — least-loaded *among instances already
  serving this model*, falling back to global least-loaded when the
  affine choice is more than ``slack`` requests busier.  This is the
  policy that makes a nonzero reprogramming penalty survivable: it
  keeps weight sets resident instead of thrashing them.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from .workload import Request

__all__ = [
    "InstanceView",
    "Scheduler",
    "RoundRobin",
    "LeastLoaded",
    "ModelAffinity",
    "SCHEDULERS",
    "get_scheduler",
]


class InstanceView(Protocol):
    """What a scheduler may inspect about an instance."""

    idx: int
    last_model: object  # Optional[str]

    def backlog(self, now_ms: float) -> int: ...


class Scheduler:
    """Base dispatch policy."""

    name = "base"

    def pick(self, instances: Sequence[InstanceView], request: Request,
             now_ms: float) -> InstanceView:
        raise NotImplementedError


class RoundRobin(Scheduler):
    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, instances, request, now_ms):
        inst = instances[self._next % len(instances)]
        self._next += 1
        return inst


def _least_loaded(instances: Sequence[InstanceView],
                  now_ms: float) -> InstanceView:
    return min(instances, key=lambda i: (i.backlog(now_ms), i.idx))


class LeastLoaded(Scheduler):
    name = "least-loaded"

    def pick(self, instances, request, now_ms):
        return _least_loaded(instances, now_ms)


class ModelAffinity(Scheduler):
    """Sticky dispatch: prefer an instance whose last workload matches.

    ``slack`` bounds how much extra backlog (in requests) the affine
    instance may carry before we give up stickiness and spill to the
    global least-loaded instance — trading one reprogramming penalty
    for queue balance.
    """

    name = "model-affinity"

    def __init__(self, slack: int = 2):
        if slack < 0:
            raise ValueError("slack must be >= 0")
        self.slack = slack

    def pick(self, instances, request, now_ms):
        best = _least_loaded(instances, now_ms)
        affine = [i for i in instances if i.last_model == request.model]
        if not affine:
            return best
        sticky = min(affine, key=lambda i: (i.backlog(now_ms), i.idx))
        if sticky.backlog(now_ms) <= best.backlog(now_ms) + self.slack:
            return sticky
        return best


SCHEDULERS = {
    RoundRobin.name: RoundRobin,
    LeastLoaded.name: LeastLoaded,
    ModelAffinity.name: ModelAffinity,
}


def get_scheduler(name: str) -> Scheduler:
    """Fresh scheduler instance by registry name (CLI-facing)."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(SCHEDULERS)}"
        ) from None
