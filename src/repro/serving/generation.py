"""Token-level continuous batching for autoregressive generation.

The request-level simulator (:mod:`.cluster`) holds a batch until every
member finishes — right for fixed-length encoder invocations, wasteful
for generation where members finish at different tokens.  This module
is the generation service mode: an instance holds up to ``slots``
in-flight sequences and advances them one *engine step* at a time,

* new requests join at step boundaries — their prompt **prefill** runs
  as part of the step and emits their first token (TTFT);
* every already-active sequence decodes one token per step — the
  layer's weight tiles stream **once per step**, amortized over all
  in-flight sequences (the continuous-batching win), while each
  sequence pays its own cache-length-dependent attention sweep;
* finished sequences vacate their slot at the step boundary, so
  admission capacity follows completion token-by-token, not
  batch-by-batch.

Costing comes from the same synthesized-accelerator model as
everything else: prefill is
:meth:`~repro.core.latency.LatencyModel.evaluate` at the prompt length,
decode steps decompose
:meth:`~repro.core.latency.LatencyModel.decode_layer_cycles` into the
shared weight-stream term plus per-sequence compute.

``simulate_generation(..., observer=...)`` attaches any read-only
consumer of the engine's event stream (see
:mod:`repro.sim.generate` for the event vocabulary) — a trace
recorder, metrics sampler, or a streaming TTFT
:class:`repro.obs.Watchdog`; attached or not, the run is
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.accelerator import ProTEA
from ..nn.model_zoo import MODEL_ZOO, TransformerConfig
from ..sim.failures import FailurePlan
from ..sim.fleet import FleetSpec
from .scheduler import Scheduler, get_scheduler
from .workload import GenerationRequest

__all__ = [
    "GenerationRecord",
    "GenerationInstanceStats",
    "GenerationSimulationResult",
    "GenerationServiceModel",
    "GenerationClusterSimulator",
    "simulate_generation",
]



@dataclass(frozen=True)
class GenerationRecord:
    """Per-request outcome of one generation simulation."""

    rid: int
    model: str
    instance: int
    prompt_tokens: int
    output_tokens: int
    t_arrival_ms: float
    t_admit_ms: float
    t_first_token_ms: float
    t_complete_ms: float
    #: Steps lost to instance failures (mid-prefill or mid-decode).
    retries: int = 0
    #: Times this request was evicted for higher-priority work.
    preemptions: int = 0
    #: Arrived while at least one instance was down (failure runs).
    degraded: bool = False

    @property
    def wait_ms(self) -> float:
        """Queueing delay before the prompt entered an engine step."""
        return self.t_admit_ms - self.t_arrival_ms

    @property
    def ttft_ms(self) -> float:
        """Time to first token (arrival → end of prefill)."""
        return self.t_first_token_ms - self.t_arrival_ms

    @property
    def tpot_ms(self) -> float:
        """Mean time per output token after the first (0 if only one)."""
        if self.output_tokens <= 1:
            return 0.0
        return ((self.t_complete_ms - self.t_first_token_ms)
                / (self.output_tokens - 1))

    @property
    def latency_ms(self) -> float:
        return self.t_complete_ms - self.t_arrival_ms


@dataclass(frozen=True)
class GenerationInstanceStats:
    """End-of-run accounting for one instance."""

    index: int
    requests: int
    steps: int
    prefills: int
    tokens: int
    busy_ms: float
    switch_count: int
    reprogram_time_ms: float
    #: Sequences this instance evicted for higher-priority work.
    preemptions: int = 0
    #: Faults injected into this instance (failure runs only).
    failures: int = 0
    #: Total time this instance spent down (failure runs only).
    downtime_ms: float = 0.0


@dataclass
class GenerationSimulationResult:
    """Everything a generation run produced."""

    records: List[GenerationRecord]
    instances: List[GenerationInstanceStats]
    n_instances: int
    slots: int
    makespan_ms: float
    #: ``(t_ms, waiting + in-flight sequences)`` after every mutation.
    queue_samples: List[Tuple[float, int]]
    #: Flat event log: ("arrive"|"admit"|"step"|"finish", t_ms, ...)
    #: (priority runs add "preempt"/"resume", failure runs
    #: "fail"/"recover").
    trace: List[tuple]
    scheduler: str = ""
    #: Fleet-time fraction up (None unless failures were injected).
    availability: Optional[float] = None
    total_failures: int = 0
    total_retries: int = 0
    total_preemptions: int = 0

    @property
    def total_requests(self) -> int:
        return len(self.records)

    @property
    def total_tokens(self) -> int:
        return sum(r.output_tokens for r in self.records)

    @property
    def total_switches(self) -> int:
        return sum(i.switch_count for i in self.instances)

    @property
    def total_reprogram_time_ms(self) -> float:
        return sum(i.reprogram_time_ms for i in self.instances)


class GenerationServiceModel:
    """Maps (model, lengths) → milliseconds of prefill / decode steps.

    Decode-step decomposition per layer: the weight-stream term (loads)
    is paid once per step, each in-flight sequence adds its own
    cache-length-dependent compute term.  Both halves are memoized —
    the cycle model is deterministic, so the cache is exact.
    """

    def __init__(self, accel: ProTEA,
                 models: Optional[Mapping[str, TransformerConfig]] = None):
        self.accel = accel
        self.models = dict(models or MODEL_ZOO)
        self._prefill: Dict[Tuple[str, int], float] = {}
        self._load_ms: Dict[str, float] = {}
        self._compute_ms: Dict[Tuple[str, int], float] = {}

    def config(self, model: str) -> TransformerConfig:
        try:
            return self.models[model]
        except KeyError:
            raise KeyError(
                f"unknown model {model!r}; available: {sorted(self.models)}"
            ) from None

    def validate(self, request: GenerationRequest) -> None:
        """A request must fit the synthesized KV-cache capacity."""
        self.config(request.model)  # raises on unknown models
        max_sl = self.accel.synth.max_seq_len
        if request.prompt_tokens > max_sl:
            raise ValueError(
                f"request {request.rid}: prompt of {request.prompt_tokens} "
                f"tokens exceeds the synthesized max_seq_len={max_sl}")
        if request.total_tokens > max_sl:
            raise ValueError(
                f"request {request.rid}: {request.prompt_tokens} prompt + "
                f"{request.output_tokens} output tokens need a "
                f"{request.total_tokens}-position KV cache; the synthesized "
                f"buffers stop at max_seq_len={max_sl}")

    def prefill_ms(self, model: str, prompt_tokens: int) -> float:
        """Full-sequence pass at the prompt length (emits token #1)."""
        key = (model, prompt_tokens)
        if key not in self._prefill:
            cfg = self.config(model).with_(seq_len=prompt_tokens)
            self._prefill[key] = self.accel.latency_report(cfg).latency_ms
        return self._prefill[key]

    def _ms(self, cycles: int) -> float:
        return cycles / (self.accel.clock_mhz * 1e3)

    def _layer_load_ms(self, model: str) -> float:
        if model not in self._load_ms:
            cfg = self.config(model)
            layer = self.accel.latency_model.decode_layer_cycles(
                1, cfg.d_model, cfg.num_heads)
            self._load_ms[model] = self._ms(layer.load_total)
        return self._load_ms[model]

    def _layer_compute_ms(self, model: str, cache_len: int) -> float:
        key = (model, cache_len)
        if key not in self._compute_ms:
            cfg = self.config(model)
            layer = self.accel.latency_model.decode_layer_cycles(
                cache_len, cfg.d_model, cfg.num_heads)
            self._compute_ms[key] = self._ms(layer.compute_total)
        return self._compute_ms[key]

    def decode_step_ms(self, model: str, cache_lens: Sequence[int]) -> float:
        """One engine step decoding one token for every sequence.

        ``cache_lens`` are the key counts each sequence attends over
        this step (its cached positions plus the new token).
        """
        if not cache_lens:
            return 0.0
        cfg = self.config(model)
        per_layer = (self._layer_load_ms(model)
                     + sum(self._layer_compute_ms(model, cl)
                           for cl in cache_lens))
        return per_layer * cfg.num_layers


class GenerationClusterSimulator:
    """Event-driven continuous-batching simulator over N instances.

    The generation counterpart of :class:`~repro.serving.cluster.
    ClusterSimulator`: same dispatch schedulers, same reprogramming
    accounting, but instances advance in-flight sequence sets one
    token-level step at a time instead of serving opaque batches.
    In-flight sequences of one instance always share a model (mixed
    weights cannot be resident simultaneously), so a queued request of
    a different model waits until the active set drains.
    """

    def __init__(
        self,
        accel: ProTEA,
        n_instances: Optional[int] = None,
        slots: int = 8,
        scheduler: Union[str, Scheduler] = "least-loaded",
        models: Optional[Mapping[str, TransformerConfig]] = None,
        reprogram_latency_ms: float = 0.0,
        fleet: Optional[FleetSpec] = None,
        failures: Optional[FailurePlan] = None,
        preemption: Optional[bool] = None,
    ):
        if fleet is None:
            if n_instances is None:
                raise ValueError("need n_instances or a FleetSpec")
            if n_instances < 1:
                raise ValueError("need at least one instance")
            fleet = FleetSpec.uniform(n_instances)
        elif n_instances is not None and n_instances != fleet.n:
            raise ValueError(
                f"n_instances={n_instances} contradicts the {fleet.n}-"
                "instance FleetSpec (pass one or the other)")
        if slots < 1:
            raise ValueError("need at least one sequence slot")
        if reprogram_latency_ms < 0:
            raise ValueError("reprogram_latency_ms must be >= 0")
        self.accel = accel
        self.fleet = fleet
        self.failures = failures
        #: None = auto: preempt iff any request carries a priority.
        self.preemption = preemption
        self.n_instances = fleet.n
        self.slots = slots
        self._scheduler_spec = scheduler
        if isinstance(scheduler, str):
            get_scheduler(scheduler)  # validate eagerly
        self.service = GenerationServiceModel(accel, models)
        self.reprogram_latency_ms = reprogram_latency_ms

    def _scheduler(self) -> Scheduler:
        """A fresh scheduler per run (stateful cursors must reset)."""
        spec = self._scheduler_spec
        return get_scheduler(spec) if isinstance(spec, str) else spec

    def _validate(self, requests: Sequence[GenerationRequest]) -> None:
        for req in requests:
            if not isinstance(req, GenerationRequest):
                raise TypeError(
                    "generation mode needs GenerationRequest workloads — "
                    "see repro.serving.attach_generation_lengths")
            self.service.validate(req)

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[GenerationRequest], observer=None,
            profiler=None, detail: str = "full", shards: int = 1,
            shard_jobs: Optional[int] = None):
        """Simulate the stream to completion on the unified kernel.

        Bit-identical to :meth:`run_legacy` on homogeneous, no-failure,
        no-priority scenarios (pinned by the trace-identity goldens)
        and the only path that understands heterogeneous fleets,
        failure injection, and priority admission with preemption.

        ``observer``/``profiler`` are forwarded to the engine's
        observability hooks (see :mod:`repro.obs`); observers are
        read-only, so the result is byte-identical with or without
        them.

        ``detail="summary"`` returns a pre-reduced
        :class:`~repro.sim.summary.GenerationSummary` instead of the
        full result — no per-request records, no trace — which
        :func:`~repro.serving.slo.summarize_generation` accepts
        directly (percentiles bit-identical, means to the ulp).

        ``shards > 1`` partitions the fleet into independent cells (see
        :mod:`repro.sim.shard`) and merges their summaries; it implies
        ``detail="summary"`` and, with ``shard_jobs >= 2``, runs cells
        in worker processes.  ``shards=1`` is always the ordinary
        single-loop run.
        """
        from ..sim.generate import GenerationEngine

        self._validate(requests)
        if shards != 1:
            from ..sim.shard import run_sharded

            if detail != "summary":
                raise ValueError(
                    "sharded runs are summary-detail only: per-request "
                    "records across cells would defeat the fast path — "
                    "pass detail='summary' (or shards=1)")
            if profiler is not None:
                raise ValueError(
                    "KernelProfiler cannot span shard cells — profile "
                    "a shards=1 run")
            return run_sharded(self, requests, mode="generate",
                               shards=shards, jobs=shard_jobs,
                               observer=observer)
        engine = GenerationEngine(
            self.service,
            fleet=self.fleet,
            slots=self.slots,
            scheduler=self._scheduler(),
            reprogram_latency_ms=self.reprogram_latency_ms,
            failures=self.failures,
            preemption=self.preemption,
        )
        if observer is not None:
            engine.attach_observer(observer)
        if profiler is not None:
            engine.attach_profiler(profiler)
        return engine.run(requests, detail=detail)

    # ------------------------------------------------------------------
    def _shard_cell(self, fleet: FleetSpec, instance_base: int,
                    requests: Sequence[GenerationRequest],
                    failure_horizon_ms: float, rng_seed,
                    observer=None):
        """Run one shard cell (summary detail, global instance ids).

        Called by :func:`repro.sim.shard.run_sharded` — in-process on
        the serial path, inside a pool worker on the parallel one.
        The workload was validated once, fleet-wide, before splitting.
        """
        from ..sim.generate import GenerationEngine

        engine = GenerationEngine(
            self.service,
            fleet=fleet,
            slots=self.slots,
            scheduler=self._scheduler(),
            reprogram_latency_ms=self.reprogram_latency_ms,
            failures=self.failures,
            preemption=self.preemption,
            instance_base=instance_base,
            failure_horizon_ms=failure_horizon_ms,
            rng_seed=rng_seed,
        )
        if observer is not None:
            engine.attach_observer(observer)
        return engine.run(requests, detail="summary")

    # ------------------------------------------------------------------
    def run_legacy(self, requests: Sequence[GenerationRequest]
                   ) -> GenerationSimulationResult:
        """The pre-kernel closure loop, kept as the reference engine.

        The loop itself lives in :mod:`repro.serving.legacy` (test
        support, shared with the serve oracle) — only this delegate
        ships in the hot module.
        """
        from .legacy import run_legacy_generation

        return run_legacy_generation(self, requests)


def simulate_generation(
    accel: ProTEA,
    requests: Sequence[GenerationRequest],
    n_instances: Optional[int] = None,
    slots: int = 8,
    scheduler: Union[str, Scheduler] = "least-loaded",
    models: Optional[Mapping[str, TransformerConfig]] = None,
    reprogram_latency_ms: float = 0.0,
    fleet: Optional[FleetSpec] = None,
    failures: Optional[FailurePlan] = None,
    preemption: Optional[bool] = None,
    observer=None,
    profiler=None,
    detail: str = "full",
    shards: int = 1,
    shard_jobs: Optional[int] = None,
):
    """One-call wrapper around :class:`GenerationClusterSimulator`."""
    sim = GenerationClusterSimulator(
        accel, n_instances, slots=slots, scheduler=scheduler, models=models,
        reprogram_latency_ms=reprogram_latency_ms, fleet=fleet,
        failures=failures, preemption=preemption)
    return sim.run(requests, observer=observer, profiler=profiler,
                   detail=detail, shards=shards, shard_jobs=shard_jobs)
