"""Plain-text serving reports in the same style as the paper tables.

Renders a :class:`~repro.serving.slo.ServingReport` as stacked ASCII
tables (aggregate, per-model, per-instance) via
:func:`repro.analysis.tables.render_table`.
"""

from __future__ import annotations

from ..analysis.tables import render_table
from .slo import CapacityPlan, GenerationServingReport, ServingReport

__all__ = ["render_serving_report", "render_capacity_plan",
           "render_generation_report"]


def _watch_table(watch: dict) -> str:
    """SLO-watchdog table (watched runs only; goldens stay byte-stable).

    ``watch`` is the :meth:`repro.obs.Watchdog.summary` dict carried on
    the report.
    """
    def fmt(value, spec=".4g"):
        return format(value, spec) if value is not None else "-"

    rows = [
        ("SLO (ms) / target",
         f"{watch['slo_ms']:g} / {watch['target']:g}"),
        ("completions / violations",
         f"{watch['completions']} / {watch['violations']}"),
        ("attainment", fmt(watch["attainment"])),
        ("error budget burned (x)", fmt(watch["budget_burn"])),
        ("max burn rate", fmt(watch["max_burn_rate"])),
        ("alerts / alert minutes",
         f"{watch['alerts']} / {watch['alert_minutes']:.4g}"),
        ("time to first alert (ms)",
         fmt(watch["time_to_first_alert_ms"])),
        ("anomaly onsets", len(watch["anomaly_onsets"])),
    ]
    for name, stats in watch["rules"].items():
        rows.append((f"rule {name}",
                     f"{stats['alerts']} alert(s) / "
                     f"{stats['alert_ms']:.4g} ms"))
    return render_table(("metric", "value"), rows, title="SLO watchdog")


def render_generation_report(report: GenerationServingReport,
                             title: str = "Generation summary") -> str:
    """Aggregate + per-instance tables for a continuous-batching run."""
    agg_rows = [
        ("requests", report.total_requests),
        ("output tokens", report.total_tokens),
        ("instances x slots", f"{report.n_instances} x {report.slots}"),
        ("scheduler", report.scheduler),
        ("horizon (ms)", report.horizon_ms),
        ("throughput (req/s)", report.throughput_rps),
        ("throughput (tok/s)", report.tokens_per_s),
        ("utilization", report.utilization),
        ("TTFT mean / p50 / p99 (ms)",
         f"{report.mean_ttft_ms:.3g} / {report.p50_ttft_ms:.3g} / "
         f"{report.p99_ttft_ms:.3g}"),
        ("TPOT mean / p99 (ms)",
         f"{report.mean_tpot_ms:.3g} / {report.p99_tpot_ms:.3g}"),
        ("latency mean / p99 (ms)",
         f"{report.mean_latency_ms:.3g} / {report.p99_latency_ms:.3g}"),
        ("mean wait (ms)", report.mean_wait_ms),
        ("workload switches", report.total_switches),
    ]
    if report.slo_attainment is not None:
        slo = " + ".join(
            part for part in (
                f"TTFT <= {report.ttft_slo_ms:g} ms"
                if report.ttft_slo_ms is not None else "",
                f"TPOT <= {report.tpot_slo_ms:g} ms"
                if report.tpot_slo_ms is not None else "")
            if part)
        agg_rows.append((f"SLO attainment ({slo})", report.slo_attainment))
        agg_rows.append(("goodput (tok/s)", report.goodput_tokens_per_s))
    if report.availability is not None:
        # Failure block (failure runs only; goldens stay byte-stable).
        agg_rows.append(("availability", report.availability))
        agg_rows.append(("failures / retries",
                         f"{report.total_failures} / "
                         f"{report.total_retries}"))
    if report.total_preemptions:
        agg_rows.append(("preemptions", report.total_preemptions))
    parts = [render_table(("metric", "value"), agg_rows, title=title)]
    if report.watch is not None:
        parts.append(_watch_table(report.watch))
    parts.append(render_table(
        ("inst", "requests", "steps", "prefills", "tokens", "busy ms",
         "switches"),
        [(i.index, i.requests, i.steps, i.prefills, i.tokens, i.busy_ms,
          i.switch_count)
         for i in report.instances],
        title="Per-instance",
    ))
    return "\n\n".join(parts)


def render_serving_report(report: ServingReport,
                          title: str = "Serving summary") -> str:
    """Three tables: cluster aggregate, per-model, per-instance."""
    agg_rows = [
        ("requests", report.total_requests),
        ("instances", report.n_instances),
        ("scheduler", report.scheduler),
        ("batching", report.batching),
        ("horizon (ms)", report.horizon_ms),
        ("throughput (req/s)", report.throughput_rps),
        ("utilization", report.utilization),
        ("mean latency (ms)", report.mean_latency_ms),
        ("p50 / p95 / p99 (ms)",
         f"{report.p50_ms:.3g} / {report.p95_ms:.3g} / {report.p99_ms:.3g}"),
        ("mean wait (ms)", report.mean_wait_ms),
        ("queue depth mean/max",
         f"{report.mean_queue_depth:.3g} / {report.max_queue_depth}"),
        ("workload switches", report.total_switches),
        ("reprogram time (ms)", report.total_reprogram_time_ms),
    ]
    if report.slo_ms is not None:
        agg_rows.append((f"SLO attainment (<= {report.slo_ms:g} ms)",
                         report.slo_attainment))
    if report.availability is not None:
        # Failure-injection block: only rendered for failure runs so
        # non-failure reports stay byte-identical to the goldens.
        agg_rows.append(("availability", report.availability))
        agg_rows.append(("failures / retries",
                         f"{report.total_failures} / "
                         f"{report.total_retries}"))
        agg_rows.append(("degraded arrivals", report.degraded_count))
        agg_rows.append(("p99 degraded (ms)", report.p99_degraded_ms))
    parts = [render_table(("metric", "value"), agg_rows, title=title)]
    if report.watch is not None:
        parts.append(_watch_table(report.watch))

    if report.per_model:
        parts.append(render_table(
            ("model", "n", "req/s", "mean ms", "p50", "p95", "p99",
             "wait ms", "batch"),
            [(m.model, m.count, m.throughput_rps, m.mean_latency_ms,
              m.p50_ms, m.p95_ms, m.p99_ms, m.mean_wait_ms,
              m.mean_batch_size)
             for m in report.per_model.values()],
            title="Per-model",
        ))

    if report.availability is not None:
        parts.append(render_table(
            ("inst", "requests", "batches", "busy ms", "switches",
             "reprogram ms", "faults", "down ms"),
            [(i.index, i.requests, i.batches, i.busy_ms, i.switch_count,
              i.reprogram_time_ms, i.failures, i.downtime_ms)
             for i in report.instances],
            title="Per-instance",
        ))
    else:
        parts.append(render_table(
            ("inst", "requests", "batches", "busy ms", "switches",
             "reprogram ms"),
            [(i.index, i.requests, i.batches, i.busy_ms, i.switch_count,
              i.reprogram_time_ms)
             for i in report.instances],
            title="Per-instance",
        ))
    return "\n\n".join(parts)


def render_capacity_plan(plan: CapacityPlan) -> str:
    """Probe table plus the winning fleet's serving summary.

    Analytic-only plans (``confirm=False``: no simulated probes, no
    report) render the closed-form estimate table instead.
    """
    title = (f"Capacity plan: p99 <= {plan.target_p99_ms:g} ms"
             + (f", qps >= {plan.target_qps:g}" if plan.target_qps else "")
             + f"  ->  {plan.instances} instance(s)")
    if plan.report is None:
        est = plan.analytic.estimate
        head = render_table(
            ("metric", "value"),
            [("instances (analytic)", plan.instances),
             ("offered erlangs", est.erlangs),
             ("mean / peak qps", f"{est.mean_qps:.4g} / {est.peak_qps:.4g}"),
             ("p50 / p95 / p99 (ms)",
              f"{est.p50_ms:.3g} / {est.p95_ms:.3g} / {est.p99_ms:.3g}"),
             ("p99 bracket (ms)",
              f"[{est.p99_lo_ms:.3g}, {est.p99_hi_ms:.3g}]"),
             ("throughput (req/s)", est.throughput_rps),
             ("utilization", est.utilization)],
            title=title + "  [analytic, unconfirmed]",
        )
        return head
    head = render_table(
        ("instances", "p99 ms", "meets SLO"),
        [(n, p99, p99 <= plan.target_p99_ms)
         for n, p99 in plan.probes.items()],
        title=title,
    )
    body = render_serving_report(
        plan.report, title=f"At {plan.instances} instance(s)")
    return head + "\n\n" + body
