"""Closed-form fleet sizing: the analytic half of ``plan_capacity``.

:func:`propose_fleet` binary-searches the smallest fleet whose
*analytic* estimate (:func:`repro.analytic.serving.estimate_serving`)
meets the p99 SLO and throughput target — valid because the analytic
p99 is monotone non-increasing and the analytic throughput monotone
non-decreasing in fleet size (property-tested in ``tests/analytic``).
A proposal costs a few O(n) envelope walks instead of the dozens of
full event-simulation replays the probe-from-1 search spends, which is
where ``plan_capacity``'s analytic-first speedup comes from; the event
sim then confirms at (and brackets around) the proposal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from ..core.accelerator import ProTEA
from ..nn.model_zoo import MODEL_ZOO, TransformerConfig
from ..serving.batching import BatchingPolicy, ServiceTimeModel
from ..serving.workload import Request
from .serving import AnalyticServingEstimate, estimate_serving

__all__ = ["FleetProposal", "propose_fleet"]


@dataclass(frozen=True)
class FleetProposal:
    """Outcome of :func:`propose_fleet`."""

    #: Proposed fleet size (clamped to ``max_instances``).
    instances: int
    #: The analytic estimate at ``instances``.
    estimate: AnalyticServingEstimate
    #: Whether the analytic model believes ``instances`` meets the
    #: targets (False means even ``max_instances`` falls short).
    feasible: bool
    target_p99_ms: float
    target_qps: Optional[float]

    def as_dict(self) -> dict:
        return {
            "instances": self.instances,
            "feasible": self.feasible,
            "target_p99_ms": self.target_p99_ms,
            "target_qps": self.target_qps,
            "estimate": self.estimate.as_dict(),
        }


def propose_fleet(
    accel: ProTEA,
    requests: Sequence[Request],
    target_p99_ms: float,
    target_qps: Optional[float] = None,
    *,
    batching: Optional[BatchingPolicy] = None,
    models: Optional[Mapping[str, TransformerConfig]] = None,
    reprogram_latency_ms: float = 0.0,
    max_instances: int = 256,
    failures=None,
    duration_ms: Optional[float] = None,
) -> FleetProposal:
    """Smallest fleet the closed-form model expects to meet the SLO.

    Mirrors :func:`repro.serving.slo.plan_capacity`'s criteria: analytic
    p99 <= ``target_p99_ms`` and (when set) analytic throughput >=
    ``0.95 * target_qps``.  Never raises on infeasibility — it returns
    ``max_instances`` with ``feasible=False`` and lets the caller's
    confirming simulations issue the authoritative verdict.
    """
    if target_p99_ms <= 0:
        raise ValueError("target_p99_ms must be positive")
    if not requests:
        raise ValueError("cannot plan capacity for an empty workload")
    if max_instances < 1:
        raise ValueError(
            "cannot plan capacity over an empty fleet: max_instances "
            "must be >= 1")

    estimates: Dict[int, AnalyticServingEstimate] = {}
    # One service-time model across every candidate fleet: the latency
    # reports depend only on (model, seq_len), so the memo is shared.
    service = ServiceTimeModel(accel, models or MODEL_ZOO)

    def meets(n: int) -> bool:
        est = estimates.get(n)
        if est is None:
            est = estimate_serving(
                accel, requests, n, batching=batching, models=models,
                reprogram_latency_ms=reprogram_latency_ms,
                duration_ms=duration_ms, failures=failures,
                service=service)
            estimates[n] = est
        ok = est.p99_ms <= target_p99_ms
        if target_qps is not None:
            ok = ok and est.throughput_rps >= 0.95 * target_qps
        return ok

    if not meets(max_instances):
        return FleetProposal(
            instances=max_instances, estimate=estimates[max_instances],
            feasible=False, target_p99_ms=target_p99_ms,
            target_qps=target_qps)
    lo, hi = 0, max_instances  # lo: largest known-infeasible size
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if meets(mid):
            hi = mid
        else:
            lo = mid
    return FleetProposal(
        instances=hi, estimate=estimates[hi], feasible=True,
        target_p99_ms=target_p99_ms, target_qps=target_qps)
