"""Closed-form generation estimates: TTFT, TPOT, token throughput.

The unloaded numbers come straight from the analytic prefill/decode
split (:meth:`ProTEA.generation_report`) — they are the same values the
DSE surrogate has always reported for ``ttft_p99_ms``/``tokens_per_s``
(a lower bound on the simulated tail; the surrogate is now a thin
client of this module).  Passing an offered ``qps`` adds the M/M/c wait
tail over the fleet's ``fleet * slots`` decode slots, turning the
unloaded floor into a loaded TTFT tail estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.accelerator import ProTEA
from ..nn.model_zoo import TransformerConfig
from .queueing import wait_quantile_ms

__all__ = ["AnalyticGenerationEstimate", "estimate_generation"]


@dataclass(frozen=True)
class AnalyticGenerationEstimate:
    """Closed-form counterpart of a generation serving report."""

    fleet: int
    slots: int
    #: Unloaded prefill latency — the TTFT floor.
    ttft_ms: float
    #: Mean decode time per output token after the first.
    tpot_ms: float
    #: Whole-invocation latency (prefill + all decode steps).
    latency_ms: float
    #: Fleet-wide output tokens/s at full occupancy.
    tokens_per_s: float
    #: TTFT q99 including queueing for a slot (equals ``ttft_ms`` when
    #: no ``qps`` was offered — the unloaded lower bound).
    ttft_p99_ms: float
    #: Offered load in erlangs across ``fleet * slots`` slots (0.0 when
    #: no ``qps`` was offered).
    erlangs: float = 0.0

    def as_dict(self) -> dict:
        return {
            "fleet": self.fleet,
            "slots": self.slots,
            "ttft_ms": self.ttft_ms,
            "tpot_ms": self.tpot_ms,
            "latency_ms": self.latency_ms,
            "tokens_per_s": self.tokens_per_s,
            "ttft_p99_ms": self.ttft_p99_ms,
            "erlangs": self.erlangs,
        }


def estimate_generation(
    accel: ProTEA,
    cfg: TransformerConfig,
    prompt_tokens: int,
    output_tokens: int,
    *,
    fleet: int = 1,
    slots: int = 1,
    qps: Optional[float] = None,
    duration_ms: Optional[float] = None,
) -> AnalyticGenerationEstimate:
    """Estimate a generation deployment without simulating it.

    With ``qps=None`` (the default) every field is the unloaded
    analytic value — exactly what the DSE surrogate reports.  With an
    offered ``qps``, ``ttft_p99_ms`` adds the M/M/c conditional wait
    over ``fleet * slots`` servers whose service time is the full
    invocation; saturated loads push the tail out by the workload
    horizon (``duration_ms``, required then).
    """
    if fleet < 1 or slots < 1:
        raise ValueError("fleet and slots must be >= 1")
    report = accel.generation_report(cfg, prompt_tokens, output_tokens)
    ttft = report.ttft_ms
    total = report.total_ms
    ttft_p99 = ttft
    erlangs = 0.0
    if qps is not None and qps > 0:
        servers = fleet * slots
        lam_per_ms = qps / 1e3
        mu_per_ms = 1.0 / total
        erlangs = lam_per_ms / mu_per_ms
        if erlangs >= servers:
            if duration_ms is None:
                raise ValueError(
                    "saturated generation load needs duration_ms to "
                    "bound the wait")
            ttft_p99 = ttft + duration_ms
        else:
            ttft_p99 = ttft + wait_quantile_ms(
                servers, erlangs, servers * mu_per_ms - lam_per_ms, 99.0)
    return AnalyticGenerationEstimate(
        fleet=fleet,
        slots=slots,
        ttft_ms=ttft,
        tpot_ms=report.tpot_ms,
        latency_ms=total,
        tokens_per_s=report.tokens_per_s * fleet,
        ttft_p99_ms=ttft_p99,
        erlangs=erlangs,
    )
