"""Fluid approximations of arrival envelopes.

M/M/c queueing (:mod:`repro.analytic.queueing`) models the *stochastic*
component of waiting — Poisson clumping around a constant mean rate.
The bursty and diurnal workloads the simulator generates are not
constant-rate: an MMPP burst or a diurnal peak offers several times the
mean rate for a sustained window, and during that window the queue
behaves like a *deterministic fluid* — work arrives faster than the
fleet drains it, backlog accumulates, and every request rides on top of
the backlog in front of it.

This module computes that fluid component directly from the concrete
arrival times (the planner replays a fixed seeded workload, so the
envelope is data, not a distribution): :func:`fluid_waits_ms` walks the
arrivals once, charging each request ``work_ms`` of service and
draining ``drain_per_ms`` work-milliseconds per millisecond (fleet
size, derated by availability).  The resulting per-request wait profile
is what the closed-form latency estimates combine with the M/M/c tail —
the stochastic and fluid components each dominate where the other is
blind.

:class:`ArrivalEnvelope` is the scalar summary (mean/peak rate over a
sliding window) used for reporting and burstiness diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ArrivalEnvelope", "fluid_waits_ms"]


@dataclass(frozen=True)
class ArrivalEnvelope:
    """Scalar rate envelope of one concrete arrival sequence."""

    n_requests: int
    #: Observation horizon: the last arrival time (or the explicit
    #: workload duration when the caller knows it).
    duration_ms: float
    mean_qps: float
    #: Peak windowed rate — the fluid model's "how bad does it get".
    peak_qps: float
    #: Width of the peak-rate window.
    window_ms: float

    @property
    def burstiness(self) -> float:
        """Peak-to-mean rate ratio (1.0 for perfectly smooth arrivals)."""
        return self.peak_qps / self.mean_qps if self.mean_qps > 0 else 1.0

    @classmethod
    def from_times(cls, times_ms: Sequence[float],
                   duration_ms: float = None,
                   window_ms: float = 50.0) -> "ArrivalEnvelope":
        """Summarize sorted arrival times into a rate envelope."""
        if not times_ms:
            raise ValueError("cannot build an envelope of zero arrivals")
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        horizon = float(duration_ms if duration_ms is not None
                        else times_ms[-1])
        horizon = max(horizon, times_ms[-1], window_ms)
        n_bins = max(1, math.ceil(horizon / window_ms))
        counts = [0] * n_bins
        for t in times_ms:
            counts[min(n_bins - 1, int(t // window_ms))] += 1
        peak = max(counts) / (window_ms / 1e3)
        mean = len(times_ms) / (horizon / 1e3)
        return cls(n_requests=len(times_ms), duration_ms=horizon,
                   mean_qps=mean, peak_qps=max(peak, mean),
                   window_ms=window_ms)

    @classmethod
    def from_requests(cls, requests: Sequence,
                      duration_ms: float = None,
                      window_ms: float = 50.0) -> "ArrivalEnvelope":
        """Envelope of a :class:`~repro.serving.workload.Request` list."""
        return cls.from_times([r.t_ms for r in requests],
                              duration_ms=duration_ms,
                              window_ms=window_ms)


def fluid_waits_ms(times_ms: Sequence[float], work_ms: float,
                   drain_per_ms: float) -> Tuple[List[float], float]:
    """Per-request waits of the deterministic fluid queue.

    Each arrival deposits ``work_ms`` work-milliseconds; the pool
    drains ``drain_per_ms`` of work per millisecond of wall clock (a
    fleet of ``c`` always-up instances drains ``c``).  A request's
    fluid wait is the drain time of the backlog standing when it
    arrives, *including its own work* — deliberately conservative, the
    upper-bracket estimates lean on it.

    Returns ``(waits, end_backlog_ms)``; ``end_backlog_ms`` is the
    undrained work after the final arrival, whose drain time bounds how
    far the makespan can stretch past the last arrival.
    """
    if drain_per_ms <= 0:
        raise ValueError("drain_per_ms must be positive")
    if work_ms < 0:
        raise ValueError("work_ms must be >= 0")
    waits: List[float] = []
    backlog = 0.0
    prev_t = 0.0
    for t in times_ms:
        backlog = max(0.0, backlog - (t - prev_t) * drain_per_ms) + work_ms
        prev_t = t
        waits.append(backlog / drain_per_ms)
    return waits, backlog
