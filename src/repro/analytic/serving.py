"""Closed-form serving estimates: latency tails, throughput, utilization.

:func:`estimate_serving` answers the same questions as one discrete-
event serving simulation — p50/p95/p99 latency, throughput,
utilization — from a single O(n) pass over the arrival times plus a
handful of Erlang evaluations, in the summation-model style of
SNIPPETS.md Snippet 1: add up the analytic service, switching, and
queueing terms instead of replaying the event loop.

Every estimate comes in three flavors:

* a **point** estimate (the planner's proposal signal), and
* a **lo/hi bracket** that the simulated answer must fall inside —
  cross-validated against the sim kernel on the golden scenarios by
  ``tests/analytic``.

The latency model is a linear combination of the mixed-model workload:

* per-model batched service times from the same
  :class:`~repro.serving.batching.ServiceTimeModel` the simulator
  dispatches with (the analytic and simulated service grids are the
  *same numbers*, memoized per invocation seq_len);
* reprogram-penalty costing: consecutive dispatches switch models with
  probability ``1 - sum(share^2)`` (the collision probability of the
  workload mix), each switch charging ``reprogram_latency_ms`` — zero
  switches in the lower bracket, a switch on every dispatch in the
  upper;
* waiting as the max of two regimes — the stochastic M/M/c wait tail
  (:mod:`repro.analytic.queueing`) and the deterministic fluid backlog
  of the concrete arrival envelope (:mod:`repro.analytic.envelope`) —
  each of which dominates where the other is blind (smooth-load
  clumping vs. bursty/diurnal peaks).

Failure plans derate capacity by steady-state availability
``mtbf / (mtbf + mttr)`` and pad the upper bracket with one repair
window (a degraded request can sit through a repair).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from ..core.accelerator import ProTEA
from ..nn.model_zoo import MODEL_ZOO, TransformerConfig
from ..serving.batching import BatchingPolicy, ServiceTimeModel, no_batching
from ..serving.workload import Request
from .envelope import ArrivalEnvelope, fluid_waits_ms
from .queueing import wait_quantile_ms

__all__ = ["AnalyticServingEstimate", "estimate_serving"]

#: The latency quantiles every estimate carries (matches ServingReport).
_QUANTILES = (50.0, 95.0, 99.0)

#: Fluid walks over more arrivals than this are stride-coarsened: the
#: sampled arrival carries its whole stride cohort's work, preserving
#: the backlog envelope at ~this resolution.  An estimate must stay
#: O(cheap) even on the million-request workloads it fronts for.
_MAX_FLUID_POINTS = 20_000


def _nearest_rank(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    return ordered[max(1, math.ceil(q / 100 * len(ordered))) - 1]


def _mix_quantile(pairs: Sequence, n: int, q: float) -> float:
    """Nearest-rank quantile of a weighted mix.

    ``pairs`` is value-sorted ``(value, count)`` with counts summing to
    ``n`` — the per-model service distribution without materializing a
    list element per request.
    """
    rank = max(1, math.ceil(q / 100 * n))
    cum = 0
    for value, count in pairs:
        cum += count
        if cum >= rank:
            return value
    return pairs[-1][0]


@dataclass(frozen=True)
class AnalyticServingEstimate:
    """Closed-form counterpart of a :class:`ServingReport`.

    ``p50_ms``/``p95_ms``/``p99_ms``, ``throughput_rps``, and
    ``utilization`` are point estimates; each has a ``*_lo``/``*_hi``
    bracket the simulated value is expected to fall inside.
    """

    fleet: int
    n_requests: int
    duration_ms: float
    mean_qps: float
    peak_qps: float
    #: Offered load in erlangs (availability-derated): the fleet is
    #: stable while this stays below ``fleet``.
    erlangs: float
    mean_service_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    p50_lo_ms: float
    p50_hi_ms: float
    p95_lo_ms: float
    p95_hi_ms: float
    p99_lo_ms: float
    p99_hi_ms: float
    throughput_rps: float
    throughput_lo_rps: float
    throughput_hi_rps: float
    utilization: float
    utilization_lo: float
    utilization_hi: float
    availability: float = 1.0

    @property
    def saturated(self) -> bool:
        return self.erlangs >= self.fleet

    def as_dict(self) -> dict:
        """JSON-friendly flattening (CLI ``--json`` output)."""
        return {
            "fleet": self.fleet,
            "requests": self.n_requests,
            "duration_ms": self.duration_ms,
            "mean_qps": self.mean_qps,
            "peak_qps": self.peak_qps,
            "erlangs": self.erlangs,
            "mean_service_ms": self.mean_service_ms,
            "latency_ms": {
                "p50": self.p50_ms, "p95": self.p95_ms, "p99": self.p99_ms,
                "p50_bracket": [self.p50_lo_ms, self.p50_hi_ms],
                "p95_bracket": [self.p95_lo_ms, self.p95_hi_ms],
                "p99_bracket": [self.p99_lo_ms, self.p99_hi_ms],
            },
            "throughput_rps": self.throughput_rps,
            "throughput_bracket_rps": [self.throughput_lo_rps,
                                       self.throughput_hi_rps],
            "utilization": self.utilization,
            "utilization_bracket": [self.utilization_lo,
                                    self.utilization_hi],
            "availability": self.availability,
        }


def estimate_serving(
    accel: ProTEA,
    requests: Sequence[Request],
    fleet: int,
    *,
    batching: Optional[BatchingPolicy] = None,
    models: Optional[Mapping[str, TransformerConfig]] = None,
    reprogram_latency_ms: float = 0.0,
    duration_ms: Optional[float] = None,
    failures=None,
    window_ms: float = 50.0,
    service: Optional[ServiceTimeModel] = None,
) -> AnalyticServingEstimate:
    """Estimate one serving scenario without simulating it.

    Same workload-shaping arguments as
    :func:`repro.serving.cluster.simulate` (scheduler policy does not
    enter the closed form: the wait model assumes work conservation,
    which every shipped scheduler satisfies).  ``failures`` is a
    :class:`~repro.sim.failures.FailurePlan`; ``window_ms`` is the
    peak-rate window of the arrival envelope.  Callers evaluating many
    fleet sizes over one workload pass a shared ``service``
    (:class:`ServiceTimeModel`) so the latency-report memo carries
    across calls.
    """
    if fleet < 1:
        raise ValueError(f"fleet must be >= 1, got {fleet}")
    if not requests:
        raise ValueError("cannot estimate an empty workload")

    policy = batching or no_batching()
    if service is None:
        service = ServiceTimeModel(accel, models or MODEL_ZOO)
    counts = Counter(r.model for r in requests)
    n = len(requests)
    shares: Dict[str, float] = {m: c / n for m, c in counts.items()}
    single = {m: service.batch_service_ms(m, 1) for m in counts}
    max_batch = policy.max_batch
    full = {m: service.batch_service_ms(m, max_batch) for m in counts}
    switch_prob = ((1.0 - sum(s * s for s in shares.values()))
                   if reprogram_latency_ms > 0 and len(counts) > 1 else 0.0)
    reprogram_ms = reprogram_latency_ms if switch_prob > 0 else 0.0

    availability = 1.0
    repair_pad_ms = 0.0
    if failures is not None:
        mtbf = float(failures.mtbf_ms)
        mttr = float(failures.mttr_ms)
        availability = mtbf / (mtbf + mttr)
        repair_pad_ms = mttr

    times = sorted(r.t_ms for r in requests)
    env = ArrivalEnvelope.from_times(times, duration_ms=duration_ms,
                                     window_ms=window_ms)
    lam_per_ms = env.mean_qps / 1e3
    drain_fluid = fleet * availability  # work-ms drained per ms

    # Point service: batches fill in proportion to how much work piles
    # up per drain opportunity (clamped to the policy's max batch).
    mean_single = sum(shares[m] * single[m] for m in counts)
    b_point = min(max_batch,
                  max(1, math.ceil(lam_per_ms * mean_single / fleet)))
    batched = {m: service.batch_service_ms(m, b_point) for m in counts}
    service_pt = (sum(shares[m] * batched[m] for m in counts)
                  + switch_prob * reprogram_ms)
    work_pt = (sum(shares[m] * batched[m] for m in counts)
               + switch_prob * reprogram_ms) / b_point
    mu_pt = availability / work_pt
    erlangs = lam_per_ms / mu_pt

    stride = max(1, math.ceil(n / _MAX_FLUID_POINTS))
    fluid_times = times[::stride] if stride > 1 else times
    fl_pt, backlog_pt = fluid_waits_ms(fluid_times, work_pt * stride,
                                       drain_fluid)
    fl_pt.sort()

    # Upper bracket: costliest full batch + a switch on every dispatch
    # (+ the dynamic-batching head-of-line deadline, which can delay a
    # request without any backlog at all).
    service_hi = (max(full.values()) + reprogram_ms
                  + (policy.timeout_ms or 0.0))
    work_hi = max(single.values()) + reprogram_ms
    mu_hi = availability / work_hi
    fl_hi, backlog_hi = fluid_waits_ms(fluid_times, work_hi * stride,
                                       drain_fluid)
    fl_hi.sort()
    # Stochastic term of the upper bracket: the conditional-on-wait
    # M/M/c tail at the highest arrival rate the fleet can still drain
    # (the peak window where possible, else the mean; a rate the fleet
    # cannot drain is the fluid walk's regime).
    lam_peak = env.peak_qps / 1e3
    mmc_hi_rate = 0.0
    for rate in (lam_peak, lam_per_ms):
        if fleet * mu_hi > rate:
            mmc_hi_rate = rate
            break

    # Per-request latency floor: a request can never finish faster than
    # one single-request invocation of its own model.  The point
    # quantile draws from the batched-service distribution the same way
    # — a mixed workload's p99 is dominated by its costliest model, not
    # the mean of the mix.
    floors = sorted((single[m], counts[m]) for m in counts)
    points = sorted((batched[m] + switch_prob * reprogram_ms, counts[m])
                    for m in counts)

    quantiles: Dict[float, Dict[str, float]] = {}
    for q in _QUANTILES:
        mmc_pt = (wait_quantile_ms(fleet, erlangs,
                                   fleet * mu_pt - lam_per_ms, q)
                  if erlangs < fleet else 0.0)
        mmc_hi = (wait_quantile_ms(fleet, mmc_hi_rate / mu_hi,
                                   fleet * mu_hi - mmc_hi_rate, q,
                                   bracket=True)
                  if mmc_hi_rate > 0 else 0.0)
        lo = _mix_quantile(floors, n, q)
        hi = (service_hi + max(_nearest_rank(fl_hi, q), mmc_hi)
              + repair_pad_ms)
        point = (_mix_quantile(points, n, q)
                 + max(_nearest_rank(fl_pt, q), mmc_pt))
        quantiles[q] = {
            "point": min(max(point, lo), hi),
            "lo": lo,
            "hi": hi,
        }

    # Makespan brackets bound throughput (= n / makespan) from both
    # sides: the run cannot end before the last arrival finishes its
    # cheapest possible invocation, nor later than the time the fleet
    # needs to drain the worst-case backlog behind it.
    last_t = times[-1]
    makespan_pt = last_t + max(backlog_pt / drain_fluid, service_pt)
    makespan_lo = last_t + min(single.values())
    makespan_hi = (last_t + backlog_hi / drain_fluid + service_hi
                   + repair_pad_ms)

    work_total_pt = n * work_pt
    work_total_lo = sum(counts[m] * full[m] / max_batch for m in counts)
    work_total_hi = sum(counts[m] * (single[m] + reprogram_ms)
                        for m in counts)

    return AnalyticServingEstimate(
        fleet=fleet,
        n_requests=n,
        duration_ms=env.duration_ms,
        mean_qps=env.mean_qps,
        peak_qps=env.peak_qps,
        erlangs=erlangs,
        mean_service_ms=service_pt,
        p50_ms=quantiles[50.0]["point"],
        p95_ms=quantiles[95.0]["point"],
        p99_ms=quantiles[99.0]["point"],
        p50_lo_ms=quantiles[50.0]["lo"],
        p50_hi_ms=quantiles[50.0]["hi"],
        p95_lo_ms=quantiles[95.0]["lo"],
        p95_hi_ms=quantiles[95.0]["hi"],
        p99_lo_ms=quantiles[99.0]["lo"],
        p99_hi_ms=quantiles[99.0]["hi"],
        throughput_rps=n / (makespan_pt / 1e3),
        throughput_lo_rps=n / (makespan_hi / 1e3),
        throughput_hi_rps=n / (makespan_lo / 1e3),
        utilization=min(1.0, work_total_pt / (fleet * makespan_pt)),
        utilization_lo=work_total_lo / (fleet * makespan_hi),
        utilization_hi=min(1.0, work_total_hi / (fleet * makespan_lo)),
        availability=availability,
    )
