"""Closed-form M/M/c queueing: wait probabilities and latency tails.

This module is the numerical core of :mod:`repro.analytic` — the
Erlang machinery that PR 8 grew inside ``repro.dse.surrogate`` now
promoted to a package of its own (the surrogate re-exports it for
compatibility).  Everything here is a pure function of scalars, so the
capacity planner can evaluate thousands of (fleet, load) candidates
for less than the cost of dispatching one simulated batch.

The latency model is ``latency = service + wait`` with the wait drawn
from the M/M/c queueing-delay distribution::

    P(W > t) = Pw * exp(-(c*mu - lambda) * t)

where ``Pw`` is the Erlang-C wait probability.  Quantiles come in two
documented modes:

* **point** (default) — the unconditional quantile
  ``ln(Pw / tail) / (c*mu - lambda)``, floored at the conditional-wait
  quantile weighted by the wait mass.  The floor is the low-load
  bugfix: the raw unconditional quantile is *zero* whenever
  ``Pw <= tail``, which let the old estimate sit below the simulated
  p99 (a finite run's nearest-rank p99 picks a waiter as soon as the
  realized waiter fraction crosses 1%).
* **bracket** (``bracket=True``) — the conditional-on-wait quantile
  ``ln(1 / tail) / (c*mu - lambda)``: the tail of the wait *among
  requests that wait at all*, an upper bound of the unconditional
  quantile at every load.  This is the mode the analytic-vs-simulated
  bracketing tests lean on.

Point-mode waits are capped at the *fluid* wait ``rho * duration`` (a
queue observed for ``duration`` ms cannot delay its p99 request longer
than the backlog the horizon can accumulate), which keeps the estimate
continuous and monotone through the saturation boundary — the property
tests in ``tests/analytic`` hold both monotonicities:

* non-increasing in fleet size at fixed load, and
* non-decreasing in offered load at fixed fleet.
"""

from __future__ import annotations

import math

__all__ = ["erlang_c", "wait_quantile_ms", "latency_quantile_ms",
           "p99_estimate_ms", "min_stable_fleet"]


def erlang_c(servers: int, erlangs: float) -> float:
    """P(wait) for an M/M/c queue offered ``erlangs`` of load.

    Computed through the numerically-stable Erlang-B recurrence
    (no factorials); ``erlangs >= servers`` returns 1.0 — saturated
    queues wait with certainty.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if erlangs < 0:
        raise ValueError(f"offered load must be >= 0, got {erlangs}")
    if erlangs == 0:
        return 0.0
    if erlangs >= servers:
        return 1.0
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = erlangs * blocking / (k + erlangs * blocking)
    rho = erlangs / servers
    return blocking / (1.0 - rho * (1.0 - blocking))


def min_stable_fleet(erlangs: float) -> int:
    """Smallest fleet with spare capacity for ``erlangs`` of load."""
    if erlangs < 0:
        raise ValueError(f"offered load must be >= 0, got {erlangs}")
    return max(1, math.floor(erlangs) + 1)


def wait_quantile_ms(servers: int, erlangs: float, drain_per_ms: float,
                     q: float = 99.0, *, bracket: bool = False) -> float:
    """The ``q``-quantile of the M/M/c queueing delay, in ms.

    ``drain_per_ms`` is the spare service rate ``c*mu - lambda``;
    callers hold the saturation case (``drain <= 0``) themselves
    because only they know the workload horizon that bounds it.

    ``bracket=True`` returns the conditional-on-wait quantile (see the
    module docstring) — an upper bound of the point estimate.
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    if drain_per_ms <= 0:
        raise ValueError("wait_quantile_ms needs drain_per_ms > 0 "
                         "(saturated queues have no steady-state wait)")
    wait_probability = erlang_c(servers, erlangs)
    if wait_probability <= 0.0:
        return 0.0
    tail = (100.0 - q) / 100.0
    if tail <= 0.0:  # q == 100: the distribution is unbounded
        return math.inf
    conditional_ms = -math.log(tail) / drain_per_ms
    if bracket:
        return conditional_ms
    unconditional_ms = (math.log(wait_probability / tail) / drain_per_ms
                        if wait_probability > tail else 0.0)
    # Low-load floor: the conditional quantile scaled by the wait mass
    # keeps the estimate above bare service instead of collapsing to
    # zero the moment Pw crosses the tail threshold.
    return max(unconditional_ms, wait_probability * conditional_ms)


def latency_quantile_ms(service_ms: float, unit_inf_s: float, fleet: int,
                        qps: float, duration_ms: float,
                        q: float = 99.0, *, bracket: bool = False) -> float:
    """Closed-form latency quantile: service + M/M/c wait quantile.

    Saturated points (offered load at or beyond fleet capacity) get a
    deterministic penalty — ``service + duration`` in point mode (the
    queue grows for the whole workload horizon, ranking them behind
    every stable point without an undominatable infinity), and the
    fluid backlog-drain time ``duration * erlangs / fleet`` in bracket
    mode (which keeps growing with overload, as the real tail does).

    Point-mode waits are additionally capped at the fluid wait
    ``duration * erlangs / fleet`` so the estimate passes through the
    saturation boundary continuously and monotonically.
    """
    if fleet < 1:
        raise ValueError(f"fleet must be >= 1, got {fleet}")
    mu_per_ms = unit_inf_s / 1e3          # service rate per instance
    lam_per_ms = qps / 1e3                # offered arrival rate
    if mu_per_ms <= 0:
        return service_ms + duration_ms
    erlangs = lam_per_ms / mu_per_ms
    fluid_ms = duration_ms * erlangs / fleet
    if erlangs >= fleet:
        return service_ms + (fluid_ms if bracket else duration_ms)
    wait_ms = wait_quantile_ms(fleet, erlangs,
                               fleet * mu_per_ms - lam_per_ms, q,
                               bracket=bracket)
    if not bracket:
        wait_ms = min(wait_ms, fluid_ms)
    return service_ms + max(0.0, wait_ms)


def p99_estimate_ms(latency_ms: float, unit_inf_s: float, fleet: int,
                    qps: float, duration_ms: float,
                    *, bracket: bool = False) -> float:
    """The p99 tail estimate (the surrogate's ``p99_ms`` objective)."""
    return latency_quantile_ms(latency_ms, unit_inf_s, fleet, qps,
                               duration_ms, 99.0, bracket=bracket)
