"""Closed-form performance models: the analytic layer under the sim.

``repro.analytic`` estimates what the discrete-event simulators
measure — latency quantiles, TTFT/TPOT, throughput, utilization, fleet
sizing — from summation-model arithmetic instead of event replay
(SNIPPETS.md Snippet 1 is the idiom: add up the latency, bandwidth,
and queueing terms).  The estimates are cross-validated against the
sim kernel on the golden scenarios: every point estimate ships with a
lo/hi bracket the simulated answer must fall inside.

Modules:

* :mod:`~repro.analytic.queueing` — M/M/c Erlang-C wait tails
  (promoted from ``repro.dse.surrogate``, which now re-exports them);
* :mod:`~repro.analytic.envelope` — fluid approximations of concrete
  bursty/diurnal arrival envelopes;
* :mod:`~repro.analytic.serving` — mixed-model serving estimates with
  reprogram-penalty costing;
* :mod:`~repro.analytic.generation` — TTFT/TPOT/token-throughput
  estimates;
* :mod:`~repro.analytic.capacity` — closed-form fleet sizing, the
  analytic-first half of :func:`repro.serving.slo.plan_capacity`.
"""

from .capacity import FleetProposal, propose_fleet
from .envelope import ArrivalEnvelope, fluid_waits_ms
from .generation import AnalyticGenerationEstimate, estimate_generation
from .queueing import (erlang_c, latency_quantile_ms, min_stable_fleet,
                       p99_estimate_ms, wait_quantile_ms)
from .serving import AnalyticServingEstimate, estimate_serving

__all__ = [
    "erlang_c",
    "wait_quantile_ms",
    "latency_quantile_ms",
    "p99_estimate_ms",
    "min_stable_fleet",
    "ArrivalEnvelope",
    "fluid_waits_ms",
    "AnalyticServingEstimate",
    "estimate_serving",
    "AnalyticGenerationEstimate",
    "estimate_generation",
    "FleetProposal",
    "propose_fleet",
]
