"""Run-to-run regression detection between two ``--json`` exports.

``repro obs diff run_a.json run_b.json`` flattens both documents to
dotted numeric leaves (``latency_ms.p99``, ``per_model.x.count``, …),
classifies each metric's *good* direction from its name
(latency/wait/overhead down, throughput/attainment/availability up),
and reports the significant movements: a change is significant when it
clears both an absolute floor (``atol``) and a relative tolerance band
(``rtol``), so float noise between identical runs never pages anyone.

Unclassifiable metrics (seeds, horizons, counts of neutral things)
still surface — as *changed*, not as regressions — because a config
drift between two runs is exactly what a diff should catch.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["flatten", "classify", "DiffEntry", "DiffReport", "diff_runs",
           "render_diff"]

#: Name fragments marking lower-is-better metrics.
_LOWER = ("latency", "p50", "p90", "p95", "p99", "ttft", "tpot", "wait",
          "queue_depth", "overhead", "switch", "reprogram", "downtime",
          "down_ms", "retries", "failures", "preemptions", "violations",
          "alert", "burn", "onset", "power", "energy", "time_ms",
          "busy_ms", "cycles")
#: Name fragments marking higher-is-better metrics.
_HIGHER = ("throughput", "tokens_per_s", "tok_per_s", "goodput",
           "attainment", "availability", "speedup", "rps", "inf_per_s",
           "gops", "completions")


def classify(key: str) -> Optional[str]:
    """The metric's good direction: ``"min"``, ``"max"``, or None.

    Matches name fragments against the full dotted key; a key matching
    both families (or neither) stays unclassified — reported as
    changed, never guessed into a regression.
    """
    low = key.lower()
    lower = any(tok in low for tok in _LOWER)
    higher = any(tok in low for tok in _HIGHER)
    if lower and not higher:
        return "min"
    if higher and not lower:
        return "max"
    return None


def flatten(obj, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested JSON document as dotted keys.

    Bools, strings, and nulls are skipped (they are settings, not
    metrics); lists index their elements.
    """
    out: Dict[str, float] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            out.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(obj, (list, tuple)):
        for idx, value in enumerate(obj):
            out.update(flatten(value, f"{prefix}{idx}."))
    elif isinstance(obj, bool) or obj is None:
        pass
    elif isinstance(obj, (int, float)):
        if math.isfinite(obj):
            out[prefix[:-1]] = float(obj)
    return out


@dataclass(frozen=True)
class DiffEntry:
    """One significantly-moved metric."""

    key: str
    a: float
    b: float
    delta: float
    #: Relative change vs run A (None when A is exactly zero).
    rel: Optional[float]
    #: "min" / "max" / None — the metric's good direction.
    direction: Optional[str]
    #: "regression", "improvement", or "changed" (unclassified).
    kind: str

    def as_dict(self) -> dict:
        return {"key": self.key, "a": self.a, "b": self.b,
                "delta": self.delta, "rel": self.rel,
                "direction": self.direction, "kind": self.kind}


@dataclass(frozen=True)
class DiffReport:
    """Outcome of :func:`diff_runs` (B measured against A)."""

    rtol: float
    atol: float
    #: Metrics compared (present and finite in both runs).
    compared: int
    regressions: List[DiffEntry] = field(default_factory=list)
    improvements: List[DiffEntry] = field(default_factory=list)
    #: Significant movements with no known good direction.
    changed: List[DiffEntry] = field(default_factory=list)
    #: Keys present in exactly one run.
    only_a: List[str] = field(default_factory=list)
    only_b: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> dict:
        return {
            "rtol": self.rtol, "atol": self.atol,
            "compared": self.compared,
            "ok": self.ok,
            "regressions": [e.as_dict() for e in self.regressions],
            "improvements": [e.as_dict() for e in self.improvements],
            "changed": [e.as_dict() for e in self.changed],
            "only_a": list(self.only_a),
            "only_b": list(self.only_b),
        }


def diff_runs(run_a: dict, run_b: dict, rtol: float = 0.05,
              atol: float = 1e-9) -> DiffReport:
    """Significant metric movements from ``run_a`` to ``run_b``.

    Both arguments are parsed ``--json`` run exports (any nested JSON
    works).  ``rtol``/``atol`` define the tolerance band: a metric
    moves significantly when ``|b - a| > atol`` *and* ``|b - a| >
    rtol * |a|``.
    """
    if rtol < 0 or atol < 0:
        raise ValueError(
            f"tolerances must be >= 0, got rtol={rtol}, atol={atol}")
    flat_a = flatten(run_a)
    flat_b = flatten(run_b)
    regressions: List[DiffEntry] = []
    improvements: List[DiffEntry] = []
    changed: List[DiffEntry] = []
    shared = [k for k in flat_a if k in flat_b]
    for key in sorted(shared):
        a, b = flat_a[key], flat_b[key]
        delta = b - a
        if abs(delta) <= atol or abs(delta) <= rtol * abs(a):
            continue
        rel = delta / abs(a) if a != 0 else None
        direction = classify(key)
        if direction is None:
            kind = "changed"
        elif (delta > 0) == (direction == "min"):
            kind = "regression"
        else:
            kind = "improvement"
        entry = DiffEntry(key, a, b, delta, rel, direction, kind)
        {"regression": regressions, "improvement": improvements,
         "changed": changed}[kind].append(entry)

    def _severity(entry: DiffEntry) -> float:
        return abs(entry.rel) if entry.rel is not None else math.inf

    regressions.sort(key=lambda e: (-_severity(e), e.key))
    improvements.sort(key=lambda e: (-_severity(e), e.key))
    return DiffReport(
        rtol=rtol, atol=atol, compared=len(shared),
        regressions=regressions, improvements=improvements,
        changed=changed,
        only_a=sorted(k for k in flat_a if k not in flat_b),
        only_b=sorted(k for k in flat_b if k not in flat_a),
    )


def load_run(path) -> dict:
    """Read one ``--json`` export (exits with a message on bad input
    are the CLI's job; this raises ``ValueError``/``OSError``)."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(
            f"{path}: expected a JSON object (a --json run export), "
            f"got {type(doc).__name__}")
    return doc


def _fmt_rel(entry: DiffEntry) -> str:
    return f"{entry.rel:+.1%}" if entry.rel is not None else "n/a"


def render_diff(report: DiffReport, name_a: str = "A",
                name_b: str = "B") -> str:
    """Human-readable diff summary (the ``obs diff`` text output)."""
    from ..analysis.tables import render_table

    parts: List[str] = []
    verdict = ("OK: no significant regressions" if report.ok
               else f"{len(report.regressions)} significant regression(s)")
    parts.append(f"compared {report.compared} metric(s) "
                 f"[rtol={report.rtol:g}, atol={report.atol:g}] — "
                 f"{verdict}")
    for title, entries in (("Regressions", report.regressions),
                           ("Improvements", report.improvements),
                           ("Changed (no known direction)",
                            report.changed)):
        if entries:
            parts.append(render_table(
                ("metric", name_a, name_b, "delta", "rel"),
                [(e.key, e.a, e.b, e.delta, _fmt_rel(e))
                 for e in entries],
                title=title))
    if report.only_a:
        parts.append(f"only in {name_a}: " + ", ".join(report.only_a))
    if report.only_b:
        parts.append(f"only in {name_b}: " + ", ".join(report.only_b))
    return "\n\n".join(parts)
