"""Changepoint detection over latency series: rolling median + MAD.

:class:`AnomalyDetector` flags the *onset* of degradation in a
streaming series (per-request latency, TTFT) deterministically: the
baseline is a rolling window of recent healthy samples, a new sample
scores by its distance above the baseline median in units of the MAD
(median absolute deviation), and ``debounce`` consecutive anomalous
samples are required before an onset fires — one tail request does not
an outage make.

Design choices that keep detection stable and reproducible:

* **one-sided** — only *upward* excursions score (latency getting
  better is not an anomaly);
* **robust scale with a floor** — the MAD is floored at
  ``rel_floor * |median|`` (and an absolute epsilon) so a near-constant
  healthy baseline (MAD ≈ 0) doesn't turn harmless jitter into
  infinite scores;
* **baseline exclusion** — anomalous samples never enter the baseline,
  so a sustained outage cannot drag the median up and mask itself;
* **debounced recovery** — after an onset, the first healthy sample
  closes the episode and is recorded in :attr:`recoveries`.

Everything is driven by simulated-time samples in arrival order, so
two identical runs produce byte-identical onset lists (asserted by the
watch integration tests).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Dict, List

__all__ = ["AnomalyDetector"]


class AnomalyDetector:
    """Rolling-median + MAD changepoint detector with debounce."""

    def __init__(self, window: int = 64, threshold: float = 6.0,
                 debounce: int = 3, min_samples: int = 12,
                 rel_floor: float = 0.05, abs_floor: float = 1e-9) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1 sample, got {window}")
        if min_samples < 1 or min_samples > window:
            raise ValueError(
                f"min_samples must be in [1, window={window}], got "
                f"{min_samples}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if debounce < 1:
            raise ValueError(f"debounce must be >= 1, got {debounce}")
        if rel_floor < 0 or abs_floor <= 0:
            raise ValueError(
                f"scale floors must be >= 0 (rel) and > 0 (abs), got "
                f"rel_floor={rel_floor}, abs_floor={abs_floor}")
        self.window = window
        self.threshold = threshold
        self.debounce = debounce
        self.min_samples = min_samples
        self.rel_floor = rel_floor
        self.abs_floor = abs_floor
        #: Degradation onsets: {"t_ms", "value", "score"} per episode,
        #: stamped at the *first* sample of the debounced streak.
        self.onsets: List[Dict[str, float]] = []
        #: Timestamps where an episode ended (first healthy sample).
        self.recoveries: List[float] = []
        self.triggered = False
        self._baseline: deque = deque(maxlen=window)
        #: The baseline's values in sorted order, maintained
        #: incrementally — score() runs once per completion and needs
        #: the rolling median without re-sorting the window each time.
        self._sorted: List[float] = []
        self._streak = 0
        self._streak_start = (0.0, 0.0, 0.0)

    def score(self, value: float) -> float:
        """Robust one-sided z-score of ``value`` against the baseline
        (0.0 while the baseline is still warming up)."""
        ordered = self._sorted
        n = len(ordered)
        if n < self.min_samples:
            return 0.0
        # Inlined medians (identical float results to statistics.median,
        # without its per-call overhead): score() runs once per
        # completion, so this is the watchdog's hottest loop.
        half = n // 2
        if n & 1:
            med = ordered[half]
            devs = sorted([abs(x - med) for x in ordered])
            mad = devs[half]
        else:
            med = (ordered[half - 1] + ordered[half]) / 2
            devs = sorted([abs(x - med) for x in ordered])
            mad = (devs[half - 1] + devs[half]) / 2
        scale = max(mad, self.rel_floor * abs(med), self.abs_floor)
        return (value - med) / scale

    def observe(self, t_ms: float, value: float) -> bool:
        """Feed one sample; returns True while the sample is anomalous."""
        score = self.score(value)
        if score >= self.threshold:
            if self._streak == 0:
                self._streak_start = (t_ms, value, score)
            self._streak += 1
            if not self.triggered and self._streak >= self.debounce:
                self.triggered = True
                t0, v0, s0 = self._streak_start
                self.onsets.append({"t_ms": t0, "value": v0, "score": s0})
            return True
        self._streak = 0
        if self.triggered:
            self.triggered = False
            self.recoveries.append(t_ms)
        baseline = self._baseline
        if len(baseline) == self.window:
            del self._sorted[bisect_left(self._sorted, baseline[0])]
        insort(self._sorted, value)
        baseline.append(value)
        return False

    @property
    def onset_times(self) -> List[float]:
        return [onset["t_ms"] for onset in self.onsets]

    def summary(self) -> dict:
        return {
            "onsets": [dict(onset) for onset in self.onsets],
            "recoveries": list(self.recoveries),
            "triggered": self.triggered,
        }
