"""Streaming SLO watchdogs: alert rules + the Watchdog observer.

The alerting pillar of :mod:`repro.obs`.  Three rule shapes, all
evaluated *online* in simulated time:

* :class:`ThresholdRule` — static: fires while a value exceeds a
  threshold;
* :class:`SustainedRule` — fires only once the value has stayed above
  the threshold for ``sustain_ms`` of simulated time (sustained
  utilization / queue depth);
* :class:`BurnRateRule` — multi-window error-budget burn rate over SLO
  outcomes, the Google-SRE alerting shape: with error budget
  ``1 - target``, the burn rate in a window is
  ``(violation fraction) / budget``; the rule fires while *both* a
  fast and a slow trailing window burn at or above ``threshold`` —
  the fast window gives low time-to-detect, the slow window keeps one
  bad batch from paging.

:class:`Watchdog` glues the rules to a live run.  It is an engine
observer (attach via :meth:`repro.sim.kernel.Simulation.
attach_observer`, ``observer=`` on the simulate facades, or the
``serve --watch`` / ``generate --watch`` CLI flags) that derives the
per-request outcome stream from engine events alone:

* **serve mode** — ``dispatch`` events carry no request ids, but the
  engine always dispatches an exact head prefix of the instance's
  FIFO queue, so the watchdog mirrors per-instance rid queues from
  ``arrive``/``requeue`` events and recovers batch membership from
  the dispatch ``size``; the matching ``free`` completes every member
  (latency = free time − first arrival).
* **generate mode** — ``admit`` events precede their ``step`` event at
  the same timestamp, and the step's ``duration`` bounds the first
  token time (an admitted prefill's first token lands *within* the
  step, no later than its end), so each admitted rid's TTFT is pended
  at ``t + duration`` and *committed* only once a later event proves
  the step completed (a ``fail`` before then aborts the step and
  drops the pending TTFTs, exactly mirroring the engine's restart
  semantics).  The bound is step-granular and therefore
  *conservative*: the watchdog never under-counts TTFT violations,
  and matches the offline report exactly whenever first tokens and
  step ends coincide (single-admit steps with no decode sweep).

Completions feed the burn-rate rule, the anomaly detector
(:class:`~repro.obs.anomaly.AnomalyDetector`), and any extra rules;
``fail``/``recover`` feed a fleet-down threshold rule.  Like every
observer the watchdog only *reads* event tuples — a watched run stays
byte-identical to a bare one (re-asserted by the trace-identity
goldens).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .anomaly import AnomalyDetector

__all__ = ["Alert", "AlertRule", "ThresholdRule", "SustainedRule",
           "BurnRateRule", "Watchdog"]

_EPS = 1e-9  # same tolerance the engines use at step/fault boundaries


@dataclass(frozen=True)
class Alert:
    """One alert episode: open/close simulated times plus peak severity."""

    rule: str
    t_open_ms: float
    t_close_ms: float
    peak: float
    #: True when the run drained with the alert still firing (closed
    #: administratively at the horizon by ``finalize``).
    open_at_end: bool = False

    @property
    def duration_ms(self) -> float:
        return self.t_close_ms - self.t_open_ms

    def as_dict(self) -> dict:
        return {"rule": self.rule, "t_open_ms": self.t_open_ms,
                "t_close_ms": self.t_close_ms,
                "duration_ms": self.duration_ms, "peak": self.peak,
                "open_at_end": self.open_at_end}


class AlertRule:
    """Shared open/close bookkeeping for alert rules."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.alerts: List[Alert] = []
        self._open_since: Optional[float] = None
        self._peak = 0.0

    @property
    def firing(self) -> bool:
        return self._open_since is not None

    def _update(self, t_ms: float, firing: bool, severity: float) -> None:
        if firing:
            if self._open_since is None:
                self._open_since = t_ms
                self._peak = severity
            elif severity > self._peak:
                self._peak = severity
        elif self._open_since is not None:
            self.alerts.append(Alert(self.name, self._open_since, t_ms,
                                     self._peak))
            self._open_since = None

    def finalize(self, t_ms: float) -> None:
        """Close a still-firing alert at the run horizon."""
        if self._open_since is not None:
            self.alerts.append(Alert(self.name, self._open_since, t_ms,
                                     self._peak, open_at_end=True))
            self._open_since = None

    def total_alert_ms(self) -> float:
        return sum(a.duration_ms for a in self.alerts)

    def summary(self) -> dict:
        return {"alerts": len(self.alerts),
                "alert_ms": self.total_alert_ms()}


class ThresholdRule(AlertRule):
    """Static threshold: fires while ``value > threshold``."""

    def __init__(self, name: str, threshold: float,
                 sustain_ms: float = 0.0) -> None:
        super().__init__(name)
        if sustain_ms < 0:
            raise ValueError(
                f"sustain_ms must be >= 0, got {sustain_ms}")
        self.threshold = threshold
        self.sustain_ms = sustain_ms
        self._above_since: Optional[float] = None

    def observe(self, t_ms: float, value: float) -> None:
        if value > self.threshold:
            if self._above_since is None:
                self._above_since = t_ms
            if t_ms - self._above_since >= self.sustain_ms:
                self._update(t_ms, True, value)
        else:
            self._above_since = None
            self._update(t_ms, False, value)


class SustainedRule(ThresholdRule):
    """Threshold that must hold for ``sustain_ms`` before firing."""

    def __init__(self, name: str, threshold: float,
                 sustain_ms: float) -> None:
        if not sustain_ms > 0:
            raise ValueError(
                f"SustainedRule needs sustain_ms > 0 (got {sustain_ms}); "
                "use ThresholdRule for instant alerts")
        super().__init__(name, threshold, sustain_ms)


class BurnRateRule(AlertRule):
    """Multi-window error-budget burn rate over SLO outcomes.

    Feed one boolean outcome per completion via :meth:`observe`; the
    rule fires while min(fast-window burn, slow-window burn) >=
    ``threshold``, where a window's burn is its violation fraction
    divided by the error budget ``1 - target``.
    """

    def __init__(self, target: float, fast_ms: float, slow_ms: float,
                 threshold: float, name: str = "burn_rate") -> None:
        super().__init__(name)
        if not 0.0 < target < 1.0:
            raise ValueError(
                f"SLO target must be in (0, 1), got {target}")
        if not fast_ms > 0 or not slow_ms > 0:
            raise ValueError(
                f"burn windows must be > 0 ms, got fast={fast_ms}, "
                f"slow={slow_ms}")
        if slow_ms < fast_ms:
            raise ValueError(
                f"slow window ({slow_ms} ms) must be >= fast window "
                f"({fast_ms} ms)")
        if threshold <= 0:
            raise ValueError(
                f"burn threshold must be > 0, got {threshold}")
        self.target = target
        self.budget = 1.0 - target
        self.threshold = threshold
        # Raw trailing windows of (t_ms, bad) outcomes with running
        # violation counts: observe() runs once per completion, so the
        # windows are kept O(1)-amortized with no per-call indirection.
        self._fast_ms = fast_ms
        self._slow_ms = slow_ms
        self._fast: deque = deque()
        self._slow: deque = deque()
        self._fast_bad = 0
        self._slow_bad = 0
        #: Peak of min(fast, slow) burn seen across the run.
        self.max_burn = 0.0

    def burn_rates(self) -> Tuple[float, float]:
        """(fast, slow) burn as of the last observation."""
        fast = (self._fast_bad / len(self._fast) / self.budget
                if self._fast else 0.0)
        slow = (self._slow_bad / len(self._slow) / self.budget
                if self._slow else 0.0)
        return fast, slow

    def observe(self, t_ms: float, ok: bool) -> None:
        bad = 0 if ok else 1
        # Samples exactly window-width old evict: each window covers
        # the half-open interval (t - width, t], matching SlidingWindow.
        fast = self._fast
        fast.append((t_ms, bad))
        self._fast_bad += bad
        edge = t_ms - self._fast_ms
        while fast[0][0] <= edge:
            self._fast_bad -= fast.popleft()[1]
        slow = self._slow
        slow.append((t_ms, bad))
        self._slow_bad += bad
        edge = t_ms - self._slow_ms
        while slow[0][0] <= edge:
            self._slow_bad -= slow.popleft()[1]
        fast_burn, slow_burn = self.burn_rates()
        burn = min(fast_burn, slow_burn)
        if burn > self.max_burn:
            self.max_burn = burn
        self._update(t_ms, burn >= self.threshold, burn)


class Watchdog:
    """Online SLO watchdog over a serve or generate run (an observer).

    ``slo_ms`` bounds per-request latency in serve mode and TTFT in
    generate mode.  ``target`` is the SLO attainment objective whose
    error budget the burn-rate rule tracks.  ``queue_threshold`` arms
    an optional sustained queue-depth rule; ``rules`` adds extra rules
    fed the per-completion outcome values (``observe(t_ms, value)``).
    """

    def __init__(self, slo_ms: float, target: float = 0.99,
                 fast_window_ms: float = 100.0,
                 slow_window_ms: float = 500.0,
                 burn_threshold: float = 2.0,
                 queue_threshold: Optional[float] = None,
                 queue_sustain_ms: float = 10.0,
                 detector: Optional[AnomalyDetector] = None,
                 rules: Sequence[AlertRule] = ()) -> None:
        if not slo_ms > 0:
            raise ValueError(f"slo_ms must be > 0, got {slo_ms}")
        self.slo_ms = slo_ms
        self.target = target
        self.burn_rule = BurnRateRule(target, fast_window_ms,
                                      slow_window_ms, burn_threshold)
        self.down_rule = ThresholdRule("fleet_down", threshold=0.0)
        self.queue_rule: Optional[SustainedRule] = None
        if queue_threshold is not None:
            self.queue_rule = SustainedRule("queue_depth", queue_threshold,
                                            queue_sustain_ms)
        self.detector = (detector if detector is not None
                         else AnomalyDetector())
        self.extra_rules = tuple(rules)
        self.completions = 0
        self.violations = 0
        #: rid -> first arrival time (retries keep the original).
        self._arrive: Dict[int, float] = {}
        #: Serve+generate: per-instance FIFO mirror of queued rids.
        self._queues: Dict[int, List[int]] = {}
        #: Serve: rids of the in-flight batch per instance.
        self._batches: Dict[int, List[int]] = {}
        #: Generate: rids admitted since the last step emit per instance.
        self._admits: Dict[int, List[int]] = {}
        #: Generate: (t_first, [(rid, ttft), ...]) pending commit.
        self._pending: Dict[int, Tuple[float, List[Tuple[int, float]]]] = {}
        #: Earliest pending commit time — lets the per-event hot path
        #: skip the commit scan until something is actually due.
        self._next_due = float("inf")
        self._down = 0
        self._queued = 0
        self._parked = 0
        self._finished = False
        self._horizon_ms = 0.0

    # -- rule plumbing ---------------------------------------------------
    def rules(self) -> List[AlertRule]:
        out: List[AlertRule] = [self.burn_rule, self.down_rule]
        if self.queue_rule is not None:
            out.append(self.queue_rule)
        out.extend(self.extra_rules)
        return out

    def _outcome(self, t_ms: float, value: float) -> None:
        self.completions += 1
        ok = value <= self.slo_ms
        if not ok:
            self.violations += 1
        self.burn_rule.observe(t_ms, ok)
        self.detector.observe(t_ms, value)
        for rule in self.extra_rules:
            rule.observe(t_ms, value)

    def _commit_due(self, t_ms: float) -> None:
        """Commit pending TTFTs whose step provably completed by
        ``t_ms`` (events arrive in nondecreasing time, so any pending
        first-token time at or before now is final)."""
        due = [(t_done, inst) for inst, (t_done, _) in self._pending.items()
               if t_done <= t_ms + _EPS]
        for t_done, inst in sorted(due):
            for rid, ttft in self._pending.pop(inst)[1]:
                self._outcome(t_done, ttft)
        self._next_due = min(
            (t_done for t_done, _ in self._pending.values()),
            default=float("inf"))

    def _note_queue(self, t_ms: float) -> None:
        """Feed the queue-depth rule (callers guard on it being armed —
        the per-event hot path skips the call entirely otherwise)."""
        self.queue_rule.observe(t_ms, float(self._queued + self._parked))

    # -- the observer hook -----------------------------------------------
    def on_event(self, event: tuple) -> None:
        kind = event[0]
        t = event[1]
        self._horizon_ms = t
        if self._next_due <= t + _EPS:
            self._commit_due(t)
        if kind == "arrive":
            rid, inst = event[2], event[4]
            if rid not in self._arrive:
                self._arrive[rid] = t
            if inst >= 0:
                self._queues.setdefault(inst, []).append(rid)
                self._queued += 1
            else:
                self._parked += 1
            if self.queue_rule is not None:
                self._note_queue(t)
        elif kind == "requeue":  # observer-only: displaced work re-queued
            rid, inst = event[2], event[3]
            if inst >= 0:
                self._queues.setdefault(inst, []).append(rid)
                self._queued += 1
            else:
                self._parked += 1
            if self.queue_rule is not None:
                self._note_queue(t)
        elif kind == "dispatch":  # serve: head prefix of the mirror
            inst, size = event[2], event[4]
            queue = self._queues.get(inst, [])
            self._batches[inst] = queue[:size]
            del queue[:size]
            self._queued -= size
            if self.queue_rule is not None:
                self._note_queue(t)
        elif kind == "free":  # serve: every batch member completes
            arrive = self._arrive
            for rid in self._batches.pop(event[2], ()):
                self._outcome(t, t - arrive[rid])
        elif kind == "admit":  # generate: first token due at step end
            inst, rid = event[2], event[3]
            self._admits.setdefault(inst, []).append(rid)
            self._unqueue(inst, rid)
            self._queued -= 1
            if self.queue_rule is not None:
                self._note_queue(t)
        elif kind == "resume":  # generate: first token already delivered
            inst, rid = event[2], event[3]
            self._unqueue(inst, rid)
            self._queued -= 1
            if self.queue_rule is not None:
                self._note_queue(t)
        elif kind == "step":  # generate: fixes t_first for this admit set
            inst, duration = event[2], event[6]
            admitted = self._admits.pop(inst, None)
            if admitted:
                t_first = t + duration
                arrive = self._arrive
                self._pending[inst] = (
                    t_first, [(rid, t_first - arrive[rid])
                              for rid in admitted])
                if t_first < self._next_due:
                    self._next_due = t_first
        elif kind == "preempt":  # generate: victim re-queues in place
            inst, rid = event[2], event[3]
            self._queues.setdefault(inst, []).append(rid)
            self._queued += 1
            if self.queue_rule is not None:
                self._note_queue(t)
        elif kind == "fail":
            inst = event[2]
            self._down += 1
            # The in-flight step (if any) aborted before its first
            # tokens were delivered: drop the pending TTFTs — those
            # sequences restart and re-pend on re-admission.  Queued
            # and in-flight work re-enters via requeue events.
            self._pending.pop(inst, None)
            self._admits.pop(inst, None)
            self._batches.pop(inst, None)
            queued = self._queues.pop(inst, None)
            if queued:
                self._queued -= len(queued)
            self.down_rule.observe(t, float(self._down))
            if self.queue_rule is not None:
                self._note_queue(t)
        elif kind == "recover":
            self._down -= 1
            # The engine drains all parked work through the dispatcher
            # now; each entry re-appears as a requeue event.
            self._parked = 0
            self.down_rule.observe(t, float(self._down))
            if self.queue_rule is not None:
                self._note_queue(t)
        # "finish" and unknown kinds need no bookkeeping here.

    __call__ = on_event

    def _unqueue(self, inst: int, rid: int) -> None:
        """Drop one rid from an instance's queue mirror (admission is
        FIFO-by-model or priority order, so remove by value)."""
        queue = self._queues.get(inst)
        if queue is not None:
            try:
                queue.remove(rid)
            except ValueError:
                pass  # admitted from a queue state we never mirrored

    def finish(self, t_ms: float) -> None:
        """Commit trailing first-token outcomes and close open alerts."""
        if self._finished:
            return
        self._finished = True
        self._horizon_ms = max(self._horizon_ms, t_ms)
        if self._pending:
            self._commit_due(float("inf"))
        for rule in self.rules():
            rule.finalize(t_ms)

    # -- results -----------------------------------------------------------
    def alerts(self) -> List[Alert]:
        """Every alert across every rule, in open-time order."""
        out = [a for rule in self.rules() for a in rule.alerts]
        out.sort(key=lambda a: (a.t_open_ms, a.rule))
        return out

    def summary(self) -> dict:
        """The watch block reported by serve/generate summaries."""
        alerts = self.alerts()
        total = self.completions
        attainment = (1.0 - self.violations / total) if total else None
        budget = 1.0 - self.target
        return {
            "slo_ms": self.slo_ms,
            "target": self.target,
            "completions": total,
            "violations": self.violations,
            "attainment": attainment,
            #: Fraction of the run's total error budget consumed
            #: (> 1 means the budget is blown).
            "budget_burn": (self.violations / (budget * total)
                            if total else 0.0),
            "max_burn_rate": self.burn_rule.max_burn,
            "alerts": len(alerts),
            "alert_minutes": sum(a.duration_ms for a in alerts) / 60e3,
            "time_to_first_alert_ms": (
                min(a.t_open_ms for a in alerts) if alerts else None),
            "anomaly_onsets": self.detector.onset_times,
            "rules": {rule.name: rule.summary() for rule in self.rules()},
        }

    def annotate(self, tracer) -> None:
        """Emit alert spans + anomaly onsets onto the trace's alerts
        row (call after the run, before the trace is exported)."""
        for rule in self.rules():
            for alert in rule.alerts:
                tracer.alert_span(rule.name, alert.t_open_ms,
                                  alert.duration_ms, peak=alert.peak,
                                  open_at_end=alert.open_at_end)
        for onset in self.detector.onsets:
            tracer.alert_instant("anomaly_onset", onset["t_ms"],
                                 value=onset["value"],
                                 score=onset["score"])
