"""Hotspot profiling: kernel event attribution and DSE instrumentation.

The profiling pillar of :mod:`repro.obs`, two instruments for the two
performance questions the ROADMAP is currently debugging blind:

* :class:`KernelProfiler` — where does the sim kernel's *wall time* go,
  by event kind?  Attach via
  :meth:`repro.sim.kernel.Simulation.attach_profiler`; the engine then
  times every handler dispatch.  The bare (detached) path is untouched
  — the engines select the timing loop once per run, so a run without a
  profiler costs what it always did.
* :class:`DseProfile` — where does a DSE sweep's time go?  Passed
  through :func:`repro.dse.engine.explore` (``profile=True``), it
  records the eval-cache hit/miss split, per-point evaluation wall
  time (worker-side, so pool overhead is *excluded* and shows up as
  idle), per-worker batch dispatch counts, and a per-worker
  dispatch/idle breakdown over the pool's busy window.  This is the
  instrument that attributed the old per-sweep pool's
  ``dse_parallel_speedup_x < 1`` to spawn/pickle overhead — and what
  now verifies the persistent pool's dispatch accounting.

Neither instrument perturbs simulated results: wall clocks feed only
the profile, never the simulation's event order or floats.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from ..analysis.tables import render_table

__all__ = ["KernelProfiler", "DseProfile", "render_kernel_profile",
           "render_dse_profile"]


class KernelProfiler:
    """Per-event-kind counts and wall-time attribution for one run."""

    __slots__ = ("counts", "wall_s")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.wall_s: Dict[str, float] = {}

    def record(self, kind: str, elapsed_s: float) -> None:
        """Attribute one handler dispatch (hot: called per event)."""
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.wall_s[kind] = self.wall_s.get(kind, 0.0) + elapsed_s

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    @property
    def total_wall_s(self) -> float:
        return sum(self.wall_s.values())

    def as_dict(self) -> dict:
        total = self.total_wall_s
        return {
            "events": self.total_events,
            "wall_s": total,
            "by_kind": {
                kind: {
                    "count": self.counts[kind],
                    "wall_s": self.wall_s[kind],
                    "share": (self.wall_s[kind] / total) if total else 0.0,
                }
                for kind in sorted(self.counts)
            },
        }


def render_kernel_profile(profiler: KernelProfiler,
                          title: str = "Kernel profile") -> str:
    """Per-event-kind hotspot table, heaviest first."""
    total = profiler.total_wall_s
    rows = [
        (kind,
         profiler.counts[kind],
         round(profiler.wall_s[kind] * 1e3, 3),
         f"{(profiler.wall_s[kind] / total if total else 0.0):.1%}",
         round(profiler.wall_s[kind] / profiler.counts[kind] * 1e6, 2))
        for kind in sorted(profiler.counts,
                           key=lambda k: -profiler.wall_s[k])
    ]
    table = render_table(
        ("event kind", "count", "wall ms", "share", "us/event"), rows,
        title=title)
    return (f"{table}\n{profiler.total_events} event(s), "
            f"{total * 1e3:.3f} ms attributed")


class DseProfile:
    """Instrumentation for one :func:`~repro.dse.engine.explore` run."""

    def __init__(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0
        #: One entry per fresh evaluation:
        #: {"point", "worker", "wall_s", "error"}.
        self.points: List[Dict[str, Any]] = []
        #: Wall time the engine spent inside dispatch (pool or serial),
        #: summed over batches — the window workers could have been busy.
        self.dispatch_wall_s = 0.0
        #: One entry per dispatch the engine sent: {"worker", "points"}.
        #: Under the persistent pool a dispatch is one point batch
        #: handed to one worker; serially it is a whole ask-round.
        self.dispatches: List[Dict[str, Any]] = []

    # -- recording (engine-facing) ----------------------------------------
    def add_batch(self, window_s: float) -> None:
        self.dispatch_wall_s += window_s

    def add_dispatch(self, worker: str, points: int) -> None:
        """Record one batch handed to ``worker`` (``points`` in it)."""
        self.dispatches.append({"worker": worker, "points": points})

    def add_point(self, point: Mapping[str, Any], worker: str,
                  wall_s: float, error: str = "") -> None:
        self.points.append({"point": dict(point), "worker": worker,
                            "wall_s": wall_s, "error": error})

    # -- derived views -----------------------------------------------------
    @property
    def eval_wall_s(self) -> float:
        """Total worker-side evaluation time (sum over points)."""
        return sum(p["wall_s"] for p in self.points)

    def workers(self) -> Dict[str, Dict[str, float]]:
        """Per-worker breakdown: tasks, busy, and idle wall time.

        Idle is the dispatch window minus the worker's busy time — the
        spawn/pickle/queueing overhead the ROADMAP suspects.  Serial
        runs show one ``main`` worker with idle ≈ engine bookkeeping.
        """
        table: Dict[str, Dict[str, float]] = {}
        for p in self.points:
            entry = table.setdefault(
                p["worker"], {"tasks": 0, "busy_s": 0.0, "idle_s": 0.0})
            entry["tasks"] += 1
            entry["busy_s"] += p["wall_s"]
        for entry in table.values():
            entry["idle_s"] = max(0.0, self.dispatch_wall_s
                                  - entry["busy_s"])
        return table

    def slowest(self, n: int = 5) -> List[Dict[str, Any]]:
        return sorted(self.points, key=lambda p: -p["wall_s"])[:n]

    def dispatch_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-worker dispatch totals: batches received, points in them."""
        table: Dict[str, Dict[str, int]] = {}
        for d in self.dispatches:
            entry = table.setdefault(d["worker"],
                                     {"batches": 0, "points": 0})
            entry["batches"] += 1
            entry["points"] += d["points"]
        return table

    def as_dict(self) -> dict:
        return {
            "cache": {"hits": self.cache_hits,
                      "misses": self.cache_misses},
            "evaluations": len(self.points),
            "eval_wall_s": self.eval_wall_s,
            "dispatch_wall_s": self.dispatch_wall_s,
            "dispatches": self.dispatch_counts(),
            "workers": self.workers(),
            "slowest": [
                {"point": p["point"], "worker": p["worker"],
                 "wall_s": p["wall_s"], "error": p["error"]}
                for p in self.slowest()
            ],
        }


def render_dse_profile(profile: DseProfile,
                       title: str = "DSE profile") -> str:
    """Cache split, per-worker dispatch/idle table, slowest points."""
    workers = profile.workers()
    lines = [
        f"{title}: {profile.cache_hits} cache hit(s), "
        f"{profile.cache_misses} miss(es), "
        f"{len(profile.points)} fresh evaluation(s) in "
        f"{profile.eval_wall_s:.3f} s of worker time "
        f"({profile.dispatch_wall_s:.3f} s dispatch wall)",
    ]
    if workers:
        lines.append(render_table(
            ("worker", "tasks", "busy s", "idle s", "busy share"),
            [(name, int(w["tasks"]), round(w["busy_s"], 4),
              round(w["idle_s"], 4),
              f"{(w['busy_s'] / profile.dispatch_wall_s):.1%}"
              if profile.dispatch_wall_s else "-")
             for name, w in sorted(workers.items())],
            title="Per-worker",
        ))
    slowest = profile.slowest()
    if slowest:
        lines.append(render_table(
            ("wall s", "worker", "point"),
            [(round(p["wall_s"], 4), p["worker"],
              ",".join(f"{k}={v}" for k, v in sorted(p["point"].items())))
             for p in slowest],
            title="Slowest evaluations",
        ))
    return "\n\n".join(lines)
