"""Chrome-trace-event recording of simulation runs.

:class:`TraceRecorder` is the tracing pillar of :mod:`repro.obs`: an
observer (see :meth:`repro.sim.kernel.Simulation.attach_observer`) that
converts the engines' flat event tuples into the `Chrome trace-event
format <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
viewable in ``chrome://tracing`` / `Perfetto <https://ui.perfetto.dev>`_.

The mapping is one *process* per run, one *thread row per instance*
(plus a ``requests`` row for arrivals):

* serve mode — every ``dispatch`` opens a batch span on its instance's
  row, closed by the matching ``free`` (aborted batches are closed by
  the ``fail`` that killed them, flagged ``aborted``); arrivals are
  instants; a ``fail``/``recover`` pair becomes a ``down`` span.
* generate mode — every ``step`` is a complete span (its duration is
  known at emission); ``admit``/``resume`` open a per-request sequence
  span closed by ``finish`` (or by ``preempt``/``fail`` displacement);
  arrivals and preemptions are instants; ``fail``/``recover`` becomes a
  ``down`` span.

The recorder only *reads* event tuples — it never touches the clock,
the RNG streams, or the event queue — so an instrumented run is
byte-identical to a bare one (pinned by the trace-identity goldens).

Simulated time maps to the trace timebase directly: 1 simulated ms =
1 trace "microsecond", so viewer timestamps read as simulated
milliseconds (``displayTimeUnit`` metadata records this convention).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["TraceRecorder", "summarize_trace", "render_trace_summary"]

#: The run's single trace process id.
_PID = 0
#: Thread row for request arrivals (instances use 1 + index).
_TID_REQUESTS = 0
#: Thread row for watchdog alert spans (far above any instance row).
_TID_ALERTS = 10_000


def _tid(instance: int) -> int:
    """Instance index → trace thread row (row 0 is the arrivals lane)."""
    return 1 + instance


class TraceRecorder:
    """Record span/instant events and export Chrome trace-event JSON.

    Use directly (:meth:`instant` / :meth:`complete` / :meth:`counter`)
    or attach to a simulation engine, whose event tuples it understands
    via :meth:`on_event` (the recorder itself is the observer
    callable).
    """

    def __init__(self) -> None:
        #: Finished Chrome trace events (dicts, export order).
        self.events: List[Dict[str, Any]] = []
        #: Instance rows seen so far (emits thread-name metadata once).
        self._named: Dict[int, str] = {}
        #: In-flight serve batch per instance: (t_dispatch, model, size).
        self._open_batches: Dict[int, Tuple[float, str, int]] = {}
        #: In-flight generation sequence span per rid: (t_open, args).
        self._open_seqs: Dict[int, Tuple[float, Dict[str, Any]]] = {}
        #: Fault start per instance (closed by recover or finish()).
        self._down_since: Dict[int, float] = {}
        self._finished = False

    # -- primitive recording -------------------------------------------
    def _name_row(self, tid: int, name: str) -> None:
        if tid not in self._named:
            self._named[tid] = name
            self.events.append({
                "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
                "args": {"name": name},
            })

    def instant(self, name: str, t_ms: float, tid: int = _TID_REQUESTS,
                **args: Any) -> None:
        """One instant event (``ph="i"``, thread scope)."""
        self.events.append({
            "name": name, "ph": "i", "s": "t", "ts": t_ms,
            "pid": _PID, "tid": tid, "args": args,
        })

    def complete(self, name: str, t_ms: float, dur_ms: float,
                 tid: int = _TID_REQUESTS, **args: Any) -> None:
        """One complete span (``ph="X"`` with a duration)."""
        self.events.append({
            "name": name, "ph": "X", "ts": t_ms, "dur": dur_ms,
            "pid": _PID, "tid": tid, "args": args,
        })

    def counter(self, name: str, t_ms: float, value: float) -> None:
        """One counter sample (``ph="C"``, rendered as a track)."""
        self.events.append({
            "name": name, "ph": "C", "ts": t_ms,
            "pid": _PID, "tid": _TID_REQUESTS, "args": {name: value},
        })

    # -- watchdog annotation ---------------------------------------------
    def alert_span(self, rule: str, t_ms: float, dur_ms: float,
                   **args: Any) -> None:
        """One alert episode on the dedicated alerts row (named
        ``alert:<rule>`` so alert spans sort together in viewers)."""
        self._name_row(_TID_ALERTS, "alerts")
        self.complete(f"alert:{rule}", t_ms, dur_ms, _TID_ALERTS, **args)

    def alert_instant(self, name: str, t_ms: float, **args: Any) -> None:
        """One alert-row instant (e.g. an anomaly-detector onset)."""
        self._name_row(_TID_ALERTS, "alerts")
        self.instant(name, t_ms, _TID_ALERTS, **args)

    # -- the observer hook ----------------------------------------------
    def on_event(self, event: tuple) -> None:
        """Consume one engine trace tuple (serve or generate vocabulary)."""
        kind = event[0]
        t = event[1]
        if kind == "arrive":
            _, _, rid, model, inst = event
            self._name_row(_TID_REQUESTS, "requests")
            self.instant("arrive", t, rid=rid, model=model, instance=inst)
        elif kind == "dispatch":  # serve: opens a batch span
            _, _, inst, model, size, switch_ms = event
            self._name_row(_tid(inst), f"instance {inst}")
            self._open_batches[inst] = (t, model, size)
            if switch_ms:
                self.complete("reprogram", t, switch_ms, _tid(inst),
                              model=model)
        elif kind == "free":  # serve: closes the instance's batch span
            _, _, inst = event
            opened = self._open_batches.pop(inst, None)
            if opened is not None:
                t0, model, size = opened
                self.complete("batch", t0, t - t0, _tid(inst),
                              model=model, size=size)
        elif kind == "step":  # generate: duration known at emission
            _, _, inst, model, admitted, decoding, duration = event
            self._name_row(_tid(inst), f"instance {inst}")
            self.complete("step", t, duration, _tid(inst), model=model,
                          admitted=admitted, decoding=decoding)
        elif kind == "admit":
            _, _, inst, rid, prompt, output = event
            self._name_row(_tid(inst), f"instance {inst}")
            self._open_seqs[rid] = (t, {"rid": rid, "instance": inst,
                                        "prompt_tokens": prompt,
                                        "output_tokens": output})
        elif kind == "resume":
            _, _, inst, rid, cached, remaining = event
            self._name_row(_tid(inst), f"instance {inst}")
            self._open_seqs[rid] = (t, {"rid": rid, "instance": inst,
                                        "cached": cached,
                                        "remaining": remaining,
                                        "resumed": True})
        elif kind == "finish":
            _, _, inst, rid = event
            self._close_seq(rid, t, "sequence")
        elif kind == "preempt":
            _, _, inst, rid = event
            self.instant("preempt", t, _tid(inst), rid=rid)
            self._close_seq(rid, t, "sequence (preempted)")
        elif kind == "fail":
            _, _, inst = event
            self._name_row(_tid(inst), f"instance {inst}")
            self._down_since[inst] = t
            self.instant("fail", t, _tid(inst))
            opened = self._open_batches.pop(inst, None)
            if opened is not None:  # serve: the in-flight batch aborted
                t0, model, size = opened
                self.complete("batch", t0, t - t0, _tid(inst),
                              model=model, size=size, aborted=True)
            # generate: displace every sequence span open on this row.
            for rid in [r for r, (_, args) in self._open_seqs.items()
                        if args.get("instance") == inst]:
                self._close_seq(rid, t, "sequence (failed over)")
        elif kind == "recover":
            _, _, inst = event
            t0 = self._down_since.pop(inst, None)
            if t0 is not None:
                self.complete("down", t0, t - t0, _tid(inst))
        # unknown kinds are ignored: new engine events must never crash
        # an attached recorder mid-run.

    __call__ = on_event

    def _close_seq(self, rid: int, t: float, name: str) -> None:
        opened = self._open_seqs.pop(rid, None)
        if opened is not None:
            t0, args = opened
            self.complete(name, t0, t - t0,
                          _tid(args.get("instance", -1)), **args)

    def finish(self, t_ms: float) -> None:
        """Close every span still open at the end of the run."""
        if self._finished:
            return
        self._finished = True
        for inst, (t0, model, size) in sorted(self._open_batches.items()):
            self.complete("batch", t0, t_ms - t0, _tid(inst),
                          model=model, size=size, unfinished=True)
        self._open_batches.clear()
        for rid in sorted(self._open_seqs):
            self._close_seq(rid, t_ms, "sequence (unfinished)")
        for inst, t0 in sorted(self._down_since.items()):
            self.complete("down", t0, t_ms - t0, _tid(inst))
        self._down_since.clear()

    # -- export ----------------------------------------------------------
    def to_chrome(self, run_config: Optional[Dict[str, Any]] = None) -> dict:
        """The run as a Chrome trace-event JSON object.

        ``run_config`` lands under ``metadata.run_config`` so an
        exported trace is correlatable with the run that produced it.
        """
        metadata: Dict[str, Any] = {
            "timebase": "1 trace us == 1 simulated ms"}
        if run_config is not None:
            metadata["run_config"] = dict(run_config)
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "metadata": metadata,
        }

    def dump(self, path: os.PathLike,
             run_config: Optional[Dict[str, Any]] = None) -> None:
        """Write the Chrome trace JSON to ``path`` (raises ``OSError``
        for unwritable destinations — callers own the exit message)."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(run_config), fh, indent=1)
            fh.write("\n")

    def __len__(self) -> int:
        return len(self.events)


def summarize_trace(doc: Dict[str, Any]) -> dict:
    """Aggregate one exported Chrome-trace document.

    ``doc`` is the parsed JSON a :meth:`TraceRecorder.dump` wrote (any
    trace-event document with a ``traceEvents`` list works).  Returns
    per-span-name totals, instant counts, the thread-row names, and
    the alert timeline (spans/instants on the alerts row), ready for
    ``repro obs trace-summary``.
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(
            "not a Chrome trace-event document: missing 'traceEvents' "
            "list")
    spans: Dict[str, Dict[str, float]] = {}
    instants: Dict[str, int] = {}
    threads: Dict[int, str] = {}
    alerts: List[Dict[str, Any]] = []
    for event in events:
        ph = event.get("ph")
        name = str(event.get("name", ""))
        tid = event.get("tid", 0)
        if ph == "M":
            if name == "thread_name":
                threads[tid] = event.get("args", {}).get("name", "")
            continue
        on_alert_row = tid == _TID_ALERTS
        if ph == "X":
            dur = float(event.get("dur", 0.0))
            agg = spans.setdefault(
                name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0})
            agg["count"] += 1
            agg["total_ms"] += dur
            agg["max_ms"] = max(agg["max_ms"], dur)
            if on_alert_row:
                alerts.append({"name": name, "t_ms": float(event["ts"]),
                               "dur_ms": dur})
        elif ph == "i":
            instants[name] = instants.get(name, 0) + 1
            if on_alert_row:
                alerts.append({"name": name, "t_ms": float(event["ts"]),
                               "dur_ms": 0.0})
    alerts.sort(key=lambda a: (a["t_ms"], a["name"]))
    return {
        "events": len(events),
        "threads": {tid: threads[tid] for tid in sorted(threads)},
        "spans": {name: spans[name] for name in sorted(spans)},
        "instants": {name: instants[name] for name in sorted(instants)},
        "alerts": alerts,
        "metadata": doc.get("metadata", {}),
    }


def render_trace_summary(summary: dict, top: int = 10) -> str:
    """Text tables for a :func:`summarize_trace` result: the top spans
    by total simulated time, instant counts, and the alert timeline."""
    from ..analysis.tables import render_table

    parts: List[str] = [
        f"{summary['events']} trace event(s) across "
        f"{len(summary['threads'])} row(s)"]
    spans = sorted(summary["spans"].items(),
                   key=lambda kv: (-kv[1]["total_ms"], kv[0]))[:top]
    if spans:
        parts.append(render_table(
            ("span", "count", "total ms", "mean ms", "max ms"),
            [(name, int(agg["count"]), agg["total_ms"],
              agg["total_ms"] / agg["count"], agg["max_ms"])
             for name, agg in spans],
            title=f"Top {len(spans)} span(s) by total simulated time"))
    if summary["instants"]:
        parts.append(render_table(
            ("instant", "count"),
            sorted(summary["instants"].items()),
            title="Instants"))
    if summary["alerts"]:
        parts.append(render_table(
            ("t_ms", "event", "duration ms"),
            [(a["t_ms"], a["name"], a["dur_ms"])
             for a in summary["alerts"]],
            title="Alert timeline"))
    else:
        parts.append("no alert annotations on this trace")
    return "\n\n".join(parts)
