"""Windowed time-series aggregation over sim-time sample streams.

The windowing substrate of :mod:`repro.obs.watch`-style consumers
(:mod:`repro.obs.alerts`, :mod:`repro.obs.anomaly`): everything here
operates on ``(t_ms, value)`` samples in *simulated* time, fed in
nondecreasing time order — exactly the shape of the
:class:`~repro.obs.metrics.MetricsSampler` series and of per-request
outcome streams derived from engine events.

Three window kinds:

* :class:`SlidingWindow` — a trailing ``width_ms`` window with O(1)
  amortized push/evict; queries: count, sum, mean, min/max,
  nearest-rank percentile, and event rate per second.
* :class:`TumblingWindow` — fixed ``[k*w, (k+1)*w)`` buckets, each
  reduced by one aggregator (``mean``/``sum``/``count``/``min``/
  ``max``/``last``/``rate``/``p50``/``p90``/``p95``/``p99``) into a
  ``(t_start_ms, value)`` row as the stream crosses its right edge.
* :class:`GaugeWindow` — tumbling *utilization* of a step function
  (a gauge/level): each bucket row is the time-weighted mean of the
  level across the bucket, carrying the level over bucket boundaries.

All widths are validated strictly positive — a zero-width window is a
configuration error, never a silent divide-by-zero.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Tuple, Union

from ..serving.slo import percentile

__all__ = ["SlidingWindow", "TumblingWindow", "GaugeWindow",
           "windowed_series", "AGGREGATORS"]

#: Named aggregators accepted by :class:`TumblingWindow`.
AGGREGATORS = ("mean", "sum", "count", "min", "max", "last", "rate",
               "p50", "p90", "p95", "p99")


def _check_width(width_ms: float) -> float:
    if not width_ms > 0:
        raise ValueError(f"window width must be > 0 ms, got {width_ms}")
    return float(width_ms)


class SlidingWindow:
    """Trailing time window of ``(t_ms, value)`` samples.

    ``push`` appends and evicts in one motion; ``advance`` evicts
    without appending (useful to age a window at a later timestamp).
    Samples exactly ``width_ms`` old are evicted: the window covers
    the half-open interval ``(t - width_ms, t]``.
    """

    __slots__ = ("width_ms", "_samples", "_sum")

    def __init__(self, width_ms: float) -> None:
        self.width_ms = _check_width(width_ms)
        self._samples: deque = deque()
        self._sum = 0.0

    def push(self, t_ms: float, value: float) -> None:
        self._samples.append((t_ms, value))
        self._sum += value
        self.advance(t_ms)

    def advance(self, t_ms: float) -> None:
        """Evict every sample at or before ``t_ms - width_ms``."""
        edge = t_ms - self.width_ms
        samples = self._samples
        while samples and samples[0][0] <= edge:
            self._sum -= samples.popleft()[1]

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def sum(self) -> float:
        return self._sum

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("mean of an empty window is undefined")
        return self._sum / len(self._samples)

    def min(self) -> float:
        if not self._samples:
            raise ValueError("min of an empty window is undefined")
        return min(v for _, v in self._samples)

    def max(self) -> float:
        if not self._samples:
            raise ValueError("max of an empty window is undefined")
        return max(v for _, v in self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the windowed values."""
        if not self._samples:
            raise ValueError(
                f"percentile p{q:g} of an empty window is undefined")
        return percentile([v for _, v in self._samples], q)

    def rate_per_s(self) -> float:
        """Samples per second over the window width."""
        return len(self._samples) / (self.width_ms / 1e3)

    def values(self) -> List[float]:
        return [v for _, v in self._samples]


def _close_value(agg: Union[str, Callable[[List[float]], float]],
                 width_ms: float, values: List[float]) -> Optional[float]:
    """Reduce one bucket; None = skip the row (empty value-aggregates)."""
    if callable(agg):
        return agg(values) if values else None
    if agg == "count":
        return float(len(values))
    if agg == "sum":
        return float(sum(values))
    if agg == "rate":
        return len(values) / (width_ms / 1e3)
    if not values:
        return None  # mean/min/max/last/percentile of nothing: no row
    if agg == "mean":
        return sum(values) / len(values)
    if agg == "min":
        return min(values)
    if agg == "max":
        return max(values)
    if agg == "last":
        return values[-1]
    return percentile(values, float(agg[1:]))  # p50 / p90 / p95 / p99


class TumblingWindow:
    """Fixed ``[k*w, (k+1)*w)`` buckets reduced by one aggregator.

    Rows land in :attr:`rows` as ``(t_start_ms, value)`` when the
    sample stream crosses a bucket's right edge; :meth:`flush` closes
    through a final timestamp (the bucket containing it included, as a
    partial).  Count-like aggregators (``count``/``sum``/``rate``)
    emit a zero row for empty buckets; value aggregators skip them —
    an empty bucket has no mean, and a silent NaN would poison
    downstream consumers.
    """

    __slots__ = ("width_ms", "agg", "rows", "_bucket", "_values")

    def __init__(self, width_ms: float,
                 agg: Union[str, Callable[[List[float]], float]] = "mean",
                 ) -> None:
        self.width_ms = _check_width(width_ms)
        if not callable(agg) and agg not in AGGREGATORS:
            raise ValueError(
                f"unknown aggregator {agg!r}; expected one of "
                f"{AGGREGATORS} or a callable")
        self.agg = agg
        self.rows: List[Tuple[float, float]] = []
        self._bucket = 0
        self._values: List[float] = []

    def _close_through(self, bucket: int) -> None:
        """Close every bucket with index < ``bucket``."""
        while self._bucket < bucket:
            value = _close_value(self.agg, self.width_ms, self._values)
            if value is not None:
                self.rows.append((self._bucket * self.width_ms, value))
            self._values = []
            self._bucket += 1

    def push(self, t_ms: float, value: float) -> None:
        bucket = int(t_ms // self.width_ms)
        if bucket < self._bucket:
            raise ValueError(
                f"sample at t={t_ms} ms lands in closed bucket {bucket} "
                f"(stream is at bucket {self._bucket}); tumbling windows "
                "need nondecreasing time")
        self._close_through(bucket)
        self._values.append(value)

    def flush(self, t_ms: float) -> List[Tuple[float, float]]:
        """Close every bucket up to and including the one holding
        ``t_ms`` (the last as a partial) and return all rows."""
        self._close_through(int(t_ms // self.width_ms) + 1)
        return self.rows


class GaugeWindow:
    """Per-bucket time-weighted mean of a step function (utilization).

    Feed level *changes* via :meth:`set`; each completed bucket emits
    ``(t_start_ms, mean_level)`` where the mean weights every level by
    how long it held within the bucket — the utilization aggregator
    for gauges like in-flight load or down-instance count.
    """

    __slots__ = ("width_ms", "rows", "_level", "_t", "_bucket", "_area")

    def __init__(self, width_ms: float, initial: float = 0.0) -> None:
        self.width_ms = _check_width(width_ms)
        self.rows: List[Tuple[float, float]] = []
        self._level = float(initial)
        self._t = 0.0
        self._bucket = 0
        self._area = 0.0

    def _advance(self, t_ms: float) -> None:
        if t_ms < self._t:
            raise ValueError(
                f"gauge window moved backwards: t={t_ms} ms after "
                f"t={self._t} ms")
        width = self.width_ms
        end = (self._bucket + 1) * width
        while t_ms >= end:
            self._area += self._level * (end - self._t)
            self.rows.append((self._bucket * width, self._area / width))
            self._t = end
            self._bucket += 1
            self._area = 0.0
            end += width
        self._area += self._level * (t_ms - self._t)
        self._t = t_ms

    def set(self, t_ms: float, level: float) -> None:
        self._advance(t_ms)
        self._level = float(level)

    def add(self, t_ms: float, delta: float) -> None:
        self._advance(t_ms)
        self._level += delta

    @property
    def level(self) -> float:
        return self._level

    def flush(self, t_ms: float) -> List[Tuple[float, float]]:
        """Close through ``t_ms`` (final partial bucket weighted by its
        elapsed fraction) and return all rows."""
        self._advance(t_ms)
        start = self._bucket * self.width_ms
        if t_ms > start:
            self.rows.append((start, self._area / (t_ms - start)))
            self._area = 0.0
            self._t = t_ms
        return self.rows


def windowed_series(series, key: str, width_ms: float,
                    agg: Union[str, Callable[[List[float]], float]] = "mean",
                    ) -> List[Tuple[float, float]]:
    """Tumble one column of a sampled metrics series.

    ``series`` is the row list a :class:`~repro.obs.metrics.
    MetricsRegistry` accumulates (each row a dict with ``t_ms`` plus
    instrument columns); rows missing ``key`` are skipped, so a
    lazily-created instrument simply contributes nothing before its
    first sample.
    """
    window = TumblingWindow(width_ms, agg)
    t_last = 0.0
    for row in series:
        t_last = row["t_ms"]
        value = row.get(key)
        if value is not None:
            window.push(t_last, value)
    return window.flush(t_last)
