"""Trend + regression analytics over the benchmark history file.

``benchmarks/output/BENCH_results.json`` accumulates one record per
(suite, metric) per benchmark run (see ``benchmarks/conftest.py``).
This module closes the loop over that history: for every metric it
compares the latest value against the *rolling median* of the runs
before it, classifies the metric's good direction from its name and
units, and flags movements beyond a tolerance band — ``repro obs
bench`` renders the table and (optionally) gates CI on expressions
like ``watch_overhead_x<=1.05``.

The rolling median, not the previous run, is the baseline: benchmark
timings are noisy, and a single fast run must not turn every
subsequent normal run into a "regression".
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from statistics import median
from typing import Dict, List, Optional, Tuple

from .diff import classify

__all__ = ["TrendRow", "load_history", "bench_trend", "render_bench_trend",
           "parse_gate", "check_gates"]

#: Units whose magnitude is a cost (smaller is better).
_COST_UNITS = ("s", "ms", "us", "w", "j", "cycles")
#: Units whose magnitude is a capacity (bigger is better).
_GAIN_UNITS = ("inf/s", "req/s", "tok/s", "gops", "points")


@dataclass(frozen=True)
class TrendRow:
    """One (suite, metric) trend: latest value vs rolling median."""

    suite: str
    metric: str
    units: str
    #: History points (including the latest).
    n: int
    latest: float
    #: Rolling median of up to ``window`` runs before the latest
    #: (None when the metric has no history yet).
    median: Optional[float]
    #: (latest - median) / |median| (None without a usable baseline).
    rel_change: Optional[float]
    #: "min" / "max" / None — good direction.
    direction: Optional[str]
    #: "regression", "improvement", "new", or "" (steady).
    flag: str

    def as_dict(self) -> dict:
        return {"suite": self.suite, "metric": self.metric,
                "units": self.units, "n": self.n, "latest": self.latest,
                "median": self.median, "rel_change": self.rel_change,
                "direction": self.direction, "flag": self.flag}


def load_history(path) -> List[dict]:
    """Parse the BENCH results file (a JSON array of records)."""
    with open(path) as fh:
        history = json.load(fh)
    if not isinstance(history, list):
        raise ValueError(
            f"{path}: expected a JSON array of perf records, got "
            f"{type(history).__name__}")
    return history


def _direction(metric: str, units: str) -> Optional[str]:
    """Good direction by metric name first, units second."""
    by_name = classify(metric)
    if by_name is not None:
        return by_name
    low = units.lower()
    if low in _COST_UNITS:
        return "min"
    if low in _GAIN_UNITS:
        return "max"
    return None


def bench_trend(history: List[dict], window: int = 8,
                rtol: float = 0.10) -> List[TrendRow]:
    """One :class:`TrendRow` per (suite, metric), history order.

    ``window`` bounds the rolling-median baseline (the most recent
    runs before the latest); ``rtol`` is the steady band — a latest
    value within ``rtol`` of the median is neither flagged nor
    celebrated.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if rtol < 0:
        raise ValueError(f"rtol must be >= 0, got {rtol}")
    groups: Dict[Tuple[str, str], List[dict]] = {}
    for record in history:
        try:
            key = (str(record["suite"]), str(record["metric"]))
            float(record["value"])
        except (TypeError, KeyError, ValueError):
            continue  # foreign record shape: skip, don't crash the tool
        groups.setdefault(key, []).append(record)
    rows: List[TrendRow] = []
    for (suite, metric), records in groups.items():
        values = [float(r["value"]) for r in records]
        units = str(records[-1].get("units", ""))
        latest = values[-1]
        baseline = values[:-1][-window:]
        direction = _direction(metric, units)
        if not baseline:
            rows.append(TrendRow(suite, metric, units, len(values),
                                 latest, None, None, direction, "new"))
            continue
        med = median(baseline)
        rel = (latest - med) / abs(med) if med != 0 else None
        flag = ""
        if direction is not None and rel is not None and abs(rel) > rtol:
            worse = (rel > 0) == (direction == "min")
            flag = "regression" if worse else "improvement"
        rows.append(TrendRow(suite, metric, units, len(values), latest,
                             med, rel, direction, flag))
    return rows


def render_bench_trend(rows: List[TrendRow],
                       title: str = "BENCH trend") -> str:
    """The trend table (``obs bench`` text output)."""
    from ..analysis.tables import render_table

    def fmt(value: Optional[float]) -> str:
        return f"{value:.4g}" if value is not None else "-"

    table = render_table(
        ("suite", "metric", "units", "n", "median", "latest", "delta",
         "flag"),
        [(r.suite, r.metric, r.units, r.n, fmt(r.median), fmt(r.latest),
          f"{r.rel_change:+.1%}" if r.rel_change is not None else "-",
          r.flag)
         for r in rows],
        title=title)
    flagged = sum(1 for r in rows if r.flag == "regression")
    tail = (f"{flagged} regression flag(s)" if flagged
            else "no regression flags")
    return f"{table}\n\n{len(rows)} metric(s) tracked — {tail}"


_GATE_RE = re.compile(
    r"^\s*([A-Za-z0-9_.:/-]+)\s*(<=|>=)\s*([-+0-9.eE]+)\s*$")


def parse_gate(text: str) -> Tuple[str, str, float]:
    """``METRIC<=VALUE`` / ``METRIC>=VALUE`` → (metric, op, value)."""
    match = _GATE_RE.match(text)
    if not match:
        raise ValueError(
            f"invalid gate {text!r} (expected METRIC<=VALUE or "
            "METRIC>=VALUE, e.g. watch_overhead_x<=1.05)")
    metric, op, value = match.groups()
    try:
        return metric, op, float(value)
    except ValueError:
        raise ValueError(
            f"invalid gate bound {value!r} in {text!r}") from None


def check_gates(rows: List[TrendRow],
                gates: List[Tuple[str, str, float]]) -> List[str]:
    """Evaluate gates against each metric's *latest* value.

    Returns violation messages (empty = all gates hold).  A gate whose
    metric never appears in the history is itself a violation — a
    silently-skipped gate would read as a pass.
    """
    violations: List[str] = []
    for metric, op, bound in gates:
        matched = [r for r in rows if r.metric == metric]
        if not matched:
            violations.append(
                f"gate {metric}{op}{bound:g}: metric not found in history")
            continue
        for row in matched:
            ok = (row.latest <= bound if op == "<="
                  else row.latest >= bound)
            if not ok:
                violations.append(
                    f"gate {metric}{op}{bound:g}: latest "
                    f"{row.latest:.4g} {row.units} "
                    f"(suite {row.suite}) violates the bound")
    return violations
