"""repro.obs — tracing, metrics, and profiling for the simulation stack.

Three pillars, all opt-in and all zero-cost when left detached:

* **tracing** (:mod:`repro.obs.trace`) — :class:`TraceRecorder` turns the
  engines' flat event tuples into Chrome-trace-event JSON viewable in
  ``chrome://tracing`` / Perfetto; attach via
  :meth:`repro.sim.kernel.Simulation.attach_observer` or the
  ``serve --trace`` / ``generate --trace`` CLI flags.
* **metrics** (:mod:`repro.obs.metrics`) — :class:`MetricsRegistry` of
  counters, gauges, and histograms; :class:`MetricsSampler` observes a
  run and samples fleet state on a configurable sim-time grid,
  exportable to JSON or CSV (``--metrics``).
* **profiling** (:mod:`repro.obs.profile`) — :class:`KernelProfiler`
  attributes kernel wall time per event kind;
  :class:`DseProfile` instruments :func:`repro.dse.engine.explore`
  with cache hit/miss counts and a per-worker dispatch/idle breakdown
  (``--profile``).

Observers are read-only consumers of engine events: a run with
observability attached is byte-identical to a bare run (enforced by the
trace-identity golden tests).  Multiple observers compose with
:func:`compose`.
"""

from __future__ import annotations

from typing import Callable

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, MetricsSampler
from .profile import (
    DseProfile,
    KernelProfiler,
    render_dse_profile,
    render_kernel_profile,
)
from .trace import TraceRecorder

__all__ = [
    "TraceRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSampler",
    "KernelProfiler",
    "DseProfile",
    "render_kernel_profile",
    "render_dse_profile",
    "compose",
]


class _Composite:
    """Fan one engine event stream out to several observers."""

    __slots__ = ("_parts",)

    def __init__(self, parts: tuple) -> None:
        self._parts = parts

    def __call__(self, event: tuple) -> None:
        for part in self._parts:
            part(event)

    def finish(self, t_ms: float) -> None:
        for part in self._parts:
            fin = getattr(part, "finish", None)
            if fin is not None:
                fin(t_ms)


def compose(*observers: Callable[[tuple], None]) -> Callable[[tuple], None]:
    """Combine observers into one (``None`` entries are dropped).

    Returns ``None`` when nothing is left, a single observer unchanged,
    or a composite that forwards every event — and ``finish()`` — to
    each part in order.
    """
    parts = tuple(o for o in observers if o is not None)
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return _Composite(parts)
