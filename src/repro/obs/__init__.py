"""repro.obs — tracing, metrics, profiling, and watchdogs for the stack.

Observability pillars, all opt-in and all zero-cost when left detached:

* **tracing** (:mod:`repro.obs.trace`) — :class:`TraceRecorder` turns the
  engines' flat event tuples into Chrome-trace-event JSON viewable in
  ``chrome://tracing`` / Perfetto; attach via
  :meth:`repro.sim.kernel.Simulation.attach_observer` or the
  ``serve --trace`` / ``generate --trace`` CLI flags.
* **metrics** (:mod:`repro.obs.metrics`) — :class:`MetricsRegistry` of
  counters, gauges, and histograms; :class:`MetricsSampler` observes a
  run and samples fleet state on a configurable sim-time grid,
  exportable to JSON or CSV (``--metrics``).
* **profiling** (:mod:`repro.obs.profile`) — :class:`KernelProfiler`
  attributes kernel wall time per event kind;
  :class:`DseProfile` instruments :func:`repro.dse.engine.explore`
  with cache hit/miss counts and a per-worker dispatch/idle breakdown
  (``--profile``).
* **watching** (:mod:`repro.obs.windows` / :mod:`repro.obs.alerts` /
  :mod:`repro.obs.anomaly`) — windowed time-series aggregation in
  sim-time, alert rules (static thresholds, sustained levels, and
  multi-window error-budget :class:`BurnRateRule` burn rates), and a
  rolling-median + MAD :class:`AnomalyDetector`, all glued to a live
  run by the :class:`Watchdog` observer (``--watch``).
* **analytics** (:mod:`repro.obs.diff` / :mod:`repro.obs.
  bench_history`) — run-to-run regression detection between two
  ``--json`` exports (:func:`diff_runs`) and trend/gate analytics over
  the benchmark history (:func:`bench_trend`); both back the ``repro
  obs`` CLI family alongside :func:`summarize_trace`.

Observers are read-only consumers of engine events: a run with
observability attached is byte-identical to a bare run (enforced by the
trace-identity golden tests).  Multiple observers compose with
:func:`compose`.
"""

from __future__ import annotations

from typing import Callable

from .alerts import (
    Alert,
    AlertRule,
    BurnRateRule,
    SustainedRule,
    ThresholdRule,
    Watchdog,
)
from .anomaly import AnomalyDetector
from .bench_history import TrendRow, bench_trend, check_gates, parse_gate
from .bench_history import render_bench_trend
from .diff import DiffReport, diff_runs, render_diff
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, MetricsSampler
from .profile import (
    DseProfile,
    KernelProfiler,
    render_dse_profile,
    render_kernel_profile,
)
from .trace import TraceRecorder, render_trace_summary, summarize_trace
from .windows import GaugeWindow, SlidingWindow, TumblingWindow
from .windows import windowed_series

__all__ = [
    "TraceRecorder",
    "summarize_trace",
    "render_trace_summary",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSampler",
    "KernelProfiler",
    "DseProfile",
    "render_kernel_profile",
    "render_dse_profile",
    "SlidingWindow",
    "TumblingWindow",
    "GaugeWindow",
    "windowed_series",
    "Alert",
    "AlertRule",
    "ThresholdRule",
    "SustainedRule",
    "BurnRateRule",
    "Watchdog",
    "AnomalyDetector",
    "DiffReport",
    "diff_runs",
    "render_diff",
    "TrendRow",
    "bench_trend",
    "render_bench_trend",
    "parse_gate",
    "check_gates",
    "compose",
]


class _Composite:
    """Fan one engine event stream out to several observers."""

    __slots__ = ("_parts",)

    def __init__(self, parts: tuple) -> None:
        self._parts = parts

    def __call__(self, event: tuple) -> None:
        for part in self._parts:
            part(event)

    def finish(self, t_ms: float) -> None:
        for part in self._parts:
            fin = getattr(part, "finish", None)
            if fin is not None:
                fin(t_ms)


def compose(*observers: Callable[[tuple], None]) -> Callable[[tuple], None]:
    """Combine observers into one (``None`` entries are dropped).

    Returns ``None`` when nothing is left, a single observer unchanged,
    or a composite that forwards every event — and ``finish()`` — to
    each part in order.
    """
    parts = tuple(o for o in observers if o is not None)
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return _Composite(parts)
