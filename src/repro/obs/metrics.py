"""Metrics for simulation runs: counters, gauges, histograms, sampling.

The metrics pillar of :mod:`repro.obs`.  Two layers:

* :class:`MetricsRegistry` — a plain instrument registry.  Counters
  accumulate, gauges hold the latest value, histograms collect samples
  for percentile queries.  :meth:`MetricsRegistry.sample` snapshots
  every counter/gauge onto a time series; the registry exports to JSON
  (full) or CSV (the time series).
* :class:`MetricsSampler` — an observer (attachable via
  :meth:`repro.sim.kernel.Simulation.attach_observer`) that maintains
  the serving instruments from engine events and snapshots them on a
  configurable *simulated-time grid*: per-instance queue depth and
  in-flight load, fleet totals, cumulative completions and tokens.

Sampling discipline: grid ticks are taken at ``t = k * grid_ms`` using
the instrument state *before* the first event at-or-after the tick, so
a series row is "the world as of that grid instant".  A grid coarser
than the simulation horizon simply yields fewer interior rows; the
final state is always flushed as one trailing sample by ``finish()``,
so even a one-event run exports a non-empty series.

Like every observer, the sampler only reads event tuples — instrumented
runs stay byte-identical to bare ones.
"""

from __future__ import annotations

import io
import json
import math
import os
from typing import Any, Dict, List, Optional, Sequence

from ..serving.slo import percentile

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "MetricsSampler"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A sample collection with nearest-rank percentile queries."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not self.samples:
            raise ValueError(
                f"histogram {self.name!r} has no samples — mean is "
                "undefined")
        return sum(self.samples) / len(self.samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; raises on an empty histogram —
        a silent NaN would poison downstream aggregation."""
        if not self.samples:
            raise ValueError(
                f"histogram {self.name!r} has no samples — percentile "
                f"p{q:g} is undefined")
        return percentile(self.samples, q)

    def summary(self) -> Dict[str, float]:
        """count/mean/p50/p95/p99/max (zeros and NaN for empty)."""
        if not self.samples:
            return {"count": 0, "mean": math.nan, "p50": math.nan,
                    "p95": math.nan, "p99": math.nan, "max": math.nan}
        return {"count": self.count, "mean": self.mean(),
                "p50": self.percentile(50), "p95": self.percentile(95),
                "p99": self.percentile(99), "max": max(self.samples)}


class MetricsRegistry:
    """Named instruments plus the sampled time series over them."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Sampled rows: {"t_ms": float, "<instrument>": value, ...}.
        self.series: List[Dict[str, float]] = []

    # -- instrument creation (get-or-create, stable identity) -----------
    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            self._claim(name)
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            self._claim(name)
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            self._claim(name)
            inst = self.histograms[name] = Histogram(name)
        return inst

    def _claim(self, name: str) -> None:
        for kind, table in (("counter", self.counters),
                            ("gauge", self.gauges),
                            ("histogram", self.histograms)):
            if name in table:
                raise ValueError(
                    f"instrument name {name!r} already registered as a "
                    f"{kind}")

    # -- sampling ---------------------------------------------------------
    def sample(self, t_ms: float) -> Dict[str, float]:
        """Snapshot every counter and gauge at ``t_ms`` (appended and
        returned).  Histograms are distributions, not levels — they
        export through :meth:`as_dict`, not the series."""
        row: Dict[str, float] = {"t_ms": t_ms}
        for name, counter in self.counters.items():
            row[name] = counter.value
        for name, gauge in self.gauges.items():
            row[name] = gauge.value
        self.series.append(row)
        return row

    # -- export -----------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: g.value for n, g in self.gauges.items()},
            "histograms": {n: h.summary()
                           for n, h in self.histograms.items()},
            "series": [dict(row) for row in self.series],
        }

    def to_json(self, run_config: Optional[Dict[str, Any]] = None) -> dict:
        out: Dict[str, Any] = {}
        if run_config is not None:
            out["run_config"] = dict(run_config)
        out.update(self.as_dict())
        return out

    def to_csv(self) -> str:
        """The time series as CSV (union of columns, blank = unsampled)."""
        columns = ["t_ms"]
        seen = {"t_ms"}
        for row in self.series:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    columns.append(key)
        buf = io.StringIO()
        buf.write(",".join(columns) + "\n")
        for row in self.series:
            buf.write(",".join(
                (repr(row[c]) if c in row else "") for c in columns) + "\n")
        return buf.getvalue()

    def dump(self, path: os.PathLike,
             run_config: Optional[Dict[str, Any]] = None) -> None:
        """Write JSON (or the CSV series for ``*.csv`` paths)."""
        text = (self.to_csv() if str(path).endswith(".csv")
                else json.dumps(self.to_json(run_config), indent=1) + "\n")
        with open(path, "w") as fh:
            fh.write(text)


class MetricsSampler:
    """Grid-sampled serving metrics, fed by engine events.

    Instruments (per run):

    * ``queued`` / ``in_flight`` gauges — fleet totals (queue depth and
      sequences/batches in service);
    * ``queued_i<k>`` / ``in_flight_i<k>`` gauges — per instance;
    * ``parked`` gauge — work waiting with no capable instance up
      (failure scenarios);
    * ``arrivals`` / ``requeues`` / ``completions`` / ``dispatches`` /
      ``steps`` / ``tokens`` / ``failures`` / ``preemptions`` counters;
    * ``step_ms`` histogram of generation step durations;
    * ``down`` gauge — instances currently failed.

    Failure accounting rides on the engines' observer-only ``requeue``
    events (displaced work re-entering a queue): a ``fail`` folds the
    dead instance's levels out of the fleet gauges, and every displaced
    entry re-appears through ``requeue``/``dispatch``/``admit``, so the
    gauges stay non-negative and conserved.
    """

    def __init__(self, grid_ms: float = 10.0,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if grid_ms <= 0:
            raise ValueError(f"grid_ms must be > 0, got {grid_ms}")
        self.grid_ms = grid_ms
        self.registry = registry if registry is not None else MetricsRegistry()
        self._next_tick = 0.0
        reg = self.registry
        self._queued = reg.gauge("queued")
        self._in_flight = reg.gauge("in_flight")
        self._parked = reg.gauge("parked")
        self._down = reg.gauge("down")
        self._arrivals = reg.counter("arrivals")
        self._requeues = reg.counter("requeues")
        self._dispatches = reg.counter("dispatches")
        self._completions = reg.counter("completions")
        self._steps = reg.counter("steps")
        self._tokens = reg.counter("tokens")
        self._failures = reg.counter("failures")
        self._preemptions = reg.counter("preemptions")
        self._step_ms = reg.histogram("step_ms")
        #: Per-instance gauges, created lazily at first sight.
        self._inst_queued: Dict[int, Gauge] = {}
        self._inst_flight: Dict[int, Gauge] = {}
        #: Serve mode: batch size in flight per instance (for completions).
        self._batch_size: Dict[int, int] = {}
        #: Generate mode: active sequence count per instance.
        self._finished = False

    # -- grid ------------------------------------------------------------
    def _tick_to(self, t_ms: float) -> None:
        """Emit grid samples for every tick at or before ``t_ms``,
        *before* the event at ``t_ms`` is applied."""
        while self._next_tick <= t_ms:
            self.registry.sample(self._next_tick)
            self._next_tick += self.grid_ms

    def _inst(self, table: Dict[int, Gauge], prefix: str,
              inst: int) -> Gauge:
        gauge = table.get(inst)
        if gauge is None:
            gauge = table[inst] = self.registry.gauge(f"{prefix}_i{inst}")
        return gauge

    # -- the observer hook -------------------------------------------------
    def on_event(self, event: tuple) -> None:
        kind = event[0]
        t = event[1]
        self._tick_to(t)
        if kind == "arrive":
            inst = event[4]
            self._arrivals.inc()
            if inst >= 0:
                self._queued.add(1)
                self._inst(self._inst_queued, "queued", inst).add(1)
            else:  # no capable instance up: parked until a recover
                self._parked.add(1)
        elif kind == "requeue":  # observer-only: displaced work re-queued
            inst = event[3]
            self._requeues.inc()
            if inst >= 0:
                self._queued.add(1)
                self._inst(self._inst_queued, "queued", inst).add(1)
            else:
                self._parked.add(1)
        elif kind == "dispatch":  # serve
            _, _, inst, model, size, switch_ms = event
            self._dispatches.inc()
            self._queued.add(-size)
            self._in_flight.add(size)
            self._inst(self._inst_queued, "queued", inst).add(-size)
            self._inst(self._inst_flight, "in_flight", inst).add(size)
            self._batch_size[inst] = size
        elif kind == "free":  # serve
            inst = event[2]
            size = self._batch_size.pop(inst, 0)
            self._completions.inc(size)
            self._in_flight.add(-size)
            self._inst(self._inst_flight, "in_flight", inst).add(-size)
        elif kind == "admit":  # generate
            inst = event[2]
            self._queued.add(-1)
            self._in_flight.add(1)
            self._inst(self._inst_queued, "queued", inst).add(-1)
            self._inst(self._inst_flight, "in_flight", inst).add(1)
        elif kind == "resume":  # generate (re-admission after eviction)
            inst = event[2]
            self._queued.add(-1)
            self._in_flight.add(1)
            self._inst(self._inst_queued, "queued", inst).add(-1)
            self._inst(self._inst_flight, "in_flight", inst).add(1)
        elif kind == "step":  # generate
            _, _, inst, model, admitted, decoding, duration = event
            self._steps.inc()
            self._tokens.inc(admitted + decoding)
            self._step_ms.observe(duration)
        elif kind == "finish":  # generate
            inst = event[2]
            self._completions.inc()
            self._in_flight.add(-1)
            self._inst(self._inst_flight, "in_flight", inst).add(-1)
        elif kind == "preempt":  # generate: back to the queue
            inst = event[2]
            self._preemptions.inc()
            self._in_flight.add(-1)
            self._queued.add(1)
            self._inst(self._inst_flight, "in_flight", inst).add(-1)
            self._inst(self._inst_queued, "queued", inst).add(1)
        elif kind == "fail":
            inst = event[2]
            self._failures.inc()
            self._down.add(1)
            # Everything on the dead instance is displaced and re-
            # routed; each displaced entry re-appears as a ``requeue``
            # event, so fold the instance's levels out of the fleet
            # totals here and let the requeues re-add them.
            flight = self._inst(self._inst_flight, "in_flight", inst)
            queued = self._inst(self._inst_queued, "queued", inst)
            self._in_flight.add(-flight.value)
            self._queued.add(-queued.value)
            flight.set(0.0)
            queued.set(0.0)
            self._batch_size.pop(inst, None)
        elif kind == "recover":
            # The engine drains *all* parked work through route() right
            # after this event; each drained entry re-appears as a
            # ``requeue`` (possibly re-parking itself).
            self._down.add(-1)
            self._parked.set(0.0)

    __call__ = on_event

    def finish(self, t_ms: float) -> None:
        """Flush trailing grid ticks plus one final end-state sample."""
        if self._finished:
            return
        self._finished = True
        self._tick_to(t_ms)
        self.registry.sample(t_ms)
