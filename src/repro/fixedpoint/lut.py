"""Look-up-table function units (exp, reciprocal, rsqrt, erf).

The paper implements softmax "in HLS, utiliz[ing] LUTs and flip-flops"
— i.e. the non-linear functions are table lookups, not iterative
floating-point routines.  We model each unit as a sampled table over a
bounded input interval with nearest-entry lookup (optionally linear
interpolation, which costs one extra DSP in the resource model).

All evaluation is vectorized: a lookup over a whole score matrix is a
single fancy-indexing operation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "FunctionLUT",
    "ExpLUT",
    "ReciprocalLUT",
    "RsqrtLUT",
    "ErfLUT",
    "lut_resource_estimate",
]


@dataclass
class FunctionLUT:
    """A sampled scalar function on ``[lo, hi]`` with ``entries`` codes.

    Parameters
    ----------
    fn:
        The real function being tabulated.
    lo, hi:
        Input interval; inputs outside are clamped (hardware saturates
        the table index).
    entries:
        Table depth — a power of two so the index is a bit-slice.
    interpolate:
        When ``True``, linearly interpolate between adjacent entries
        (one multiplier per lookup); otherwise nearest-entry.
    """

    fn: Callable[[np.ndarray], np.ndarray]
    lo: float
    hi: float
    entries: int = 256
    interpolate: bool = False
    name: str = "lut"
    _table: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.entries < 2 or (self.entries & (self.entries - 1)) != 0:
            raise ValueError("entries must be a power of two >= 2")
        if not self.hi > self.lo:
            raise ValueError("need hi > lo")
        xs = np.linspace(self.lo, self.hi, self.entries)
        self._table = np.asarray(self.fn(xs), dtype=np.float64)

    @property
    def step(self) -> float:
        """Input distance between adjacent table entries."""
        return (self.hi - self.lo) / (self.entries - 1)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the table at ``x`` (vectorized, clamped)."""
        x = np.asarray(x, dtype=np.float64)
        pos = (np.clip(x, self.lo, self.hi) - self.lo) / self.step
        if self.interpolate:
            idx = np.clip(np.floor(pos).astype(np.int64), 0, self.entries - 2)
            frac = pos - idx
            lo = self._table[idx]
            hi = self._table[idx + 1]
            return lo + frac * (hi - lo)
        idx = np.clip(np.rint(pos).astype(np.int64), 0, self.entries - 1)
        return self._table[idx]

    def max_error(self, samples: int = 4096) -> float:
        """Worst-case absolute error against the real function."""
        xs = np.linspace(self.lo, self.hi, samples)
        return float(np.max(np.abs(self(xs) - self.fn(xs))))


class ExpLUT(FunctionLUT):
    """``exp(x)`` on ``[lo, 0]`` — softmax uses max-subtracted inputs.

    Softmax first subtracts the row maximum, so every table input is
    non-positive; below ``lo`` the true value is ~0 and the clamp is
    harmless (``exp(-12) < 7e-6``, under half an 8-bit LSB).
    """

    def __init__(self, lo: float = -12.0, entries: int = 512, interpolate: bool = False):
        super().__init__(fn=np.exp, lo=lo, hi=0.0, entries=entries,
                         interpolate=interpolate, name="exp")


class ReciprocalLUT(FunctionLUT):
    """``1/x`` on ``[lo, hi]`` with ``lo > 0`` — softmax denominator."""

    def __init__(self, lo: float = 0.5, hi: float = 512.0, entries: int = 1024,
                 interpolate: bool = True):
        if lo <= 0:
            raise ValueError("reciprocal LUT needs lo > 0")
        super().__init__(fn=lambda x: 1.0 / x, lo=lo, hi=hi, entries=entries,
                         interpolate=interpolate, name="recip")


class RsqrtLUT(FunctionLUT):
    """``1/sqrt(x)`` on ``[lo, hi]`` — layer-norm variance normalizer."""

    def __init__(self, lo: float = 1e-3, hi: float = 64.0, entries: int = 1024,
                 interpolate: bool = True):
        if lo <= 0:
            raise ValueError("rsqrt LUT needs lo > 0")
        super().__init__(fn=lambda x: 1.0 / np.sqrt(x), lo=lo, hi=hi, entries=entries,
                         interpolate=interpolate, name="rsqrt")


class ErfLUT(FunctionLUT):
    """``erf(x)`` on a symmetric interval — GELU's non-linearity."""

    def __init__(self, half_range: float = 4.0, entries: int = 512,
                 interpolate: bool = True):
        from scipy.special import erf  # local import keeps scipy optional at import time

        super().__init__(fn=erf, lo=-half_range, hi=half_range, entries=entries,
                         interpolate=interpolate, name="erf")


def lut_resource_estimate(lut: FunctionLUT, value_bits: int = 16) -> dict:
    """Estimate FPGA resources of one LUT unit.

    A table of ``entries × value_bits`` maps to distributed LUTRAM at
    ~64 bits per logic LUT (LUT6 as 64x1 ROM); interpolation adds one
    DSP and a subtractor.  These coefficients feed the accelerator-wide
    resource model.
    """
    rom_bits = lut.entries * value_bits
    logic_luts = math.ceil(rom_bits / 64) + 24  # index clamp + control
    return {
        "luts": logic_luts,
        "ffs": value_bits * 3,  # input/output/pipeline registers
        "dsps": 1 if lut.interpolate else 0,
        "brams": 0 if rom_bits <= 16384 else math.ceil(rom_bits / 18432),
    }
