"""Q-format (fixed-point) number format descriptors.

ProTEA quantizes the whole datapath to 8-bit fixed point ("Fix8" in the
paper's Table II) with wider accumulators inside each DSP48 MAC.  A
:class:`QFormat` captures the static properties of such a format: total
bit width, number of fractional bits and signedness.  All quantization,
saturation and rescaling logic in :mod:`repro.fixedpoint` is written
against this descriptor so that the bit width can be changed "in the HLS
code" exactly as the paper describes (Section V: "For applications
requiring a larger bit width, the design can be easily modified").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "QFormat",
    "ACC32",
    "Q8_4",
    "Q8_5",
    "Q8_6",
    "Q16_8",
]


@dataclass(frozen=True)
class QFormat:
    """A signed/unsigned fixed-point format ``Q(total_bits, frac_bits)``.

    Parameters
    ----------
    total_bits:
        Total storage width in bits (including sign bit when signed).
    frac_bits:
        Number of fractional bits.  May be negative (values are scaled
        up) or exceed ``total_bits`` (all-fraction sub-unit formats);
        both occur when calibrating formats to tensor ranges.
    signed:
        Two's-complement when ``True`` (the default — DSP48 multipliers
        are signed 27x18 units).
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise ValueError(f"total_bits must be >= 1, got {self.total_bits}")
        if self.signed and self.total_bits < 2:
            raise ValueError("signed formats need at least 2 bits")

    # ------------------------------------------------------------------
    # Integer-domain bounds
    # ------------------------------------------------------------------
    @property
    def int_min(self) -> int:
        """Smallest representable raw integer."""
        if self.signed:
            return -(1 << (self.total_bits - 1))
        return 0

    @property
    def int_max(self) -> int:
        """Largest representable raw integer."""
        if self.signed:
            return (1 << (self.total_bits - 1)) - 1
        return (1 << self.total_bits) - 1

    # ------------------------------------------------------------------
    # Real-domain properties
    # ------------------------------------------------------------------
    @property
    def scale(self) -> float:
        """Real value of one LSB: ``2**-frac_bits``."""
        return 2.0 ** (-self.frac_bits)

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.int_min * self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.int_max * self.scale

    @property
    def resolution(self) -> float:
        """Alias of :attr:`scale` (distance between adjacent codes)."""
        return self.scale

    @property
    def int_bits(self) -> int:
        """Integer (non-fractional, non-sign) bits."""
        return self.total_bits - self.frac_bits - (1 if self.signed else 0)

    def representable(self, value: float) -> bool:
        """Whether ``value`` lies within [min_value, max_value]."""
        return self.min_value <= value <= self.max_value

    # ------------------------------------------------------------------
    # Derived formats
    # ------------------------------------------------------------------
    def widen(self, extra_bits: int) -> "QFormat":
        """Return the same format with ``extra_bits`` more integer bits.

        Used to size accumulators: a dot product of length ``n`` grows
        by ``ceil(log2(n))`` bits beyond the product width.
        """
        if extra_bits < 0:
            raise ValueError("extra_bits must be non-negative")
        return QFormat(self.total_bits + extra_bits, self.frac_bits, self.signed)

    def product_format(self, other: "QFormat") -> "QFormat":
        """Exact format of a full-precision product of two operands."""
        return QFormat(
            self.total_bits + other.total_bits,
            self.frac_bits + other.frac_bits,
            self.signed or other.signed,
        )

    def accumulator_format(self, other: "QFormat", length: int) -> "QFormat":
        """Exact format of a dot product of ``length`` terms.

        The DSP48 accumulates in 48 bits; a ``length``-term sum of full
        products needs ``ceil(log2(length))`` guard bits.
        """
        if length < 1:
            raise ValueError("length must be >= 1")
        guard = max(1, math.ceil(math.log2(length))) if length > 1 else 0
        return self.product_format(other).widen(guard)

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    @classmethod
    def for_range(
        cls, lo: float, hi: float, total_bits: int = 8, signed: bool = True
    ) -> "QFormat":
        """Pick the fractional-bit count that covers ``[lo, hi]``.

        Chooses the largest ``frac_bits`` (finest resolution) such that
        both endpoints remain representable.  This mirrors the
        per-tensor calibration a deployment flow performs before
        loading weights into the accelerator.
        """
        if hi < lo:
            raise ValueError("empty range")
        magnitude = max(abs(lo), abs(hi), 1e-30)
        # Integer bits needed to hold `magnitude` (negative for
        # sub-unit ranges: all-fraction formats are finest there).
        sign_bit = 1 if signed else 0
        int_bits_needed = math.ceil(math.log2(magnitude + 1e-30))
        # Allow representing exactly `magnitude` with headroom for the
        # asymmetric two's-complement positive bound.
        fmt = cls(total_bits, total_bits - sign_bit - int_bits_needed, signed)
        while not (fmt.representable(lo) and fmt.representable(hi)):
            fmt = cls(total_bits, fmt.frac_bits - 1, signed)
        return fmt

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "s" if self.signed else "u"
        return f"{kind}Q{self.total_bits}.{self.frac_bits}"


#: 32-bit accumulator with 8 fractional bits — the requantization target
#: used between engines (the real DSP48 uses 48-bit accumulation; 32
#: bits is already exact for every tile length in this design).
ACC32 = QFormat(32, 8)

#: Common 8-bit activation/weight formats.
Q8_4 = QFormat(8, 4)
Q8_5 = QFormat(8, 5)
Q8_6 = QFormat(8, 6)

#: 16-bit format used when the paper's "larger bit width" variant is wanted.
Q16_8 = QFormat(16, 8)
