"""Bit-accurate fixed-point arithmetic substrate for the ProTEA datapath.

Public surface:

* :class:`~repro.fixedpoint.qformat.QFormat` — format descriptors.
* :func:`~repro.fixedpoint.quantize.quantize` /
  :func:`~repro.fixedpoint.quantize.dequantize` /
  :func:`~repro.fixedpoint.quantize.requantize` — format conversions.
* :class:`~repro.fixedpoint.arithmetic.FxTensor` and the ``fx_*``
  integer tensor ops — the MAC datapath.
* LUT function units (:class:`~repro.fixedpoint.lut.ExpLUT`, …) used by
  the softmax and layer-norm hardware units.
"""

from .arithmetic import FxTensor, fx_add, fx_matmul, fx_mul, fx_scale_shift
from .lut import (
    ErfLUT,
    ExpLUT,
    FunctionLUT,
    ReciprocalLUT,
    RsqrtLUT,
    lut_resource_estimate,
)
from .qformat import ACC32, Q8_4, Q8_5, Q8_6, Q16_8, QFormat
from .quantize import (
    Rounding,
    calibrate_format,
    dequantize,
    quantization_error,
    quantize,
    requantize,
    saturate,
)

__all__ = [
    "QFormat",
    "ACC32",
    "Q8_4",
    "Q8_5",
    "Q8_6",
    "Q16_8",
    "Rounding",
    "quantize",
    "dequantize",
    "requantize",
    "saturate",
    "calibrate_format",
    "quantization_error",
    "FxTensor",
    "fx_matmul",
    "fx_add",
    "fx_mul",
    "fx_scale_shift",
    "FunctionLUT",
    "ExpLUT",
    "ReciprocalLUT",
    "RsqrtLUT",
    "ErfLUT",
    "lut_resource_estimate",
]
