"""Integer-domain tensor arithmetic mirroring the DSP48 datapath.

The compute engines in :mod:`repro.core` perform all their math through
these helpers so the functional simulation is *bit-accurate*: a MAC is
an exact integer multiply-accumulate in a wide accumulator, and only
explicit :func:`repro.fixedpoint.quantize.requantize` steps lose
precision — exactly like the synthesized RTL.

A :class:`FxTensor` bundles raw integer codes with their
:class:`~repro.fixedpoint.qformat.QFormat`, preventing the classic bug
of mixing scales silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .qformat import ACC32, QFormat
from .quantize import Rounding, dequantize, quantize, requantize, saturate

__all__ = ["FxTensor", "fx_matmul", "fx_add", "fx_mul", "fx_scale_shift"]


@dataclass
class FxTensor:
    """Raw integer codes plus their fixed-point format.

    Attributes
    ----------
    raw:
        ``int64`` NumPy array of codes.
    fmt:
        The :class:`QFormat` giving meaning to the codes.
    """

    raw: np.ndarray
    fmt: QFormat

    def __post_init__(self) -> None:
        self.raw = np.asarray(self.raw, dtype=np.int64)
        lo, hi = self.fmt.int_min, self.fmt.int_max
        if self.raw.size and (self.raw.min() < lo or self.raw.max() > hi):
            raise ValueError(
                f"raw codes out of range for {self.fmt}: "
                f"[{self.raw.min()}, {self.raw.max()}] vs [{lo}, {hi}]"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_float(
        cls,
        values: np.ndarray,
        fmt: QFormat,
        rounding: Rounding = Rounding.NEAREST_EVEN,
    ) -> "FxTensor":
        """Quantize a float tensor into ``fmt``."""
        return cls(quantize(values, fmt, rounding), fmt)

    def to_float(self) -> np.ndarray:
        """Dequantize back to float64."""
        return dequantize(self.raw, self.fmt)

    @property
    def shape(self):
        return self.raw.shape

    def astype(self, fmt: QFormat, rounding: Rounding = Rounding.NEAREST_EVEN) -> "FxTensor":
        """Requantize into another format (shift + saturate)."""
        return FxTensor(requantize(self.raw, self.fmt, fmt, rounding), fmt)

    def __getitem__(self, idx) -> "FxTensor":
        return FxTensor(self.raw[idx], self.fmt)


def _check_formats(a: FxTensor, b: FxTensor) -> None:
    if a.fmt.signed != b.fmt.signed:
        raise ValueError("mixing signed and unsigned operands is not supported")


def fx_matmul(
    a: FxTensor,
    b: FxTensor,
    acc_fmt: Optional[QFormat] = None,
) -> FxTensor:
    """Exact integer matrix multiply: ``a @ b`` in a wide accumulator.

    ``acc_fmt`` defaults to the exact accumulator format for the inner
    dimension (never overflows).  The result keeps full precision; the
    caller requantizes when writing the narrow inter-engine buffer,
    matching where the hardware truncates.
    """
    _check_formats(a, b)
    k = a.raw.shape[-1]
    if b.raw.shape[0] != k:
        raise ValueError(f"inner dimensions differ: {a.raw.shape} @ {b.raw.shape}")
    exact = a.fmt.accumulator_format(b.fmt, max(k, 1))
    out_fmt = acc_fmt if acc_fmt is not None else exact
    raw = a.raw @ b.raw  # int64 exact for all supported widths
    if out_fmt is not exact:
        raw = requantize(raw, exact, out_fmt)
    else:
        raw = saturate(raw, out_fmt)
    return FxTensor(raw, out_fmt)


def fx_add(a: FxTensor, b: FxTensor, out_fmt: Optional[QFormat] = None) -> FxTensor:
    """Saturating fixed-point addition with automatic alignment.

    Operands are aligned to the finer fractional precision, summed
    exactly, and saturated into ``out_fmt`` (default: one guard bit over
    the aligned operand width) — the residual-connection adder.
    """
    _check_formats(a, b)
    frac = max(a.fmt.frac_bits, b.fmt.frac_bits)
    bits = max(
        a.fmt.total_bits + (frac - a.fmt.frac_bits),
        b.fmt.total_bits + (frac - b.fmt.frac_bits),
    ) + 1
    wide = QFormat(bits, frac, a.fmt.signed)
    ra = requantize(a.raw, a.fmt, wide)
    rb = requantize(b.raw, b.fmt, wide)
    summed = ra + rb
    target = out_fmt if out_fmt is not None else wide
    if target is not wide:
        summed = requantize(summed, wide, target)
    else:
        summed = saturate(summed, wide)
    return FxTensor(summed, target)


def fx_mul(a: FxTensor, b: FxTensor, out_fmt: Optional[QFormat] = None) -> FxTensor:
    """Element-wise fixed-point multiply (broadcasting allowed)."""
    _check_formats(a, b)
    exact = a.fmt.product_format(b.fmt)
    raw = a.raw * b.raw
    target = out_fmt if out_fmt is not None else exact
    if target is not exact:
        raw = requantize(raw, exact, target)
    else:
        raw = saturate(raw, exact)
    return FxTensor(raw, target)


def fx_scale_shift(
    x: FxTensor,
    multiplier: int,
    shift: int,
    out_fmt: QFormat = ACC32,
) -> FxTensor:
    """Multiply by an integer constant then arithmetic-shift right.

    The canonical "fixed-point rescale" a hardware unit uses where a
    real-valued constant ``c`` is folded into ``multiplier / 2**shift``.
    """
    if shift < 0:
        raise ValueError("shift must be non-negative")
    raw = x.raw * np.int64(multiplier)
    if shift:
        raw = raw >> np.int64(shift)
    return FxTensor(saturate(raw, out_fmt), out_fmt)
