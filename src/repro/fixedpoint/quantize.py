"""Quantization and dequantization between float tensors and raw integers.

Everything is vectorized NumPy: the functional simulator quantizes whole
tiles at once (one ``np.rint`` + ``np.clip`` per tile), which is the
idiom the HPC guides prescribe — no per-element Python loops.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

import numpy as np

from .qformat import QFormat

__all__ = [
    "Rounding",
    "quantize",
    "dequantize",
    "requantize",
    "saturate",
    "calibrate_format",
    "quantization_error",
]


class Rounding(Enum):
    """Rounding mode applied when a real value falls between codes.

    ``NEAREST_EVEN`` is what ``np.rint`` implements and what the
    ``AP_RND_CONV`` HLS fixed-point mode performs; ``TRUNCATE`` models
    the cheaper default ``AP_TRN`` (floor toward negative infinity).
    """

    NEAREST_EVEN = "nearest-even"
    TRUNCATE = "truncate"


def saturate(raw: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Clamp raw integer codes into the representable range of ``fmt``."""
    return np.clip(raw, fmt.int_min, fmt.int_max)


def quantize(
    values: np.ndarray,
    fmt: QFormat,
    rounding: Rounding = Rounding.NEAREST_EVEN,
) -> np.ndarray:
    """Quantize real ``values`` into raw integer codes of ``fmt``.

    Returns an ``int64`` array (wide enough for any supported format)
    of saturated codes.  ``dequantize(quantize(x)) ≈ x`` within half an
    LSB for in-range inputs.
    """
    values = np.asarray(values, dtype=np.float64)
    scaled = values * (2.0 ** fmt.frac_bits)
    if rounding is Rounding.NEAREST_EVEN:
        raw = np.rint(scaled)
    elif rounding is Rounding.TRUNCATE:
        raw = np.floor(scaled)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown rounding mode {rounding}")
    return saturate(raw.astype(np.int64), fmt)


def dequantize(raw: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Map raw integer codes of ``fmt`` back to real values."""
    return np.asarray(raw, dtype=np.float64) * fmt.scale


def requantize(
    raw: np.ndarray,
    src: QFormat,
    dst: QFormat,
    rounding: Rounding = Rounding.NEAREST_EVEN,
) -> np.ndarray:
    """Re-scale raw codes from format ``src`` to format ``dst``.

    This is the shift-and-saturate that sits between a wide accumulator
    and the narrow 8-bit inter-engine buffers.  Implemented exactly in
    the integer domain so no double-rounding artifacts appear.
    """
    raw = np.asarray(raw, dtype=np.int64)
    shift = src.frac_bits - dst.frac_bits
    if shift == 0:
        out = raw
    elif shift > 0:
        if rounding is Rounding.NEAREST_EVEN:
            # Round-half-even on a right shift of `shift` bits.
            half = np.int64(1) << np.int64(shift - 1)
            floor = raw >> np.int64(shift)
            rem = raw - (floor << np.int64(shift))
            out = floor + (rem > half).astype(np.int64)
            ties = rem == half
            out = out + (ties & ((floor & 1) == 1)).astype(np.int64)
        else:
            out = raw >> np.int64(shift)
    else:
        out = raw << np.int64(-shift)
    return saturate(out, dst)


def calibrate_format(
    values: np.ndarray, total_bits: int = 8, signed: bool = True
) -> QFormat:
    """Choose the finest :class:`QFormat` that covers ``values``.

    Per-tensor calibration: the deployment flow scans each weight
    tensor once and picks fractional bits so the extremes saturate at
    most half an LSB.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return QFormat(total_bits, total_bits - (1 if signed else 0), signed)
    lo = float(np.min(values))
    hi = float(np.max(values))
    return QFormat.for_range(lo, hi, total_bits=total_bits, signed=signed)


def quantization_error(
    values: np.ndarray, fmt: QFormat, rounding: Rounding = Rounding.NEAREST_EVEN
) -> Tuple[float, float]:
    """Return ``(max_abs_error, rms_error)`` of quantizing ``values``."""
    values = np.asarray(values, dtype=np.float64)
    recon = dequantize(quantize(values, fmt, rounding), fmt)
    err = recon - values
    if err.size == 0:
        return 0.0, 0.0
    return float(np.max(np.abs(err))), float(np.sqrt(np.mean(err * err)))
