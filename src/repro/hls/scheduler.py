"""Analytical latency scheduler for loop nests.

Reproduces the cycle arithmetic Vitis HLS applies to the paper's
engines:

* **Pipelined loop** (``#pragma HLS pipeline II=k``): all nested loops
  are fully unrolled into one pipeline stage chain of depth ``D``;
  latency is ``D + (trip − 1)·k``.
* **Fully/partially unrolled loop**: iterations become parallel
  hardware; a reduction over ``n`` parallel products costs
  ``ceil(log2 n)`` adder-tree stages of depth.
* **Sequential loop** (no pragma, or ``pipeline off`` as on every outer
  row loop in Algorithms 1–4): latency is
  ``trip · (body_latency + overhead)``.

The scheduler is deliberately simple — these engines have static trip
counts and no data-dependent control, which is precisely why the paper
can report deterministic latencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from .loopnest import Body, Loop

__all__ = ["LoopSchedule", "schedule_loop", "schedule_body"]


@dataclass
class LoopSchedule:
    """Latency result for one loop nest.

    Attributes
    ----------
    cycles:
        Total latency in clock cycles.
    depth:
        Pipeline depth of one iteration (cycles to first result).
    trip:
        Effective sequential iteration count at this level.
    detail:
        Per-subloop cycle breakdown (loop name → cycles), useful for
        the per-engine accounting printed by the experiments.
    """

    cycles: int
    depth: int
    trip: int
    detail: Dict[str, int] = field(default_factory=dict)


def _tree_depth(n: int) -> int:
    """Adder-tree stages to reduce ``n`` parallel partial products."""
    return 0 if n <= 1 else math.ceil(math.log2(n))


def _iteration_depth(loop: Loop) -> int:
    """Depth of one fully-unrolled iteration of ``loop``'s body.

    Statements chain sequentially; a nested loop contributes its own
    iteration depth plus the reduction tree over its (unrolled) trips.
    """
    depth = 0
    for stmt in loop.statements():
        depth += stmt.depth
    for sub in loop.subloops():
        inst = sub.trip if sub.unroll is None or sub.unroll.factor is None \
            else min(sub.unroll.factor, sub.trip)
        depth += _iteration_depth(sub) + _tree_depth(max(inst, 1))
    return max(depth, 1)


def schedule_loop(loop: Loop) -> LoopSchedule:
    """Compute the latency of one loop nest (see module docstring)."""
    if loop.trip == 0:
        return LoopSchedule(cycles=0, depth=0, trip=0)

    # --- pipelined: D + (trip-1)*II ------------------------------------
    if loop.pipeline is not None and not loop.pipeline.off:
        depth = _iteration_depth(loop)
        cycles = depth + (loop.trip - 1) * loop.pipeline.ii
        return LoopSchedule(cycles=cycles, depth=depth, trip=loop.trip)

    # --- fully unrolled: parallel copies + reduction tree ---------------
    if loop.unroll is not None and loop.unroll.factor is None:
        depth = _iteration_depth(loop) + _tree_depth(loop.trip)
        return LoopSchedule(cycles=depth, depth=depth, trip=1)

    # --- sequential (optionally partially unrolled) ----------------------
    factor = 1 if loop.unroll is None else max(1, loop.unroll.factor or 1)
    trip_eff = math.ceil(loop.trip / factor)
    body_cycles = 0
    detail: Dict[str, int] = {}
    for stmt in loop.statements():
        body_cycles += stmt.depth
    for sub in loop.subloops():
        sched = schedule_loop(sub)
        detail[sub.name] = sched.cycles
        body_cycles += sched.cycles
    cycles = trip_eff * (body_cycles + loop.overhead)
    return LoopSchedule(
        cycles=cycles,
        depth=body_cycles,
        trip=trip_eff,
        detail=detail,
    )


def schedule_body(body: Body) -> LoopSchedule:
    """Latency of an engine body: its top-level loops run back to back."""
    total = 0
    depth = 0
    detail: Dict[str, int] = {}
    for lp in body.loops:
        sched = schedule_loop(lp)
        detail[lp.name] = sched.cycles
        total += sched.cycles
        depth = max(depth, sched.depth)
    return LoopSchedule(cycles=total, depth=depth, trip=1, detail=detail)
