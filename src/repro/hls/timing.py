"""Achievable-clock (Fmax) model.

ProTEA's tile sizes trade iteration count against datapath width, and
Fig. 7 shows the consequence: both very wide unrolls (few, large tiles)
and very fragmented designs (many small tiles) lower the achievable
frequency; 12 MHA tiles x 6 FFN tiles peaks at 200 MHz.

The model: each engine's critical path is a base pipeline-stage delay
plus congestion terms that grow once the design leaves that engine
class's routing sweet spot —

``delay_ns = T_BASE
           + A·max(0, log2(width / width_ref))²
           + B·max(0, log2(iters / iters_ref))²
           + irregular·T_IRR + unaligned·T_ALIGN``

* ``width``: the unrolled operand fan-in (adder tree + operand-mux
  width; routing a 384-wide 8-bit reduction stresses one SLR).
* ``iters``: the tile-iteration count (tile-offset muxing, bank-select
  fanout and control replication grow with the number of tiles).
* ``width_ref`` / ``iters_ref``: the engine class's sweet spot — set by
  each module to the published optimum (TS_MHA=64 / 12 tiles for the
  attention engines, TS_FFN=128 / 6 tiles for the FFN engines).  These
  encode the calibration against Fig. 7; they are properties of the
  U55C fabric + Vitis, not of individual experiments.
* ``irregular``: the tile size does not divide the synthesized
  ``d_model`` (ragged banks, non-uniform partition muxing).
* ``unaligned``: the tile size is neither a power of two nor 64-aligned
  (address generation needs real multipliers/modulos).

The full-design Fmax is the minimum over engines (the slowest module
closes timing last), clipped to the platform's practical ceiling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable

__all__ = ["TimingModel", "EnginePath", "DEFAULT_TIMING"]


@dataclass(frozen=True)
class EnginePath:
    """Critical-path description of one engine."""

    name: str
    width: int             # unrolled fan-in (PEs reduced per output)
    iters: int             # tile-iteration count steered by control
    width_ref: int = 64    # routing sweet spot of this engine class
    iters_ref: int = 12
    irregular: bool = False
    unaligned: bool = False

    def __post_init__(self) -> None:
        if min(self.width, self.iters, self.width_ref, self.iters_ref) < 1:
            raise ValueError(f"{self.name}: widths/iters must be >= 1")


@dataclass(frozen=True)
class TimingModel:
    """Calibrated Fmax model (see module docstring).

    ``ceiling_mhz`` models the platform/shell kernel-clock ceiling —
    the U55C shell tops out near 300 MHz for HLS kernels; the paper's
    design closes at 200 MHz.
    """

    t_base_ns: float = 5.0
    a_width: float = 4.3
    b_iters: float = 1.0
    t_irregular_ns: float = 1.2
    t_unaligned_ns: float = 0.4
    ceiling_mhz: float = 300.0

    def path_delay_ns(self, path: EnginePath) -> float:
        """Critical-path delay of one engine in nanoseconds."""
        dw = max(0.0, math.log2(path.width / path.width_ref))
        di = max(0.0, math.log2(path.iters / path.iters_ref))
        delay = self.t_base_ns + self.a_width * dw * dw + self.b_iters * di * di
        if path.irregular:
            delay += self.t_irregular_ns
        if path.unaligned:
            delay += self.t_unaligned_ns
        return delay

    def fmax_mhz(self, paths: Iterable[EnginePath]) -> float:
        """Design Fmax: slowest engine decides, capped at the ceiling."""
        worst = max(self.path_delay_ns(p) for p in paths)
        return min(1000.0 / worst, self.ceiling_mhz)

    def per_engine_mhz(self, paths: Iterable[EnginePath]) -> Dict[str, float]:
        """Diagnostic per-engine standalone Fmax."""
        return {
            p.name: min(1000.0 / self.path_delay_ns(p), self.ceiling_mhz)
            for p in paths
        }


def tile_regularity(d_model: int, tile: int) -> Dict[str, bool]:
    """Irregularity flags for a tile size against the synthesized
    ``d_model`` (helper for the modules' timing paths)."""
    power_of_two = tile >= 1 and (tile & (tile - 1)) == 0
    return {
        "irregular": d_model % tile != 0,
        "unaligned": not power_of_two and tile % 64 != 0,
    }


#: Calibration used throughout the reproduction (fitted to Fig. 7:
#: 12 MHA tiles / 6 FFN tiles → 200 MHz peak; extremes fall into the
#: figure's 60–110 MHz band).
DEFAULT_TIMING = TimingModel()
