"""Array-to-memory mapping: BRAM/LUTRAM banks, ports and partitioning.

The paper: "Input data and weights are stored in multiple
BRAMs/LUTRAMs to support parallel access ... array partitioning and
data loading are optimized to ensure that data needed simultaneously by
a DSP is stored in separate BRAMs."  This module reproduces that
mapping: an :class:`ArraySpec` plus partition pragmas yields a bank
count, a storage binding (BRAM18K vs distributed LUTRAM) and a port
budget the scheduler can check unroll factors against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from .pragmas import ArrayPartition, PartitionKind

__all__ = ["ArraySpec", "BankBinding", "PortConflictError", "LUTRAM_THRESHOLD_BITS"]

#: Arrays at or below this size bind to distributed LUTRAM (Vitis's
#: default heuristic is ~1K bits per bank before it spends a BRAM18K).
LUTRAM_THRESHOLD_BITS = 1024

#: Read/write ports per BRAM18K bank (true dual port).
PORTS_PER_BANK = 2

#: Bits stored per logic LUT when used as distributed RAM (LUT6 = 64x1).
BITS_PER_LUTRAM_LUT = 64

#: Capacity of one BRAM18K block in bits.
BRAM18K_BITS = 18 * 1024


class PortConflictError(RuntimeError):
    """Raised when concurrent accesses exceed the banks' port budget."""


@dataclass(frozen=True)
class ArraySpec:
    """A C array in the HLS source plus its partition pragmas.

    Parameters
    ----------
    name:
        Variable name (for diagnostics).
    shape:
        Logical dimensions, e.g. ``(d_k, TS_MHA)`` for a weight buffer.
    element_bits:
        Storage width of one element (8 for the Fix8 datapath).
    partitions:
        ``array_partition`` pragmas applied to this array; factors on
        distinct dims multiply.
    """

    name: str
    shape: Tuple[int, ...]
    element_bits: int = 8
    partitions: Tuple[ArrayPartition, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if any(s < 1 for s in self.shape):
            raise ValueError(f"{self.name}: shape must be positive, got {self.shape}")
        if self.element_bits < 1:
            raise ValueError(f"{self.name}: element_bits must be >= 1")
        for p in self.partitions:
            if p.dim > len(self.shape):
                raise ValueError(
                    f"{self.name}: partition dim {p.dim} exceeds rank {len(self.shape)}"
                )

    # ------------------------------------------------------------------
    @property
    def elements(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def total_bits(self) -> int:
        return self.elements * self.element_bits

    @property
    def banks(self) -> int:
        """Physical banks after applying all partition pragmas."""
        n = 1
        for p in self.partitions:
            n *= p.banks(self.shape)
        return min(n, self.elements)

    # ------------------------------------------------------------------
    def bind(self) -> "BankBinding":
        """Bind the array to physical storage.

        Each bank holds ``total_bits / banks``; banks at or below
        :data:`LUTRAM_THRESHOLD_BITS` become distributed LUTRAM,
        larger ones consume BRAM18K (possibly several when a bank
        exceeds 18 Kbit).
        """
        banks = self.banks
        bits_per_bank = math.ceil(self.total_bits / banks)
        if bits_per_bank <= LUTRAM_THRESHOLD_BITS:
            luts = banks * math.ceil(
                bits_per_bank / BITS_PER_LUTRAM_LUT
            ) * max(1, self.element_bits // 8)
            return BankBinding(self.name, banks, bits_per_bank, "lutram",
                               bram18k=0, lutram_luts=luts)
        bram_per_bank = math.ceil(bits_per_bank / BRAM18K_BITS)
        return BankBinding(self.name, banks, bits_per_bank, "bram",
                           bram18k=banks * bram_per_bank, lutram_luts=0)

    def check_parallel_access(self, accesses_per_cycle: int) -> None:
        """Verify the partitioning supports ``accesses_per_cycle``.

        The unrolled PEs read one element each per cycle; with cyclic
        partitioning across the unrolled dim, each bank serves at most
        :data:`PORTS_PER_BANK` accesses.
        """
        capacity = self.banks * PORTS_PER_BANK
        if accesses_per_cycle > capacity:
            raise PortConflictError(
                f"{self.name}: {accesses_per_cycle} accesses/cycle exceed "
                f"{self.banks} banks x {PORTS_PER_BANK} ports = {capacity}"
            )

    def required_ii(self, accesses_per_cycle: int) -> int:
        """Smallest II sustaining ``accesses_per_cycle`` on this banking."""
        capacity = self.banks * PORTS_PER_BANK
        return max(1, math.ceil(accesses_per_cycle / capacity))


@dataclass(frozen=True)
class BankBinding:
    """Physical storage binding of one array."""

    name: str
    banks: int
    bits_per_bank: int
    storage: str  # 'bram' | 'lutram'
    bram18k: int
    lutram_luts: int


def total_binding(specs: List[ArraySpec]) -> Tuple[int, int, int]:
    """Aggregate ``(bram18k, lutram_luts, banks)`` over many arrays."""
    bram = luts = banks = 0
    for spec in specs:
        b = spec.bind()
        bram += b.bram18k
        luts += b.lutram_luts
        banks += b.banks
    return bram, luts, banks


def fully_partitioned(name: str, shape: Tuple[int, ...], dim: int,
                      element_bits: int = 8) -> ArraySpec:
    """Convenience: array completely partitioned along ``dim`` (1-based)."""
    return ArraySpec(
        name=name,
        shape=shape,
        element_bits=element_bits,
        partitions=(ArrayPartition(PartitionKind.COMPLETE, dim=dim),),
    )
