"""Resource aggregation: loop nests + arrays → DSP/LUT/FF/BRAM counts.

The DSP count is *structural*: one DSP48 per unrolled MAC instance,
which is exactly the paper's own accounting (QKV: 3·TS_MHA·h, QK:
d_k·h, SV: SL·h, FFN1/2: TS_FFN each, FFN3: 4·TS_FFN — totalling 3,584
for the published configuration, plus softmax/LN helpers = 3,612).

LUT and FF counts are structural-plus-calibrated: each PE carries
control/muxing logic and pipeline registers whose per-instance
coefficients (:data:`LUT_PER_PE`, :data:`FF_PER_PE`, …) are fitted once
against the published Table I utilization row (993,107 LUT / 704,115 FF
at 3,612 DSP) and then held fixed for every other configuration —
i.e. the *model* is calibrated, individual experiments are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Union

from .arrays import ArraySpec
from .loopnest import Body, Loop, walk_statements

__all__ = [
    "ResourceEstimate",
    "estimate_loop_resources",
    "LUT_PER_PE",
    "FF_PER_PE",
    "LUT_PER_BANK_MUX",
    "FF_PER_BANK",
]

# ---------------------------------------------------------------------------
# Calibration coefficients (fitted once against Table I; see module doc).
# ---------------------------------------------------------------------------
#: Control/steering LUTs accompanying each unrolled PE (operand muxing,
#: address decode, accumulate-select).
LUT_PER_PE = 182
#: Pipeline/accumulator registers per PE.
FF_PER_PE = 130
#: Bank-selection mux LUTs per physical memory bank.
LUT_PER_BANK_MUX = 33
#: Output registers per bank.
FF_PER_BANK = 21
#: Static infrastructure (AXI masters/slave, controller FSMs, softmax
#: normalization, load units) — independent of tile sizes.
STATIC_LUTS = 97000
STATIC_FFS = 118000
STATIC_DSPS = 0
STATIC_BRAM18K = 64  # AXI data FIFOs


@dataclass
class ResourceEstimate:
    """Additive resource usage of a design fragment."""

    dsps: int = 0
    luts: int = 0
    ffs: int = 0
    bram18k: int = 0
    uram: int = 0
    pes: int = 0
    banks: int = 0
    breakdown: Dict[str, int] = field(default_factory=dict)

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        merged = dict(self.breakdown)
        for k, v in other.breakdown.items():
            merged[k] = merged.get(k, 0) + v
        return ResourceEstimate(
            dsps=self.dsps + other.dsps,
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            bram18k=self.bram18k + other.bram18k,
            uram=self.uram + other.uram,
            pes=self.pes + other.pes,
            banks=self.banks + other.banks,
            breakdown=merged,
        )

    def scaled(self, n: int) -> "ResourceEstimate":
        """Resources of ``n`` identical copies (e.g. one per head)."""
        return ResourceEstimate(
            dsps=self.dsps * n,
            luts=self.luts * n,
            ffs=self.ffs * n,
            bram18k=self.bram18k * n,
            uram=self.uram * n,
            pes=self.pes * n,
            banks=self.banks * n,
            breakdown={k: v * n for k, v in self.breakdown.items()},
        )

    def as_dict(self) -> Dict[str, int]:
        """Device-facing view for :meth:`repro.fpga.FPGADevice.check_fit`."""
        return {
            "dsp": self.dsps,
            "lut": self.luts,
            "ff": self.ffs,
            "bram18k": self.bram18k,
            "uram": self.uram,
        }


def estimate_loop_resources(
    nest: Union[Loop, Body],
    arrays: Iterable[ArraySpec] = (),
    label: str = "",
) -> ResourceEstimate:
    """Estimate the hardware resources of one engine.

    Compute side: walk the loop nest, count statement instances implied
    by unrolling; every instance with ``dsps > 0`` is a PE carrying the
    per-PE LUT/FF overhead.  Memory side: bind each array to banks and
    charge BRAM/LUTRAM plus mux/register overhead per bank.
    """
    loops: List[Loop]
    if isinstance(nest, Body):
        loops = list(nest.loops)
        label = label or nest.name
    else:
        loops = [nest]
        label = label or nest.name

    est = ResourceEstimate()
    pes = 0
    for lp in loops:
        for stmt, instances in walk_statements(lp):
            est.dsps += stmt.dsps * instances
            est.luts += stmt.luts * instances
            est.ffs += stmt.ffs * instances
            if stmt.dsps > 0:
                pes += instances
    est.pes = pes
    est.luts += pes * LUT_PER_PE
    est.ffs += pes * FF_PER_PE

    for spec in arrays:
        binding = spec.bind()
        est.bram18k += binding.bram18k
        est.luts += binding.lutram_luts + binding.banks * LUT_PER_BANK_MUX
        est.ffs += binding.banks * FF_PER_BANK
        est.banks += binding.banks

    est.breakdown[label or "engine"] = est.dsps
    return est


def static_infrastructure() -> ResourceEstimate:
    """Tile-size-independent infrastructure (AXI, controller, DMA)."""
    return ResourceEstimate(
        dsps=STATIC_DSPS,
        luts=STATIC_LUTS,
        ffs=STATIC_FFS,
        bram18k=STATIC_BRAM18K,
        breakdown={"infrastructure": STATIC_DSPS},
    )
