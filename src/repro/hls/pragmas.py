"""HLS pragma descriptors.

The paper's engines are written as C loop nests annotated with
``#pragma HLS pipeline II=1``, ``#pragma HLS unroll`` and
``#pragma HLS array_partition``.  These dataclasses are the IR-level
equivalents consumed by :mod:`repro.hls.scheduler` and
:mod:`repro.hls.arrays`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

__all__ = ["Pipeline", "Unroll", "PartitionKind", "ArrayPartition"]


@dataclass(frozen=True)
class Pipeline:
    """``#pragma HLS pipeline II=<ii>``.

    ``ii`` is the initiation interval: a new loop iteration starts every
    ``ii`` cycles once the pipeline is full.  HLS fully unrolls all
    loops nested inside a pipelined loop — the scheduler reproduces
    that behaviour.  ``off=True`` models ``#pragma HLS pipeline off``
    (the paper puts it on every outer row loop), which forces purely
    sequential iteration.
    """

    ii: int = 1
    off: bool = False

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise ValueError("initiation interval must be >= 1")


@dataclass(frozen=True)
class Unroll:
    """``#pragma HLS unroll [factor=<f>]``.

    ``factor=None`` means complete unrolling (every iteration becomes a
    parallel hardware copy — this is what creates the PE arrays).
    """

    factor: Optional[int] = None

    def __post_init__(self) -> None:
        if self.factor is not None and self.factor < 1:
            raise ValueError("unroll factor must be >= 1")

    def instances(self, trip: int) -> int:
        """Parallel copies produced for a loop of ``trip`` iterations."""
        if self.factor is None:
            return trip
        return min(self.factor, trip)


class PartitionKind(Enum):
    """``array_partition`` variants."""

    CYCLIC = "cyclic"
    BLOCK = "block"
    COMPLETE = "complete"


@dataclass(frozen=True)
class ArrayPartition:
    """``#pragma HLS array_partition variable=x <kind> factor=<f> dim=<d>``.

    ``dim`` is 1-based as in HLS (0 means "all dims" for COMPLETE).
    """

    kind: PartitionKind = PartitionKind.CYCLIC
    factor: int = 1
    dim: int = 1

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError("partition factor must be >= 1")
        if self.dim < 0:
            raise ValueError("dim must be >= 0")

    def banks(self, shape: tuple) -> int:
        """Number of physical banks this partition creates for ``shape``."""
        if self.kind is PartitionKind.COMPLETE:
            if self.dim == 0:
                out = 1
                for s in shape:
                    out *= int(s)
                return out
            return int(shape[self.dim - 1])
        if self.dim == 0:
            raise ValueError("dim=0 only valid for COMPLETE partitioning")
        return min(self.factor, int(shape[self.dim - 1]))
