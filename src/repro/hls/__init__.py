"""Mini-HLS substrate: pragmas, loop-nest IR, scheduler, arrays, timing.

This package stands in for Vitis HLS in the reproduction: the ProTEA
engines (``repro.core``) are described as pragma-annotated loop nests,
and this package turns them into cycle counts
(:func:`~repro.hls.scheduler.schedule_loop`), resource estimates
(:func:`~repro.hls.resources.estimate_loop_resources`) and an
achievable clock (:class:`~repro.hls.timing.TimingModel`).
"""

from .arrays import (
    ArraySpec,
    BankBinding,
    LUTRAM_THRESHOLD_BITS,
    PortConflictError,
    fully_partitioned,
    total_binding,
)
from .loopnest import MAC_STATEMENT, Body, Loop, Statement, walk_statements
from .pragmas import ArrayPartition, PartitionKind, Pipeline, Unroll
from .resources import (
    FF_PER_BANK,
    FF_PER_PE,
    LUT_PER_BANK_MUX,
    LUT_PER_PE,
    ResourceEstimate,
    estimate_loop_resources,
    static_infrastructure,
)
from .scheduler import LoopSchedule, schedule_body, schedule_loop
from .timing import DEFAULT_TIMING, EnginePath, TimingModel, tile_regularity

__all__ = [
    "Pipeline",
    "Unroll",
    "ArrayPartition",
    "PartitionKind",
    "Statement",
    "Loop",
    "Body",
    "MAC_STATEMENT",
    "walk_statements",
    "LoopSchedule",
    "schedule_loop",
    "schedule_body",
    "ArraySpec",
    "BankBinding",
    "PortConflictError",
    "LUTRAM_THRESHOLD_BITS",
    "fully_partitioned",
    "total_binding",
    "ResourceEstimate",
    "estimate_loop_resources",
    "static_infrastructure",
    "LUT_PER_PE",
    "FF_PER_PE",
    "LUT_PER_BANK_MUX",
    "FF_PER_BANK",
    "TimingModel",
    "EnginePath",
    "DEFAULT_TIMING",
    "tile_regularity",
]
