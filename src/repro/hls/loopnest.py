"""Loop-nest IR: the abstract form of one HLS compute engine.

An engine (QKV_CE, FFN1_CE, …) is a perfect or imperfect loop nest whose
leaves are :class:`Statement` operations (MACs, LUT lookups, adds).
:mod:`repro.hls.scheduler` walks this IR to produce cycle counts, and
:mod:`repro.hls.resources` to produce PE/DSP/LUT/FF counts — mirroring
what Vitis HLS reports for the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from .pragmas import Pipeline, Unroll

__all__ = ["Statement", "Loop", "Body", "MAC_STATEMENT", "walk_statements"]


@dataclass(frozen=True)
class Statement:
    """One primitive operation instantiated in hardware.

    Parameters
    ----------
    name:
        Operation label ('mac', 'exp_lut', …).
    depth:
        Pipeline depth in cycles of one instance (latency through the
        unit; a DSP48 MAC is typically 4 stages at 200 MHz+).
    dsps, luts, ffs:
        Resources of one instance.  Unrolling multiplies instances.
    """

    name: str
    depth: int = 4
    dsps: int = 0
    luts: int = 0
    ffs: int = 0

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("statement depth must be >= 1")
        if min(self.dsps, self.luts, self.ffs) < 0:
            raise ValueError("resources must be non-negative")


#: The canonical 8-bit multiply-accumulate mapped onto one DSP48.
#: LUT/FF counts are the per-PE control overhead calibrated against
#: Table I (see resources.py for the calibration notes).
MAC_STATEMENT = Statement(name="mac", depth=4, dsps=1, luts=0, ffs=0)


@dataclass
class Loop:
    """A counted loop with optional pipeline/unroll pragmas.

    ``body`` mixes nested :class:`Loop` objects and leaf
    :class:`Statement` objects, in program order.
    """

    name: str
    trip: int
    body: Sequence[Union["Loop", Statement]] = field(default_factory=list)
    pipeline: Optional[Pipeline] = None
    unroll: Optional[Unroll] = None
    #: cycles of loop-control overhead per sequential iteration (index
    #: increment + exit test); Vitis charges 1–2 cycles.
    overhead: int = 1

    def __post_init__(self) -> None:
        if self.trip < 0:
            raise ValueError(f"loop {self.name}: trip count must be >= 0")
        if self.pipeline and self.pipeline.off and self.unroll:
            raise ValueError(f"loop {self.name}: pipeline-off with unroll is meaningless")

    # ------------------------------------------------------------------
    def statements(self) -> List[Statement]:
        """Leaf statements in this loop's body (non-recursive)."""
        return [b for b in self.body if isinstance(b, Statement)]

    def subloops(self) -> List["Loop"]:
        """Nested loops in this loop's body (non-recursive)."""
        return [b for b in self.body if isinstance(b, Loop)]

    def validate(self) -> None:
        """Recursively sanity-check the nest."""
        for sub in self.subloops():
            sub.validate()


@dataclass
class Body:
    """A straight-line sequence of loops executed one after another.

    Models an engine whose function body contains several top-level
    loop nests (e.g. load loop, then compute loop).
    """

    name: str
    loops: Sequence[Loop] = field(default_factory=list)

    def validate(self) -> None:
        for lp in self.loops:
            lp.validate()


def walk_statements(loop: Loop, _factor: int = 1, _force_unroll: bool = False):
    """Yield ``(statement, instances)`` over the whole nest.

    ``instances`` is the number of parallel hardware copies of the
    statement implied by unroll pragmas on the enclosing loops.  A
    pipelined loop fully unrolls everything nested inside it —
    *transitively*: every descendant loop without an explicit (partial)
    unroll pragma contributes its full trip count.
    """
    factor = _factor
    if loop.unroll is not None:
        factor *= loop.unroll.instances(loop.trip)
    elif _force_unroll:
        # Implicit full unroll inside an enclosing pipelined loop.
        factor *= loop.trip
    for stmt in loop.statements():
        yield stmt, factor
    pipelined_here = loop.pipeline is not None and not loop.pipeline.off
    force = _force_unroll or pipelined_here
    for sub in loop.subloops():
        yield from walk_statements(sub, factor, force)
