"""FPGA device capacity models (Alveo U55C and the comparison parts)."""

from .device import FPGADevice, OverUtilizationError, Utilization
from .power import GPU_CPU_TDP_W, PowerModel, PowerReport
from .parts import (
    ALVEO_U200,
    ALVEO_U250,
    ALVEO_U55C,
    PART_CATALOG,
    VCU118,
    ZCU102,
    get_part,
)

__all__ = [
    "PowerModel",
    "PowerReport",
    "GPU_CPU_TDP_W",
    "FPGADevice",
    "Utilization",
    "OverUtilizationError",
    "ALVEO_U55C",
    "ALVEO_U200",
    "ALVEO_U250",
    "ZCU102",
    "VCU118",
    "PART_CATALOG",
    "get_part",
]
