"""FPGA power and energy-efficiency model.

The paper motivates FPGAs with "low run time inference latencies with
efficient power consumption" but reports no watts.  This model supplies
the missing column with the standard XPE-style decomposition:

``P = P_static + Σ_resource (count · toggle · mW/MHz · f)``

Per-resource dynamic coefficients are order-of-magnitude figures for
UltraScale+ at nominal voltage (DSP48 ~0.02 mW/MHz fully toggling,
BRAM18 ~0.015, logic LUT ~0.00015, FF ~0.00005) with an activity factor
for realistic toggle rates; HBM adds a bandwidth-proportional term.
Good to a factor of ~1.5 — enough for GOPS/W *comparisons*, which is
how the numbers are used.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hls.resources import ResourceEstimate

__all__ = ["PowerModel", "PowerReport", "GPU_CPU_TDP_W"]

#: Published board powers of the Table III comparators (TDP, watts).
GPU_CPU_TDP_W = {
    "NVIDIA Titan XP GPU": 250.0,
    "Jetson TX2 GPU": 15.0,
    "NVIDIA RTX 3060 GPU": 170.0,
    "Intel i5-5257U CPU": 28.0,
    "Intel i5-4460 CPU": 84.0,
}


@dataclass(frozen=True)
class PowerModel:
    """Per-resource dynamic power coefficients (mW per MHz per unit)."""

    static_w: float = 3.5            # shell + HBM PHY idle
    dsp_mw_per_mhz: float = 0.020
    bram_mw_per_mhz: float = 0.015
    lut_mw_per_mhz: float = 0.00015
    ff_mw_per_mhz: float = 0.00005
    activity: float = 0.25           # average toggle factor
    hbm_w_per_gbps: float = 0.030    # HBM2 access energy ≈ 3.7 pJ/bit

    def dynamic_w(self, resources: ResourceEstimate, clock_mhz: float) -> float:
        """Core dynamic power of the mapped design."""
        if clock_mhz <= 0:
            raise ValueError("clock must be positive")
        mw = (
            resources.dsps * self.dsp_mw_per_mhz
            + resources.bram18k * self.bram_mw_per_mhz
            + resources.luts * self.lut_mw_per_mhz
            + resources.ffs * self.ff_mw_per_mhz
        ) * clock_mhz * self.activity
        return mw / 1000.0

    def total_w(
        self,
        resources: ResourceEstimate,
        clock_mhz: float,
        achieved_gbps: float = 0.0,
    ) -> float:
        """Board power: static + core dynamic + memory traffic."""
        if achieved_gbps < 0:
            raise ValueError("bandwidth must be non-negative")
        return (self.static_w
                + self.dynamic_w(resources, clock_mhz)
                + achieved_gbps * self.hbm_w_per_gbps)


@dataclass(frozen=True)
class PowerReport:
    """Power/energy profile of one workload on one instance."""

    total_w: float
    dynamic_w: float
    static_w: float
    energy_per_inference_j: float
    gops_per_w: float

    @classmethod
    def evaluate(
        cls,
        model: PowerModel,
        resources: ResourceEstimate,
        clock_mhz: float,
        latency_s: float,
        gops: float,
        achieved_gbps: float = 0.0,
    ) -> "PowerReport":
        if latency_s <= 0 or gops <= 0:
            raise ValueError("latency and gops must be positive")
        total = model.total_w(resources, clock_mhz, achieved_gbps)
        return cls(
            total_w=total,
            dynamic_w=model.dynamic_w(resources, clock_mhz),
            static_w=model.static_w,
            energy_per_inference_j=total * latency_s,
            gops_per_w=gops / total,
        )
