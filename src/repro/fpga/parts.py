"""Catalog of the FPGA parts appearing in the paper's tables.

Capacities are taken from the public Xilinx/AMD data sheets:

* Alveo U55C  — XCU55C (Virtex UltraScale+ HBM2): 9,024 DSP, 1,304K LUT,
  2,607K FF, 2,016 BRAM18K, 960 URAM, 16 GB HBM2 @ 460 GB/s.
* Alveo U200  — XCU200: 6,840 DSP, 1,182K LUT, 2,364K FF, 4,320 BRAM18K,
  960 URAM, 4x DDR4 @ 77 GB/s.
* Alveo U250  — XCU250: 12,288 DSP, 1,728K LUT, 3,456K FF, 5,376 BRAM18K,
  1,280 URAM, DDR4 @ 77 GB/s.
* ZCU102      — XCZU9EG: 2,520 DSP, 274K LUT, 548K FF, 1,824 BRAM18K,
  0 URAM, DDR4 @ 19 GB/s.
* VCU118      — XCVU9P: 6,840 DSP, 1,182K LUT, 2,364K FF, 4,320 BRAM18K,
  960 URAM, DDR4 @ 38 GB/s.
"""

from __future__ import annotations

from typing import Dict

from .device import FPGADevice

__all__ = [
    "ALVEO_U55C",
    "ALVEO_U200",
    "ALVEO_U250",
    "ZCU102",
    "VCU118",
    "PART_CATALOG",
    "get_part",
]

ALVEO_U55C = FPGADevice(
    name="Alveo U55C",
    dsp=9024,
    lut=1303680,
    ff=2607360,
    bram18k=2016,
    uram=960,
    hbm_bandwidth_gbps=460.0,
    hbm_channels=32,
    default_clock_mhz=200.0,
)

ALVEO_U200 = FPGADevice(
    name="Alveo U200",
    dsp=6840,
    lut=1182240,
    ff=2364480,
    bram18k=4320,
    uram=960,
    hbm_bandwidth_gbps=77.0,
    hbm_channels=4,
    default_clock_mhz=200.0,
)

ALVEO_U250 = FPGADevice(
    name="Alveo U250",
    dsp=12288,
    lut=1728000,
    ff=3456000,
    bram18k=5376,
    uram=1280,
    hbm_bandwidth_gbps=77.0,
    hbm_channels=4,
    default_clock_mhz=200.0,
)

ZCU102 = FPGADevice(
    name="ZCU102",
    dsp=2520,
    lut=274080,
    ff=548160,
    bram18k=1824,
    uram=0,
    hbm_bandwidth_gbps=19.0,
    hbm_channels=1,
    default_clock_mhz=200.0,
)

VCU118 = FPGADevice(
    name="VCU118",
    dsp=6840,
    lut=1182240,
    ff=2364480,
    bram18k=4320,
    uram=960,
    hbm_bandwidth_gbps=38.0,
    hbm_channels=2,
    default_clock_mhz=200.0,
)

PART_CATALOG: Dict[str, FPGADevice] = {
    dev.name: dev
    for dev in (ALVEO_U55C, ALVEO_U200, ALVEO_U250, ZCU102, VCU118)
}


def get_part(name: str) -> FPGADevice:
    """Look up a device by catalog name (raises with available names)."""
    try:
        return PART_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown part {name!r}; available: {sorted(PART_CATALOG)}"
        ) from None
