"""FPGA device resource models.

A device is a budget of DSP slices, logic LUTs, flip-flops, BRAM18K
blocks and URAM blocks, plus its off-chip memory system.  The resource
model in :mod:`repro.core.resource_model` checks a synthesized design
against this budget and computes the utilization percentages of
Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["FPGADevice", "Utilization", "OverUtilizationError"]


class OverUtilizationError(RuntimeError):
    """Raised when a design does not fit the targeted device."""


@dataclass(frozen=True)
class FPGADevice:
    """Capacity model of one FPGA card/part.

    Attributes
    ----------
    dsp, lut, ff:
        DSP48 slices, logic LUTs, flip-flops.
    bram18k:
        Number of 18 Kbit block-RAM units (a BRAM36 counts as two).
    uram:
        288 Kbit UltraRAM blocks (0 on parts without URAM).
    hbm_bandwidth_gbps:
        Aggregate off-chip bandwidth in GB/s (HBM2 or DDR).
    hbm_channels:
        Independent memory channels (HBM pseudo-channels or DDR banks).
    default_clock_mhz:
        Typical achievable kernel clock for HLS designs on this part.
    """

    name: str
    dsp: int
    lut: int
    ff: int
    bram18k: int
    uram: int
    hbm_bandwidth_gbps: float
    hbm_channels: int
    default_clock_mhz: float = 200.0

    def capacity(self, resource: str) -> int:
        """Budget for ``resource`` ('dsp' | 'lut' | 'ff' | 'bram18k' | 'uram')."""
        try:
            return int(getattr(self, resource))
        except AttributeError:
            raise KeyError(f"unknown resource {resource!r}") from None

    def utilization(self, used: Dict[str, int]) -> "Utilization":
        """Percent utilization of each resource in ``used``."""
        pct = {
            res: 100.0 * amount / self.capacity(res)
            for res, amount in used.items()
            if self.capacity(res) > 0
        }
        return Utilization(device=self.name, used=dict(used), percent=pct)

    def check_fit(self, used: Dict[str, int], limit_pct: float = 100.0) -> None:
        """Raise :class:`OverUtilizationError` if any resource exceeds
        ``limit_pct`` percent of the device budget."""
        util = self.utilization(used)
        over = {r: p for r, p in util.percent.items() if p > limit_pct}
        if over:
            detail = ", ".join(f"{r}={p:.1f}%" for r, p in sorted(over.items()))
            raise OverUtilizationError(
                f"design exceeds {limit_pct:.0f}% of {self.name}: {detail}"
            )


@dataclass(frozen=True)
class Utilization:
    """Absolute and percent resource usage on a specific device."""

    device: str
    used: Dict[str, int]
    percent: Dict[str, float]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            f"{r}={self.used[r]} ({self.percent.get(r, 0.0):.0f}%)"
            for r in sorted(self.used)
        ]
        return f"[{self.device}] " + ", ".join(parts)
