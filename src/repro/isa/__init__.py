"""Controller substrate: config registers, instruction set, compiler,
interpreter — ProTEA's runtime-programmability machinery."""

from .asm import AsmSyntaxError, assemble, disassemble
from .compiler import ProgramStats, compile_program, program_stats
from .controller import (
    REGISTER_MAP,
    ConfigRegisterFile,
    ResynthesisRequiredError,
    SynthParams,
)
from .instructions import Instruction, Opcode, decode, encode
from .interpreter import ExecutionTrace, Interpreter, UnhandledOpcodeError

__all__ = [
    "assemble",
    "disassemble",
    "AsmSyntaxError",
    "Opcode",
    "Instruction",
    "encode",
    "decode",
    "SynthParams",
    "ConfigRegisterFile",
    "ResynthesisRequiredError",
    "REGISTER_MAP",
    "compile_program",
    "program_stats",
    "ProgramStats",
    "Interpreter",
    "ExecutionTrace",
    "UnhandledOpcodeError",
]
