"""Config-register file and the runtime-programmability contract.

The central claim of ProTEA: hyper-parameters "can be programmed during
runtime up to a maximum value" without resynthesis; tile sizes "must be
set before synthesis".  :class:`SynthParams` is what the bitstream
froze; :class:`ConfigRegisterFile` is what the MicroBlaze may change,
validated against those maxima.  Violations raise
:class:`ResynthesisRequiredError` — the software-visible equivalent of
"you need a new bitstream".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..memory.axi import AXILiteSlave
from ..nn.model_zoo import TransformerConfig

__all__ = [
    "ResynthesisRequiredError",
    "SynthParams",
    "ConfigRegisterFile",
    "REGISTER_MAP",
]


class ResynthesisRequiredError(RuntimeError):
    """A requested runtime parameter exceeds the synthesized maxima (or
    asks to change a synthesis-time constant such as a tile size)."""


@dataclass(frozen=True)
class SynthParams:
    """Synthesis-time constants of one ProTEA bitstream.

    ``ts_mha``/``ts_ffn`` are the tile sizes (Section IV-E: fixed at 64
    and 128 for the evaluation); ``max_*`` are the ceilings the buffers
    and loop bounds were generated for.
    """

    ts_mha: int = 64
    ts_ffn: int = 128
    max_heads: int = 8
    max_layers: int = 12
    max_d_model: int = 768
    max_seq_len: int = 128
    #: Attention sequence chunk: the SV engine's unrolled key width and
    #: the score-buffer height.  Runtime sequences longer than this are
    #: processed in chunks (which is why Table I's SL=128 test scales
    #: slightly super-linearly).
    seq_chunk: int = 64
    data_bits: int = 8

    def __post_init__(self) -> None:
        if self.ts_mha < 1 or self.ts_ffn < 1:
            raise ValueError("tile sizes must be positive")
        if self.seq_chunk < 1 or self.seq_chunk > self.max_seq_len:
            raise ValueError("seq_chunk must be in [1, max_seq_len]")
        if self.max_d_model % self.max_heads:
            raise ValueError("max_d_model must be divisible by max_heads")

    @property
    def tiles_mha_max(self) -> int:
        """MHA tile-iteration count at the synthesized maximum d_model
        (ragged final tiles allowed — hence the ceiling)."""
        return -(-self.max_d_model // self.ts_mha)

    @property
    def tiles_ffn_max(self) -> int:
        """FFN output-dim tile grid at the synthesized maximum."""
        return -(-self.max_d_model // self.ts_ffn)


#: AXI-Lite register map (byte offsets) for the four runtime parameters
#: plus control/status.
REGISTER_MAP: Dict[str, int] = {
    "ctrl": 0x00,
    "status": 0x04,
    "num_heads": 0x10,
    "num_layers": 0x14,
    "d_model": 0x18,
    "seq_len": 0x1C,
}


@dataclass
class ConfigRegisterFile:
    """Runtime-programmable CSRs with synthesis-ceiling validation."""

    synth: SynthParams
    num_heads: int = 0
    num_layers: int = 0
    d_model: int = 0
    seq_len: int = 0
    axi: AXILiteSlave = AXILiteSlave()
    programming_cycles: int = 0

    # ------------------------------------------------------------------
    def write(self, register: str, value: int) -> None:
        """One AXI-Lite CSR write with validation against the maxima."""
        if register not in REGISTER_MAP:
            raise KeyError(f"unknown register {register!r}")
        if register in ("ctrl", "status"):
            raise ValueError(f"{register} is not a parameter register")
        if value < 1:
            raise ValueError(f"{register} must be >= 1")
        limit = {
            "num_heads": self.synth.max_heads,
            "num_layers": self.synth.max_layers,
            "d_model": self.synth.max_d_model,
            "seq_len": self.synth.max_seq_len,
        }[register]
        if value > limit:
            raise ResynthesisRequiredError(
                f"{register}={value} exceeds synthesized maximum {limit}; "
                f"a new bitstream (re-synthesis) would be required"
            )
        setattr(self, register, value)
        self.programming_cycles += self.axi.write_cycles

    def program(self, config: TransformerConfig) -> None:
        """Program a full workload (the MicroBlaze boot sequence).

        Also validates the structural constraint the synthesized FFN
        datapath hard-codes (the 4x expansion ratio).
        """
        if config.d_ff != 4 * config.d_model:
            raise ResynthesisRequiredError(
                "the synthesized FFN datapath hard-codes d_ff = 4*d_model"
            )
        self.write("num_heads", config.num_heads)
        self.write("num_layers", config.num_layers)
        self.write("d_model", config.d_model)
        self.write("seq_len", config.seq_len)

    # ------------------------------------------------------------------
    @property
    def d_k(self) -> int:
        """Per-head dimension under the current configuration."""
        if not (self.num_heads and self.d_model):
            raise RuntimeError("register file not programmed yet")
        return self.d_model // self.num_heads

    @property
    def tiles_mha(self) -> int:
        """Runtime MHA tile-iteration count ``ceil(d_model / TS_MHA)``."""
        return -(-self.d_model // self.synth.ts_mha)

    @property
    def tiles_ffn(self) -> int:
        """Runtime FFN reduction-dim tile count ``ceil(d_model/TS_FFN)``
        (small d_model still occupies one tile)."""
        return -(-self.d_model // self.synth.ts_ffn)

    def snapshot(self) -> Dict[str, int]:
        """Current register values (for traces and reports)."""
        return {
            "num_heads": self.num_heads,
            "num_layers": self.num_layers,
            "d_model": self.d_model,
            "seq_len": self.seq_len,
        }
