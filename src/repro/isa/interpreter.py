"""Instruction-stream interpreter.

Executes a compiled program by dispatching each opcode to a registered
handler (the functional accelerator in :mod:`repro.core` registers its
engines here).  The interpreter itself knows nothing about tensors —
it is the controller FSM: ordering, dispatch, instruction accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .instructions import Instruction, Opcode

__all__ = ["Interpreter", "ExecutionTrace", "UnhandledOpcodeError"]


class UnhandledOpcodeError(RuntimeError):
    """An instruction reached the interpreter with no registered handler."""


@dataclass
class ExecutionTrace:
    """Record of one program execution."""

    executed: int = 0
    by_opcode: Dict[Opcode, int] = field(default_factory=dict)
    halted: bool = False
    log: List[Instruction] = field(default_factory=list)
    keep_log: bool = False

    def note(self, instr: Instruction) -> None:
        self.executed += 1
        self.by_opcode[instr.opcode] = self.by_opcode.get(instr.opcode, 0) + 1
        if self.keep_log:
            self.log.append(instr)


Handler = Callable[[Instruction], None]


class Interpreter:
    """Opcode-dispatch execution engine.

    Handlers are registered per opcode; ``BARRIER`` and ``HALT`` have
    built-in semantics (barriers invoke an optional drain callback,
    HALT stops execution).
    """

    def __init__(self, on_barrier: Optional[Callable[[], None]] = None):
        self._handlers: Dict[Opcode, Handler] = {}
        self._on_barrier = on_barrier

    def register(self, opcode: Opcode, handler: Handler) -> None:
        """Attach ``handler`` to ``opcode`` (overwrites silently)."""
        self._handlers[opcode] = handler

    def register_many(self, handlers: Dict[Opcode, Handler]) -> None:
        for op, h in handlers.items():
            self.register(op, h)

    def run(
        self, program: List[Instruction], keep_log: bool = False
    ) -> ExecutionTrace:
        """Execute ``program`` to HALT; returns the execution trace."""
        trace = ExecutionTrace(keep_log=keep_log)
        for instr in program:
            trace.note(instr)
            if instr.opcode is Opcode.HALT:
                trace.halted = True
                break
            if instr.opcode is Opcode.BARRIER:
                if self._on_barrier is not None:
                    self._on_barrier()
                continue
            handler = self._handlers.get(instr.opcode)
            if handler is None:
                raise UnhandledOpcodeError(
                    f"no handler registered for {instr.opcode.name}"
                )
            handler(instr)
        return trace
