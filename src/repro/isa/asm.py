"""Textual assembly for controller programs.

A human-readable, round-trippable rendering of instruction streams —
the artifact you diff when debugging the compiler or the executor::

    CONFIGURE        tile=0 arg=8          ; register=num_heads
    LOAD_QKV_WEIGHTS layer=0 head=2 tile=5
    RUN_QKV          layer=0 tile=5
    HALT

``assemble(disassemble(prog)) == prog`` for every compilable program
(property-tested).
"""

from __future__ import annotations

import re
from typing import List

from .instructions import Instruction, Opcode

__all__ = ["disassemble", "assemble", "AsmSyntaxError"]


class AsmSyntaxError(ValueError):
    """A line of assembly could not be parsed."""


_FIELDS = ("layer", "head", "tile", "arg")
_LINE_RE = re.compile(
    r"^\s*(?P<op>[A-Z_][A-Z0-9_]*)"
    r"(?P<fields>(\s+[a-z]+=\d+)*)"
    r"\s*(?:;.*)?$"
)
_FIELD_RE = re.compile(r"([a-z]+)=(\d+)")


def disassemble(program: List[Instruction]) -> str:
    """Render a program as text (omits zero-valued fields)."""
    lines = []
    for instr in program:
        parts = [f"{instr.opcode.name:18s}"]
        for f in _FIELDS:
            v = getattr(instr, f)
            if v:
                parts.append(f"{f}={v}")
        comment = ""
        if instr.meta:
            comment = "  ; " + ", ".join(
                f"{k}={v}" for k, v in sorted(instr.meta.items()))
        lines.append(" ".join(parts).rstrip() + comment)
    return "\n".join(lines)


def assemble(text: str) -> List[Instruction]:
    """Parse assembly text back into instructions.

    Blank lines and ``;`` comments are ignored; unknown opcodes or
    fields raise :class:`AsmSyntaxError` with the line number.
    """
    program: List[Instruction] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise AsmSyntaxError(f"line {lineno}: cannot parse {raw!r}")
        name = m.group("op")
        try:
            opcode = Opcode[name]
        except KeyError:
            raise AsmSyntaxError(
                f"line {lineno}: unknown opcode {name!r}") from None
        fields = {}
        for key, val in _FIELD_RE.findall(m.group("fields") or ""):
            if key not in _FIELDS:
                raise AsmSyntaxError(
                    f"line {lineno}: unknown field {key!r}")
            fields[key] = int(val)
        try:
            program.append(Instruction(opcode, **fields))
        except ValueError as exc:
            raise AsmSyntaxError(f"line {lineno}: {exc}") from exc
    return program
