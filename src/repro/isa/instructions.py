"""Instruction encodings for the accelerator controller.

Section IV-D: the MicroBlaze software "utilizes the extracted data to
generate instructions and control signals.  These signals guide the
processor in activating the relevant parts of the accelerator
hardware."  We define a compact 64-bit instruction word:

========  ======  =====================================================
bits      field   meaning
========  ======  =====================================================
63..56    opcode  :class:`Opcode`
55..44    layer   encoder layer index (12 bits)
43..36    head    attention head index (8 bits)
35..20    tile    tile index — linearized (row-major for 2-D FFN tiles)
19..0     arg     opcode-specific immediate (e.g. CSR value)
========  ======  =====================================================

Encode/decode round-trips exactly; the compiler emits
:class:`Instruction` objects and the interpreter dispatches on opcode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

__all__ = ["Opcode", "Instruction", "encode", "decode"]


class Opcode(IntEnum):
    """Controller operations, one per activatable hardware behaviour."""

    CONFIGURE = 0x01      # write a config register (arg = packed reg:val)
    LOAD_INPUT = 0x10     # fetch an input tile into the X buffers
    LOAD_QKV_WEIGHTS = 0x11  # fetch one Wq/Wk/Wv tile for one head
    LOAD_FFN_WEIGHTS = 0x12  # fetch one FFN weight tile
    LOAD_BIASES = 0x13    # fetch bias vectors
    RUN_QKV = 0x20        # QKV_CE over the resident tile
    RUN_QK = 0x21         # QK_CE (scores)
    RUN_SOFTMAX = 0x22    # softmax unit
    RUN_SV = 0x23         # SV_CE (attention output)
    RUN_FFN1 = 0x30       # attention output projection tile
    RUN_FFN2 = 0x31       # expansion linear tile
    RUN_FFN3 = 0x32       # contraction linear tile
    RUN_LN1 = 0x38        # layer norm after FFN1
    RUN_LN2 = 0x39        # layer norm after FFN3
    STORE_OUTPUT = 0x40   # write encoder output back to HBM
    BARRIER = 0x50        # wait for outstanding engines
    HALT = 0x7F           # end of program


_LAYER_BITS, _HEAD_BITS, _TILE_BITS, _ARG_BITS = 12, 8, 16, 20
_LAYER_MAX = (1 << _LAYER_BITS) - 1
_HEAD_MAX = (1 << _HEAD_BITS) - 1
_TILE_MAX = (1 << _TILE_BITS) - 1
_ARG_MAX = (1 << _ARG_BITS) - 1


@dataclass(frozen=True)
class Instruction:
    """One decoded controller instruction."""

    opcode: Opcode
    layer: int = 0
    head: int = 0
    tile: int = 0
    arg: int = 0
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not (0 <= self.layer <= _LAYER_MAX):
            raise ValueError(f"layer {self.layer} out of field range")
        if not (0 <= self.head <= _HEAD_MAX):
            raise ValueError(f"head {self.head} out of field range")
        if not (0 <= self.tile <= _TILE_MAX):
            raise ValueError(f"tile {self.tile} out of field range")
        if not (0 <= self.arg <= _ARG_MAX):
            raise ValueError(f"arg {self.arg} out of field range")


def encode(instr: Instruction) -> int:
    """Pack an instruction into its 64-bit word."""
    word = int(instr.opcode) & 0xFF
    word = (word << _LAYER_BITS) | instr.layer
    word = (word << _HEAD_BITS) | instr.head
    word = (word << _TILE_BITS) | instr.tile
    word = (word << _ARG_BITS) | instr.arg
    return word


def decode(word: int) -> Instruction:
    """Unpack a 64-bit word back into an :class:`Instruction`."""
    if word < 0 or word >= (1 << 64):
        raise ValueError("instruction word must fit in 64 bits")
    arg = word & _ARG_MAX
    word >>= _ARG_BITS
    tile = word & _TILE_MAX
    word >>= _TILE_BITS
    head = word & _HEAD_MAX
    word >>= _HEAD_BITS
    layer = word & _LAYER_MAX
    word >>= _LAYER_BITS
    opcode = Opcode(word & 0xFF)
    return Instruction(opcode=opcode, layer=layer, head=head, tile=tile, arg=arg)
