"""Workload → instruction-stream compiler (the MicroBlaze software).

Emits the per-layer schedule the accelerator controller executes:

1. per MHA tile: load the Wq/Wk/Wv + input tiles, run ``QKV_CE``;
2. scores / softmax / attention per head;
3. per FFN tile (2-D): load weights, run the FFN engine;
4. layer norms after FFN1 and FFN3;
5. store the layer output.

The stream length is itself a meaningful artifact: it scales with the
runtime tile counts, which is how reprogramming changes latency without
touching the bitstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..nn.model_zoo import TransformerConfig
from .controller import ConfigRegisterFile, SynthParams
from .instructions import Instruction, Opcode

__all__ = ["compile_program", "ProgramStats", "program_stats"]


def _ffn_tile_counts(csr: ConfigRegisterFile) -> tuple:
    """(reduction-dim tiles, FFN1 out tiles, FFN2 out tiles, FFN3 out tiles).

    Reduction-dim counts follow the runtime d_model; output-dim counts
    are fixed by the synthesized buffers (see core.latency for why this
    matches the measured linear-in-d_model scaling).
    """
    t_in = csr.tiles_ffn
    synth = csr.synth
    t_out1 = synth.tiles_ffn_max          # d_model_max / TS
    t_out2 = 4 * synth.tiles_ffn_max      # 4*d_model_max / TS
    t_out3 = synth.tiles_ffn_max
    return t_in, t_out1, t_out2, t_out3


def _emit_ffn_stage(
    emit, layer: int, engine_arg: int, opcode: Opcode,
    t_in: int, t_out: int, real_out_tiles: int,
) -> None:
    """One FFN engine's tile sweep: output tiles outer, reduction inner.

    LOAD instructions are emitted only for tiles that intersect real
    weights; the remaining grid invocations run on zero-gated lanes
    (output columns past the runtime d_model) with no traffic.
    """
    for c in range(t_out):
        for r in range(t_in):
            tile = c * t_in + r
            if c < real_out_tiles:
                emit(Instruction(Opcode.LOAD_FFN_WEIGHTS, layer=layer,
                                 tile=tile, arg=engine_arg))
            emit(Instruction(opcode, layer=layer, tile=tile))


def compile_program(
    config: TransformerConfig, synth: SynthParams
) -> List[Instruction]:
    """Compile one inference pass into controller instructions."""
    csr = ConfigRegisterFile(synth)
    csr.program(config)

    prog: List[Instruction] = []
    emit = prog.append

    # CSR programming prologue (one CONFIGURE per parameter register).
    for idx, (reg, val) in enumerate(csr.snapshot().items()):
        emit(Instruction(Opcode.CONFIGURE, arg=val & 0xFFFFF,
                         tile=idx, meta={"register": reg}))

    t_in, t_out1, t_out2, t_out3 = _ffn_tile_counts(csr)
    for layer in range(config.num_layers):
        # ---- attention -------------------------------------------------
        emit(Instruction(Opcode.LOAD_BIASES, layer=layer))
        for tile in range(csr.tiles_mha):
            emit(Instruction(Opcode.LOAD_INPUT, layer=layer, tile=tile))
            for head in range(config.num_heads):
                emit(Instruction(Opcode.LOAD_QKV_WEIGHTS, layer=layer,
                                 head=head, tile=tile))
            emit(Instruction(Opcode.RUN_QKV, layer=layer, tile=tile))
        for head in range(config.num_heads):
            emit(Instruction(Opcode.RUN_QK, layer=layer, head=head))
            emit(Instruction(Opcode.RUN_SOFTMAX, layer=layer, head=head))
            emit(Instruction(Opcode.RUN_SV, layer=layer, head=head))
        emit(Instruction(Opcode.BARRIER, layer=layer))

        # ---- FFN stages (2-D tiling; see _emit_ffn_stage) ---------------
        ts = synth.ts_ffn
        real1 = max(1, -(-config.d_model // ts))
        real2 = max(1, -(-(4 * config.d_model) // ts))
        _emit_ffn_stage(emit, layer, 1, Opcode.RUN_FFN1,
                        t_in, t_out1, real_out_tiles=min(real1, t_out1))
        emit(Instruction(Opcode.RUN_LN1, layer=layer))
        _emit_ffn_stage(emit, layer, 2, Opcode.RUN_FFN2,
                        t_in, t_out2, real_out_tiles=min(real2, t_out2))
        _emit_ffn_stage(emit, layer, 3, Opcode.RUN_FFN3,
                        t_in, t_out3, real_out_tiles=min(real1, t_out3))
        emit(Instruction(Opcode.RUN_LN2, layer=layer))
        emit(Instruction(Opcode.BARRIER, layer=layer))

    emit(Instruction(Opcode.STORE_OUTPUT, layer=config.num_layers - 1))
    emit(Instruction(Opcode.HALT))
    return prog


@dataclass(frozen=True)
class ProgramStats:
    """Summary of a compiled program."""

    total: int
    by_opcode: dict
    layers: int

    def count(self, opcode: Opcode) -> int:
        return self.by_opcode.get(opcode, 0)


def program_stats(program: List[Instruction]) -> ProgramStats:
    """Histogram a program by opcode."""
    hist: dict = {}
    layers = 0
    for ins in program:
        hist[ins.opcode] = hist.get(ins.opcode, 0) + 1
        layers = max(layers, ins.layer + 1)
    return ProgramStats(total=len(program), by_opcode=hist, layers=layers)


def iter_layer(program: List[Instruction], layer: int) -> Iterator[Instruction]:
    """Instructions belonging to one encoder layer."""
    return (ins for ins in program
            if ins.layer == layer and ins.opcode is not Opcode.HALT)
