"""Generic parameter-sweep driver (a thin front on :mod:`repro.dse`).

Gives named parameter axes and an evaluation function, get back one
record per grid point.  Historically this module held its own cartesian
loop; it now delegates to the :func:`repro.dse.engine.explore` engine
(grid strategy, serial, no objectives), so every sweep in the repo —
the ablation benchmarks here, Fig. 7's tile sweep, the scaling curve,
and the ``dse`` CLI — runs through one code path.  The public surface
(:func:`grid_sweep`, :class:`SweepResult`) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

__all__ = ["SweepResult", "grid_sweep"]


@dataclass
class SweepResult:
    """One evaluated grid point."""

    params: Dict[str, Any]
    value: Any
    error: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.error


def grid_sweep(
    axes: Mapping[str, Sequence],
    evaluate: Callable[..., Any],
    continue_on_error: bool = False,
) -> List[SweepResult]:
    """Evaluate ``evaluate(**point)`` over the cartesian grid of ``axes``.

    With ``continue_on_error`` the sweep records failures (e.g. a
    design point that does not fit the device) instead of raising —
    matching how a real DSE flow tolerates infeasible corners.
    """
    # Function-level import: analysis is a substrate package the dse
    # stack builds on, so importing the engine at module scope would
    # be circular.
    from ..dse.engine import explore
    from ..dse.space import Axis, SearchSpace

    if not axes:
        raise ValueError("need at least one axis")
    # Legacy contract: an empty value list empties the whole grid
    # (itertools.product semantics), it does not error.
    if any(not tuple(values) for values in axes.values()):
        return []
    space = SearchSpace(tuple(Axis(name, tuple(values))
                              for name, values in axes.items()))

    def _evaluate(point: Dict[str, Any], _settings: Dict[str, Any]) -> dict:
        return {"value": evaluate(**point)}

    outcome = explore(space, _evaluate,
                      continue_on_error=continue_on_error)
    return [
        SweepResult(params=dict(r.point),
                    value=r.metrics.get("value") if r.ok else None,
                    error=r.error)
        for r in outcome.results
    ]
