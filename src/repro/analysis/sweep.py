"""Generic parameter-sweep driver.

A tiny cartesian-grid evaluator used by the ablation benchmarks: give
it named parameter axes and an evaluation function, get back one record
per grid point.  (The Fig. 7 tile sweep has its own dedicated driver in
:mod:`repro.core.design_space`; this one serves the extra ablations —
AXI width, buffering, sequence chunking.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Dict, List, Mapping, Sequence

__all__ = ["SweepResult", "grid_sweep"]


@dataclass
class SweepResult:
    """One evaluated grid point."""

    params: Dict[str, Any]
    value: Any
    error: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.error


def grid_sweep(
    axes: Mapping[str, Sequence],
    evaluate: Callable[..., Any],
    continue_on_error: bool = False,
) -> List[SweepResult]:
    """Evaluate ``evaluate(**point)`` over the cartesian grid of ``axes``.

    With ``continue_on_error`` the sweep records failures (e.g. a
    design point that does not fit the device) instead of raising —
    matching how a real DSE flow tolerates infeasible corners.
    """
    if not axes:
        raise ValueError("need at least one axis")
    names = list(axes)
    results: List[SweepResult] = []
    for combo in product(*(axes[n] for n in names)):
        params = dict(zip(names, combo))
        try:
            value = evaluate(**params)
            results.append(SweepResult(params=params, value=value))
        except Exception as exc:  # noqa: BLE001 - DSE tolerates corners
            if not continue_on_error:
                raise
            results.append(SweepResult(params=params, value=None,
                                       error=f"{type(exc).__name__}: {exc}"))
    return results
