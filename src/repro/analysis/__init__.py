"""Analysis helpers: op counting, accuracy/SQNR reports, memory
traffic profiles, table rendering, sweeps."""

from .accuracy import AccuracyReport, StageError, evaluate_accuracy, sqnr_db
from .metrics import (
    OpBreakdown,
    encoder_layer_ops,
    encoder_ops,
    gops,
    gops_per_dsp,
    speedup,
)
from .sweep import SweepResult, grid_sweep
from .traffic import TrafficReport, analyze_traffic
from .tables import format_value, render_table

__all__ = [
    "AccuracyReport",
    "StageError",
    "evaluate_accuracy",
    "sqnr_db",
    "TrafficReport",
    "analyze_traffic",
    "OpBreakdown",
    "encoder_layer_ops",
    "encoder_ops",
    "gops",
    "gops_per_dsp",
    "speedup",
    "render_table",
    "format_value",
    "SweepResult",
    "grid_sweep",
]
