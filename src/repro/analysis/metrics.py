"""Workload accounting: operation counts, GOPS, normalized throughput.

The paper reports throughput as "the number of giga operations per
second (GOPS)" over the *model's* arithmetic work (multiply and add
each count as one op, the standard convention), and Table II adds the
normalized "GOPS/DSP x 1000" metric from [15] for cross-platform
fairness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.model_zoo import TransformerConfig

__all__ = [
    "encoder_layer_ops",
    "encoder_ops",
    "gops",
    "gops_per_dsp",
    "speedup",
    "OpBreakdown",
]


@dataclass(frozen=True)
class OpBreakdown:
    """Per-component operation counts of one encoder layer."""

    qkv: int
    scores: int
    attention_apply: int
    projection: int
    ffn: int

    @property
    def total(self) -> int:
        return (self.qkv + self.scores + self.attention_apply
                + self.projection + self.ffn)


def encoder_layer_ops(config: TransformerConfig) -> OpBreakdown:
    """Arithmetic operations (mul + add) of one encoder layer.

    * QKV projections: ``3 . 2 . SL . d . d_k . h = 6 . SL . d²``
    * scores ``QK^T``: ``2 . SL² . d_k . h = 2 . SL² . d``
    * attention apply ``SV``: ``2 . SL² . d``
    * output projection: ``2 . SL . d²``
    * FFN (two linears, 4x expansion): ``16 . SL . d . d_ff/4 ...``
      computed from the configured ``d_ff``.
    """
    sl, d, dff = config.seq_len, config.d_model, config.d_ff
    return OpBreakdown(
        qkv=6 * sl * d * d,
        scores=2 * sl * sl * d,
        attention_apply=2 * sl * sl * d,
        projection=2 * sl * d * d,
        ffn=2 * sl * d * dff + 2 * sl * dff * d,
    )


def encoder_ops(config: TransformerConfig) -> int:
    """Total arithmetic operations of the full encoder stack."""
    return encoder_layer_ops(config).total * config.num_layers


def gops(config: TransformerConfig, latency_s: float) -> float:
    """Throughput in giga-operations per second."""
    if latency_s <= 0:
        raise ValueError("latency must be positive")
    return encoder_ops(config) / latency_s / 1e9


def gops_per_dsp(gops_value: float, dsps: int, scaled: bool = True) -> float:
    """Normalized throughput; ``scaled=True`` returns the Table II
    convention ``(GOPS/DSP) x 1000``."""
    if dsps <= 0:
        raise ValueError("dsps must be positive")
    v = gops_value / dsps
    return v * 1000.0 if scaled else v


def speedup(base_latency: float, new_latency: float) -> float:
    """``base / new`` — >1 means ``new`` is faster (Table III column)."""
    if base_latency <= 0 or new_latency <= 0:
        raise ValueError("latencies must be positive")
    return base_latency / new_latency
