"""Quantization-accuracy analysis: where does the 8-bit datapath lose
precision?

The paper quantizes to 8-bit fixed point and notes "this might result
in accuracy loss depending on the application [but] it was not a
primary focus."  This harness makes the loss measurable: it runs the
fixed-point accelerator and the float golden encoder side by side and
reports per-layer, per-stage error statistics (RMS, max, and SQNR —
signal-to-quantization-noise ratio in dB), so a user can decide whether
Fix8 suffices or the "larger bit width" variant is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoid circular import at runtime
    from ..core.accelerator import ProTEA
from ..fixedpoint import FxTensor
from ..nn.encoder import Encoder
from ..nn.functional import layer_norm

__all__ = ["StageError", "AccuracyReport", "evaluate_accuracy", "sqnr_db"]


def sqnr_db(signal: np.ndarray, error: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in decibels."""
    p_sig = float(np.mean(np.square(signal)))
    p_err = float(np.mean(np.square(error)))
    if p_err == 0.0:
        return math.inf
    if p_sig == 0.0:
        return -math.inf
    return 10.0 * math.log10(p_sig / p_err)


@dataclass(frozen=True)
class StageError:
    """Error statistics of one pipeline stage."""

    layer: int
    stage: str
    rms: float
    max_abs: float
    sqnr_db: float


@dataclass
class AccuracyReport:
    """Full stagewise accuracy evaluation."""

    stages: List[StageError]
    output_rms: float
    output_sqnr_db: float

    def worst_stage(self) -> StageError:
        """The stage with the lowest SQNR (most precision lost)."""
        return min(self.stages, key=lambda s: s.sqnr_db)

    def by_layer(self, layer: int) -> List[StageError]:
        return [s for s in self.stages if s.layer == layer]


def _stage(layer: int, name: str, fx: np.ndarray, ref: np.ndarray) -> StageError:
    err = fx - ref
    return StageError(
        layer=layer,
        stage=name,
        rms=float(np.sqrt(np.mean(err * err))),
        max_abs=float(np.max(np.abs(err))),
        sqnr_db=sqnr_db(ref, err),
    )


def evaluate_accuracy(
    accel: "ProTEA", golden: Encoder, x: np.ndarray
) -> AccuracyReport:
    """Run both datapaths and collect stagewise error statistics.

    The accelerator must already be programmed and loaded with the
    quantization of ``golden``.  Stages compared per layer: the
    concatenated attention output, the post-LN1 state, and the layer
    output.  The float reference is computed from the *float* golden
    weights (so the report captures weight-quantization + datapath
    error together — the user-visible total).
    """
    cfg = accel.config
    fx_state = FxTensor.from_float(np.asarray(x, dtype=np.float64),
                                   accel.formats.activation)
    ref_state = np.asarray(x, dtype=np.float64)
    stages: List[StageError] = []

    for li in range(cfg.num_layers):
        qlayer = accel.weights.layers[li]
        glayer = golden.layers[li]

        concat_fx, _ = accel.attention.forward(fx_state, qlayer)
        trace = accel.ffn.forward(concat_fx, fx_state, qlayer)

        ref_trace = glayer.attention.forward_trace(ref_state)
        ref_h = layer_norm(ref_state + ref_trace.output,
                           glayer.ln1_gamma, glayer.ln1_beta, glayer.eps)
        ref_out = layer_norm(ref_h + glayer.ffn(ref_h),
                             glayer.ln2_gamma, glayer.ln2_beta, glayer.eps)

        stages.append(_stage(li, "attention_concat",
                             concat_fx.to_float(), ref_trace.concat))
        stages.append(_stage(li, "post_ln1", trace.ln1.to_float(), ref_h))
        stages.append(_stage(li, "layer_output", trace.out.to_float(), ref_out))

        fx_state = trace.out
        ref_state = ref_out

    err = fx_state.to_float() - ref_state
    return AccuracyReport(
        stages=stages,
        output_rms=float(np.sqrt(np.mean(err * err))),
        output_sqnr_db=sqnr_db(ref_state, err),
    )
