"""Plain-text table rendering for the experiment reports.

Every experiment prints its regenerated table in the same row/column
structure the paper uses, with a "paper" column next to each "measured"
column so deltas are visible at a glance.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_value"]


def format_value(v, precision: int = 3) -> str:
    """Human formatting: floats get ``precision`` significant digits,
    everything else goes through ``str``."""
    if isinstance(v, bool) or v is None:
        return str(v)
    if isinstance(v, float):
        if v == 0:
            return "0"
        av = abs(v)
        if av >= 10 ** precision or av < 10 ** -(precision + 1):
            return f"{v:.{precision}g}"
        return f"{v:.{precision}g}"
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    precision: int = 3,
) -> str:
    """Fixed-width ASCII table."""
    srows: List[List[str]] = [
        [format_value(c, precision) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in srows)
    return "\n".join(lines)
