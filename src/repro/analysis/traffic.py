"""Memory-traffic accounting and the accelerator's own roofline position.

The paper motivates tiling with on-chip capacity ("on-chip memory of
FPGAs typically does not exceed 36MB and off-chip memory bandwidth is
sometimes limited").  This module quantifies the consequence: per-layer
off-chip bytes, the achieved bandwidth at the modelled latency, the
workload's arithmetic intensity, and whether the design runs compute-
or memory-bound on its device.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoid circular import at runtime
    from ..core.accelerator import ProTEA
from ..nn.model_zoo import TransformerConfig
from .metrics import encoder_ops

__all__ = ["TrafficReport", "analyze_traffic"]


@dataclass(frozen=True)
class TrafficReport:
    """Off-chip traffic profile of one workload on one instance."""

    config_name: str
    weight_bytes: int
    activation_bytes: int
    total_bytes: int
    latency_s: float
    achieved_gbps: float
    device_peak_gbps: float
    arithmetic_intensity: float  # ops per off-chip byte
    machine_balance: float       # device ops-per-byte break-even
    compute_bound: bool

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of the card's peak bandwidth actually used."""
        return self.achieved_gbps / self.device_peak_gbps


def analyze_traffic(accel: "ProTEA", config: TransformerConfig) -> TrafficReport:
    """Traffic profile of ``config`` on ``accel``.

    Weight traffic: every layer's Q/K/V/output/FFN weights stream in
    once per inference (single-buffered tiles, no on-chip weight reuse
    across layers).  Activation traffic: the input and output of the
    encoder cross the boundary once; intermediates stay on chip — that
    is what the tiling buys.
    """
    elem = (accel.formats.weight_bits + 7) // 8
    d, dff, sl, n = (config.d_model, config.d_ff, config.seq_len,
                     config.num_layers)
    weight_bytes = n * elem * (3 * d * d + d * d + d * dff + dff * d)
    act_elem = (accel.formats.activation.total_bits + 7) // 8
    activation_bytes = 2 * sl * d * act_elem
    total = weight_bytes + activation_bytes

    report = accel.latency_report(config)
    latency_s = report.latency_s
    achieved = total / latency_s / 1e9

    ops = encoder_ops(config)
    intensity = ops / total
    peak_gbps = accel.device.hbm_bandwidth_gbps
    # Device compute ceiling: every DSP is one MAC (2 ops) per cycle.
    peak_ops = accel.resources.dsps * 2 * accel.clock_mhz * 1e6
    balance = peak_ops / (peak_gbps * 1e9)

    return TrafficReport(
        config_name=config.name,
        weight_bytes=weight_bytes,
        activation_bytes=activation_bytes,
        total_bytes=total,
        latency_s=latency_s,
        achieved_gbps=achieved,
        device_peak_gbps=peak_gbps,
        arithmetic_intensity=intensity,
        machine_balance=balance,
        compute_bound=intensity >= balance,
    )
