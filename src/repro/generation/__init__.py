"""Autoregressive generation across the stack — one import surface.

The paper's future-work decoder support (PR 2/3) gave this repo the
decoder *compute* path; this package is the *generation* workload class
built on it, re-exported from the layers that own each piece:

* **KV caches** — golden float (:mod:`repro.nn.kv_cache`) and
  bit-identical fixed-point (:mod:`repro.core.kv_cache`) incremental
  decode, so step ``t`` reuses cached K/V instead of recomputing the
  full masked sequence;
* **prefill/decode latency split** —
  :meth:`repro.core.latency.LatencyModel.generation_report`: prefill is
  the full-sequence tiled-matmul pass at the prompt length (TTFT), each
  decode step streams the full weight set for one token while its
  attention sweep grows with the cache;
* **token-level continuous batching** —
  :mod:`repro.serving.generation`: instances hold in-flight sequence
  sets, admissions prefill at step boundaries, finished sequences
  vacate slots, TTFT/TPOT/goodput summarized by
  :func:`repro.serving.slo.summarize_generation`;
* **pipeline-parallel decode** —
  :meth:`repro.parallel.pipeline.PipelinePartitioner.decode_report`:
  per-token microbatches through the stage pipeline.

Quickstart::

    from repro.generation import (LengthSampler, attach_generation_lengths,
                                  simulate_generation, summarize_generation)
    from repro import ProTEA, ModelMix, PoissonArrivals

    accel = ProTEA.synthesize()
    reqs = attach_generation_lengths(
        PoissonArrivals(20, ModelMix("model2-lhc-trigger"),
                        seed=0).generate(1_000),
        LengthSampler("uniform", 8, 16), LengthSampler("geometric", 4, 64),
        max_total=accel.synth.max_seq_len)
    report = summarize_generation(
        simulate_generation(accel, reqs, n_instances=2, slots=8),
        ttft_slo_ms=50.0, tpot_slo_ms=10.0)
    print(report.p99_ttft_ms, report.tokens_per_s)
"""

from ..core.kv_cache import FxDecoderKVCache, FxLayerKVCache
from ..core.latency import GenerationReport
from ..nn.kv_cache import DecoderKVCache, LayerKVCache
from ..parallel.pipeline import DecodePipelineReport
from ..serving.generation import (
    GenerationClusterSimulator,
    GenerationInstanceStats,
    GenerationRecord,
    GenerationServiceModel,
    GenerationSimulationResult,
    simulate_generation,
)
from ..serving.slo import GenerationServingReport, summarize_generation
from ..serving.workload import (
    GenerationRequest,
    LengthSampler,
    attach_generation_lengths,
)

__all__ = [
    # oracles
    "DecoderKVCache", "LayerKVCache", "FxDecoderKVCache", "FxLayerKVCache",
    # latency split
    "GenerationReport",
    # serving
    "GenerationRequest", "LengthSampler", "attach_generation_lengths",
    "GenerationClusterSimulator", "simulate_generation",
    "GenerationSimulationResult", "GenerationRecord",
    "GenerationInstanceStats", "GenerationServiceModel",
    "GenerationServingReport", "summarize_generation",
    # parallel decode
    "DecodePipelineReport",
]
