"""Failure/recovery injection for fleet simulations.

A :class:`FailurePlan` describes an MTBF/MTTR process per instance:
up-times are exponential with mean ``mtbf_ms``, repair times
exponential with mean ``mttr_ms``.  :class:`FailureInjector` turns the
plan into concrete draws from per-instance RNG streams
(``failure/<idx>``), so

* adding failure injection to a scenario does not perturb any other
  stochastic component (workload draws come from their own seeds), and
* each instance's fault history is independent of fleet size — probing
  fleet growth in ``plan_capacity`` replays instance 0's faults
  identically.

The engine owns the event mechanics (what a failure *does*: abort the
in-flight batch, requeue queued work, mark downtime); this module only
answers *when* faults and repairs happen.  Failures stop at
``horizon_ms`` (default: the last arrival) so a drain phase always
terminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .rng import RngStreams

__all__ = ["FailurePlan", "FailureInjector"]


@dataclass(frozen=True)
class FailurePlan:
    """MTBF/MTTR fault process shared by every instance of a fleet."""

    #: Mean up-time between failures (exponential), per instance.
    mtbf_ms: float
    #: Mean repair duration (exponential); 0 means instant recovery.
    mttr_ms: float
    #: Root seed of the ``failure/<idx>`` RNG streams.
    seed: int = 0
    #: Stop injecting new failures after this time (None: last arrival).
    horizon_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mtbf_ms <= 0:
            raise ValueError("mtbf_ms must be positive")
        if self.mttr_ms < 0:
            raise ValueError("mttr_ms must be >= 0")
        if self.horizon_ms is not None and self.horizon_ms < 0:
            raise ValueError("horizon_ms must be >= 0")

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FailurePlan":
        """CLI form ``MTBF:MTTR`` in milliseconds (e.g. ``200:20``)."""
        mtbf_s, sep, mttr_s = text.partition(":")
        if not sep:
            raise ValueError(
                f"invalid failure spec {text!r} (expected MTBF:MTTR in ms)")
        try:
            mtbf, mttr = float(mtbf_s), float(mttr_s)
        except ValueError:
            raise ValueError(
                f"invalid failure spec {text!r} (expected MTBF:MTTR "
                "in ms)") from None
        return cls(mtbf_ms=mtbf, mttr_ms=mttr, seed=seed)


class FailureInjector:
    """Per-instance fault/repair time draws for one simulation run."""

    def __init__(self, plan: FailurePlan, horizon_ms: float) -> None:
        self.plan = plan
        self.horizon_ms = (plan.horizon_ms if plan.horizon_ms is not None
                           else horizon_ms)
        self._streams = RngStreams(plan.seed)

    def _rng(self, idx: int):
        return self._streams.stream(f"failure/{idx}")

    def next_failure_ms(self, idx: int, after_ms: float
                        ) -> Optional[float]:
        """Absolute time of instance ``idx``'s next fault after
        ``after_ms``, or ``None`` once the horizon has passed."""
        t = after_ms + self._rng(idx).expovariate(1.0 / self.plan.mtbf_ms)
        return t if t <= self.horizon_ms else None

    def repair_duration_ms(self, idx: int) -> float:
        """How long the repair beginning now takes."""
        if self.plan.mttr_ms == 0:
            return 0.0
        return self._rng(idx).expovariate(1.0 / self.plan.mttr_ms)
