"""Summary-detail result containers for the web-scale fast path.

The full-detail engines materialize one frozen ``RequestRecord`` per
request — at 10^6+ requests that object churn *is* the profile, and
:func:`repro.serving.slo.summarize` immediately reduces the records to
order statistics anyway.  ``detail="summary"`` runs skip the
materialization and accumulate exactly what the report needs while the
events fire:

* per-model latency lists (the *exact* multiset, so every percentile —
  nearest-rank order statistics — is bit-identical to the full path);
* per-model wait/batch-size sums (means may differ from the full path
  in the last ulp because float accumulation order follows completion
  order, not record order — percentiles never differ);
* the queue-depth step integral, accumulated with the same arithmetic
  (and the same float-add order) as
  :func:`repro.serving.slo._time_weighted_mean`;
* the per-instance stats the engines already track incrementally.

These containers deliberately import nothing from :mod:`repro.serving`
(the façade imports the engines, which import this module — a
serving-layer import here would be a cycle).  The ``instances`` lists
carry the serving layer's frozen stats objects by reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ServeSummary", "GenerationSummary"]


@dataclass
class ServeSummary:
    """Accumulated metrics of one ``detail="summary"`` serve run.

    Field-for-field this is the information :func:`summarize` extracts
    from a full :class:`~repro.serving.cluster.SimulationResult`,
    pre-reduced: :func:`repro.serving.slo.summarize` accepts either and
    returns the same report (percentiles exact, means to the ulp).
    """

    total_requests: int
    makespan_ms: float
    n_instances: int
    scheduler: str
    batching: str
    #: model → latency list in completion order (exact multiset).
    model_lats: Dict[str, List[float]] = field(default_factory=dict)
    #: model → sum of per-request wait (dispatch - arrival) ms.
    model_wait_sum: Dict[str, float] = field(default_factory=dict)
    #: model → sum of batch_size per *request* (i.e. Σ size² per batch).
    model_batch_sq: Dict[str, int] = field(default_factory=dict)
    #: serving-layer ``InstanceStats``, one per instance.
    instances: List[object] = field(default_factory=list)
    # Queue-depth step function, pre-integrated: area up to the last
    # change point, plus the last (t, depth) so the report can close
    # the integral against its horizon.
    depth_area: float = 0.0
    depth_last_t: float = 0.0
    depth_last: int = 0
    max_queue_depth: int = 0
    availability: Optional[float] = None
    total_failures: int = 0
    total_retries: int = 0
    degraded_count: Optional[int] = None
    #: Latencies of completed requests that were degraded or retried
    #: (``None`` when the run injected no failures).
    touched_lats: Optional[List[float]] = None

    @property
    def total_switches(self) -> int:
        return sum(i.switch_count for i in self.instances)

    @property
    def total_reprogram_time_ms(self) -> float:
        return sum(i.reprogram_time_ms for i in self.instances)

    def mean_queue_depth(self, horizon_ms: float) -> float:
        """Close the depth integral at ``horizon_ms`` (same float-add
        order as ``_time_weighted_mean`` over the full sample list)."""
        if horizon_ms <= 0:
            return 0.0
        area = self.depth_area + self.depth_last * max(
            0.0, horizon_ms - self.depth_last_t)
        return area / horizon_ms


@dataclass
class GenerationSummary:
    """Accumulated metrics of one ``detail="summary"`` generation run.

    Mirrors what :func:`repro.serving.slo.summarize_generation` reads
    off a full :class:`GenerationSimulationResult`: TTFT/TPOT/latency
    multisets (exact percentiles), wait sums, token counts, and the
    queue-depth integral.
    """

    total_requests: int
    total_tokens: int
    makespan_ms: float
    n_instances: int
    slots: int
    scheduler: str
    #: Per-request metric lists in completion order (exact multisets).
    ttfts: List[float] = field(default_factory=list)
    #: TPOT of requests with > 1 output token (others have no TPOT).
    tpots: List[float] = field(default_factory=list)
    lats: List[float] = field(default_factory=list)
    wait_sum: float = 0.0
    #: Parallel to ``ttfts``/``lats``: what SLO goodput needs per
    #: request, without materializing per-request tuples.  ``req_tpots``
    #: holds 0.0 for single-token requests (never read for those).
    out_tokens: List[int] = field(default_factory=list)
    req_tpots: List[float] = field(default_factory=list)
    instances: List[object] = field(default_factory=list)
    depth_area: float = 0.0
    depth_last_t: float = 0.0
    depth_last: int = 0
    availability: Optional[float] = None
    total_failures: int = 0
    total_retries: int = 0
    total_preemptions: int = 0

    @property
    def total_switches(self) -> int:
        return sum(i.switch_count for i in self.instances)

    @property
    def total_reprogram_time_ms(self) -> float:
        return sum(i.reprogram_time_ms for i in self.instances)

    def mean_queue_depth(self, horizon_ms: float) -> float:
        """Close the depth integral at ``horizon_ms``."""
        if horizon_ms <= 0:
            return 0.0
        area = self.depth_area + self.depth_last * max(
            0.0, horizon_ms - self.depth_last_t)
        return area / horizon_ms
