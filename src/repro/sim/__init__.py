"""Unified event-driven simulation kernel and its scenario layer.

Every discrete-event simulator in the repo runs on this package:

* :mod:`.kernel` — the deterministic event queue contract
  (:class:`EventQueue`, the reference heap), clock, and driver loop;
* :mod:`.calendar` — the bucketed :class:`CalendarQueue` production
  queue, pop-order identical to the heap;
* :mod:`.rng` — named per-component RNG streams derived from one root
  seed, so adding a stochastic component never perturbs another;
* :mod:`.fleet` — heterogeneous fleet specs (per-instance speed,
  capability sets, switch penalties, slots, pricing targets) and the
  capability/health-aware :class:`Dispatcher`;
* :mod:`.failures` — MTBF/MTTR failure plans and the per-instance
  fault/repair draws;
* :mod:`.shard` — partitions a fleet into independent cells that run
  in parallel processes and merge their summary reports exactly;
* :mod:`.serve` / :mod:`.generate` — the engines behind
  :class:`~repro.serving.cluster.ClusterSimulator` and
  :class:`~repro.serving.generation.GenerationClusterSimulator`,
  verified bit-identical to the legacy closure loops by the
  trace-identity goldens in ``tests/goldens/``.

The determinism contract is documented in :mod:`.kernel`: equal inputs
produce byte-identical traces, records, and rendered reports.
"""

from .calendar import CalendarQueue
from .failures import FailureInjector, FailurePlan
from .fleet import Dispatcher, FleetSpec, InstanceSpec
from .kernel import EventQueue, SimClock, Simulation
from .rng import RngStreams
from .shard import ShardPlan
from .summary import GenerationSummary, ServeSummary

__all__ = [
    "CalendarQueue",
    "EventQueue",
    "SimClock",
    "Simulation",
    "RngStreams",
    "Dispatcher",
    "FleetSpec",
    "InstanceSpec",
    "FailurePlan",
    "FailureInjector",
    "ShardPlan",
    "ServeSummary",
    "GenerationSummary",
]
