"""Kernel-backed request-level cluster engine.

This is :class:`~repro.serving.cluster.ClusterSimulator`'s execution
engine since the unified kernel landed: the same event discipline as
the legacy closure loop (free < arrival < check at equal timestamps,
insertion-order tie-breaks), re-hosted on :mod:`repro.sim.kernel` and
verified **bit-identical** on seeded scenarios by the trace-identity
goldens.  On top of the legacy semantics it adds what the old loop
could not express:

* heterogeneous fleets (:class:`~repro.sim.fleet.FleetSpec`) —
  per-instance speed, capability sets, switch-penalty overrides, and
  per-instance accelerator targets (a
  :class:`~repro.parallel.group.PipelineGroup` mixes with single-FPGA
  replicas in one fleet);
* failure/recovery injection (:class:`~repro.sim.failures.FailurePlan`)
  — an instance fault aborts its in-flight batch, requeues the lost
  and queued work through the dispatcher (marking retries), and
  accrues downtime until the repair completes;
* degraded-window marking — requests arriving while any instance is
  down are flagged, so the SLO layer can report the failure-mode tail
  (``p99_degraded_ms``) separately from the healthy tail.

Performance: the engine replaces the legacy loop's per-event
re-derivations with incremental bookkeeping — queue-depth samples come
from a running counter instead of an O(instances) sum, batch costs are
memoized per ``(model, batch size)``, switch accounting compares
resident-model names instead of re-programming the accelerator every
batch, and the built-in schedulers run as inlined scans.  The arrival
stream never enters the event queue at all: arrivals are stable-sorted
once and merged against the :class:`~repro.sim.calendar.CalendarQueue`
of engine events during the drain (one heap push+pop per *batch*, not
per request).  ``detail="summary"`` additionally skips all record,
trace, and sample materialization (see :mod:`repro.sim.summary`).
Same math, same floats, same order — just less work per event (the
serving benchmarks pin the speedups).

Observer contract: an attached observer sees every trace tuple —
``("arrive", t, rid, model, inst)`` (``inst == -1`` while parked),
``("dispatch", t, inst, model, size, switch_ms)``, ``("free", t,
inst)``, ``("fail", t, inst)``, ``("recover", t, inst)`` — plus the
observer-only ``("requeue", t, rid, inst)`` for displaced work, in
nondecreasing time order.  ``dispatch`` pops exactly a head prefix of
the instance's queue, so consumers like
:class:`repro.obs.alerts.Watchdog` recover batch membership (and thus
per-request latency, online) by mirroring the queues from
arrive/requeue.  Observers are read-only: the bare-run trace stays
byte-identical with any observer attached.
"""

from __future__ import annotations

from operator import attrgetter
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..serving.batching import BatchingPolicy, ServiceTimeModel
from ..serving.scheduler import (LeastLoaded, ModelAffinity, RoundRobin,
                                 Scheduler)
from ..serving.workload import Request
from .failures import FailureInjector, FailurePlan
from .fleet import Dispatcher, FleetSpec, InstanceSpec
from .kernel import Simulation

__all__ = ["ServeEngine"]

_EPS = 1e-9
#: Stable-sort key for the merged arrival stream: equal-time arrivals
#: keep input order, which is exactly the heap's (priority, seq)
#: tie-break for a block of same-priority pushes.
_BY_T = attrgetter("t_ms")
# Event priorities at equal timestamps (identical to the legacy loop;
# faults are new and deliberately sort last so a fault at time t sees
# the state the legacy events left behind).
_P_FREE, _P_ARRIVAL, _P_CHECK, _P_FAULT = 0, 1, 2, 3


class _BatchCost:
    """Per-target memo of total batch service time (model, size) → ms."""

    __slots__ = ("svc", "_memo")

    def __init__(self, svc: ServiceTimeModel):
        self.svc = svc
        self._memo: Dict[Tuple[str, int], float] = {}

    def ms(self, model: str, size: int) -> float:
        key = (model, size)
        ms = self._memo.get(key)
        if ms is None:
            ms = self.svc.batch_service_ms(model, size)
            self._memo[key] = ms
        return ms


class _Inst:
    """Mutable per-instance engine state (scheduler-visible)."""

    __slots__ = (
        "idx", "spec", "speed", "reprogram_ms", "cost", "queue",
        "busy_until", "last_model", "resident", "pending_check", "down",
        "epoch", "in_flight", "deploys", "switch_count",
        "reprogram_time_ms", "batches", "requests", "busy_ms",
        "failures", "downtime_ms", "down_since",
    )

    def __init__(self, idx: int, spec: InstanceSpec, reprogram_ms: float,
                 cost: _BatchCost):
        from collections import deque

        self.idx = idx
        self.spec = spec
        self.speed = spec.speed
        self.reprogram_ms = (spec.reprogram_latency_ms
                             if spec.reprogram_latency_ms is not None
                             else reprogram_ms)
        self.cost = cost
        self.queue = deque()
        self.busy_until = 0.0
        self.last_model: Optional[str] = None
        self.resident: Optional[str] = None
        self.pending_check = False
        self.down = False
        #: Bumped on every abort; stale free events carry an old epoch.
        self.epoch = 0
        #: ``(model, size, t_dispatch, t_complete, batch)`` while busy.
        self.in_flight: Optional[tuple] = None
        self.deploys = 0
        self.switch_count = 0
        self.reprogram_time_ms = 0.0
        self.batches = 0
        self.requests = 0
        self.busy_ms = 0.0
        self.failures = 0
        self.downtime_ms = 0.0
        self.down_since = 0.0

    def backlog(self, now_ms: float) -> int:
        """Queued requests plus the one in service (Scheduler Protocol)."""
        return len(self.queue) + (1 if self.busy_until > now_ms + _EPS
                                  else 0)


class _ServeDispatcher(Dispatcher):
    """Capability/health-aware dispatch with inlined built-in policies."""

    def __init__(self, scheduler: Scheduler, instances: Sequence[_Inst]):
        super().__init__(scheduler, instances)
        # Exact-type checks: a subclass may override semantics, so only
        # the stock policies take the inlined path.
        self._round_robin = type(scheduler) is RoundRobin
        self._least_loaded = type(scheduler) is LeastLoaded
        self._affinity = type(scheduler) is ModelAffinity
        self._slack = scheduler.slack if self._affinity else 0

    def _pick_fast(self, candidates, request, now_ms):
        if self._round_robin:
            # Same cursor the scheduler object would advance, so mixing
            # this path with Scheduler.pick (restricted fleets) cannot
            # desync the rotation.
            scheduler = self.scheduler
            inst = candidates[scheduler._next % len(candidates)]
            scheduler._next += 1
            return inst
        edge = now_ms + _EPS
        if self._least_loaded:
            best = None
            best_b = 0
            for inst in candidates:
                b = len(inst.queue) + (1 if inst.busy_until > edge else 0)
                if best is None or b < best_b:
                    best, best_b = inst, b
            return best
        if self._affinity:
            model = request.model
            best = sticky = None
            best_b = sticky_b = 0
            for inst in candidates:
                b = len(inst.queue) + (1 if inst.busy_until > edge else 0)
                if best is None or b < best_b:
                    best, best_b = inst, b
                if inst.last_model == model and (sticky is None
                                                 or b < sticky_b):
                    sticky, sticky_b = inst, b
            if sticky is not None and sticky_b <= best_b + self._slack:
                return sticky
            return best
        return self.scheduler.pick(candidates, request, now_ms)


class ServeEngine(Simulation):
    """One run of the request-level cluster simulation."""

    def __init__(
        self,
        accel,
        fleet: FleetSpec,
        scheduler: Scheduler,
        batching: BatchingPolicy,
        models: Mapping,
        reprogram_latency_ms: float = 0.0,
        check_jitter_ms: float = 0.0,
        failures: Optional[FailurePlan] = None,
        instance_base: int = 0,
        failure_horizon_ms: Optional[float] = None,
        rng_seed=0,
    ):
        # All engine randomness flows through FailureInjector's own
        # streams (seeded by the plan); the base Simulation rng carries
        # the cell namespace under sharding and is otherwise unused.
        super().__init__(seed=rng_seed)
        self.accel = accel
        self.fleet = fleet
        self.scheduler = scheduler
        self.batching = batching
        self.check_jitter_ms = check_jitter_ms
        self.failures = failures
        #: First global instance index (sharded cells offset their
        #: ``_Inst.idx`` so trace rows, records, stats, and — critically
        #: — ``failure/<idx>`` RNG streams key by *global* identity:
        #: an instance's fault history never depends on which cell it
        #: landed in).
        self.instance_base = instance_base
        #: Failure-injection horizon override.  A sharded cell sees only
        #: its own arrival slice, so its default horizon (last local
        #: arrival) would differ from the unsharded run's; the shard
        #: driver passes the global last-arrival time instead.
        self.failure_horizon_ms = failure_horizon_ms
        # One batch-cost memo per distinct pricing target: instances
        # without a target override share the cluster-wide model (and
        # its memo), a PipelineGroup instance prices through its own.
        shared = _BatchCost(ServiceTimeModel(accel, models))
        costs: Dict[int, _BatchCost] = {}
        self.instances: List[_Inst] = []
        for idx, spec in enumerate(fleet.specs):
            if spec.slots is not None:
                raise ValueError(
                    "InstanceSpec.slots is generate-mode only: the "
                    "request-level serve simulation has no sequence "
                    "slots (instance "
                    f"{idx} sets slots={spec.slots})")
            if spec.target is None:
                cost = shared
            else:
                cost = costs.get(id(spec.target))
                if cost is None:
                    cost = _BatchCost(ServiceTimeModel(spec.target, models))
                    costs[id(spec.target)] = cost
            self.instances.append(
                _Inst(instance_base + idx, spec, reprogram_latency_ms,
                      cost))
        self.dispatcher = _ServeDispatcher(scheduler, self.instances)

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request], detail: str = "full"):
        """Simulate the stream to completion and return the result.

        ``detail="full"`` returns a
        :class:`~repro.serving.cluster.SimulationResult` with one
        record per request — the byte-identity surface the goldens pin.
        ``detail="summary"`` skips record/trace/sample materialization
        and returns a :class:`~repro.sim.summary.ServeSummary`
        accumulated on the fly: the web-scale path.  Percentiles from
        either detail level are bit-identical; summary means may differ
        in the last ulp (float accumulation order).

        Import note: the result dataclasses live in
        :mod:`repro.serving.cluster` (the public façade), imported
        lazily to keep the package graph acyclic.
        """
        if detail == "summary":
            return self._run_summary(requests)
        if detail != "full":
            raise ValueError(
                f"unknown detail level {detail!r}: use 'full' or "
                "'summary'")
        from ..serving.cluster import (InstanceStats, RequestRecord,
                                       SimulationResult)

        self._started = True
        queue = self.queue
        push = queue.push
        trace = self.trace
        # Observer wiring: with nothing attached, ``emit`` *is*
        # ``trace.append`` (the pre-hook fast path, unchanged); with an
        # observer, every trace tuple is forwarded after being logged.
        # ``note`` carries observer-only bookkeeping events (requeues)
        # that never enter the trace — trace bytes stay identical.
        note = self.observer
        if note is None:
            emit = trace.append
        else:
            def emit(event, _append=trace.append, _obs=note):
                _append(event)
                _obs(event)
        instances = self.instances
        dispatcher = self.dispatcher
        batching = self.batching
        max_batch = batching.max_batch
        timeout_ms = batching.timeout_ms
        # Stock policies inline their decide() logic; a subclass with
        # custom semantics keeps the call.
        decide = None if type(batching) is BatchingPolicy else batching.decide
        check_jitter = self.check_jitter_ms
        failing = self.failures is not None

        # Dispatch: the capability/health filter only matters when a
        # fleet is restricted or failures are live; otherwise bind the
        # policy scan directly (hot path).
        if failing or dispatcher.restricted:
            pick = dispatcher.pick
        else:
            def pick(request, now_ms,
                     _fast=dispatcher._pick_fast, _all=instances):
                return _fast(_all, request, now_ms)

        samples: List[Tuple[float, int]] = []
        queued_total = 0
        #: Completed batches: (model, idx, size, t_disp, t_done, batch).
        done: List[tuple] = []
        #: Requests parked while every capable instance is down.
        pending: List[Request] = []
        retries: Dict[int, int] = {}
        degraded: Dict[int, bool] = {}

        # Arrivals never enter the event queue: a stable sort by
        # timestamp IS their pop order (equal-time arrivals keep input
        # order, exactly the heap's same-priority seq tie-break), so
        # the drain below merges this pre-sorted stream against a
        # queue that only carries engine events.
        arrivals = sorted(requests, key=_BY_T)

        injector: Optional[FailureInjector] = None
        if failing:
            horizon = (self.failure_horizon_ms
                       if self.failure_horizon_ms is not None
                       else arrivals[-1].t_ms if arrivals else 0.0)
            injector = FailureInjector(self.failures, horizon)
            for inst in instances:
                t_fail = injector.next_failure_ms(inst.idx, 0.0)
                if t_fail is not None:
                    push(t_fail, _P_FAULT, ("fail", inst))

        sample_append = samples.append

        def try_dispatch(inst: _Inst, now: float) -> None:
            nonlocal queued_total
            if inst.down or inst.busy_until > now + _EPS or not inst.queue:
                return
            iq = inst.queue
            head = iq[0]
            model = head.model
            if max_batch == 1:
                prefix = 1
            else:
                prefix = 0
                for req in iq:
                    if prefix >= max_batch or req.model != model:
                        break
                    prefix += 1
            if decide is not None:
                size = decide(prefix, now - head.t_ms)
            elif prefix >= max_batch:
                size = max_batch
            elif timeout_ms is None:
                size = prefix
            elif now - head.t_ms + _EPS >= timeout_ms:
                size = prefix
            else:
                size = None
            if size is None:
                if not inst.pending_check:
                    assert timeout_ms is not None
                    deadline = head.t_ms + timeout_ms
                    # Optional early wakeup (jitter study); once inside
                    # the jitter window, arm the true deadline so the
                    # early check cannot respawn itself forever.
                    target = deadline - check_jitter
                    if target <= now + _EPS:
                        target = deadline
                    push(target if target > now else now, _P_CHECK,
                         ("check", inst))
                    inst.pending_check = True
                return
            batch = [iq.popleft() for _ in range(size)]
            queued_total -= size
            switched = inst.resident != model
            if switched:
                inst.cost.svc.config(model)  # validate before residency
                inst.resident = model
                inst.switch_count += 1
                inst.reprogram_time_ms += inst.reprogram_ms
                switch_ms = inst.reprogram_ms
            else:
                switch_ms = 0.0
            inst.deploys += 1
            total_ms = switch_ms + inst.cost.ms(model, size) / inst.speed
            complete = now + total_ms
            inst.busy_until = complete
            inst.busy_ms += total_ms
            inst.in_flight = (model, size, now, complete, batch)
            emit(("dispatch", now, inst.idx, model, size, switch_ms))
            push(complete, _P_FREE, ("free", inst, inst.epoch))
            sample_append((now, queued_total + len(pending)))

        def route(req: Request, now: float) -> None:
            """Queue ``req`` like a fresh arrival (requeue path).

            Emits an observer-only ``requeue`` event — never appended
            to the trace, so trace bytes match the legacy loop, but
            metrics observers see displaced work re-enter a queue.
            """
            nonlocal queued_total
            inst = pick(req, now)
            if inst is None:
                pending.append(req)
                if note is not None:
                    note(("requeue", now, req.rid, -1))
                return
            inst.queue.append(req)
            queued_total += 1
            inst.last_model = req.model
            if note is not None:
                note(("requeue", now, req.rid, inst.idx))
            try_dispatch(inst, now)

        def on_arrival(req: Request, now: float) -> None:
            nonlocal queued_total
            if failing and dispatcher.down_count:
                degraded[req.rid] = True
            inst = pick(req, now)
            if inst is None:
                pending.append(req)
                emit(("arrive", now, req.rid, req.model, -1))
                sample_append((now, queued_total + len(pending)))
                return
            inst.queue.append(req)
            queued_total += 1
            inst.last_model = req.model
            emit(("arrive", now, req.rid, req.model, inst.idx))
            sample_append((now, queued_total + len(pending)))
            try_dispatch(inst, now)

        def on_free(payload: tuple, now: float) -> None:
            inst: _Inst = payload[1]
            if payload[2] != inst.epoch:
                return  # batch aborted by a failure; event is stale
            model, size, t_disp, t_done, batch = inst.in_flight
            inst.in_flight = None
            inst.batches += 1
            inst.requests += size
            done.append((model, inst.idx, size, t_disp, t_done, batch))
            emit(("free", now, inst.idx))
            try_dispatch(inst, now)

        def on_check(payload: tuple, now: float) -> None:
            # Deadline checks may be stale: try_dispatch re-derives
            # busy state, queue head, and head age from scratch, so a
            # stale check either no-ops, re-arms for the current head,
            # or dispatches exactly what the policy would anyway.
            inst: _Inst = payload[1]
            inst.pending_check = False
            try_dispatch(inst, now)

        def on_fail(payload: tuple, now: float) -> None:
            nonlocal queued_total
            inst: _Inst = payload[1]
            inst.down = True
            inst.down_since = now
            inst.failures += 1
            dispatcher.down_count += 1
            emit(("fail", now, inst.idx))
            lost: List[Request] = []
            if inst.in_flight is not None and inst.busy_until > now + _EPS:
                # Abort the in-flight batch: refund the unserved tail of
                # the busy window and requeue the members as retries.
                inst.busy_ms -= inst.busy_until - now
                inst.busy_until = now
                inst.epoch += 1
                batch = inst.in_flight[4]
                inst.in_flight = None
                for req in batch:
                    retries[req.rid] = retries.get(req.rid, 0) + 1
                lost.extend(batch)
            inst.resident = None  # weights are lost with the instance
            queued = list(inst.queue)
            inst.queue.clear()
            queued_total -= len(queued)
            sample_append((now, queued_total + len(pending)))
            for req in lost:
                route(req, now)
            for req in queued:
                route(req, now)
            assert injector is not None
            push(now + injector.repair_duration_ms(inst.idx), _P_FAULT,
                 ("recover", inst))

        def on_recover(payload: tuple, now: float) -> None:
            inst: _Inst = payload[1]
            inst.down = False
            inst.downtime_ms += now - inst.down_since
            dispatcher.down_count -= 1
            emit(("recover", now, inst.idx))
            assert injector is not None
            t_fail = injector.next_failure_ms(inst.idx, now)
            if t_fail is not None:
                push(t_fail, _P_FAULT, ("fail", inst))
            if pending:
                parked, pending[:] = list(pending), []
                for req in parked:
                    route(req, now)

        # Merged drain: an engine event pops ahead of the next arrival
        # only when strictly earlier, or at the same timestamp with the
        # free priority — the single engine priority below arrivals.
        # Check (2) and fault (3) events at an arrival's timestamp sort
        # after every arrival at that time, exactly as in the heap.
        # The profiled variant is a separate loop so the bare path
        # never pays for the timing.
        clock = self.clock
        pop = queue.pop

        def handle(payload: tuple, now: float) -> None:
            kind = payload[0]
            if kind == "free":
                on_free(payload, now)
            elif kind == "check":
                on_check(payload, now)
            elif kind == "fail":
                on_fail(payload, now)
            else:
                on_recover(payload, now)

        if self.profiler is not None:
            record = self.profiler.record
            for req in arrivals:
                ta = req.t_ms
                head = queue.head
                while head is not None and (
                        head[0] < ta
                        or (head[0] == ta and head[1] == _P_FREE)):
                    now, _prio, _seq, payload = pop()
                    clock.now_ms = now
                    t0 = perf_counter()
                    handle(payload, now)
                    record(payload[0], perf_counter() - t0)
                    head = queue.head
                clock.now_ms = ta
                t0 = perf_counter()
                on_arrival(req, ta)
                record("arrival", perf_counter() - t0)
            while queue:
                now, _prio, _seq, payload = pop()
                clock.now_ms = now
                t0 = perf_counter()
                handle(payload, now)
                record(payload[0], perf_counter() - t0)
        else:
            for req in arrivals:
                ta = req.t_ms
                head = queue.head
                while head is not None and (
                        head[0] < ta
                        or (head[0] == ta and head[1] == _P_FREE)):
                    now, _prio, _seq, payload = pop()
                    clock.now_ms = now
                    handle(payload, now)
                    head = queue.head
                clock.now_ms = ta
                on_arrival(req, ta)
            while queue:
                now, _prio, _seq, payload = pop()
                clock.now_ms = now  # monotone by pop order
                handle(payload, now)
        self._finish_observer()

        records = [
            RequestRecord(
                rid=req.rid, model=model, instance=idx, batch_size=size,
                t_arrival_ms=req.t_ms, t_dispatch_ms=t_disp,
                t_complete_ms=t_done,
                retries=retries.get(req.rid, 0),
                degraded=degraded.get(req.rid, False),
            )
            for model, idx, size, t_disp, t_done, batch in done
            for req in batch
        ]
        records.sort(key=lambda r: r.rid)
        makespan = max((r.t_complete_ms for r in records), default=0.0)
        availability: Optional[float] = None
        if failing:
            horizon = max(makespan, self.clock.now_ms)
            availability = (
                1.0 - sum(i.downtime_ms for i in instances)
                / (len(instances) * horizon) if horizon > 0 else 1.0)
        return SimulationResult(
            records=records,
            instances=[
                InstanceStats(
                    index=i.idx, requests=i.requests, batches=i.batches,
                    busy_ms=i.busy_ms, reprogram_count=i.deploys,
                    switch_count=i.switch_count,
                    reprogram_time_ms=i.reprogram_time_ms,
                    failures=i.failures, downtime_ms=i.downtime_ms,
                ) for i in instances
            ],
            n_instances=len(instances),
            makespan_ms=makespan,
            queue_samples=samples,
            trace=trace,
            scheduler=self.scheduler.name,
            batching=self.batching.name,
            availability=availability,
            total_failures=sum(i.failures for i in instances),
            total_retries=sum(retries.values()),
        )

    # ------------------------------------------------------------------
    def _run_summary(self, requests: Sequence[Request]):
        """The ``detail="summary"`` drain: accumulate, don't materialize.

        Same event order, same dispatch decisions, same floats per
        event as the full path — but no ``RequestRecord`` objects, no
        trace list, no queue-depth sample list.  Latency multisets are
        collected per model (percentiles stay exact); wait/batch-size
        sums and the queue-depth integral are folded in as events fire.
        An attached observer still sees every trace tuple (tuples are
        built only when someone is listening); profilers need the full
        drain and are rejected.
        """
        if self.profiler is not None:
            raise ValueError(
                "KernelProfiler requires detail='full': the summary "
                "drain has no per-event handler boundaries to time")
        self._started = True
        queue = self.queue
        push = queue.push
        note = self.observer
        observing = note is not None
        instances = self.instances
        dispatcher = self.dispatcher
        batching = self.batching
        max_batch = batching.max_batch
        timeout_ms = batching.timeout_ms
        decide = None if type(batching) is BatchingPolicy else batching.decide
        check_jitter = self.check_jitter_ms
        failing = self.failures is not None

        if failing or dispatcher.restricted:
            pick = dispatcher.pick
        else:
            def pick(request, now_ms,
                     _fast=dispatcher._pick_fast, _all=instances):
                return _fast(_all, request, now_ms)

        # Per-model accumulators (latency lists keep the exact multiset
        # for order statistics; sums replace the full path's record
        # scans).
        m_lats: Dict[str, List[float]] = {}
        m_wait: Dict[str, float] = {}
        m_sq: Dict[str, int] = {}
        # Queue-depth step integral, same add order as
        # slo._time_weighted_mean over the full sample list.
        area = 0.0
        prev_t = 0.0
        cur_depth = 0
        max_depth = 0
        makespan = 0.0
        total_done = 0
        degraded_done = 0
        queued_total = 0
        pending: List[Request] = []
        retries: Dict[int, int] = {}
        degraded: Dict[int, bool] = {}
        touched: Optional[List[float]] = [] if failing else None

        arrivals = sorted(requests, key=_BY_T)

        injector: Optional[FailureInjector] = None
        if failing:
            horizon = (self.failure_horizon_ms
                       if self.failure_horizon_ms is not None
                       else arrivals[-1].t_ms if arrivals else 0.0)
            injector = FailureInjector(self.failures, horizon)
            for inst in instances:
                t_fail = injector.next_failure_ms(inst.idx, 0.0)
                if t_fail is not None:
                    push(t_fail, _P_FAULT, ("fail", inst))

        if (not failing and not dispatcher.restricted and decide is None
                and timeout_ms is None and not observing):
            # The web-scale drain: everything the per-event closures
            # below do, inlined into one loop.  The preconditions kill
            # whole event classes — no failures means no fault/recover
            # events, no stale epochs, and pick() never parks a request
            # (``pending`` stays empty); no batching timeout means no
            # check events.  The engine queue therefore holds only
            # completion events (priority ``_P_FREE``), so the merge
            # test against the arrival stream is a plain timestamp
            # compare: a free at an arrival's exact timestamp pops
            # first, same as the heap's priority order.
            rr = dispatcher._round_robin
            rr_next = 0
            n_inst = len(instances)
            pick_fast = dispatcher._pick_fast
            pop = queue.pop

            def dispatch(inst: _Inst, now: float) -> None:
                # try_dispatch with the idle/queue checks hoisted to
                # the call sites and the no-timeout policy constant-
                # folded: size is the same-model head prefix, capped.
                nonlocal queued_total, area, prev_t, cur_depth
                iq = inst.queue
                model = iq[0].model
                if max_batch == 1:
                    size = 1
                else:
                    size = 0
                    for r in iq:
                        if size >= max_batch or r.model != model:
                            break
                        size += 1
                batch = [iq.popleft() for _ in range(size)]
                queued_total -= size
                if inst.resident != model:
                    inst.cost.svc.config(model)  # validate, then reside
                    inst.resident = model
                    inst.switch_count += 1
                    inst.reprogram_time_ms += inst.reprogram_ms
                    switch_ms = inst.reprogram_ms
                else:
                    switch_ms = 0.0
                inst.deploys += 1
                total_ms = switch_ms + inst.cost.ms(model, size) / inst.speed
                complete = now + total_ms
                inst.busy_until = complete
                inst.busy_ms += total_ms
                inst.in_flight = (model, size, now, complete, batch)
                push(complete, _P_FREE, ("free", inst, inst.epoch))
                area += cur_depth * (now - prev_t)
                prev_t = now
                cur_depth = queued_total  # depth fell: max unchanged

            def free_event(head: tuple) -> None:
                nonlocal makespan, total_done
                inst: _Inst = head[3][1]
                model, size, t_disp, t_done, batch = inst.in_flight
                inst.in_flight = None
                inst.batches += 1
                inst.requests += size
                lats = m_lats.get(model)
                if lats is None:
                    lats = m_lats[model] = []
                    m_wait[model] = 0.0
                    m_sq[model] = 0
                append = lats.append
                wait = 0.0
                for r in batch:
                    t0 = r.t_ms
                    append(t_done - t0)
                    wait += t_disp - t0
                m_wait[model] += wait
                m_sq[model] += size * size
                total_done += size
                makespan = t_done  # free events pop in time order
                if inst.queue:
                    dispatch(inst, t_done)

            for req in arrivals:
                ta = req.t_ms
                head = queue.head
                while head is not None and head[0] <= ta:
                    pop()
                    free_event(head)
                    head = queue.head
                if rr:
                    inst = instances[rr_next]
                    rr_next += 1
                    if rr_next == n_inst:
                        rr_next = 0
                else:
                    inst = pick_fast(instances, req, ta)
                inst.queue.append(req)
                queued_total += 1
                inst.last_model = req.model
                d = queued_total
                area += cur_depth * (ta - prev_t)
                prev_t = ta
                cur_depth = d
                if d > max_depth:
                    max_depth = d
                if inst.busy_until <= ta + _EPS:
                    dispatch(inst, ta)
            while queue:
                head = queue.head
                pop()
                free_event(head)
            # Nothing in the fast drain reads the clock; leave it at
            # the last event time for the shared epilogue.
            self.clock.now_ms = max(
                makespan, arrivals[-1].t_ms if arrivals else 0.0)
            return self._build_summary(
                total_done, makespan, m_lats, m_wait, m_sq, area, prev_t,
                cur_depth, max_depth, retries, degraded_done, touched,
                failing)

        def sample(now: float, d: int) -> None:
            nonlocal area, prev_t, cur_depth, max_depth
            area += cur_depth * (now - prev_t)
            prev_t = now
            cur_depth = d
            if d > max_depth:
                max_depth = d

        def try_dispatch(inst: _Inst, now: float) -> None:
            nonlocal queued_total
            if inst.down or inst.busy_until > now + _EPS or not inst.queue:
                return
            iq = inst.queue
            head = iq[0]
            model = head.model
            if max_batch == 1:
                prefix = 1
            else:
                prefix = 0
                for req in iq:
                    if prefix >= max_batch or req.model != model:
                        break
                    prefix += 1
            if decide is not None:
                size = decide(prefix, now - head.t_ms)
            elif prefix >= max_batch:
                size = max_batch
            elif timeout_ms is None:
                size = prefix
            elif now - head.t_ms + _EPS >= timeout_ms:
                size = prefix
            else:
                size = None
            if size is None:
                if not inst.pending_check:
                    assert timeout_ms is not None
                    deadline = head.t_ms + timeout_ms
                    target = deadline - check_jitter
                    if target <= now + _EPS:
                        target = deadline
                    push(target if target > now else now, _P_CHECK,
                         ("check", inst))
                    inst.pending_check = True
                return
            batch = [iq.popleft() for _ in range(size)]
            queued_total -= size
            switched = inst.resident != model
            if switched:
                inst.cost.svc.config(model)  # validate before residency
                inst.resident = model
                inst.switch_count += 1
                inst.reprogram_time_ms += inst.reprogram_ms
                switch_ms = inst.reprogram_ms
            else:
                switch_ms = 0.0
            inst.deploys += 1
            total_ms = switch_ms + inst.cost.ms(model, size) / inst.speed
            complete = now + total_ms
            inst.busy_until = complete
            inst.busy_ms += total_ms
            inst.in_flight = (model, size, now, complete, batch)
            if observing:
                note(("dispatch", now, inst.idx, model, size, switch_ms))
            push(complete, _P_FREE, ("free", inst, inst.epoch))
            sample(now, queued_total + len(pending))

        def route(req: Request, now: float) -> None:
            nonlocal queued_total
            inst = pick(req, now)
            if inst is None:
                pending.append(req)
                if observing:
                    note(("requeue", now, req.rid, -1))
                return
            inst.queue.append(req)
            queued_total += 1
            inst.last_model = req.model
            if observing:
                note(("requeue", now, req.rid, inst.idx))
            try_dispatch(inst, now)

        def on_arrival(req: Request, now: float) -> None:
            nonlocal queued_total
            if failing and dispatcher.down_count:
                degraded[req.rid] = True
            inst = pick(req, now)
            if inst is None:
                pending.append(req)
                if observing:
                    note(("arrive", now, req.rid, req.model, -1))
                sample(now, queued_total + len(pending))
                return
            inst.queue.append(req)
            queued_total += 1
            inst.last_model = req.model
            if observing:
                note(("arrive", now, req.rid, req.model, inst.idx))
            sample(now, queued_total + len(pending))
            try_dispatch(inst, now)

        def on_free(payload: tuple, now: float) -> None:
            nonlocal makespan, total_done, degraded_done
            inst: _Inst = payload[1]
            if payload[2] != inst.epoch:
                return  # batch aborted by a failure; event is stale
            model, size, t_disp, t_done, batch = inst.in_flight
            inst.in_flight = None
            inst.batches += 1
            inst.requests += size
            if observing:
                note(("free", now, inst.idx))
            lats = m_lats.get(model)
            if lats is None:
                lats = m_lats[model] = []
                m_wait[model] = 0.0
                m_sq[model] = 0
            append = lats.append
            wait = 0.0
            if failing:
                for req in batch:
                    t0 = req.t_ms
                    lat = t_done - t0
                    append(lat)
                    wait += t_disp - t0
                    rid = req.rid
                    deg = degraded.get(rid, False)
                    if deg:
                        degraded_done += 1
                    if deg or retries.get(rid):
                        touched.append(lat)
            else:
                for req in batch:
                    t0 = req.t_ms
                    append(t_done - t0)
                    wait += t_disp - t0
            m_wait[model] += wait
            m_sq[model] += size * size
            total_done += size
            makespan = t_done  # free events pop in time order
            try_dispatch(inst, now)

        def on_check(payload: tuple, now: float) -> None:
            inst: _Inst = payload[1]
            inst.pending_check = False
            try_dispatch(inst, now)

        def on_fail(payload: tuple, now: float) -> None:
            nonlocal queued_total
            inst: _Inst = payload[1]
            inst.down = True
            inst.down_since = now
            inst.failures += 1
            dispatcher.down_count += 1
            if observing:
                note(("fail", now, inst.idx))
            lost: List[Request] = []
            if inst.in_flight is not None and inst.busy_until > now + _EPS:
                inst.busy_ms -= inst.busy_until - now
                inst.busy_until = now
                inst.epoch += 1
                batch = inst.in_flight[4]
                inst.in_flight = None
                for req in batch:
                    retries[req.rid] = retries.get(req.rid, 0) + 1
                lost.extend(batch)
            inst.resident = None  # weights are lost with the instance
            queued = list(inst.queue)
            inst.queue.clear()
            queued_total -= len(queued)
            sample(now, queued_total + len(pending))
            for req in lost:
                route(req, now)
            for req in queued:
                route(req, now)
            assert injector is not None
            push(now + injector.repair_duration_ms(inst.idx), _P_FAULT,
                 ("recover", inst))

        def on_recover(payload: tuple, now: float) -> None:
            inst: _Inst = payload[1]
            inst.down = False
            inst.downtime_ms += now - inst.down_since
            dispatcher.down_count -= 1
            if observing:
                note(("recover", now, inst.idx))
            assert injector is not None
            t_fail = injector.next_failure_ms(inst.idx, now)
            if t_fail is not None:
                push(t_fail, _P_FAULT, ("fail", inst))
            if pending:
                parked, pending[:] = list(pending), []
                for req in parked:
                    route(req, now)

        # Same merged drain as the full path (see run()).
        clock = self.clock
        pop = queue.pop

        def handle(payload: tuple, now: float) -> None:
            kind = payload[0]
            if kind == "free":
                on_free(payload, now)
            elif kind == "check":
                on_check(payload, now)
            elif kind == "fail":
                on_fail(payload, now)
            else:
                on_recover(payload, now)

        for req in arrivals:
            ta = req.t_ms
            head = queue.head
            while head is not None and (
                    head[0] < ta
                    or (head[0] == ta and head[1] == _P_FREE)):
                now, _prio, _seq, payload = pop()
                clock.now_ms = now
                handle(payload, now)
                head = queue.head
            clock.now_ms = ta
            on_arrival(req, ta)
        while queue:
            now, _prio, _seq, payload = pop()
            clock.now_ms = now  # monotone by pop order
            handle(payload, now)
        self._finish_observer()
        return self._build_summary(
            total_done, makespan, m_lats, m_wait, m_sq, area, prev_t,
            cur_depth, max_depth, retries, degraded_done, touched, failing)

    def _build_summary(self, total_done, makespan, m_lats, m_wait, m_sq,
                       area, prev_t, cur_depth, max_depth, retries,
                       degraded_done, touched, failing):
        """Fold the drain accumulators into a :class:`ServeSummary`."""
        from ..serving.cluster import InstanceStats
        from .summary import ServeSummary

        instances = self.instances
        availability: Optional[float] = None
        if failing:
            horizon = max(makespan, self.clock.now_ms)
            availability = (
                1.0 - sum(i.downtime_ms for i in instances)
                / (len(instances) * horizon) if horizon > 0 else 1.0)
        return ServeSummary(
            total_requests=total_done,
            makespan_ms=makespan,
            n_instances=len(instances),
            scheduler=self.scheduler.name,
            batching=self.batching.name,
            model_lats=m_lats,
            model_wait_sum=m_wait,
            model_batch_sq=m_sq,
            instances=[
                InstanceStats(
                    index=i.idx, requests=i.requests, batches=i.batches,
                    busy_ms=i.busy_ms, reprogram_count=i.deploys,
                    switch_count=i.switch_count,
                    reprogram_time_ms=i.reprogram_time_ms,
                    failures=i.failures, downtime_ms=i.downtime_ms,
                ) for i in instances
            ],
            depth_area=area,
            depth_last_t=prev_t,
            depth_last=cur_depth,
            max_queue_depth=max_depth,
            availability=availability,
            total_failures=sum(i.failures for i in instances),
            total_retries=sum(retries.values()),
            degraded_count=degraded_done if failing else None,
            touched_lats=touched,
        )
