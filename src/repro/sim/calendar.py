"""Calendar (bucketed) event queue — the kernel's near-future fast path.

A binary heap pays ``O(log n)`` pointer-chasing comparisons per push
and pop, and at web-scale event counts (10^6–10^9 events per scenario)
the heap *is* the kernel profile.  Discrete-event simulations have a
strong structural bias a heap ignores: almost every push lands in the
near future — a batch completion a few service times ahead, a batching
deadline one timeout away.  :class:`CalendarQueue` exploits that bias
the classic way (Brown's calendar queue, adapted for determinism):

* a ring of fixed-width **buckets** covers a sliding window of
  simulated time (``bucket_ms`` × ``n_buckets``, the "year"); a push
  inside the window appends to its bucket in O(1);
* events beyond the window go to a far-future **overflow heap**; when
  the cursor exhausts a year, the window advances and the overflow
  events that fell into the new year are scattered into buckets;
* a bucket is sorted lazily, once, when the cursor reaches it; pops
  then walk the sorted bucket by index.

Determinism is non-negotiable here: the six trace-identity goldens pin
engine output byte-for-byte, so this queue must pop in *exactly* the
heap's order.  It does, by construction — the total order is the full
event tuple ``(t_ms, priority, seq, payload)`` and ``seq`` (the shared
insertion counter) is unique, so sorting a bucket or the overflow heap
compares exactly the keys ``heapq`` would.  Bucket *binning* cannot
reorder either: ``floor((t - base) / width)`` is monotone in ``t``, so
an event can never land in an earlier bucket than an earlier-popping
event (the property test in ``tests/sim/test_calendar.py`` drives
randomized streams, equal-key ties, and overflow boundaries through
both queues and asserts pop-order identity).

Hot-path contract (replacing ``EventQueue``'s public ``heap``): the
:attr:`head` attribute always holds the next event tuple (or ``None``
when empty), so engines peek the merge frontier with one attribute
load — no method call — and :meth:`pop` returns exactly ``head``.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from itertools import count
from typing import List, Optional, Tuple

#: One scheduled event: ``(t_ms, priority, seq, payload)`` — the same
#: shape as :data:`repro.sim.kernel.Event` (redeclared here so the
#: kernel can import this module without a cycle).
Event = Tuple[float, int, int, tuple]

__all__ = ["CalendarQueue"]


class CalendarQueue:
    """Deterministic bucketed event queue, pop-order identical to a heap.

    ``bucket_ms`` is the bucket width; ``n_buckets`` buckets form one
    sliding year.  Both only affect *speed* (a mis-sized calendar
    degrades into "one big bucket" or "everything overflows" — both
    still correct): pops follow the total tuple order regardless.
    """

    __slots__ = ("counter", "head", "_buckets", "_overflow", "_width",
                 "_n_buckets", "_base_ms", "_limit_ms", "_cursor", "_pos",
                 "_count")

    def __init__(self, bucket_ms: float = 1.0, n_buckets: int = 512) -> None:
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        #: Shared insertion counter — the kernel-wide tie-break sequence
        #: (same contract as ``EventQueue.counter``).
        self.counter = count()
        #: The next event to pop (``None`` when empty) — engines read
        #: this directly on their merge hot path.
        self.head: Optional[Event] = None
        self._buckets: List[List[Event]] = [[] for _ in range(n_buckets)]
        self._overflow: List[Event] = []
        self._width = bucket_ms
        self._n_buckets = n_buckets
        self._base_ms = 0.0
        self._limit_ms = bucket_ms * n_buckets
        self._cursor = 0  # bucket the head lives in
        self._pos = 0  # index of the head within its (sorted) bucket
        self._count = 0

    # ------------------------------------------------------------------
    def push(self, t_ms: float, priority: int, payload: tuple) -> None:
        """Schedule ``payload`` at ``t_ms`` (stable within a priority)."""
        event = (t_ms, priority, next(self.counter), payload)
        self._count += 1
        if self._count == 1:
            # Empty queue: re-anchor the year at this event so a sparse
            # timeline never walks empty buckets to find it.
            self._rebase(t_ms)
        if t_ms >= self._limit_ms:
            # A first push always lands in-window (the rebase above
            # anchored the year at it), so the overflow never needs to
            # rebuild ``head``: a far-future event cannot beat it.
            heappush(self._overflow, event)
            return
        index = int((t_ms - self._base_ms) / self._width)
        # Float division can under-shoot into an already-passed bucket
        # (or the event may simply be scheduled "now", at the cursor):
        # clamp to the live bucket.  Order is safe — the live bucket is
        # sorted from ``_pos`` on, and ``insort`` places the event by
        # its full tuple key.
        if index <= self._cursor:
            bucket = self._buckets[self._cursor]
            insort(bucket, event, lo=self._pos)
            head = self.head
            if head is None or event < head:
                self.head = event
            return
        if index >= self._n_buckets:  # pragma: no cover - float edge
            heappush(self._overflow, event)
            return
        # A later-bucket push can never beat the head: binning is
        # monotone in t, so index > cursor implies t > head's t.  The
        # bucket is sorted lazily when the cursor reaches it.
        self._buckets[index].append(event)

    def pop(self) -> Event:
        """Remove and return :attr:`head` (deterministic total order)."""
        event = self.head
        if event is None:
            raise IndexError("pop from an empty CalendarQueue")
        self._count -= 1
        self._pos += 1
        self._advance()
        return event

    def peek_ms(self) -> Optional[float]:
        """Timestamp of the next event (``None`` when empty)."""
        head = self.head
        return head[0] if head is not None else None

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    # ------------------------------------------------------------------
    def _rebase(self, t_ms: float) -> None:
        """Re-anchor the year so ``t_ms`` falls in the first bucket."""
        width = self._width
        base = int(t_ms / width) * width
        if base > t_ms:  # float rounding up: step back one bucket
            base -= width
        self._base_ms = base
        self._limit_ms = base + width * self._n_buckets
        self._cursor = 0
        self._pos = 0

    def _advance(self) -> None:
        """Re-establish :attr:`head` after a pop (or an empty-queue push).

        Walks from the cursor to the next event: first the live bucket,
        then later buckets of this year (sorting each as the cursor
        enters it), then — once the year is spent — re-anchors at the
        overflow heap's front and scatters the new year's events into
        buckets.  Amortized O(1) per event for near-future-dominated
        streams; worst case one bucket sort per bucket per year.
        """
        if self._count == 0:
            self.head = None
            # Drop the already-popped prefix of the live bucket now:
            # the next push re-anchors the year with a fresh cursor and
            # must find every bucket empty.
            if self._pos:
                self._buckets[self._cursor].clear()
                self._pos = 0
            return
        buckets = self._buckets
        while True:
            bucket = buckets[self._cursor]
            if self._pos < len(bucket):
                self.head = bucket[self._pos]
                return
            if self._pos:
                bucket.clear()
                self._pos = 0
            for index in range(self._cursor + 1, self._n_buckets):
                candidate = buckets[index]
                if candidate:
                    candidate.sort()
                    self._cursor = index
                    self.head = candidate[0]
                    return
            # Year exhausted; ``count > 0`` means the rest is in the
            # overflow.  Re-anchor at its front and pull everything
            # that now falls inside the window.  Heap pops come out in
            # ascending tuple order and binning is monotone, so every
            # refilled bucket is born sorted — no .sort() needed before
            # the loop walks back over them.
            overflow = self._overflow
            self._rebase(overflow[0][0])
            limit = self._limit_ms
            width = self._width
            base = self._base_ms
            last = self._n_buckets - 1
            while overflow and overflow[0][0] < limit:
                event = heappop(overflow)
                index = int((event[0] - base) / width)
                if index < 0:  # pragma: no cover - float edge
                    index = 0
                elif index > last:  # pragma: no cover - float edge
                    index = last
                buckets[index].append(event)
            self._cursor = 0
