"""Kernel-backed continuous-batching generation engine.

The execution engine behind :class:`~repro.serving.generation.
GenerationClusterSimulator` since the unified kernel landed: identical
event discipline to the legacy loop (step completions before arrivals
at equal timestamps), re-hosted on :mod:`repro.sim.kernel` and held
bit-identical on seeded scenarios by the trace-identity goldens.  The
scenario layer the legacy loop could not express:

* **priority admission with preemption** — when any request carries a
  nonzero priority, admission picks waiting work by ``(priority desc,
  rid asc)`` instead of FIFO, and a strictly-higher-priority arrival
  may evict the lowest-priority in-flight sequence at a step boundary.
  The victim requeues as a *resume*: it keeps its emitted tokens, and
  on re-admission pays a re-prefill over its cached positions (the KV
  rebuild) before decoding on;
* **heterogeneous fleets** — per-instance speed scales the compute
  half of every step (weight streams and attention sweeps), switch
  penalties can be overridden per instance, and capability sets
  restrict dispatch;
* **failure injection** — a fault mid-step (including mid-prefill)
  aborts the step: sequences that had already emitted their first
  token requeue as resumes, ones still in prefill requeue as fresh
  requests, and both count a retry.  Queued work re-routes through the
  dispatcher; downtime accrues until repair.

Performance: events here are already batched per resource — one
``("step", inst, epoch)`` event advances *every* in-flight sequence of
an instance by one token (the decode sweep prices all slots in one
:meth:`~repro.serving.generation.GenerationServiceModel.decode_step_ms`
call), so the event queue holds at most one step event per instance,
never one per token.  The arrival stream never enters the event queue
either: arrivals are stable-sorted once and merged against the
:class:`~repro.sim.calendar.CalendarQueue` of step/fault events during
the drain.  ``detail="summary"`` additionally skips all record, trace,
and sample materialization (see :mod:`repro.sim.summary`).

Observer contract: attached observers receive every trace tuple —
``("arrive", t, rid, model, inst)``, ``("admit", t, inst, rid, prompt,
output)``, ``("resume", t, inst, rid, cached, remaining)``, ``("step",
t, inst, model, admitted, decoding, duration)``, ``("finish", t, inst,
rid)``, ``("preempt", t, inst, rid)``, ``("fail"/"recover", t, inst)``
— plus the observer-only ``("requeue", t, rid, inst)``.  Admits at
time ``t`` precede their step event, and that step's first tokens land
at ``t + duration``; ``preempt`` returns the victim to its instance's
queue *without* a requeue event; a ``fail`` before a step completes
aborts it (no first tokens were produced).  The
:class:`repro.obs.alerts.Watchdog` derives online TTFT from exactly
these rules.  Observers are read-only: the bare-run trace stays
byte-identical with any observer attached.
"""

from __future__ import annotations

from collections import deque
from operator import attrgetter
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..serving.scheduler import LeastLoaded, ModelAffinity, Scheduler
from ..serving.workload import GenerationRequest
from .failures import FailureInjector, FailurePlan
from .fleet import Dispatcher, FleetSpec, InstanceSpec
from .kernel import Simulation

__all__ = ["GenerationEngine"]

_EPS = 1e-9
#: Stable-sort key for the merged arrival stream (see ServeEngine).
_BY_T = attrgetter("t_ms")
# Step completions land before new arrivals at equal timestamps (the
# legacy rule); faults sort last so they observe settled state.
_P_STEP, _P_ARRIVAL, _P_FAULT = 0, 1, 2


class _Seq:
    """One in-flight request's decoding state."""

    __slots__ = ("req", "cached", "remaining", "t_admit", "t_first")

    def __init__(self, req: GenerationRequest, t_admit: float,
                 t_first: float):
        self.req = req
        self.cached = req.prompt_tokens
        self.remaining = req.output_tokens - 1
        self.t_admit = t_admit
        self.t_first = t_first


class _Resume:
    """A preempted/failed-over sequence waiting to re-enter a slot.

    Quacks like a request for dispatch purposes (``model``,
    ``priority``, ``rid``) while carrying the decoding state to
    restore.  Re-admission re-prefills ``seq.cached`` positions — the
    evicted KV cache must be rebuilt — then decoding continues.
    """

    __slots__ = ("seq",)

    def __init__(self, seq: _Seq):
        self.seq = seq

    @property
    def model(self) -> str:
        return self.seq.req.model

    @property
    def rid(self) -> int:
        return self.seq.req.rid

    @property
    def priority(self) -> int:
        return self.seq.req.priority

    @property
    def t_ms(self) -> float:
        return self.seq.req.t_ms


class _Inst:
    """Mutable per-instance engine state (scheduler-visible)."""

    __slots__ = (
        "idx", "spec", "speed", "reprogram_ms", "slots", "queue", "active",
        "busy_until", "last_model", "resident", "down", "epoch",
        "step_done", "requests", "steps", "prefills", "tokens", "busy_ms",
        "switch_count", "reprogram_time_ms", "preemptions", "failures",
        "downtime_ms", "down_since",
    )

    def __init__(self, idx: int, spec: InstanceSpec, reprogram_ms: float,
                 slots: int):
        self.idx = idx
        self.spec = spec
        self.speed = spec.speed
        self.reprogram_ms = (spec.reprogram_latency_ms
                             if spec.reprogram_latency_ms is not None
                             else reprogram_ms)
        self.slots = spec.slots if spec.slots is not None else slots
        self.queue = deque()
        self.active: List[_Seq] = []
        self.busy_until = 0.0
        self.last_model: Optional[str] = None
        self.resident: Optional[str] = None
        self.down = False
        self.epoch = 0
        self.step_done: List[Tuple[_Seq, bool]] = []
        self.requests = 0
        self.steps = 0
        self.prefills = 0
        self.tokens = 0
        self.busy_ms = 0.0
        self.switch_count = 0
        self.reprogram_time_ms = 0.0
        self.preemptions = 0
        self.failures = 0
        self.downtime_ms = 0.0
        self.down_since = 0.0

    def backlog(self, now_ms: float) -> int:
        """Waiting plus in-flight sequences (Scheduler Protocol)."""
        return len(self.queue) + len(self.active)


class _GenDispatcher(Dispatcher):
    """Capability/health-aware dispatch with inlined built-in policies."""

    def __init__(self, scheduler: Scheduler, instances: Sequence[_Inst]):
        super().__init__(scheduler, instances)
        self._least_loaded = type(scheduler) is LeastLoaded
        self._affinity = type(scheduler) is ModelAffinity

    def _pick_fast(self, candidates, request, now_ms):
        if self._least_loaded:
            best = None
            best_b = 0
            for inst in candidates:
                b = len(inst.queue) + len(inst.active)
                if best is None or b < best_b:
                    best, best_b = inst, b
            return best
        if self._affinity:
            model = request.model
            best = sticky = None
            best_b = sticky_b = 0
            for inst in candidates:
                b = len(inst.queue) + len(inst.active)
                if best is None or b < best_b:
                    best, best_b = inst, b
                if inst.last_model == model and (sticky is None
                                                 or b < sticky_b):
                    sticky, sticky_b = inst, b
            if sticky is not None and sticky_b <= best_b + self.scheduler.slack:
                return sticky
            return best
        return self.scheduler.pick(candidates, request, now_ms)


class GenerationEngine(Simulation):
    """One run of the token-level continuous-batching simulation."""

    def __init__(
        self,
        service,  # GenerationServiceModel
        fleet: FleetSpec,
        slots: int,
        scheduler: Scheduler,
        reprogram_latency_ms: float = 0.0,
        failures: Optional[FailurePlan] = None,
        preemption: Optional[bool] = None,
        instance_base: int = 0,
        failure_horizon_ms: Optional[float] = None,
        rng_seed=0,
    ):
        # All engine randomness flows through FailureInjector's own
        # streams (seeded by the plan); the base Simulation rng carries
        # the cell namespace under sharding and is otherwise unused.
        super().__init__(seed=rng_seed)
        #: First global instance index and failure-horizon override —
        #: see :class:`repro.sim.serve.ServeEngine` for the sharding
        #: contract behind both.
        self.instance_base = instance_base
        self.failure_horizon_ms = failure_horizon_ms
        self.service = service
        self.fleet = fleet
        self.slots = slots
        self.scheduler = scheduler
        self.failures = failures
        #: None = auto: preempt iff any request carries a priority.
        self.preemption = preemption
        for spec in fleet.specs:
            if spec.target is not None:
                raise ValueError(
                    "per-instance targets are serve-mode only: the "
                    "generation engine prices every step through the "
                    "cluster accelerator's decode model")
        self.instances = [
            _Inst(instance_base + idx, spec, reprogram_latency_ms, slots)
            for idx, spec in enumerate(fleet.specs)
        ]
        self.dispatcher = _GenDispatcher(scheduler, self.instances)

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[GenerationRequest],
            detail: str = "full"):
        """Simulate the stream to completion and return the result.

        ``detail="full"`` returns a :class:`~repro.serving.generation.
        GenerationSimulationResult` with one record per request — the
        byte-identity surface the goldens pin.  ``detail="summary"``
        skips record/trace/sample materialization and returns a
        :class:`~repro.sim.summary.GenerationSummary` accumulated on
        the fly; percentiles from either detail level are bit-identical
        (exact multisets), means may differ in the last ulp (float
        accumulation order follows completion order, not rid order).
        """
        if detail == "summary":
            return self._run_summary(requests)
        if detail != "full":
            raise ValueError(
                f"unknown detail level {detail!r}: use 'full' or "
                "'summary'")
        from ..serving.generation import (GenerationInstanceStats,
                                          GenerationRecord,
                                          GenerationSimulationResult)

        self._started = True
        queue = self.queue
        push = queue.push
        trace = self.trace
        # Observer wiring (same contract as ServeEngine.run): detached
        # runs bind ``emit`` straight to ``trace.append``; ``note``
        # carries observer-only requeue events that never enter the
        # trace, keeping trace bytes identical either way.
        note = self.observer
        if note is None:
            emit = trace.append
        else:
            def emit(event, _append=trace.append, _obs=note):
                _append(event)
                _obs(event)
        instances = self.instances
        dispatcher = self.dispatcher
        service = self.service
        prefill_ms = service.prefill_ms
        decode_step_ms = service.decode_step_ms
        priority_mode = (self.preemption if self.preemption is not None
                         else any(r.priority for r in requests))

        records: List[GenerationRecord] = []
        samples: List[Tuple[float, int]] = []
        pending: List[Union[GenerationRequest, _Resume]] = []
        retries: Dict[int, int] = {}
        preempt_counts: Dict[int, int] = {}
        degraded: Dict[int, bool] = {}
        failing = self.failures is not None

        # Arrivals never enter the event queue: a stable sort by
        # timestamp IS their pop order (equal-time arrivals keep input
        # order, exactly the heap's same-priority seq tie-break), so
        # the drain below merges this pre-sorted stream against a
        # queue that only carries step and fault events.
        arrivals = sorted(requests, key=_BY_T)

        injector: Optional[FailureInjector] = None
        if failing:
            horizon = (self.failure_horizon_ms
                       if self.failure_horizon_ms is not None
                       else arrivals[-1].t_ms if arrivals else 0.0)
            injector = FailureInjector(self.failures, horizon)
            for inst in instances:
                t_fail = injector.next_failure_ms(inst.idx, 0.0)
                if t_fail is not None:
                    push(t_fail, _P_FAULT, ("fail", inst))

        def sample(now: float) -> None:
            samples.append(
                (now, sum(len(i.queue) + len(i.active) for i in instances)
                 + len(pending)))

        def take_next(inst: _Inst, resident: Optional[str]):
            """Pop the next admissible queue entry (None if head-blocked).

            FIFO in legacy mode; ``(priority desc, rid asc)`` when
            priorities are in play — the order the goldens pin.
            """
            iq = inst.queue
            if not iq:
                return None
            if not priority_mode:
                head = iq[0]
                if resident is not None and head.model != resident:
                    return None
                return iq.popleft()
            best_at = -1
            best_key = None
            for pos, entry in enumerate(iq):
                if resident is not None and entry.model != resident:
                    continue
                key = (-entry.priority, entry.rid)
                if best_key is None or key < best_key:
                    best_at, best_key = pos, key
            if best_at < 0:
                return None
            iq.rotate(-best_at)
            entry = iq.popleft()
            iq.rotate(best_at)
            return entry

        def preempt_for(inst: _Inst, now: float) -> None:
            """Evict low-priority actives for strictly-higher waiters.

            Only waiters of the resident model are eligible: in-flight
            sequences all share one weight set, so an eviction could
            never admit a different model anyway (mixed weights cannot
            be resident together).
            """
            iq = inst.queue
            while iq and inst.active and len(inst.active) >= inst.slots:
                resident = inst.active[0].req.model
                top = max((e.priority for e in iq if e.model == resident),
                          default=None)
                victim = min(
                    inst.active,
                    key=lambda s: (s.req.priority, s.cached, -s.req.rid))
                if top is None or top <= victim.req.priority:
                    return
                inst.active.remove(victim)
                inst.preemptions += 1
                preempt_counts[victim.req.rid] = (
                    preempt_counts.get(victim.req.rid, 0) + 1)
                emit(("preempt", now, inst.idx, victim.req.rid))
                iq.append(_Resume(victim))

        def start_step(inst: _Inst, now: float) -> None:
            """Admit at the boundary, then run one engine step."""
            if inst.down or inst.busy_until > now + _EPS:
                return
            if priority_mode:
                preempt_for(inst, now)
            admitted: List[Union[GenerationRequest, _Resume]] = []
            resident = inst.active[0].req.model if inst.active else None
            while len(inst.active) + len(admitted) < inst.slots:
                entry = take_next(inst, resident)
                if entry is None:
                    break
                admitted.append(entry)
                if resident is None:
                    resident = entry.model
            if not admitted and not inst.active:
                return
            model = resident
            switched = inst.resident != model
            if switched:
                service.config(model)  # validate before residency
                inst.resident = model
                inst.switch_count += 1
                inst.reprogram_time_ms += inst.reprogram_ms
                switch_ms = inst.reprogram_ms
            else:
                switch_ms = 0.0
            inst.last_model = model
            speed = inst.speed

            # Decode sweep covers sequences active *before* this step;
            # the newly admitted prefill inside it and join the next one.
            decoding = list(inst.active)
            duration = switch_ms
            for entry in admitted:
                if type(entry) is _Resume:
                    seq = entry.seq
                    duration += prefill_ms(model, seq.cached) / speed
                    inst.active.append(seq)
                    inst.prefills += 1
                    emit(("resume", now, inst.idx, seq.req.rid,
                          seq.cached, seq.remaining))
                else:
                    duration += prefill_ms(model, entry.prompt_tokens) / speed
                    seq = _Seq(entry, t_admit=now, t_first=now + duration)
                    inst.active.append(seq)
                    inst.prefills += 1
                    inst.requests += 1
                    inst.tokens += 1  # the prefill's first token
                    emit(("admit", now, inst.idx, entry.rid,
                          entry.prompt_tokens, entry.output_tokens))
            if decoding:
                duration += decode_step_ms(
                    model, [s.cached + 1 for s in decoding]) / speed
            end = now + duration
            inst.busy_until = end
            inst.busy_ms += duration
            inst.steps += 1
            inst.step_done = [(s, True) for s in decoding]
            inst.tokens += len(decoding)
            emit(("step", now, inst.idx, model, len(admitted),
                  len(decoding), duration))
            push(end, _P_STEP, ("step", inst, inst.epoch))
            sample(now)

        def finish_step(inst: _Inst, now: float) -> None:
            """Step boundary: emit tokens, vacate finished sequences."""
            for seq, decoded in inst.step_done:
                if decoded:
                    seq.cached += 1
                    seq.remaining -= 1
            inst.step_done = []
            still: List[_Seq] = []
            for seq in inst.active:
                if seq.remaining <= 0 and seq.t_first <= now + _EPS:
                    req = seq.req
                    complete = seq.t_first if req.output_tokens == 1 else now
                    records.append(GenerationRecord(
                        rid=req.rid, model=req.model, instance=inst.idx,
                        prompt_tokens=req.prompt_tokens,
                        output_tokens=req.output_tokens,
                        t_arrival_ms=req.t_ms, t_admit_ms=seq.t_admit,
                        t_first_token_ms=seq.t_first,
                        t_complete_ms=complete,
                        retries=retries.get(req.rid, 0),
                        preemptions=preempt_counts.get(req.rid, 0),
                        degraded=degraded.get(req.rid, False)))
                    emit(("finish", now, inst.idx, req.rid))
                else:
                    still.append(seq)
            inst.active = still
            sample(now)
            start_step(inst, now)

        def route(entry, now: float) -> None:
            """Queue a request/resume like a fresh arrival (requeue).

            Emits an observer-only ``requeue`` event — never appended
            to the trace — so metrics observers see displaced work
            re-enter a queue without perturbing the golden traces.
            """
            inst = dispatcher.pick(entry, now)
            if inst is None:
                pending.append(entry)
                if note is not None:
                    note(("requeue", now, entry.rid, -1))
                return
            inst.queue.append(entry)
            if inst.last_model is None:
                inst.last_model = entry.model
            if note is not None:
                note(("requeue", now, entry.rid, inst.idx))
            start_step(inst, now)

        def on_arrival(req: GenerationRequest, now: float) -> None:
            if failing and dispatcher.down_count:
                degraded[req.rid] = True
            inst = dispatcher.pick(req, now)
            if inst is None:
                pending.append(req)
                emit(("arrive", now, req.rid, req.model, -1))
                sample(now)
                return
            inst.queue.append(req)
            if inst.last_model is None:
                inst.last_model = req.model
            emit(("arrive", now, req.rid, req.model, inst.idx))
            sample(now)
            start_step(inst, now)

        def on_step(payload: tuple, now: float) -> None:
            inst: _Inst = payload[1]
            if payload[2] != inst.epoch:
                return  # step aborted by a failure; event is stale
            finish_step(inst, now)

        def on_fail(payload: tuple, now: float) -> None:
            inst: _Inst = payload[1]
            inst.down = True
            inst.down_since = now
            inst.failures += 1
            dispatcher.down_count += 1
            emit(("fail", now, inst.idx))
            displaced: List[Union[GenerationRequest, _Resume]] = []
            aborted_step = inst.busy_until > now + _EPS
            decoding_ids = set()
            if aborted_step:
                # Abort the step in flight (possibly mid-prefill):
                # refund the unserved tail and bump the epoch so the
                # scheduled step-completion event goes stale.  The
                # aborted sweep's decode tokens were counted at
                # start_step but never emitted — refund them too (they
                # will be re-counted where the sequences re-decode),
                # mirroring the busy_ms refund above.
                inst.busy_ms -= inst.busy_until - now
                inst.busy_until = now
                inst.epoch += 1
                inst.tokens -= sum(
                    1 for _, decoded in inst.step_done if decoded)
                decoding_ids = {id(s) for s, _ in inst.step_done}
            inst.step_done = []
            for seq in inst.active:
                retries[seq.req.rid] = retries.get(seq.req.rid, 0) + 1
                if seq.t_first <= now + _EPS:
                    # First token already delivered: resume decoding
                    # elsewhere after a KV re-prefill.  If the seq was
                    # a resume (re)admitted inside the aborted step —
                    # active but not part of its decode sweep — its
                    # re-prefill never completed: refund the count so
                    # the re-admission elsewhere doesn't double it.
                    if aborted_step and id(seq) not in decoding_ids:
                        inst.prefills -= 1
                    displaced.append(_Resume(seq))
                else:
                    # Still in prefill: nothing was delivered, so the
                    # request restarts from scratch.
                    inst.requests -= 1
                    inst.tokens -= 1  # the unemitted first token
                    inst.prefills -= 1
                    displaced.append(seq.req)
            inst.active = []
            inst.resident = None  # weights are lost with the instance
            queued = list(inst.queue)
            inst.queue.clear()
            sample(now)
            for entry in displaced:
                route(entry, now)
            for entry in queued:
                route(entry, now)
            assert injector is not None
            push(now + injector.repair_duration_ms(inst.idx), _P_FAULT,
                 ("recover", inst))

        def on_recover(payload: tuple, now: float) -> None:
            inst: _Inst = payload[1]
            inst.down = False
            inst.downtime_ms += now - inst.down_since
            dispatcher.down_count -= 1
            emit(("recover", now, inst.idx))
            assert injector is not None
            t_fail = injector.next_failure_ms(inst.idx, now)
            if t_fail is not None:
                push(t_fail, _P_FAULT, ("fail", inst))
            if pending:
                parked, pending[:] = list(pending), []
                for entry in parked:
                    route(entry, now)

        # Merged drain: an engine event pops ahead of the next arrival
        # only when strictly earlier, or at the same timestamp with the
        # step priority — the single engine priority below arrivals.
        # Fault events (2) at an arrival's timestamp sort after every
        # arrival at that time, exactly as in the heap.  The profiled
        # variant is a separate loop so the bare path never pays for
        # the timing.
        clock = self.clock
        pop = queue.pop

        def handle(payload: tuple, now: float) -> None:
            kind = payload[0]
            if kind == "step":
                on_step(payload, now)
            elif kind == "fail":
                on_fail(payload, now)
            else:
                on_recover(payload, now)

        if self.profiler is not None:
            record = self.profiler.record
            for req in arrivals:
                ta = req.t_ms
                head = queue.head
                while head is not None and (
                        head[0] < ta
                        or (head[0] == ta and head[1] == _P_STEP)):
                    now, _prio, _seq, payload = pop()
                    clock.now_ms = now
                    t0 = perf_counter()
                    handle(payload, now)
                    record(payload[0], perf_counter() - t0)
                    head = queue.head
                clock.now_ms = ta
                t0 = perf_counter()
                on_arrival(req, ta)
                record("arrival", perf_counter() - t0)
            while queue:
                now, _prio, _seq, payload = pop()
                clock.now_ms = now
                t0 = perf_counter()
                handle(payload, now)
                record(payload[0], perf_counter() - t0)
        else:
            for req in arrivals:
                ta = req.t_ms
                head = queue.head
                while head is not None and (
                        head[0] < ta
                        or (head[0] == ta and head[1] == _P_STEP)):
                    now, _prio, _seq, payload = pop()
                    clock.now_ms = now
                    handle(payload, now)
                    head = queue.head
                clock.now_ms = ta
                on_arrival(req, ta)
            while queue:
                now, _prio, _seq, payload = pop()
                clock.now_ms = now  # monotone by pop order
                handle(payload, now)
        self._finish_observer()

        makespan = max((r.t_complete_ms for r in records), default=0.0)
        records.sort(key=lambda r: r.rid)
        availability: Optional[float] = None
        if failing:
            horizon = max(makespan, self.clock.now_ms)
            availability = (
                1.0 - sum(i.downtime_ms for i in instances)
                / (len(instances) * horizon) if horizon > 0 else 1.0)
        return GenerationSimulationResult(
            records=records,
            instances=[
                GenerationInstanceStats(
                    index=i.idx, requests=i.requests, steps=i.steps,
                    prefills=i.prefills, tokens=i.tokens, busy_ms=i.busy_ms,
                    switch_count=i.switch_count,
                    reprogram_time_ms=i.reprogram_time_ms,
                    preemptions=i.preemptions, failures=i.failures,
                    downtime_ms=i.downtime_ms,
                ) for i in instances
            ],
            n_instances=len(instances),
            slots=self.slots,
            makespan_ms=makespan,
            queue_samples=samples,
            trace=trace,
            scheduler=self.scheduler.name,
            availability=availability,
            total_failures=sum(i.failures for i in instances),
            total_retries=sum(retries.values()),
            total_preemptions=sum(i.preemptions for i in instances),
        )

    # ------------------------------------------------------------------
    def _run_summary(self, requests: Sequence[GenerationRequest]):
        """The ``detail="summary"`` drain: accumulate, don't materialize.

        Same event order, same admission decisions, same floats per
        step as the full path — but no ``GenerationRecord`` objects, no
        trace list, no queue-depth sample list.  TTFT/TPOT/latency
        multisets are collected as sequences finish (percentiles stay
        exact); wait/token sums and the queue-depth integral are folded
        in as events fire.  An attached observer still sees every trace
        tuple (tuples are built only when someone is listening);
        profilers need the full drain and are rejected.
        """
        if self.profiler is not None:
            raise ValueError(
                "KernelProfiler requires detail='full': the summary "
                "drain has no per-event handler boundaries to time")
        self._started = True
        queue = self.queue
        push = queue.push
        note = self.observer
        observing = note is not None
        instances = self.instances
        dispatcher = self.dispatcher
        service = self.service
        prefill_ms = service.prefill_ms
        decode_step_ms = service.decode_step_ms
        priority_mode = (self.preemption if self.preemption is not None
                         else any(r.priority for r in requests))
        failing = self.failures is not None

        # Per-request metric lists (exact multisets for the order
        # statistics) plus the sums the report needs.
        ttfts: List[float] = []
        tpots: List[float] = []
        lats: List[float] = []
        out_list: List[int] = []
        req_tpots: List[float] = []
        wait_sum = 0.0
        total_tokens = 0
        total_done = 0
        makespan = 0.0
        retries_total = 0
        # Queue-depth step integral, same add order as
        # slo._time_weighted_mean over the full sample list.
        area = 0.0
        prev_t = 0.0
        cur_depth = 0
        pending: List[Union[GenerationRequest, _Resume]] = []

        arrivals = sorted(requests, key=_BY_T)

        injector: Optional[FailureInjector] = None
        if failing:
            horizon = (self.failure_horizon_ms
                       if self.failure_horizon_ms is not None
                       else arrivals[-1].t_ms if arrivals else 0.0)
            injector = FailureInjector(self.failures, horizon)
            for inst in instances:
                t_fail = injector.next_failure_ms(inst.idx, 0.0)
                if t_fail is not None:
                    push(t_fail, _P_FAULT, ("fail", inst))

        def sample(now: float) -> None:
            # Same value, same call sites as the full path's sample();
            # folded straight into the integral instead of listed.
            nonlocal area, prev_t, cur_depth
            area += cur_depth * (now - prev_t)
            prev_t = now
            cur_depth = (sum(len(i.queue) + len(i.active)
                             for i in instances) + len(pending))

        def take_next(inst: _Inst, resident: Optional[str]):
            iq = inst.queue
            if not iq:
                return None
            if not priority_mode:
                head = iq[0]
                if resident is not None and head.model != resident:
                    return None
                return iq.popleft()
            best_at = -1
            best_key = None
            for pos, entry in enumerate(iq):
                if resident is not None and entry.model != resident:
                    continue
                key = (-entry.priority, entry.rid)
                if best_key is None or key < best_key:
                    best_at, best_key = pos, key
            if best_at < 0:
                return None
            iq.rotate(-best_at)
            entry = iq.popleft()
            iq.rotate(best_at)
            return entry

        def preempt_for(inst: _Inst, now: float) -> None:
            iq = inst.queue
            while iq and inst.active and len(inst.active) >= inst.slots:
                resident = inst.active[0].req.model
                top = max((e.priority for e in iq if e.model == resident),
                          default=None)
                victim = min(
                    inst.active,
                    key=lambda s: (s.req.priority, s.cached, -s.req.rid))
                if top is None or top <= victim.req.priority:
                    return
                inst.active.remove(victim)
                inst.preemptions += 1
                if observing:
                    note(("preempt", now, inst.idx, victim.req.rid))
                iq.append(_Resume(victim))

        def start_step(inst: _Inst, now: float) -> None:
            if inst.down or inst.busy_until > now + _EPS:
                return
            if priority_mode:
                preempt_for(inst, now)
            admitted: List[Union[GenerationRequest, _Resume]] = []
            resident = inst.active[0].req.model if inst.active else None
            while len(inst.active) + len(admitted) < inst.slots:
                entry = take_next(inst, resident)
                if entry is None:
                    break
                admitted.append(entry)
                if resident is None:
                    resident = entry.model
            if not admitted and not inst.active:
                return
            model = resident
            if inst.resident != model:
                service.config(model)  # validate before residency
                inst.resident = model
                inst.switch_count += 1
                inst.reprogram_time_ms += inst.reprogram_ms
                duration = inst.reprogram_ms
            else:
                duration = 0.0
            inst.last_model = model
            speed = inst.speed

            decoding = list(inst.active)
            for entry in admitted:
                if type(entry) is _Resume:
                    seq = entry.seq
                    duration += prefill_ms(model, seq.cached) / speed
                    inst.active.append(seq)
                    inst.prefills += 1
                    if observing:
                        note(("resume", now, inst.idx, seq.req.rid,
                              seq.cached, seq.remaining))
                else:
                    duration += prefill_ms(model, entry.prompt_tokens) / speed
                    seq = _Seq(entry, t_admit=now, t_first=now + duration)
                    inst.active.append(seq)
                    inst.prefills += 1
                    inst.requests += 1
                    inst.tokens += 1  # the prefill's first token
                    if observing:
                        note(("admit", now, inst.idx, entry.rid,
                              entry.prompt_tokens, entry.output_tokens))
            if decoding:
                duration += decode_step_ms(
                    model, [s.cached + 1 for s in decoding]) / speed
            end = now + duration
            inst.busy_until = end
            inst.busy_ms += duration
            inst.steps += 1
            inst.step_done = [(s, True) for s in decoding]
            inst.tokens += len(decoding)
            if observing:
                note(("step", now, inst.idx, model, len(admitted),
                      len(decoding), duration))
            push(end, _P_STEP, ("step", inst, inst.epoch))
            sample(now)

        def finish_step(inst: _Inst, now: float) -> None:
            nonlocal wait_sum, total_tokens, total_done, makespan
            for seq, decoded in inst.step_done:
                if decoded:
                    seq.cached += 1
                    seq.remaining -= 1
            inst.step_done = []
            still: List[_Seq] = []
            for seq in inst.active:
                if seq.remaining <= 0 and seq.t_first <= now + _EPS:
                    req = seq.req
                    out = req.output_tokens
                    t_first = seq.t_first
                    complete = t_first if out == 1 else now
                    t0 = req.t_ms
                    ttfts.append(t_first - t0)
                    lats.append(complete - t0)
                    wait_sum += seq.t_admit - t0
                    out_list.append(out)
                    if out > 1:
                        tp = (complete - t_first) / (out - 1)
                        tpots.append(tp)
                        req_tpots.append(tp)
                    else:
                        req_tpots.append(0.0)
                    total_tokens += out
                    total_done += 1
                    if complete > makespan:
                        makespan = complete
                    if observing:
                        note(("finish", now, inst.idx, req.rid))
                else:
                    still.append(seq)
            inst.active = still
            sample(now)
            start_step(inst, now)

        def route(entry, now: float) -> None:
            inst = dispatcher.pick(entry, now)
            if inst is None:
                pending.append(entry)
                if observing:
                    note(("requeue", now, entry.rid, -1))
                return
            inst.queue.append(entry)
            if inst.last_model is None:
                inst.last_model = entry.model
            if observing:
                note(("requeue", now, entry.rid, inst.idx))
            start_step(inst, now)

        def on_arrival(req: GenerationRequest, now: float) -> None:
            inst = dispatcher.pick(req, now)
            if inst is None:
                pending.append(req)
                if observing:
                    note(("arrive", now, req.rid, req.model, -1))
                sample(now)
                return
            inst.queue.append(req)
            if inst.last_model is None:
                inst.last_model = req.model
            if observing:
                note(("arrive", now, req.rid, req.model, inst.idx))
            sample(now)
            start_step(inst, now)

        def on_fail(payload: tuple, now: float) -> None:
            nonlocal retries_total
            inst: _Inst = payload[1]
            inst.down = True
            inst.down_since = now
            inst.failures += 1
            dispatcher.down_count += 1
            if observing:
                note(("fail", now, inst.idx))
            displaced: List[Union[GenerationRequest, _Resume]] = []
            aborted_step = inst.busy_until > now + _EPS
            decoding_ids = set()
            if aborted_step:
                inst.busy_ms -= inst.busy_until - now
                inst.busy_until = now
                inst.epoch += 1
                inst.tokens -= sum(
                    1 for _, decoded in inst.step_done if decoded)
                decoding_ids = {id(s) for s, _ in inst.step_done}
            inst.step_done = []
            for seq in inst.active:
                retries_total += 1
                if seq.t_first <= now + _EPS:
                    if aborted_step and id(seq) not in decoding_ids:
                        inst.prefills -= 1
                    displaced.append(_Resume(seq))
                else:
                    inst.requests -= 1
                    inst.tokens -= 1  # the unemitted first token
                    inst.prefills -= 1
                    displaced.append(seq.req)
            inst.active = []
            inst.resident = None  # weights are lost with the instance
            queued = list(inst.queue)
            inst.queue.clear()
            sample(now)
            for entry in displaced:
                route(entry, now)
            for entry in queued:
                route(entry, now)
            assert injector is not None
            push(now + injector.repair_duration_ms(inst.idx), _P_FAULT,
                 ("recover", inst))

        def on_recover(payload: tuple, now: float) -> None:
            inst: _Inst = payload[1]
            inst.down = False
            inst.downtime_ms += now - inst.down_since
            dispatcher.down_count -= 1
            if observing:
                note(("recover", now, inst.idx))
            assert injector is not None
            t_fail = injector.next_failure_ms(inst.idx, now)
            if t_fail is not None:
                push(t_fail, _P_FAULT, ("fail", inst))
            if pending:
                parked, pending[:] = list(pending), []
                for entry in parked:
                    route(entry, now)

        # Same merged drain as the full path (see run()).
        clock = self.clock
        pop = queue.pop

        def handle(payload: tuple, now: float) -> None:
            kind = payload[0]
            if kind == "step":
                inst = payload[1]
                if payload[2] == inst.epoch:
                    finish_step(inst, now)
            elif kind == "fail":
                on_fail(payload, now)
            else:
                on_recover(payload, now)

        for req in arrivals:
            ta = req.t_ms
            head = queue.head
            while head is not None and (
                    head[0] < ta
                    or (head[0] == ta and head[1] == _P_STEP)):
                now, _prio, _seq, payload = pop()
                clock.now_ms = now
                handle(payload, now)
                head = queue.head
            clock.now_ms = ta
            on_arrival(req, ta)
        while queue:
            now, _prio, _seq, payload = pop()
            clock.now_ms = now  # monotone by pop order
            handle(payload, now)
        self._finish_observer()

        from ..serving.generation import GenerationInstanceStats
        from .summary import GenerationSummary

        availability: Optional[float] = None
        if failing:
            horizon = max(makespan, self.clock.now_ms)
            availability = (
                1.0 - sum(i.downtime_ms for i in instances)
                / (len(instances) * horizon) if horizon > 0 else 1.0)
        return GenerationSummary(
            total_requests=total_done,
            total_tokens=total_tokens,
            makespan_ms=makespan,
            n_instances=len(instances),
            slots=self.slots,
            scheduler=self.scheduler.name,
            ttfts=ttfts,
            tpots=tpots,
            lats=lats,
            wait_sum=wait_sum,
            out_tokens=out_list,
            req_tpots=req_tpots,
            instances=[
                GenerationInstanceStats(
                    index=i.idx, requests=i.requests, steps=i.steps,
                    prefills=i.prefills, tokens=i.tokens, busy_ms=i.busy_ms,
                    switch_count=i.switch_count,
                    reprogram_time_ms=i.reprogram_time_ms,
                    preemptions=i.preemptions, failures=i.failures,
                    downtime_ms=i.downtime_ms,
                ) for i in instances
            ],
            depth_area=area,
            depth_last_t=prev_t,
            depth_last=cur_depth,
            availability=availability,
            total_failures=sum(i.failures for i in instances),
            total_retries=retries_total,
            total_preemptions=sum(i.preemptions for i in instances),
        )
