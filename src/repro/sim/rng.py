"""Named, independent RNG streams derived from one root seed.

Every stochastic component of a simulation (failure injection per
instance, priority assignment, future jitter models) draws from its own
``random.Random`` stream, derived deterministically from ``(root seed,
stream name)``.  Two properties follow:

* **Reproducibility** — the same root seed replays every stream
  identically, so whole-simulation traces are a pure function of their
  inputs.
* **Isolation** — adding a new consumer (or reordering draws inside
  one component) cannot perturb any other component's sequence, which
  is what keeps golden traces stable as scenarios grow.

Derivation uses ``random.Random(f"{seed}/{name}")``: CPython seeds
string inputs through SHA-512, which is stable across processes,
platforms, and Python versions (unlike ``hash()``, which is salted).
"""

from __future__ import annotations

import random
from typing import Dict, Union

__all__ = ["RngStreams"]


class RngStreams:
    """A lazy registry of named ``random.Random`` streams."""

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: Union[int, str] = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use, then cached).

        Call sites should use one stream per component instance — e.g.
        ``streams.stream(f"failure/{idx}")`` — so per-component draw
        counts stay independent.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(f"{self.seed}/{name}")
            self._streams[name] = rng
        return rng

    def derive(self, name: str) -> "RngStreams":
        """A child namespace rooted at ``(seed, name)``.

        The child's streams hash through the same SHA-512 string path —
        ``derive("cell/4").stream("x")`` seeds from ``"0/cell/4/x"`` —
        so a derived namespace is exactly as stable and isolated as a
        top-level one.  Sharded simulations derive one namespace per
        cell, keyed by the cell's first *global* instance index: the
        key depends only on which instances the cell holds, never on
        how many sibling cells exist, so re-partitioning a fleet
        renumbers nothing.
        """
        return RngStreams(f"{self.seed}/{name}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RngStreams(seed={self.seed}, "
                f"streams={sorted(self._streams)})")
