"""Sharded simulation: a partitioned fleet runs as independent cells.

A single event loop over a large fleet is serial by construction — the
calendar queue pops one event at a time no matter how many instances
exist.  Sharding breaks the fleet into *cells* that share nothing: each
cell owns a contiguous slice of the :class:`~repro.sim.fleet.FleetSpec`,
a deterministic stripe of the request stream, and an independent
SHA-512-derived :class:`~repro.sim.rng.RngStreams` namespace, so cells
can run in separate processes (reusing the DSE layer's
:class:`~repro.dse.pool.PersistentPool`) and their summary reports
merge exactly:

* latency/TTFT/TPOT **multisets** concatenate, so every percentile of
  the merged report is the true order statistic over all cells;
* sums (waits, tokens, batch sizes) add; makespan is the max;
* the queue-depth step integrals add — the integral of a sum of step
  functions is the sum of the integrals — after closing every cell at
  the common last change point, so ``mean_queue_depth`` is exact;
* instance stats concatenate already carrying *global* indices: each
  cell's engine is constructed with ``instance_base`` set to its first
  global instance index, which re-bases every observer/trace row,
  record, and stat the cell emits.

Determinism contract
--------------------
Cell identity is the **global index of its first instance**, never the
cell's ordinal position.  Both derived quantities follow from it:

* the per-cell RNG namespace is ``RngStreams(seed).derive(f"cell/{lo}")``,
* failure streams are ``failure/<global idx>`` because ``instance_base``
  offsets ``_Inst.idx``,

so re-partitioning a fleet (2 shards → 4 shards) renumbers nothing:
every instance keeps its exact fault history, and no cell can ever draw
from a sibling's stream (the key sets are disjoint by construction).
The failure horizon is the *global* last arrival, passed to every cell,
so injection stops at the same simulated time it would unsharded.

Scope: ``shards=1`` never reaches this module (the façades short-
circuit to the ordinary engine — byte-identical by construction, the
golden acceptance property).  ``shards>1`` is summary-detail only:
per-request records across processes would re-create the object churn
the summary path exists to avoid.  Observers are supported on the
in-process serial path (``jobs=None``/``1``) — each cell replays its
own timeline into the observer with globally-indexed rows — but cannot
cross process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .fleet import FleetSpec
from .rng import RngStreams
from .summary import GenerationSummary, ServeSummary

__all__ = ["ShardPlan", "run_sharded", "merge_serve_summaries",
           "merge_generation_summaries"]


@dataclass(frozen=True)
class ShardPlan:
    """How one fleet and its workload split into independent cells."""

    shards: int
    #: Per-cell ``[lo, hi)`` global instance index ranges (contiguous,
    #: ascending, covering ``range(fleet.n)`` exactly).
    bounds: Tuple[Tuple[int, int], ...]

    @classmethod
    def partition(cls, fleet: FleetSpec, shards: int) -> "ShardPlan":
        """Split ``fleet`` into ``shards`` contiguous, near-even cells.

        Cell ``c`` takes indices ``[c*n//shards, (c+1)*n//shards)`` —
        sizes differ by at most one, earlier cells take the extras.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        n = fleet.n
        if shards > n:
            raise ValueError(
                f"cannot shard {n} instance(s) into {shards} cells — "
                "every cell needs at least one instance")
        bounds = tuple((c * n // shards, (c + 1) * n // shards)
                       for c in range(shards))
        return cls(shards=shards, bounds=bounds)

    def cell_fleets(self, fleet: FleetSpec) -> List[FleetSpec]:
        """The per-cell sub-fleets, in cell order."""
        return [FleetSpec(fleet.specs[lo:hi]) for lo, hi in self.bounds]

    def split_requests(self, requests: Sequence) -> List[list]:
        """Stripe the stream round-robin by input position.

        Input order is the engines' same-timestamp tie-break, so the
        stripe is a pure function of the workload — no hashing, no RNG
        — and balances cells to within one request.
        """
        cells: List[list] = [[] for _ in range(self.shards)]
        for i, req in enumerate(requests):
            cells[i % self.shards].append(req)
        return cells

    def cell_streams(self, seed=0) -> List[RngStreams]:
        """One derived RNG namespace per cell, keyed by the cell's
        first global instance index (stable under re-partitioning)."""
        root = RngStreams(seed)
        return [root.derive(f"cell/{lo}") for lo, _hi in self.bounds]


# ----------------------------------------------------------------------
# Summary merging
# ----------------------------------------------------------------------

def _merge_depth(cells: Sequence) -> Tuple[float, float, int]:
    """Merge per-cell queue-depth step integrals.

    Close every cell's integral at the common last change point first
    (its depth holds constant past its own last event), then add — the
    merged triple closes against any horizon exactly like a single
    run's would.
    """
    last_t = max(c.depth_last_t for c in cells)
    area = 0.0
    last = 0
    for c in cells:
        area += c.depth_area + c.depth_last * (last_t - c.depth_last_t)
        last += c.depth_last
    return area, last_t, last


def _merged_availability(cells: Sequence, n_instances: int,
                         makespan_ms: float) -> Optional[float]:
    """Fleet availability over the merged horizon.

    Recomputed from per-instance downtime rather than averaging cell
    availabilities: cells close their horizons at different times, so
    only the raw downtimes merge exactly.
    """
    if all(c.availability is None for c in cells):
        return None
    downtime = sum(i.downtime_ms for c in cells for i in c.instances)
    horizon = max(makespan_ms, 1e-9)
    return 1.0 - downtime / (n_instances * horizon)


def merge_serve_summaries(cells: Sequence[ServeSummary]) -> ServeSummary:
    """Combine per-cell serve summaries into one fleet-wide summary."""
    if not cells:
        raise ValueError("nothing to merge: no cell summaries")
    head = cells[0]
    model_lats: Dict[str, List[float]] = {}
    model_wait: Dict[str, float] = {}
    model_bsq: Dict[str, int] = {}
    for c in cells:
        for m, lats in c.model_lats.items():
            model_lats.setdefault(m, []).extend(lats)
        for m, v in c.model_wait_sum.items():
            model_wait[m] = model_wait.get(m, 0.0) + v
        for m, v in c.model_batch_sq.items():
            model_bsq[m] = model_bsq.get(m, 0) + v
    area, last_t, last = _merge_depth(cells)
    makespan = max(c.makespan_ms for c in cells)
    n_instances = sum(c.n_instances for c in cells)
    failing = any(c.availability is not None for c in cells)
    touched: Optional[List[float]] = None
    if failing:
        touched = []
        for c in cells:
            touched.extend(c.touched_lats or ())
    return ServeSummary(
        total_requests=sum(c.total_requests for c in cells),
        makespan_ms=makespan,
        n_instances=n_instances,
        scheduler=head.scheduler,
        batching=head.batching,
        model_lats=model_lats,
        model_wait_sum=model_wait,
        model_batch_sq=model_bsq,
        instances=sorted((i for c in cells for i in c.instances),
                         key=lambda s: s.index),
        depth_area=area,
        depth_last_t=last_t,
        depth_last=last,
        # Cells never observe each other, so this is the deepest any
        # single cell got — a lower bound on the coincident fleet-wide
        # maximum (the mean, by contrast, merges exactly).
        max_queue_depth=max(c.max_queue_depth for c in cells),
        availability=_merged_availability(cells, n_instances, makespan),
        total_failures=sum(c.total_failures for c in cells),
        total_retries=sum(c.total_retries for c in cells),
        degraded_count=(sum(c.degraded_count or 0 for c in cells)
                        if failing else None),
        touched_lats=touched,
    )


def merge_generation_summaries(
        cells: Sequence[GenerationSummary]) -> GenerationSummary:
    """Combine per-cell generation summaries into one fleet summary."""
    if not cells:
        raise ValueError("nothing to merge: no cell summaries")
    head = cells[0]
    out = GenerationSummary(
        total_requests=sum(c.total_requests for c in cells),
        total_tokens=sum(c.total_tokens for c in cells),
        makespan_ms=max(c.makespan_ms for c in cells),
        n_instances=sum(c.n_instances for c in cells),
        slots=head.slots,
        scheduler=head.scheduler,
        total_failures=sum(c.total_failures for c in cells),
        total_retries=sum(c.total_retries for c in cells),
        total_preemptions=sum(c.total_preemptions for c in cells),
    )
    for c in cells:
        out.ttfts.extend(c.ttfts)
        out.tpots.extend(c.tpots)
        out.lats.extend(c.lats)
        out.out_tokens.extend(c.out_tokens)
        out.req_tpots.extend(c.req_tpots)
        out.wait_sum += c.wait_sum
    out.instances = sorted((i for c in cells for i in c.instances),
                           key=lambda s: s.index)
    out.depth_area, out.depth_last_t, out.depth_last = _merge_depth(cells)
    out.availability = _merged_availability(
        cells, out.n_instances, out.makespan_ms)
    return out


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def _evaluate_cell(point: Dict[str, Any],
                   settings: Dict[str, Any]) -> Dict[str, Any]:
    """PersistentPool evaluator: run one cell, return its summary.

    Module-level and driven entirely by ``(point, settings)`` so the
    pool can ship it to a forked worker once; the serial path calls it
    directly with the same arguments.
    """
    sim = settings["sim"]
    plan: ShardPlan = settings["plan"]
    cell = point["cell"]
    lo, _hi = plan.bounds[cell]
    summary = sim._shard_cell(
        fleet=settings["fleets"][cell],
        instance_base=lo,
        requests=point["requests"],
        failure_horizon_ms=settings["horizon"],
        rng_seed=settings["rng_seeds"][cell],
        observer=point.get("observer"),
    )
    return {"summary": summary}


def run_sharded(sim, requests: Sequence, *, mode: str, shards: int,
                jobs: Optional[int] = None, seed=0, observer=None):
    """Partition, run every cell, and merge the summaries.

    ``sim`` is a serving façade exposing ``_shard_cell`` (either
    :class:`~repro.serving.cluster.ClusterSimulator` or
    :class:`~repro.serving.generation.GenerationClusterSimulator`) —
    the façade, not this module, knows how to build a cell engine.
    ``jobs >= 2`` forks a :class:`~repro.dse.pool.PersistentPool` and
    runs cells in worker processes; anything else runs them serially
    in-process (observers are only legal there).
    """
    if mode not in ("serve", "generate"):
        raise ValueError(f"unknown shard mode {mode!r}")
    plan = ShardPlan.partition(sim.fleet, shards)
    cell_requests = plan.split_requests(requests)
    settings = {
        "sim": sim,
        "plan": plan,
        "fleets": plan.cell_fleets(sim.fleet),
        # Global last arrival: every cell stops injecting failures at
        # the same simulated time the unsharded run would.
        "horizon": max((r.t_ms for r in requests), default=0.0),
        "rng_seeds": [s.seed for s in plan.cell_streams(seed)],
    }
    parallel = jobs is not None and jobs >= 2
    if observer is not None and parallel:
        raise ValueError(
            "observers cannot cross shard processes — run with "
            "shard_jobs=None (serial cells) to observe a sharded run")
    points = [{"cell": c, "requests": cell_requests[c]}
              for c in range(shards)]
    if parallel:
        from ..dse.pool import PersistentPool

        with PersistentPool(_evaluate_cell, settings,
                            jobs=min(jobs, shards),
                            continue_on_error=False) as pool:
            batches = pool.map_batches([[p] for p in points])
        summaries = []
        for label, results in batches:
            metrics, error, _wall = results[0]
            if error:  # pragma: no cover - worker death is not scripted
                raise RuntimeError(f"shard cell failed in {label}: {error}")
            summaries.append(metrics["summary"])
    else:
        if observer is not None:
            for p in points:
                p["observer"] = observer
        summaries = [_evaluate_cell(p, settings)["summary"]
                     for p in points]
    merge = (merge_serve_summaries if mode == "serve"
             else merge_generation_summaries)
    return merge(summaries)
