"""The event-driven simulation kernel every simulator runs on.

Before this module existed, :mod:`repro.serving.cluster` and
:mod:`repro.serving.generation` each hand-rolled their own heap loop,
so every new scenario (failures, heterogeneity, preemption) had to be
implemented twice and proven deterministic twice.  The kernel factors
the shared mechanics into one place:

* :class:`EventQueue` — a binary heap of ``(t_ms, priority, seq,
  payload)`` tuples.  Ties at equal timestamps break on ``(priority,
  insertion sequence)``, so a run is a *pure function* of its inputs —
  the property behind the trace-identity golden tests.  Production
  runs actually use :class:`repro.sim.calendar.CalendarQueue`, a
  bucketed queue with the identical pop order (property-tested); the
  heap remains the reference implementation and oracle.
* :class:`SimClock` — monotone simulated time in milliseconds.
* :class:`Simulation` — the driver: pops events in deterministic order
  and dispatches them to handlers registered per event kind.  Entities
  are plain mutable objects carried by reference inside payloads — no
  registry, no base class.

Determinism contract
--------------------
The kernel never reads wall-clock time or global RNG state.  All
randomness flows through :class:`~repro.sim.rng.RngStreams`, which
derives one independent ``random.Random`` per named component from the
root seed — adding a new consumer (e.g. failure injection) cannot
perturb the draws of an existing one.  Two runs with equal inputs
therefore produce byte-identical traces, records, and reports.

Observability hooks
-------------------
:meth:`Simulation.attach_observer` registers a read-only callable (for
example :class:`repro.obs.TraceRecorder` or
:class:`repro.obs.MetricsSampler`) that receives every trace tuple as
it is emitted; :meth:`Simulation.attach_profiler` registers a
:class:`repro.obs.KernelProfiler` that attributes wall time per event
kind.  Both are strictly optional: when nothing is attached the engines
run the exact pre-hook fast path, and because observers only *read*
event tuples, an instrumented run stays byte-identical to a bare one.
Hooks must be attached before the run starts — attaching mid-run would
make the observed stream a lie, so it raises ``RuntimeError``.
"""

from __future__ import annotations

import heapq
from itertools import count
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from .calendar import CalendarQueue
from .rng import RngStreams

__all__ = ["Event", "EventQueue", "SimClock", "Simulation"]

#: One scheduled event: ``(t_ms, priority, seq, payload)``.  ``payload``
#: is a tuple whose first element names the event kind.
Event = Tuple[float, int, int, tuple]


class EventQueue:
    """Deterministic binary-heap event queue.

    Events at equal ``t_ms`` pop in ``(priority, seq)`` order; ``seq``
    comes from the shared insertion ``counter``, so two pushes at the
    same time and priority pop in push order.  That total order is what
    makes replays of a seeded scenario bit-identical.

    Hot-path contract: ``counter`` is public precisely so
    performance-critical engines may build event tuples ``(t, prio,
    next(queue.counter), payload)`` themselves — the tuple layout and
    the shared counter ARE the kernel's determinism guarantee,
    whichever path pushes.  :class:`~repro.sim.calendar.CalendarQueue`
    honours the same contract and adds a ``head`` attribute for O(1)
    peeks; engines that merge an external sorted stream against the
    queue rely on it.
    """

    __slots__ = ("heap", "counter")

    def __init__(self) -> None:
        self.heap: List[Event] = []
        self.counter = count()

    def push(self, t_ms: float, priority: int, payload: tuple) -> None:
        """Schedule ``payload`` at ``t_ms`` (stable within a priority)."""
        heapq.heappush(self.heap, (t_ms, priority, next(self.counter),
                                   payload))

    def pop(self) -> Event:
        """Remove and return the next event in deterministic order."""
        return heapq.heappop(self.heap)

    def peek_ms(self) -> Optional[float]:
        """Timestamp of the next event (``None`` when empty)."""
        return self.heap[0][0] if self.heap else None

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)


class SimClock:
    """Monotone simulated time in milliseconds."""

    __slots__ = ("now_ms",)

    def __init__(self) -> None:
        self.now_ms = 0.0

    def advance(self, t_ms: float) -> float:
        """Move time forward (the kernel never rewinds the clock)."""
        if t_ms < self.now_ms:
            raise ValueError(
                f"clock cannot rewind: {t_ms} < {self.now_ms}")
        self.now_ms = t_ms
        return t_ms


class Simulation:
    """Deterministic event loop over a kernel event queue.

    Subclasses register one handler per event kind (the first element
    of every payload tuple) and call :meth:`run_events`.  The loop is
    deliberately minimal — pop, advance the clock, dispatch — because
    the hot simulators bind their own bookkeeping around it; what they
    share is the queue discipline, the clock, the trace buffer, and the
    per-component RNG streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self.queue = CalendarQueue()
        self.clock = SimClock()
        self.rng = RngStreams(seed)
        #: Flat event log ``(kind, t_ms, ...)`` — the replayable trace.
        self.trace: List[tuple] = []
        self._handlers: Dict[str, Callable[[tuple, float], None]] = {}
        #: Optional read-only consumer of every emitted trace tuple.
        self.observer: Optional[Callable[[tuple], None]] = None
        #: Optional per-event-kind wall-time profiler.
        self.profiler = None
        self._started = False

    def on(self, kind: str,
           handler: Callable[[tuple, float], None]) -> None:
        """Register ``handler`` for payloads whose head is ``kind``."""
        self._handlers[kind] = handler

    def attach_observer(self, observer: Callable[[tuple], None]) -> None:
        """Attach a trace-tuple consumer (before the run starts).

        The observer is called with every tuple the engine emits — the
        ones appended to :attr:`trace` plus observer-only bookkeeping
        events such as ``("requeue", ...)`` — and, if it defines a
        ``finish(t_ms)`` method, that is called once the run drains.
        Attaching after the run has started raises ``RuntimeError``:
        the stream would be missing its prefix.
        """
        if self._started:
            raise RuntimeError(
                "cannot attach an observer mid-run: the event stream "
                "already started; attach before run()")
        self.observer = (observer if self.observer is None
                         else _compose2(self.observer, observer))

    def attach_profiler(self, profiler) -> None:
        """Attach a kernel hotspot profiler (before the run starts).

        ``profiler.record(kind, elapsed_s)`` is called for every
        dispatched event with the handler's wall time.  Mid-run
        attachment raises ``RuntimeError`` like observers do.
        """
        if self._started:
            raise RuntimeError(
                "cannot attach a profiler mid-run: events were already "
                "dispatched unprofiled; attach before run()")
        self.profiler = profiler

    def _finish_observer(self) -> None:
        """Flush an attached observer once simulated time stops."""
        if self.observer is not None:
            fin = getattr(self.observer, "finish", None)
            if fin is not None:
                fin(self.clock.now_ms)

    def schedule(self, t_ms: float, priority: int, payload: tuple) -> None:
        self.queue.push(t_ms, priority, payload)

    def run_events(self) -> None:
        """Drain the queue, dispatching each event to its handler."""
        self._started = True
        queue = self.queue
        pop = queue.pop
        clock = self.clock
        handlers = self._handlers
        if self.profiler is not None:
            record = self.profiler.record
            while queue:
                now, _prio, _seq, payload = pop()
                clock.now_ms = now
                t0 = perf_counter()
                handlers[payload[0]](payload, now)
                record(payload[0], perf_counter() - t0)
            self._finish_observer()
            return
        while queue:
            now, _prio, _seq, payload = pop()
            clock.now_ms = now  # monotone by pop order; skip the check
            handlers[payload[0]](payload, now)
        self._finish_observer()


def _compose2(first: Callable[[tuple], None],
              second: Callable[[tuple], None]) -> Callable[[tuple], None]:
    """Chain two observers (kept local to avoid importing repro.obs)."""
    def both(event: tuple) -> None:
        first(event)
        second(event)

    def finish(t_ms: float) -> None:
        for part in (first, second):
            fin = getattr(part, "finish", None)
            if fin is not None:
                fin(t_ms)

    both.finish = finish
    return both
