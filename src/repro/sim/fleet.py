"""Heterogeneous fleet descriptions and capability-aware dispatch.

A :class:`FleetSpec` is an ordered list of :class:`InstanceSpec`, one
per instance.  The homogeneous case (every instance identical, full
speed, serves everything) is the degenerate spec the legacy loops
already modeled; heterogeneity adds, per instance:

* ``speed``       — a service-rate multiplier (0.5 = half-speed device:
  every batch/step takes twice as long);
* ``models``      — an optional capability set: the dispatcher only
  routes a request to instances that can serve its model;
* ``reprogram_latency_ms`` — a per-instance workload-switch penalty
  overriding the cluster-wide default (faster or slower flash);
* ``slots``       — per-instance in-flight sequence capacity
  (generation mode only);
* ``target``      — an optional accelerator-like object (e.g. a
  :class:`~repro.parallel.group.PipelineGroup`) this instance prices
  service times through, letting one fleet mix single-FPGA replicas
  with multi-FPGA pipeline groups.

CLI grammar (``--heterogeneous``): comma-separated entries of
``SPEED[/SLOTS][xCOUNT][@MODEL[+MODEL..]]`` — e.g.
``1.0x2,0.5/16@model2-lhc-trigger`` is two full-speed generalists plus
one half-speed, 16-slot instance pinned to one model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["InstanceSpec", "FleetSpec", "Dispatcher"]


@dataclass(frozen=True)
class InstanceSpec:
    """Static description of one instance in a (possibly mixed) fleet."""

    #: Service-rate multiplier; service times divide by this.
    speed: float = 1.0
    #: Capability set: model names this instance may serve (None = all).
    models: Optional[Tuple[str, ...]] = None
    #: Workload-switch penalty override (None = cluster default).
    reprogram_latency_ms: Optional[float] = None
    #: In-flight sequence capacity override (generation mode only).
    slots: Optional[int] = None
    #: Accelerator-like object pricing this instance's service times
    #: (None = the cluster's shared accelerator).
    target: Optional[object] = None

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("instance speed must be positive")
        if self.models is not None and not self.models:
            raise ValueError(
                "capability set must name at least one model "
                "(use None for an unrestricted instance)")
        if (self.reprogram_latency_ms is not None
                and self.reprogram_latency_ms < 0):
            raise ValueError("reprogram_latency_ms must be >= 0")
        if self.slots is not None and self.slots < 1:
            raise ValueError("slots must be >= 1")

    def can_serve(self, model: str) -> bool:
        return self.models is None or model in self.models


@dataclass(frozen=True)
class FleetSpec:
    """An ordered, immutable description of every instance."""

    specs: Tuple[InstanceSpec, ...]

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("fleet must contain at least one instance")

    @property
    def n(self) -> int:
        return len(self.specs)

    @property
    def homogeneous(self) -> bool:
        """True when every instance is the all-default spec — the case
        that must stay bit-identical to the legacy loops."""
        return all(s == InstanceSpec() for s in self.specs)

    @classmethod
    def uniform(cls, n: int, spec: Optional[InstanceSpec] = None
                ) -> "FleetSpec":
        if n < 1:
            raise ValueError("need at least one instance")
        return cls(tuple([spec or InstanceSpec()] * n))

    @classmethod
    def parse(cls, text: str) -> "FleetSpec":
        """Parse the ``--heterogeneous`` CLI grammar (see module doc)."""
        specs: List[InstanceSpec] = []
        for raw in text.split(","):
            entry = raw.strip()
            if not entry:
                continue
            body, _, caps = entry.partition("@")
            models = tuple(m for m in caps.split("+") if m) if caps else None
            body, _, count_s = body.partition("x")
            speed_s, slots_sep, slots_s = body.partition("/")
            try:
                if slots_sep and not slots_s:
                    raise ValueError("empty slots")
                speed = float(speed_s)
                slots = int(slots_s) if slots_s else None
                count = int(count_s) if count_s else 1
            except ValueError:
                raise ValueError(
                    f"invalid fleet entry {entry!r} (expected "
                    "SPEED[/SLOTS][xCOUNT][@MODEL[+MODEL..]])") from None
            if count < 1:
                raise ValueError(f"fleet entry {entry!r}: count must be >= 1")
            spec = InstanceSpec(speed=speed, models=models, slots=slots)
            specs.extend([spec] * count)
        if not specs:
            raise ValueError(f"fleet spec {text!r} describes no instances")
        return cls(tuple(specs))

    def describe(self) -> str:
        """Compact one-line rendering (reports, error messages)."""
        parts = []
        for s in self.specs:
            bit = f"{s.speed:g}"
            if s.slots is not None:
                bit += f"/{s.slots}"
            if s.models is not None:
                bit += "@" + "+".join(s.models)
            parts.append(bit)
        return ",".join(parts)


class Dispatcher:
    """Routes an arriving request to an instance.

    Wraps a :class:`~repro.serving.scheduler.Scheduler` with the two
    concerns the scenario layer adds on top of plain policies:

    * **capability filtering** — only instances whose spec can serve
      the request's model are candidates (cached per model name);
    * **health filtering** — instances currently down are skipped;
      when *no* capable instance is up, :meth:`pick` returns ``None``
      and the engine parks the request in its pending buffer.

    Subclasses implement :meth:`_pick_fast` with an engine-specific
    inlined backlog computation for the built-in policies; anything
    else falls back to ``scheduler.pick`` (same Protocol the legacy
    loops used, so custom schedulers keep working).
    """

    def __init__(self, scheduler, instances: Sequence) -> None:
        self.scheduler = scheduler
        self.instances = list(instances)
        self.down_count = 0
        #: True when any instance carries a capability set.
        self.restricted = any(
            inst.spec.models is not None for inst in self.instances)
        self._eligible_cache = {}

    def eligible(self, model: str) -> List:
        """Instances whose capability set admits ``model`` (cached)."""
        if not self.restricted:
            return self.instances
        cached = self._eligible_cache.get(model)
        if cached is None:
            cached = [i for i in self.instances if i.spec.can_serve(model)]
            if not cached:
                raise ValueError(
                    f"no instance in the fleet can serve model {model!r}")
            self._eligible_cache[model] = cached
        return cached

    def pick(self, request, now_ms: float):
        """The chosen instance, or ``None`` if every candidate is down."""
        candidates = self.eligible(request.model)
        if self.down_count:
            candidates = [i for i in candidates if not i.down]
            if not candidates:
                return None
        return self._pick_fast(candidates, request, now_ms)

    def _pick_fast(self, candidates, request, now_ms: float):
        return self.scheduler.pick(candidates, request, now_ms)
