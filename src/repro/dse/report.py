"""Paper-style text rendering of exploration results."""

from __future__ import annotations

from typing import List, Sequence

from ..analysis.tables import render_table
from .engine import EvalResult, ExplorationResult

__all__ = ["render_exploration"]


def _fmt(value) -> object:
    if isinstance(value, float):
        return round(value, 3)
    return value


def _rows(results: Sequence[EvalResult], names: Sequence[str],
          objective_names: Sequence[str], frontier_ids: set) -> List[tuple]:
    rows = []
    for r in results:
        mark = "*" if id(r) in frontier_ids else ""
        if r.ok:
            scores = [_fmt(r.objectives[n]) for n in objective_names]
        else:
            scores = ["-"] * len(objective_names)
        rows.append(tuple([mark] + [r.point.get(n, "") for n in names]
                          + scores + [r.error[:40]]))
    return rows


def render_exploration(result: ExplorationResult,
                       pareto_only: bool = False,
                       title: str = "Design-space exploration") -> str:
    """Text table of the run: axes, objectives, frontier markers.

    ``pareto_only`` restricts the rows to the frontier (every frontier
    point is an ok result, so the error column is dropped).
    """
    axis_names = sorted({k for r in result.results for k in r.point})
    objective_names = [o.name for o in result.objectives]
    frontier_ids = {id(r) for r in result.frontier}
    shown = result.frontier if pareto_only else result.results
    headers = ["*"] + axis_names + objective_names + ["error"]
    table = render_table(headers,
                         _rows(shown, axis_names, objective_names,
                               frontier_ids),
                         title=title)
    n_errors = sum(1 for r in result.results if not r.ok)
    lines = [
        table,
        f"strategy: {result.strategy}, jobs: {result.jobs}, "
        f"evaluated: {result.n_evaluated} fresh "
        f"(+{result.cache_hits} cached), "
        f"errors: {n_errors}, elapsed: {result.elapsed_s:.2f} s",
        "frontier (*): {} of {} feasible point(s) over [{}]".format(
            len(result.frontier),
            sum(1 for r in result.results if r.ok),
            ", ".join(f"{o.name} {o.goal}" for o in result.objectives)),
    ]
    if result.prescreen is not None:
        p = result.prescreen
        lines.append(
            f"prescreen: {p['forwarded']} of {p['proposed']} proposed "
            f"point(s) forwarded ({p['screened_out']} screened out, "
            f"{p['surrogate_errors']} surrogate error(s); "
            f"keep={p['keep']}, min_keep={p['min_keep']}, "
            f"inner={p['inner']})")
    if result.profile is not None:
        from ..obs.profile import render_dse_profile

        lines.append("")
        lines.append(render_dse_profile(result.profile))
    return "\n".join(lines)
