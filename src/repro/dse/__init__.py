"""Design-space exploration: which deployment point is best for you?

ProTEA's headline property is *programmability* — one synthesized
design serves many transformer configurations — which turns deployment
into a search problem: over synthesis-time tile counts, datapath
quantization, model choice, multi-FPGA partitioning degree, and serving
fleet shape, which point best trades latency against throughput, tail
latency, power, and area?  This package automates that search on top of
the existing analytic stack:

* :mod:`.space` — declarative search spaces (:class:`Axis`,
  :class:`SearchSpace`) with grids, seeded sampling, and mutation;
* :mod:`.strategies` — grid / seeded-random / evolutionary proposal
  loops behind one ask/tell interface, plus the
  :class:`PrescreenStrategy` wrapper that scores candidates with a
  closed-form surrogate and forwards only the survivors;
* :mod:`.engine` — :func:`explore`: the driver, with a
  :class:`~repro.dse.pool.PersistentPool` of evaluation workers
  (forked once per exploration, fed compact point batches) and an
  optional content-keyed on-disk :class:`EvalCache` so repeated or
  resumed sweeps skip already-scored points;
* :mod:`.surrogate` — the closed-form prescreen scorer
  (:func:`surrogate_point`): analytic latency/throughput/power plus an
  Erlang-C tail estimate, no simulation;
* :mod:`.objectives` — the standard ProTEA evaluator
  (:func:`evaluate_point`) scoring latency, steady-state throughput,
  p99 under a seeded workload, power, and utilization;
* :mod:`.pareto` — multi-objective domination and Pareto-frontier
  extraction;
* :mod:`.report` — paper-style text rendering.

Quickstart::

    from repro.dse import (EvalCache, evaluate_point, explore,
                           get_objectives, standard_space)

    space = standard_space(tiles_mha=(6, 12, 48), tiles_ffn=(2, 6))
    result = explore(space, evaluate_point,
                     objectives=get_objectives(), jobs=4,
                     cache=EvalCache(".dse_cache"))
    for point in result.frontier:
        print(point.point, point.objectives)

The CLI equivalent: ``python -m repro dse --jobs 4 --resume --json``.
"""

from .cache import EvalCache
from .engine import EvalResult, ExplorationResult, explore
from .objectives import (
    DEFAULT_OBJECTIVE_NAMES,
    DEFAULT_SETTINGS,
    OBJECTIVES,
    evaluate_point,
    get_objectives,
    standard_space,
)
from .pareto import Objective, dominates, non_dominated_sort, pareto_front
from .pool import PersistentPool
from .report import render_exploration
from .space import Axis, SearchSpace, point_id
from .strategies import (
    STRATEGIES,
    EvolutionaryStrategy,
    GridStrategy,
    PrescreenStrategy,
    RandomStrategy,
    Strategy,
    get_strategy,
)
from .surrogate import SURROGATE_OBJECTIVE_NAMES, erlang_c, surrogate_point

__all__ = [
    # space
    "Axis", "SearchSpace", "point_id",
    # pareto
    "Objective", "dominates", "pareto_front", "non_dominated_sort",
    # cache
    "EvalCache",
    # strategies
    "Strategy", "GridStrategy", "RandomStrategy", "EvolutionaryStrategy",
    "PrescreenStrategy", "STRATEGIES", "get_strategy",
    # surrogate
    "SURROGATE_OBJECTIVE_NAMES", "erlang_c", "surrogate_point",
    # engine / pool
    "explore", "EvalResult", "ExplorationResult", "PersistentPool",
    # objectives
    "OBJECTIVES", "DEFAULT_OBJECTIVE_NAMES", "DEFAULT_SETTINGS",
    "get_objectives", "standard_space", "evaluate_point",
    # report
    "render_exploration",
]
