"""Content-keyed on-disk evaluation cache.

A cache entry is one evaluated design point: the key is the SHA-256 of
the canonical JSON of ``(schema version, package version, point,
evaluation settings)``, so a repeated or resumed sweep recognizes
already-scored points by *content* — not by run order, strategy, or
process identity — and any change to the evaluation settings (workload,
link, seed, …) or to the package release (whose models produce the
scores) silently keys a fresh namespace instead of serving stale
numbers.

Entries live one-file-per-key under the cache directory and are written
atomically (temp file + rename), so a killed sweep never leaves a
half-written record; unreadable entries degrade to misses.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

__all__ = ["EvalCache"]

#: Bump when the evaluation record layout changes incompatibly: old
#: entries then miss instead of deserializing into the wrong shape.
CACHE_SCHEMA_VERSION = 1


class EvalCache:
    """Directory-backed map from design-point content to its record."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key_for(point: Mapping[str, Any],
                settings: Optional[Mapping[str, Any]] = None) -> str:
        """Content key of one (point, evaluation settings) pair.

        The package version is part of the key: the evaluators score
        points through the analytic models, so a release that changes
        any model must miss rather than serve stale numbers.
        """
        from .. import __version__

        blob = json.dumps(
            {"version": CACHE_SCHEMA_VERSION,
             "repro": __version__,
             "point": dict(point),
             "settings": dict(settings or {})},
            sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()

    def _entry(self, key: str) -> Path:
        return self.path / f"{key}.json"

    def index(self) -> set:
        """Every key currently on disk, from one directory scan.

        The engine's single-writer discipline rides on this: the
        parent process loads the index once per sweep, answers "is
        this point cached?" from memory (a miss then costs zero disk
        I/O, where :meth:`get` pays a failed read per probe), and adds
        each key it writes.  Workers never see the cache at all — they
        only receive points the parent already knows are uncached.
        Probes answered from the index do not move the :attr:`stats`
        counters; the engine reports its own hit/miss split.
        """
        return {entry.stem for entry in self.path.glob("*.json")}

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record, or ``None`` (corrupt entries are misses)."""
        entry = self._entry(key)
        try:
            record = json.loads(entry.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(record, dict):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Atomically persist one record (must be JSON-serializable)."""
        entry = self._entry(key)
        tmp = entry.with_suffix(".tmp")
        tmp.write_text(json.dumps(dict(record), sort_keys=True))
        os.replace(tmp, entry)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for entry in self.path.glob("*.json"):
            entry.unlink()
            n += 1
        return n

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self)}
