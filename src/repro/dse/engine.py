"""The exploration engine: strategies x persistent workers x cache.

:func:`explore` drives a :class:`~repro.dse.strategies.Strategy` to
exhaustion, scoring each proposed batch through an evaluator callable —
serially, or on a :class:`~repro.dse.pool.PersistentPool` when
``jobs > 1``: worker processes forked **once per exploration** that
receive the evaluator and settings a single time at spawn and
thereafter exchange only compact point batches (``batch_size`` points
per dispatch, auto-sized from the axis cardinality by default).  An
optional content-keyed on-disk :class:`~repro.dse.cache.EvalCache` is
consulted first through an in-memory key index loaded once per sweep —
the parent process is the cache's **single writer**, workers never
touch the disk, and a cache miss costs a set lookup instead of a
failed read.

The engine is deliberately generic: an evaluator is any callable
``(point, settings) -> mapping of metrics`` (module-level and picklable
if ``jobs > 1``); objectives name the metrics that feed the Pareto
frontier.  :func:`repro.dse.objectives.evaluate_point` is the standard
ProTEA evaluator, but :func:`repro.analysis.sweep.grid_sweep` and the
experiment sweeps run arbitrary callables through this same engine.

Results are deterministic for a fixed (space, strategy, seed,
settings): batch order follows the strategy, within-batch order follows
the ask order regardless of worker interleaving or batch size, and
cached results are bit-identical to fresh ones.  ``jobs`` and
``batch_size`` change the wall clock and nothing else — the
parallel-identity suite (``tests/dse/test_parallel_identity.py``)
holds that promise byte for byte.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from .cache import EvalCache
from .pareto import Objective, pareto_front
from .pool import PersistentPool, _error_text
from .space import SearchSpace, point_id
from .strategies import PrescreenStrategy, Strategy, get_strategy

__all__ = ["EvalResult", "ExplorationResult", "auto_batch_size", "explore"]

#: An evaluator maps (point, settings) to a flat mapping of metrics.
Evaluator = Callable[[Dict[str, Any], Dict[str, Any]], Mapping[str, Any]]


@dataclass
class EvalResult:
    """One scored design point."""

    point: Dict[str, Any]
    objectives: Dict[str, float]
    metrics: Dict[str, Any]
    error: str = ""
    cached: bool = False

    @property
    def ok(self) -> bool:
        return not self.error

    def as_dict(self) -> dict:
        return {
            "point": dict(self.point),
            "objectives": _json_safe(self.objectives),
            "metrics": _json_safe(self.metrics),
            "error": self.error,
            "cached": self.cached,
        }


@dataclass
class ExplorationResult:
    """Everything one :func:`explore` call produced."""

    results: List[EvalResult]
    frontier: List[EvalResult]
    objectives: Tuple[Objective, ...]
    strategy: str
    jobs: int
    #: Points scored fresh this run (cache hits and repeats excluded).
    n_evaluated: int
    cache_hits: int
    cache_misses: int
    elapsed_s: float
    settings: Dict[str, Any] = field(default_factory=dict)
    #: :class:`repro.obs.DseProfile` when the sweep ran with
    #: ``profile=True`` (cache split, per-point wall time, per-worker
    #: dispatch/idle breakdown); ``None`` otherwise.
    profile: Optional[Any] = None
    #: Prescreen block (keep/min_keep knobs plus proposed/forwarded/
    #: screened_out counters) when the strategy prescreens; ``None``
    #: otherwise.
    prescreen: Optional[Dict[str, Any]] = None

    @property
    def ok_results(self) -> List[EvalResult]:
        return [r for r in self.results if r.ok]

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "jobs": self.jobs,
            "objectives": [
                {"name": o.name, "goal": o.goal, "units": o.units}
                for o in self.objectives
            ],
            "settings": _json_safe(self.settings),
            "evaluated": self.n_evaluated,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "elapsed_s": self.elapsed_s,
            "results": [r.as_dict() for r in self.results],
            "frontier": [r.as_dict() for r in self.frontier],
            **({"prescreen": _json_safe(self.prescreen)}
               if self.prescreen is not None else {}),
            **({"profile": _json_safe(self.profile.as_dict())}
               if self.profile is not None else {}),
        }


# ---------------------------------------------------------------------------
def _json_safe(value: Any) -> Any:
    """NaN/inf → None recursively (strict JSON parsers reject them)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _eval_task(task: Tuple[Evaluator, Dict[str, Any], Dict[str, Any], bool]):
    """Serial-path evaluation: score one point, capturing tolerated
    failures.

    Returns ``(point, metrics, error, (worker_name, wall_s))`` — the
    trailing element is profiling data (who evaluated the point, and
    how long the evaluator itself ran); it never feeds the scores, so
    profiled and unprofiled sweeps stay bit-identical.  The pool path
    runs the same evaluation discipline worker-side
    (:func:`repro.dse.pool._worker_main`).
    """
    evaluator, point, settings, continue_on_error = task
    t0 = time.perf_counter()
    try:
        metrics, error = dict(evaluator(point, settings)), ""
    except Exception as exc:  # noqa: BLE001 - DSE tolerates corners
        if not continue_on_error:
            raise
        metrics, error = {}, _error_text(exc)
    return point, metrics, error, (
        multiprocessing.current_process().name,
        time.perf_counter() - t0)


def _split_metrics(metrics: Mapping[str, Any],
                   objectives: Sequence[Objective]) -> Dict[str, float]:
    missing = [o.name for o in objectives if o.name not in metrics]
    if missing:
        raise KeyError(
            f"evaluator returned no value for objective(s) {missing}; "
            f"got metrics {sorted(metrics)}")
    return {o.name: float(metrics[o.name]) for o in objectives}


def _result_from_metrics(point: Dict[str, Any], metrics: Dict[str, Any],
                         error: str,
                         objectives: Sequence[Objective]) -> EvalResult:
    if error:
        return EvalResult(point=point, objectives={}, metrics={}, error=error)
    return EvalResult(point=point,
                      objectives=_split_metrics(metrics, objectives),
                      metrics=metrics, error="")


def auto_batch_size(n_tasks: int, jobs: int, space: SearchSpace) -> int:
    """Points per dispatch when the caller does not pin ``batch_size``.

    Targets ~4 dispatches per worker (enough granularity for dynamic
    load balancing without per-point round-trips), capped at the
    space's largest axis cardinality so one dispatch never swallows
    more than a full sweep of any single axis.
    """
    if n_tasks < 1 or jobs < 1:
        return 1
    target = -(-n_tasks // (4 * jobs))
    cap = max(len(axis) for axis in space.axes)
    return max(1, min(target, cap))


# ---------------------------------------------------------------------------
def explore(
    space: SearchSpace,
    evaluator: Evaluator,
    *,
    objectives: Sequence[Objective] = (),
    strategy: Union[str, Strategy] = "grid",
    strategy_options: Optional[Mapping[str, Any]] = None,
    settings: Optional[Mapping[str, Any]] = None,
    jobs: int = 1,
    batch_size: Optional[int] = None,
    chunk_size: Optional[int] = None,
    cache: Optional[EvalCache] = None,
    continue_on_error: bool = True,
    profile: bool = False,
) -> ExplorationResult:
    """Explore ``space``, scoring points with ``evaluator``.

    ``jobs > 1`` evaluates on a :class:`~repro.dse.pool.PersistentPool`
    — worker processes forked once for the whole exploration that
    receive the evaluator and settings a single time and then stream
    compact point batches (``batch_size`` points per dispatch,
    :func:`auto_batch_size` by default; ``chunk_size`` is the legacy
    alias).  The evaluator must then be a picklable module-level
    callable.  A worker that dies mid-batch fails only that batch's
    points (``worker died`` error records) and is replaced, so the
    sweep always completes.

    ``cache`` short-circuits points whose content key is already on
    disk — consulted through an in-memory index loaded once per sweep,
    written only by this (parent) process — and errors are cached too,
    since an infeasible corner is just as deterministic as a feasible
    one.

    With ``continue_on_error`` (the default) evaluator exceptions become
    per-point error records; otherwise the first failure propagates.

    ``profile=True`` attaches a :class:`repro.obs.DseProfile` to the
    result: eval-cache hits/misses, per-point evaluation wall time,
    per-dispatch batch sizes, and a per-worker dispatch/idle breakdown.
    Profiling reads wall clocks around evaluations only — scores are
    bit-identical either way.

    Results are a pure function of (space, strategy, seed, settings):
    ``jobs`` and ``batch_size`` change the wall clock and nothing else.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if batch_size is None:
        batch_size = chunk_size
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    profile_rec = None
    if profile:
        from ..obs.profile import DseProfile

        profile_rec = DseProfile()
    objectives = tuple(objectives)
    settings_dict = dict(settings or {})
    # Different evaluators may share one cache directory; fold the
    # evaluator's identity into the keyed settings so their records
    # never collide (stale metrics or missing objective keys).
    keyed_settings = dict(settings_dict)
    keyed_settings["__evaluator__"] = (
        f"{getattr(evaluator, '__module__', '?')}."
        f"{getattr(evaluator, '__qualname__', repr(evaluator))}")
    if isinstance(strategy, str):
        strategy = get_strategy(strategy, space, objectives=objectives,
                                settings=settings_dict,
                                **dict(strategy_options or {}))

    started = time.perf_counter()
    by_id: Dict[str, EvalResult] = {}
    ordered: List[EvalResult] = []
    n_evaluated = cache_hits = cache_misses = 0
    # Single-writer cache discipline: one directory scan up front, an
    # in-memory membership probe per point, and every write (ours
    # alone) appended to the index.  Misses never touch the disk.
    known_keys = cache.index() if cache is not None else set()

    pool: Optional[PersistentPool] = None
    completed = False
    try:
        while True:
            batch = strategy.ask()
            if not batch:
                break
            batch_ids = [point_id(p) for p in batch]

            todo: List[Tuple[str, Dict[str, Any], str]] = []
            queued: set = set()
            for pid, point in zip(batch_ids, batch):
                if pid in by_id or pid in queued:
                    continue
                if cache is not None:
                    key = cache.key_for(point, keyed_settings)
                    record = cache.get(key) if key in known_keys else None
                    if record is not None:
                        cache_hits += 1
                        # Re-derive the objective vector from the full
                        # cached metrics rather than trusting the
                        # stored subset: the cache key excludes the
                        # objective *selection*, so a resume may score
                        # the same points along different axes.
                        hit = _result_from_metrics(
                            dict(point), dict(record.get("metrics", {})),
                            str(record.get("error", "")), objectives)
                        hit.cached = True
                        by_id[pid] = hit
                        continue
                    cache_misses += 1
                else:
                    key = ""
                queued.add(pid)
                todo.append((pid, dict(point), key))

            if todo:
                t_dispatch = time.perf_counter()
                raw: List[Tuple[Dict[str, Any], Dict[str, Any], str,
                                Tuple[str, float]]] = []
                if jobs > 1 and len(todo) > 1:
                    if pool is None:
                        pool = PersistentPool(
                            evaluator, settings_dict, jobs=jobs,
                            continue_on_error=continue_on_error)
                    size = batch_size or auto_batch_size(
                        len(todo), jobs, space)
                    points = [point for _, point, _ in todo]
                    dispatches = [points[i:i + size]
                                  for i in range(0, len(points), size)]
                    replies = pool.map_batches(dispatches)
                    for sent, (worker, results) in zip(dispatches, replies):
                        if profile_rec is not None:
                            profile_rec.add_dispatch(worker, len(sent))
                        for point, (metrics, error, wall_s) in zip(sent,
                                                                   results):
                            raw.append((point, metrics, error,
                                        (worker, wall_s)))
                else:
                    for _, point, _ in todo:
                        raw.append(_eval_task((evaluator, point,
                                               settings_dict,
                                               continue_on_error)))
                    if profile_rec is not None:
                        profile_rec.add_dispatch(
                            multiprocessing.current_process().name,
                            len(todo))
                if profile_rec is not None:
                    profile_rec.add_batch(time.perf_counter() - t_dispatch)
                n_evaluated += len(raw)
                scored = {point_id(point): (point, metrics, error, prof)
                          for point, metrics, error, prof in raw}
                for pid, _, key in todo:
                    point, metrics, error, prof = scored[pid]
                    if profile_rec is not None:
                        profile_rec.add_point(point, prof[0], prof[1], error)
                    result = _result_from_metrics(point, metrics, error,
                                                  objectives)
                    by_id[pid] = result
                    if cache is not None:
                        # Store metrics verbatim (Python's json round-
                        # trips NaN/inf), so cached results stay bit-
                        # identical to fresh ones; _json_safe is only
                        # for strict external consumers in as_dict().
                        cache.put(key, {"metrics": result.metrics,
                                        "error": result.error})
                        known_keys.add(key)

            batch_results = []
            for pid in batch_ids:
                result = by_id[pid]
                batch_results.append(result)
                # A strategy may re-propose an identical point (or a grid
                # may hold duplicates): every occurrence appears in the
                # ordered results, but the frontier dedupes below.
                ordered.append(result)
            strategy.tell(batch_results)
        completed = True
    finally:
        if pool is not None:
            # Propagating an exception: kill the workers instead of
            # waiting for a graceful stop.
            pool.close(force=not completed)

    unique_ok = []
    seen_ids: set = set()
    for result in ordered:
        pid = point_id(result.point)
        if pid in seen_ids or not result.ok:
            continue
        seen_ids.add(pid)
        unique_ok.append(result)
    frontier = (pareto_front(unique_ok, objectives,
                             key=lambda r: r.objectives)
                if objectives else [])
    if profile_rec is not None:
        profile_rec.cache_hits = cache_hits
        profile_rec.cache_misses = cache_misses
    return ExplorationResult(
        results=ordered,
        frontier=frontier,
        objectives=objectives,
        strategy=strategy.name,
        jobs=jobs,
        n_evaluated=n_evaluated,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        elapsed_s=time.perf_counter() - started,
        settings=settings_dict,
        profile=profile_rec,
        prescreen=(strategy.summary()
                   if isinstance(strategy, PrescreenStrategy) else None),
    )
