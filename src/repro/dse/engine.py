"""The exploration engine: strategies x evaluation pool x cache.

:func:`explore` drives a :class:`~repro.dse.strategies.Strategy` to
exhaustion, scoring each proposed batch through an evaluator callable —
serially, or on a ``multiprocessing`` pool with chunked dispatch when
``jobs > 1`` — with an optional content-keyed on-disk
:class:`~repro.dse.cache.EvalCache` consulted first, so repeated or
resumed sweeps skip already-scored points entirely.

The engine is deliberately generic: an evaluator is any callable
``(point, settings) -> mapping of metrics`` (module-level and picklable
if ``jobs > 1``); objectives name the metrics that feed the Pareto
frontier.  :func:`repro.dse.objectives.evaluate_point` is the standard
ProTEA evaluator, but :func:`repro.analysis.sweep.grid_sweep` and the
experiment sweeps run arbitrary callables through this same engine.

Results are deterministic for a fixed (space, strategy, seed,
settings): batch order follows the strategy, within-batch order follows
the ask order regardless of worker interleaving, and cached results are
bit-identical to fresh ones.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from .cache import EvalCache
from .pareto import Objective, pareto_front
from .space import SearchSpace, point_id
from .strategies import Strategy, get_strategy

__all__ = ["EvalResult", "ExplorationResult", "explore"]

#: An evaluator maps (point, settings) to a flat mapping of metrics.
Evaluator = Callable[[Dict[str, Any], Dict[str, Any]], Mapping[str, Any]]


@dataclass
class EvalResult:
    """One scored design point."""

    point: Dict[str, Any]
    objectives: Dict[str, float]
    metrics: Dict[str, Any]
    error: str = ""
    cached: bool = False

    @property
    def ok(self) -> bool:
        return not self.error

    def as_dict(self) -> dict:
        return {
            "point": dict(self.point),
            "objectives": _json_safe(self.objectives),
            "metrics": _json_safe(self.metrics),
            "error": self.error,
            "cached": self.cached,
        }


@dataclass
class ExplorationResult:
    """Everything one :func:`explore` call produced."""

    results: List[EvalResult]
    frontier: List[EvalResult]
    objectives: Tuple[Objective, ...]
    strategy: str
    jobs: int
    #: Points scored fresh this run (cache hits and repeats excluded).
    n_evaluated: int
    cache_hits: int
    cache_misses: int
    elapsed_s: float
    settings: Dict[str, Any] = field(default_factory=dict)
    #: :class:`repro.obs.DseProfile` when the sweep ran with
    #: ``profile=True`` (cache split, per-point wall time, per-worker
    #: dispatch/idle breakdown); ``None`` otherwise.
    profile: Optional[Any] = None

    @property
    def ok_results(self) -> List[EvalResult]:
        return [r for r in self.results if r.ok]

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "jobs": self.jobs,
            "objectives": [
                {"name": o.name, "goal": o.goal, "units": o.units}
                for o in self.objectives
            ],
            "settings": _json_safe(self.settings),
            "evaluated": self.n_evaluated,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "elapsed_s": self.elapsed_s,
            "results": [r.as_dict() for r in self.results],
            "frontier": [r.as_dict() for r in self.frontier],
            **({"profile": _json_safe(self.profile.as_dict())}
               if self.profile is not None else {}),
        }


# ---------------------------------------------------------------------------
def _json_safe(value: Any) -> Any:
    """NaN/inf → None recursively (strict JSON parsers reject them)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _error_text(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _eval_task(task: Tuple[Evaluator, Dict[str, Any], Dict[str, Any], bool]):
    """Pool worker: score one point, capturing tolerated failures.

    Module-level so it pickles; the evaluator travels inside the task.
    Returns ``(point, metrics, error, (worker_name, wall_s))`` — the
    trailing element is worker-side profiling data (who evaluated the
    point, and how long the evaluator itself ran); it never feeds the
    scores, so profiled and unprofiled sweeps stay bit-identical.
    """
    evaluator, point, settings, continue_on_error = task
    t0 = time.perf_counter()
    try:
        metrics, error = dict(evaluator(point, settings)), ""
    except Exception as exc:  # noqa: BLE001 - DSE tolerates corners
        if not continue_on_error:
            raise
        metrics, error = {}, _error_text(exc)
    return point, metrics, error, (
        multiprocessing.current_process().name,
        time.perf_counter() - t0)


def _split_metrics(metrics: Mapping[str, Any],
                   objectives: Sequence[Objective]) -> Dict[str, float]:
    missing = [o.name for o in objectives if o.name not in metrics]
    if missing:
        raise KeyError(
            f"evaluator returned no value for objective(s) {missing}; "
            f"got metrics {sorted(metrics)}")
    return {o.name: float(metrics[o.name]) for o in objectives}


def _result_from_metrics(point: Dict[str, Any], metrics: Dict[str, Any],
                         error: str,
                         objectives: Sequence[Objective]) -> EvalResult:
    if error:
        return EvalResult(point=point, objectives={}, metrics={}, error=error)
    return EvalResult(point=point,
                      objectives=_split_metrics(metrics, objectives),
                      metrics=metrics, error="")


# ---------------------------------------------------------------------------
def explore(
    space: SearchSpace,
    evaluator: Evaluator,
    *,
    objectives: Sequence[Objective] = (),
    strategy: Union[str, Strategy] = "grid",
    strategy_options: Optional[Mapping[str, Any]] = None,
    settings: Optional[Mapping[str, Any]] = None,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    cache: Optional[EvalCache] = None,
    continue_on_error: bool = True,
    profile: bool = False,
) -> ExplorationResult:
    """Explore ``space``, scoring points with ``evaluator``.

    ``jobs > 1`` evaluates each batch on a ``multiprocessing`` pool with
    chunked dispatch (``chunk_size`` tasks per pickle round-trip,
    default ``ceil(batch / (4 * jobs))``); the evaluator must then be a
    picklable module-level callable.  ``cache`` short-circuits points
    whose content key is already on disk — errors are cached too, since
    an infeasible corner is just as deterministic as a feasible one.

    With ``continue_on_error`` (the default) evaluator exceptions become
    per-point error records; otherwise the first failure propagates.

    ``profile=True`` attaches a :class:`repro.obs.DseProfile` to the
    result: eval-cache hits/misses, per-point evaluation wall time, and
    a per-worker dispatch/idle breakdown.  Profiling reads wall clocks
    around evaluations only — scores are bit-identical either way.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    profile_rec = None
    if profile:
        from ..obs.profile import DseProfile

        profile_rec = DseProfile()
    objectives = tuple(objectives)
    settings_dict = dict(settings or {})
    # Different evaluators may share one cache directory; fold the
    # evaluator's identity into the keyed settings so their records
    # never collide (stale metrics or missing objective keys).
    keyed_settings = dict(settings_dict)
    keyed_settings["__evaluator__"] = (
        f"{getattr(evaluator, '__module__', '?')}."
        f"{getattr(evaluator, '__qualname__', repr(evaluator))}")
    if isinstance(strategy, str):
        strategy = get_strategy(strategy, space, objectives=objectives,
                                **dict(strategy_options or {}))

    started = time.perf_counter()
    by_id: Dict[str, EvalResult] = {}
    ordered: List[EvalResult] = []
    n_evaluated = cache_hits = cache_misses = 0

    pool = None
    completed = False
    try:
        while True:
            batch = strategy.ask()
            if not batch:
                break
            batch_ids = [point_id(p) for p in batch]

            todo: List[Tuple[str, Dict[str, Any]]] = []
            queued: set = set()
            for pid, point in zip(batch_ids, batch):
                if pid in by_id or pid in queued:
                    continue
                if cache is not None:
                    record = cache.get(cache.key_for(point, keyed_settings))
                    if record is not None:
                        cache_hits += 1
                        # Re-derive the objective vector from the full
                        # cached metrics rather than trusting the
                        # stored subset: the cache key excludes the
                        # objective *selection*, so a resume may score
                        # the same points along different axes.
                        hit = _result_from_metrics(
                            dict(point), dict(record.get("metrics", {})),
                            str(record.get("error", "")), objectives)
                        hit.cached = True
                        by_id[pid] = hit
                        continue
                    cache_misses += 1
                queued.add(pid)
                todo.append((pid, dict(point)))

            if todo:
                tasks = [(evaluator, point, settings_dict, continue_on_error)
                         for _, point in todo]
                t_dispatch = time.perf_counter()
                if jobs > 1 and len(tasks) > 1:
                    if pool is None:
                        pool = multiprocessing.Pool(processes=jobs)
                    chunk = chunk_size or max(
                        1, -(-len(tasks) // (4 * jobs)))
                    raw = list(pool.imap_unordered(_eval_task, tasks,
                                                   chunksize=chunk))
                else:
                    raw = [_eval_task(t) for t in tasks]
                if profile_rec is not None:
                    profile_rec.add_batch(time.perf_counter() - t_dispatch)
                n_evaluated += len(raw)
                scored = {point_id(point): (point, metrics, error, prof)
                          for point, metrics, error, prof in raw}
                for pid, _ in todo:
                    point, metrics, error, prof = scored[pid]
                    if profile_rec is not None:
                        profile_rec.add_point(point, prof[0], prof[1], error)
                    result = _result_from_metrics(point, metrics, error,
                                                  objectives)
                    by_id[pid] = result
                    if cache is not None:
                        # Store metrics verbatim (Python's json round-
                        # trips NaN/inf), so cached results stay bit-
                        # identical to fresh ones; _json_safe is only
                        # for strict external consumers in as_dict().
                        cache.put(
                            cache.key_for(point, keyed_settings),
                            {"metrics": result.metrics,
                             "error": result.error})

            batch_results = []
            for pid in batch_ids:
                result = by_id[pid]
                batch_results.append(result)
                # A strategy may re-propose an identical point (or a grid
                # may hold duplicates): every occurrence appears in the
                # ordered results, but the frontier dedupes below.
                ordered.append(result)
            strategy.tell(batch_results)
        completed = True
    finally:
        if pool is not None:
            if completed:
                pool.close()
            else:
                # Propagating an exception: kill the workers instead of
                # draining every queued task first.
                pool.terminate()
            pool.join()

    unique_ok = []
    seen_ids: set = set()
    for result in ordered:
        pid = point_id(result.point)
        if pid in seen_ids or not result.ok:
            continue
        seen_ids.add(pid)
        unique_ok.append(result)
    frontier = (pareto_front(unique_ok, objectives,
                             key=lambda r: r.objectives)
                if objectives else [])
    if profile_rec is not None:
        profile_rec.cache_hits = cache_hits
        profile_rec.cache_misses = cache_misses
    return ExplorationResult(
        results=ordered,
        frontier=frontier,
        objectives=objectives,
        strategy=strategy.name,
        jobs=jobs,
        n_evaluated=n_evaluated,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        elapsed_s=time.perf_counter() - started,
        settings=settings_dict,
        profile=profile_rec,
    )
