"""Closed-form surrogate scoring: the cheap prescreen objective.

The full evaluator (:func:`repro.dse.objectives.evaluate_point`) runs
up to four discrete-event simulations per point — serving, continuous-
batching generation, failure injection, and a watchdog rerun — which
is exactly what makes honest million-point design spaces unaffordable
by brute force.  This module scores a point with the *summation model*
sketched in SNIPPETS.md Snippet 1 instead: add up the analytic
latency, bandwidth, and resource terms, estimate queueing with a
closed-form M/M/c wait, and never simulate.  On the benchmark grid one
surrogate call is ~100x cheaper than one full evaluation.

The closed forms themselves live in :mod:`repro.analytic` (this module
grew them first; the package promotion kept ``erlang_c`` re-exported
here for compatibility).  The estimates are deliberately aligned with
the full evaluator:

* ``latency_ms`` / ``throughput_inf_s`` / ``power_w`` / ``util_pct``
  reuse the very same analytic models the full evaluator starts from,
  so on those axes the surrogate ranks points *exactly* as the full
  stack does;
* ``p99_ms`` replaces the serving simulation with the M/M/c wait
  quantile of :func:`repro.analytic.queueing.p99_estimate_ms` — the
  exponential tail of the queueing delay, floored at the
  mass-weighted conditional-wait quantile at low load and capped by
  the fluid wait through saturation;
* ``ttft_p99_ms`` / ``tokens_per_s`` fall back to the unloaded
  analytic generation estimate (a lower bound on the simulated tail);
* the failure and watchdog objectives have no closed form and are
  simply absent — the prescreen ranks on whatever subset it can score.

Infeasible corners raise exactly like the full evaluator (same fit
check), so the prescreen can forward them for the authoritative error
record rather than silently dropping them.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from ..analytic.generation import estimate_generation
from ..analytic.queueing import erlang_c  # noqa: F401  (compat re-export)
from ..analytic.queueing import p99_estimate_ms as _p99_estimate_ms
from ..isa.controller import ResynthesisRequiredError
from ..nn.model_zoo import get_model
from ..parallel import PipelinePartitioner, get_link

__all__ = ["SURROGATE_OBJECTIVE_NAMES", "erlang_c", "surrogate_point"]

#: Objectives the closed-form model can estimate.  The failure pair
#: (availability / p99_degraded_ms) and the watchdog pair
#: (alert_minutes / budget_burn) are simulation-defined and absent.
SURROGATE_OBJECTIVE_NAMES: Tuple[str, ...] = (
    "latency_ms", "throughput_inf_s", "p99_ms", "power_w", "util_pct",
    "ttft_p99_ms", "tokens_per_s")

#: Per-process memo of pipeline plans: the exact-DP partitioning is
#: the one genuinely expensive analytic step, and every point sharing
#: (synth variant, model, devices, link) shares its plan.
_PLAN_MEMO: Dict[Tuple[int, int, str, str, int, str],
                 Tuple[float, float]] = {}


def _unit_latency(accel, cfg, devices: int, link_name: str,
                  point_key: Tuple[int, int, str]) -> Tuple[float, float]:
    """(latency_ms, steady inf/s) for one device group, memoized."""
    if devices <= 1:
        report = accel.latency_report(cfg)
        return report.latency_ms, 1e3 / report.latency_ms
    memo_key = (*point_key, cfg.name, devices, link_name)
    cached = _PLAN_MEMO.get(memo_key)
    if cached is None:
        plan = PipelinePartitioner(accel, get_link(link_name)).best_plan(
            cfg, devices)
        cached = (plan.latency_ms, plan.steady_state_inf_per_s)
        _PLAN_MEMO[memo_key] = cached
    return cached


def surrogate_point(point: Mapping[str, Any],
                    settings: Optional[Mapping[str, Any]] = None
                    ) -> Dict[str, float]:
    """Estimate a design point's objectives without simulating.

    Mirrors :func:`~repro.dse.objectives.evaluate_point` step for step
    — synthesis (shared per-process memo), fit check, latency or
    pipeline plan, power — but replaces every simulation with a
    closed-form term.  Raises for infeasible corners exactly like the
    full evaluator, so callers can forward those points for an
    authoritative error record.
    """
    from .objectives import (DEFAULT_SETTINGS, _analytic_power_w,
                             _generation_lengths, _synthesize)

    cfg = get_model(str(point["model"]))
    tiles_mha = int(point.get("tiles_mha", 12))
    tiles_ffn = int(point.get("tiles_ffn", 6))
    devices = int(point.get("devices", 1))
    fleet = int(point.get("fleet", 1))
    if devices < 1 or fleet < 1:
        raise ValueError("devices and fleet must be >= 1")
    opts = dict(DEFAULT_SETTINGS, **dict(settings or {}))

    fmt = str(point.get("format", "fix8"))
    accel = _synthesize(tiles_mha, tiles_ffn, fmt)
    util_pct = max(accel.utilization.percent.values())
    if util_pct > 100.0:
        worst = max(accel.utilization.percent,
                    key=accel.utilization.percent.get)
        raise ValueError(
            f"does not fit {accel.device.name}: {worst} at {util_pct:.0f}%")

    latency_ms, unit_inf_s = _unit_latency(
        accel, cfg, devices, str(opts["link"]),
        (tiles_mha, tiles_ffn, fmt))
    power_w, _, _ = _analytic_power_w(accel, cfg, latency_ms,
                                      devices * fleet)
    estimate = {
        "latency_ms": latency_ms,
        "throughput_inf_s": unit_inf_s * fleet,
        "p99_ms": _p99_estimate_ms(latency_ms, unit_inf_s, fleet,
                                   float(opts["qps"]),
                                   float(opts["duration_ms"])),
        "power_w": power_w,
        "util_pct": util_pct,
    }
    if opts["gen_objectives"]:
        try:
            prompt, output = _generation_lengths(accel, opts)
            gen = estimate_generation(accel, cfg, prompt, output,
                                      fleet=fleet)
            estimate["ttft_p99_ms"] = gen.ttft_p99_ms
            estimate["tokens_per_s"] = gen.tokens_per_s
        except (ValueError, ResynthesisRequiredError):
            # No analytic generation split for this point: leave the
            # pair absent and let the prescreen rank on the rest.
            pass
    return estimate
