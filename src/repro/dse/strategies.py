"""Exploration strategies: how points are proposed.

A strategy is an ask/tell loop the engine drives to exhaustion:

* :meth:`Strategy.ask` returns the next batch of design points to
  evaluate (an empty batch ends the exploration);
* :meth:`Strategy.tell` feeds the scored batch back, so adaptive
  strategies (evolutionary) can steer the next generation.

One-shot strategies (grid, random) propose everything in their first
``ask``.  All randomness is seeded — the same (space, seed) pair always
proposes the same points in the same order, which is what makes cached
re-runs hit on every single point.

:class:`PrescreenStrategy` is a *wrapper*: it drives any inner
strategy and, before each batch reaches the engine, scores the
candidates with a closed-form surrogate
(:func:`repro.dse.surrogate.surrogate_point` by default) and forwards
only the surviving fraction for full evaluation.  Survivor selection
keeps whole non-dominated fronts — never a slice of one — so a point
the surrogate ranks on the first front always survives, whatever the
keep fraction.  The selection is deterministic, so a prescreened
sweep is byte-identical across ``jobs`` and batch sizes like any
other strategy.
"""

from __future__ import annotations

import math
from random import Random
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from .pareto import Objective, non_dominated_sort
from .space import SearchSpace, point_id

__all__ = ["Strategy", "GridStrategy", "RandomStrategy",
           "EvolutionaryStrategy", "PrescreenStrategy", "STRATEGIES",
           "get_strategy"]


class Strategy:
    """Base ask/tell interface (subclasses set ``name``)."""

    name = "base"

    def ask(self) -> List[Dict[str, Any]]:  # pragma: no cover - interface
        raise NotImplementedError

    def tell(self, results: Sequence[Any]) -> None:
        """Receive the scored batch (default: ignore — non-adaptive)."""


class GridStrategy(Strategy):
    """Exhaustive cartesian grid, one batch, nested-loop order."""

    name = "grid"

    def __init__(self, space: SearchSpace, **_: Any) -> None:
        self._pending: Optional[List[Dict[str, Any]]] = None
        self.space = space

    def ask(self) -> List[Dict[str, Any]]:
        if self._pending is None:
            self._pending = list(self.space.grid())
            return self._pending
        return []


class RandomStrategy(Strategy):
    """Seeded random sample of ``samples`` *distinct* points."""

    name = "random"

    def __init__(self, space: SearchSpace, samples: int = 16,
                 seed: int = 0, **_: Any) -> None:
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.space = space
        self.samples = min(samples, space.size)
        self.seed = seed
        self._asked = False

    def ask(self) -> List[Dict[str, Any]]:
        if self._asked:
            return []
        self._asked = True
        rng = Random(self.seed)
        points: List[Dict[str, Any]] = []
        seen = set()
        # Distinctness cap: a small space may not hold `samples` unique
        # feasible points; give up after enough fruitless draws.
        budget = 64 * self.samples
        while len(points) < self.samples and budget:
            budget -= 1
            point = self.space.sample(rng)
            pid = point_id(point)
            if pid in seen:
                continue
            seen.add(pid)
            points.append(point)
        return points


class EvolutionaryStrategy(Strategy):
    """A simple seeded (mu + lambda) multi-objective evolutionary loop.

    Generation 0 is a random population; each ``tell`` ranks the scored
    archive by non-dominated sort, keeps the best half as parents, and
    breeds the next generation by uniform crossover plus per-child
    mutation.  Points never repeat across generations (already-seen
    children are replaced by fresh random samples), so every proposed
    point is new information.
    """

    name = "evolutionary"

    def __init__(self, space: SearchSpace,
                 objectives: Sequence[Objective] = (),
                 population: int = 8, generations: int = 4,
                 mutation: float = 0.5, seed: int = 0, **_: Any) -> None:
        if population < 2:
            raise ValueError("population must be >= 2")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        if not objectives:
            raise ValueError(
                "the evolutionary strategy needs objectives to rank by")
        self.space = space
        self.objectives = tuple(objectives)
        self.population = population
        self.generations = generations
        self.mutation = mutation
        self._rng = Random(seed)
        self._generation = 0
        self._seen: set = set()
        self._archive: List[Any] = []  # ok EvalResults, all generations

    # ------------------------------------------------------------------
    def _fresh_random(self, out: List[Dict[str, Any]]) -> None:
        """Top ``out`` up to the population size with unseen samples."""
        budget = 64 * self.population
        while len(out) < self.population and budget:
            budget -= 1
            point = self.space.sample(self._rng)
            pid = point_id(point)
            if pid in self._seen:
                continue
            self._seen.add(pid)
            out.append(point)

    def ask(self) -> List[Dict[str, Any]]:
        if self._generation >= self.generations:
            return []
        self._generation += 1
        batch: List[Dict[str, Any]] = []
        parents = self._parents()
        if parents:
            budget = 64 * self.population
            while len(batch) < self.population and budget:
                budget -= 1
                a = self._rng.choice(parents)
                b = self._rng.choice(parents)
                child = self.space.crossover(a.point, b.point, self._rng)
                if self._rng.random() < self.mutation:
                    child = self.space.mutate(child, self._rng)
                pid = point_id(child)
                if pid in self._seen:
                    continue
                self._seen.add(pid)
                batch.append(child)
        self._fresh_random(batch)
        return batch

    def _parents(self) -> List[Any]:
        """Best half of the archive by Pareto rank (empty pre-gen-1)."""
        if not self._archive:
            return []
        fronts = non_dominated_sort(
            self._archive, self.objectives, key=lambda r: r.objectives)
        parents: List[Any] = []
        target = max(2, self.population // 2)
        for front in fronts:
            parents.extend(front)
            if len(parents) >= target:
                break
        return parents

    def tell(self, results: Sequence[Any]) -> None:
        self._archive.extend(r for r in results if r.ok)


class PrescreenStrategy(Strategy):
    """Surrogate-assisted search: cheap prescreen, full eval survivors.

    Wraps any inner strategy.  Each batch the inner strategy proposes
    is scored with a closed-form surrogate (``surrogate(point,
    settings) -> metrics``, defaulting to
    :func:`repro.dse.surrogate.surrogate_point`); the candidates are
    ranked by non-dominated sort over the objectives the surrogate can
    estimate, and **whole fronts** are kept until at least
    ``max(min_keep, ceil(keep * batch))`` points survive.  Only the
    survivors reach the engine's full evaluator.

    Conservatism rules (what the prescreen must never get wrong):

    * fronts are never split — a point on the surrogate's first front
      survives regardless of ``keep``;
    * a point the surrogate cannot score (it raises) is forwarded to
      the full evaluator unconditionally, so infeasible corners keep
      their authoritative error records;
    * batches of ``min_keep`` points or fewer skip the prescreen —
      screening a handful of points saves nothing;
    * if the surrogate estimates none of the ranked objectives (e.g. a
      purely failure-objective sweep), everything is forwarded and the
      prescreen degrades to a no-op.

    ``tell`` forwards the scored survivors to the inner strategy, so
    adaptive inners (evolutionary) breed from the surviving archive.
    """

    name = "prescreen"

    def __init__(self, space: SearchSpace,
                 objectives: Sequence[Objective] = (),
                 settings: Optional[Mapping[str, Any]] = None,
                 inner: Union[str, Strategy] = "grid",
                 keep: float = 0.35, min_keep: int = 4,
                 surrogate: Optional[Callable[..., Mapping[str, Any]]]
                 = None,
                 **inner_options: Any) -> None:
        if not objectives:
            raise ValueError(
                "the prescreen strategy needs objectives to rank by")
        if not 0.0 < keep <= 1.0:
            raise ValueError(f"keep must be in (0, 1], got {keep}")
        if min_keep < 1:
            raise ValueError(f"min_keep must be >= 1, got {min_keep}")
        if isinstance(inner, str):
            inner = get_strategy(inner, space, objectives=objectives,
                                 settings=settings, **inner_options)
        if isinstance(inner, PrescreenStrategy):
            raise ValueError("prescreen strategies do not nest")
        if surrogate is None:
            from .surrogate import surrogate_point

            surrogate = surrogate_point
        self.space = space
        self.objectives = tuple(objectives)
        self.settings = dict(settings or {})
        self.inner = inner
        self.keep = keep
        self.min_keep = min_keep
        self.surrogate = surrogate
        self.name = f"prescreen+{inner.name}"
        #: Lifetime counters, strategy-side so they are identical for
        #: every ``jobs``/batch-size combination of the same sweep.
        self.stats: Dict[str, int] = {
            "proposed": 0, "forwarded": 0, "screened_out": 0,
            "surrogate_errors": 0}
        self._memo: Dict[str, Optional[Dict[str, float]]] = {}

    # ------------------------------------------------------------------
    def _estimate(self, point: Dict[str, Any]) -> Optional[Dict[str, float]]:
        """Surrogate metrics, memoized by point id; ``None`` on error."""
        pid = point_id(point)
        if pid in self._memo:
            return self._memo[pid]
        try:
            estimate = {str(k): float(v)
                        for k, v in self.surrogate(point,
                                                   self.settings).items()}
        except Exception:  # noqa: BLE001 - forward unscoreable points
            estimate = None
        self._memo[pid] = estimate
        return estimate

    def ask(self) -> List[Dict[str, Any]]:
        batch = self.inner.ask()
        if not batch:
            return batch
        self.stats["proposed"] += len(batch)
        if len(batch) <= self.min_keep:
            self.stats["forwarded"] += len(batch)
            return batch
        scored: List[Any] = []
        survivor_ids: set = set()
        for point in batch:
            estimate = self._estimate(point)
            if estimate is None:
                self.stats["surrogate_errors"] += 1
                survivor_ids.add(point_id(point))  # conservative forward
            else:
                scored.append((point, estimate))
        ranked = [o for o in self.objectives
                  if all(o.name in est for _, est in scored)]
        if not scored or not ranked:
            self.stats["forwarded"] += len(batch)
            return batch
        target = max(self.min_keep, math.ceil(self.keep * len(batch)))
        kept = 0
        for front in non_dominated_sort(scored, ranked,
                                        key=lambda item: item[1]):
            survivor_ids.update(point_id(p) for p, _ in front)
            kept += len(front)
            if kept >= target:
                break
        survivors = [p for p in batch if point_id(p) in survivor_ids]
        self.stats["forwarded"] += len(survivors)
        self.stats["screened_out"] += len(batch) - len(survivors)
        return survivors

    def tell(self, results: Sequence[Any]) -> None:
        self.inner.tell(results)

    def summary(self) -> Dict[str, Any]:
        """The prescreen block for reports: knobs plus counters."""
        return {"keep": self.keep, "min_keep": self.min_keep,
                "inner": self.inner.name, **self.stats}


STRATEGIES = {
    cls.name: cls
    for cls in (GridStrategy, RandomStrategy, EvolutionaryStrategy,
                PrescreenStrategy)
}


def get_strategy(name: str, space: SearchSpace,
                 objectives: Sequence[Objective] = (),
                 settings: Optional[Mapping[str, Any]] = None,
                 **options: Any) -> Strategy:
    """Instantiate a strategy by registry name.

    ``settings`` are the sweep's evaluation settings — only the
    prescreen strategy consumes them (its surrogate must score under
    the same workload the full evaluator will see); the others ignore
    them.
    """
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; available: "
            f"{sorted(STRATEGIES)}") from None
    if cls is EvolutionaryStrategy:
        return cls(space, objectives=objectives, **options)
    if cls is PrescreenStrategy:
        return cls(space, objectives=objectives, settings=settings,
                   **options)
    return cls(space, **options)
