"""Exploration strategies: how points are proposed.

A strategy is an ask/tell loop the engine drives to exhaustion:

* :meth:`Strategy.ask` returns the next batch of design points to
  evaluate (an empty batch ends the exploration);
* :meth:`Strategy.tell` feeds the scored batch back, so adaptive
  strategies (evolutionary) can steer the next generation.

One-shot strategies (grid, random) propose everything in their first
``ask``.  All randomness is seeded — the same (space, seed) pair always
proposes the same points in the same order, which is what makes cached
re-runs hit on every single point.
"""

from __future__ import annotations

from random import Random
from typing import Any, Dict, List, Optional, Sequence

from .pareto import Objective, non_dominated_sort
from .space import SearchSpace, point_id

__all__ = ["Strategy", "GridStrategy", "RandomStrategy",
           "EvolutionaryStrategy", "STRATEGIES", "get_strategy"]


class Strategy:
    """Base ask/tell interface (subclasses set ``name``)."""

    name = "base"

    def ask(self) -> List[Dict[str, Any]]:  # pragma: no cover - interface
        raise NotImplementedError

    def tell(self, results: Sequence[Any]) -> None:
        """Receive the scored batch (default: ignore — non-adaptive)."""


class GridStrategy(Strategy):
    """Exhaustive cartesian grid, one batch, nested-loop order."""

    name = "grid"

    def __init__(self, space: SearchSpace, **_: Any) -> None:
        self._pending: Optional[List[Dict[str, Any]]] = None
        self.space = space

    def ask(self) -> List[Dict[str, Any]]:
        if self._pending is None:
            self._pending = list(self.space.grid())
            return self._pending
        return []


class RandomStrategy(Strategy):
    """Seeded random sample of ``samples`` *distinct* points."""

    name = "random"

    def __init__(self, space: SearchSpace, samples: int = 16,
                 seed: int = 0, **_: Any) -> None:
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.space = space
        self.samples = min(samples, space.size)
        self.seed = seed
        self._asked = False

    def ask(self) -> List[Dict[str, Any]]:
        if self._asked:
            return []
        self._asked = True
        rng = Random(self.seed)
        points: List[Dict[str, Any]] = []
        seen = set()
        # Distinctness cap: a small space may not hold `samples` unique
        # feasible points; give up after enough fruitless draws.
        budget = 64 * self.samples
        while len(points) < self.samples and budget:
            budget -= 1
            point = self.space.sample(rng)
            pid = point_id(point)
            if pid in seen:
                continue
            seen.add(pid)
            points.append(point)
        return points


class EvolutionaryStrategy(Strategy):
    """A simple seeded (mu + lambda) multi-objective evolutionary loop.

    Generation 0 is a random population; each ``tell`` ranks the scored
    archive by non-dominated sort, keeps the best half as parents, and
    breeds the next generation by uniform crossover plus per-child
    mutation.  Points never repeat across generations (already-seen
    children are replaced by fresh random samples), so every proposed
    point is new information.
    """

    name = "evolutionary"

    def __init__(self, space: SearchSpace,
                 objectives: Sequence[Objective] = (),
                 population: int = 8, generations: int = 4,
                 mutation: float = 0.5, seed: int = 0, **_: Any) -> None:
        if population < 2:
            raise ValueError("population must be >= 2")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        if not objectives:
            raise ValueError(
                "the evolutionary strategy needs objectives to rank by")
        self.space = space
        self.objectives = tuple(objectives)
        self.population = population
        self.generations = generations
        self.mutation = mutation
        self._rng = Random(seed)
        self._generation = 0
        self._seen: set = set()
        self._archive: List[Any] = []  # ok EvalResults, all generations

    # ------------------------------------------------------------------
    def _fresh_random(self, out: List[Dict[str, Any]]) -> None:
        """Top ``out`` up to the population size with unseen samples."""
        budget = 64 * self.population
        while len(out) < self.population and budget:
            budget -= 1
            point = self.space.sample(self._rng)
            pid = point_id(point)
            if pid in self._seen:
                continue
            self._seen.add(pid)
            out.append(point)

    def ask(self) -> List[Dict[str, Any]]:
        if self._generation >= self.generations:
            return []
        self._generation += 1
        batch: List[Dict[str, Any]] = []
        parents = self._parents()
        if parents:
            budget = 64 * self.population
            while len(batch) < self.population and budget:
                budget -= 1
                a = self._rng.choice(parents)
                b = self._rng.choice(parents)
                child = self.space.crossover(a.point, b.point, self._rng)
                if self._rng.random() < self.mutation:
                    child = self.space.mutate(child, self._rng)
                pid = point_id(child)
                if pid in self._seen:
                    continue
                self._seen.add(pid)
                batch.append(child)
        self._fresh_random(batch)
        return batch

    def _parents(self) -> List[Any]:
        """Best half of the archive by Pareto rank (empty pre-gen-1)."""
        if not self._archive:
            return []
        fronts = non_dominated_sort(
            self._archive, self.objectives, key=lambda r: r.objectives)
        parents: List[Any] = []
        target = max(2, self.population // 2)
        for front in fronts:
            parents.extend(front)
            if len(parents) >= target:
                break
        return parents

    def tell(self, results: Sequence[Any]) -> None:
        self._archive.extend(r for r in results if r.ok)


STRATEGIES = {
    cls.name: cls
    for cls in (GridStrategy, RandomStrategy, EvolutionaryStrategy)
}


def get_strategy(name: str, space: SearchSpace,
                 objectives: Sequence[Objective] = (),
                 **options: Any) -> Strategy:
    """Instantiate a strategy by registry name."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; available: "
            f"{sorted(STRATEGIES)}") from None
    if cls is EvolutionaryStrategy:
        return cls(space, objectives=objectives, **options)
    return cls(space, **options)
