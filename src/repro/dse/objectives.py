"""The standard ProTEA evaluator: one design point, five objectives.

A point fixes the *programmable-accelerator deployment question* end to
end: synthesis-time tile counts (``tiles_mha`` x ``tiles_ffn``, exactly
Fig. 7's axes), the datapath quantization format, the runtime-programmed
model, the multi-FPGA partitioning degree (``devices``), and the
serving fleet (``fleet`` replicas under a ``scheduler``).  Evaluation
composes the existing stack — ``ProTEA.synthesize`` → ``LatencyModel``
→ :mod:`repro.parallel` (when ``devices > 1``) → :mod:`repro.serving`
(a seeded Poisson workload) → :mod:`repro.fpga.power` — and reports:

* ``latency_ms``   (min) — one inference end to end (pipeline fill
  when partitioned);
* ``throughput_inf_s`` (max) — steady-state fleet capacity;
* ``p99_ms``       (min) — tail latency under the settings' workload;
* ``power_w``      (min) — board power x total FPGA count;
* ``util_pct``     (min) — worst per-device resource utilization.

Infeasible corners (does not fit the device, exceeds the synthesized
maxima, no viable partitioning) raise — the engine records them as
per-point errors, mirroring how a real DSE flow tolerates bad corners.
Everything returned is a flat JSON-serializable mapping, so records
round-trip through the on-disk :class:`~repro.dse.cache.EvalCache`.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ..analysis.metrics import gops
from ..analysis.traffic import analyze_traffic
from ..core.accelerator import ProTEA
from ..core.engines import DatapathFormats
from ..fpga.power import PowerModel, PowerReport
from ..isa.controller import ResynthesisRequiredError, SynthParams
from ..nn.model_zoo import get_model
from ..parallel import PipelineGroup, PipelinePartitioner, get_link
from ..serving import ModelMix, PoissonArrivals, simulate, summarize
from .pareto import Objective
from .space import Axis, SearchSpace

__all__ = ["OBJECTIVES", "DEFAULT_SETTINGS", "DEFAULT_OBJECTIVE_NAMES",
           "GENERATION_OBJECTIVE_NAMES", "FAILURE_OBJECTIVE_NAMES",
           "WATCH_OBJECTIVE_NAMES",
           "get_objectives", "standard_space", "evaluate_point"]

#: Every objective the standard evaluator can score.
OBJECTIVES: Tuple[Objective, ...] = (
    Objective("latency_ms", "min", "ms"),
    Objective("throughput_inf_s", "max", "inf/s"),
    Objective("p99_ms", "min", "ms"),
    Objective("power_w", "min", "W"),
    Objective("util_pct", "min", "%"),
    # Generation objectives (autoregressive serving): tail time to
    # first token under the settings' generation workload, and the
    # fleet's aggregate output-token rate.
    Objective("ttft_p99_ms", "min", "ms"),
    Objective("tokens_per_s", "max", "tok/s"),
    # Failure objectives (MTBF/MTTR injection on the serving workload):
    # fleet-time fraction up, and the latency tail of requests that
    # arrived degraded or were retried.
    Objective("availability", "max", ""),
    Objective("p99_degraded_ms", "min", "ms"),
    # Watchdog objectives (an SLO watchdog attached to the same
    # failure-injected run): total minutes under open alerts, and the
    # error budget burned (violations / allowed violations) — how
    # *operable* a design is, not just how fast.
    Objective("alert_minutes", "min", "min"),
    Objective("budget_burn", "min", "x"),
)

#: The CLI/engine default frontier dimensions (>= 3 objectives).
DEFAULT_OBJECTIVE_NAMES: Tuple[str, ...] = (
    "latency_ms", "throughput_inf_s", "p99_ms", "power_w")

#: Workload and environment knobs shared by every point of a sweep.
#: These are part of the cache key: changing any of them re-scores.
DEFAULT_SETTINGS: Dict[str, Any] = {
    "qps": 200.0,          # offered Poisson load for the p99 objective
    "duration_ms": 300.0,  # workload horizon
    "seed": 0,             # workload seed
    "link": "aurora",      # interconnect preset for devices > 1
    "scheduler": "least-loaded",
    # Generation-objective workload (ttft_p99_ms / tokens_per_s).
    # "gen_objectives" gates the whole block: the continuous-batching
    # simulation roughly triples the per-point cost, so callers that
    # select no generation objective (the CLI does this automatically)
    # skip it — the record then simply lacks the two keys.
    "gen_objectives": True,
    "gen_qps": 20.0,       # offered generation load per point
    "gen_prompt": 16,      # prompt tokens per request
    "gen_output": 16,      # output tokens per request
    "gen_slots": 4,        # continuous-batching slots per instance
    # Failure-objective workload (availability / p99_degraded_ms).
    # "fail_objectives" gates the failure-injected rerun of the serving
    # simulation; callers that select neither objective skip it.
    "fail_objectives": True,
    "fail_mtbf_ms": 150.0,  # mean instance up-time
    "fail_mttr_ms": 25.0,   # mean repair duration
    # Watchdog-objective knobs (alert_minutes / budget_burn).
    # "watch_objectives" attaches an SLO watchdog to the failure run
    # above (forcing that run even when neither failure objective is
    # selected); callers that select neither watch objective skip it.
    "watch_objectives": True,
    "watch_slo_ms": 5.0,     # latency SLO the watchdog guards
    "watch_target": 0.99,    # attainment target (error budget = 1%)
    "watch_fast_ms": 50.0,   # fast burn-rate window
    "watch_slow_ms": 200.0,  # slow burn-rate window
    "watch_burn_threshold": 2.0,
}

#: Objectives that require the generation workload simulation.
GENERATION_OBJECTIVE_NAMES: Tuple[str, ...] = ("ttft_p99_ms",
                                               "tokens_per_s")

#: Objectives that require the failure-injected serving simulation.
FAILURE_OBJECTIVE_NAMES: Tuple[str, ...] = ("availability",
                                            "p99_degraded_ms")

#: Objectives that require a watchdog on the failure-injected run.
WATCH_OBJECTIVE_NAMES: Tuple[str, ...] = ("alert_minutes", "budget_burn")


def get_objectives(names: Optional[Tuple[str, ...]] = None
                   ) -> Tuple[Objective, ...]:
    """Resolve objective names (default: the standard four)."""
    names = tuple(names or DEFAULT_OBJECTIVE_NAMES)
    by_name = {o.name: o for o in OBJECTIVES}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise ValueError(
            f"unknown objective(s) {unknown}; available: {sorted(by_name)}")
    return tuple(by_name[n] for n in names)


def standard_space(
    models: Tuple[str, ...] = ("bert-variant", "model2-lhc-trigger"),
    tiles_mha: Tuple[int, ...] = (8, 12, 48),
    tiles_ffn: Tuple[int, ...] = (3, 6),
    formats: Tuple[str, ...] = ("fix8",),
    devices: Tuple[int, ...] = (1,),
    fleets: Tuple[int, ...] = (1,),
    schedulers: Tuple[str, ...] = ("least-loaded",),
) -> SearchSpace:
    """The canonical (SynthParams x model x partitioning x fleet) space."""
    for name in models:
        get_model(name)  # validate zoo keys eagerly, not per worker
    return SearchSpace((
        Axis("model", tuple(models)),
        Axis("tiles_mha", tuple(tiles_mha)),
        Axis("tiles_ffn", tuple(tiles_ffn)),
        Axis("format", tuple(formats)),
        Axis("devices", tuple(devices)),
        Axis("fleet", tuple(fleets)),
        Axis("scheduler", tuple(schedulers)),
    ))


# ---------------------------------------------------------------------------
#: Per-process synthesis memo: workers in a pool each synthesize a
#: (tiles, format) variant at most once, exactly like the cached
#: `default_accelerator` in the experiments.
_SYNTH_MEMO: Dict[Tuple[int, int, str], ProTEA] = {}


def _formats(name: str) -> DatapathFormats:
    if name == "fix8":
        return DatapathFormats.fix8()
    if name == "fix16":
        return DatapathFormats.fix16()
    raise ValueError(f"unknown datapath format {name!r}; "
                     "available: ['fix16', 'fix8']")


def _synthesize(tiles_mha: int, tiles_ffn: int, fmt: str) -> ProTEA:
    key = (tiles_mha, tiles_ffn, fmt)
    accel = _SYNTH_MEMO.get(key)
    if accel is None:
        base = SynthParams()
        ts_mha = max(1, math.ceil(base.max_d_model / tiles_mha))
        ts_ffn = max(1, math.ceil(base.max_d_model / tiles_ffn))
        synth = replace(base, ts_mha=ts_mha, ts_ffn=ts_ffn)
        # Fit is scored, not enforced: an over-budget point must come
        # back as a recorded infeasibility, not a crash mid-synthesis.
        accel = ProTEA.synthesize(synth, formats=_formats(fmt),
                                  enforce_fit=False)
        _SYNTH_MEMO[key] = accel
    return accel


def _analytic_power_w(accel: ProTEA, cfg, latency_ms: float,
                      n_fpgas: int):
    """(total power, workload GOPS, per-board report) for one point.

    Shared by the full evaluator and the closed-form surrogate so the
    two can never disagree on the power axis.
    """
    workload_gops = gops(cfg, latency_ms / 1e3)
    try:
        achieved_gbps = analyze_traffic(accel, cfg).achieved_gbps
    except ResynthesisRequiredError:
        achieved_gbps = 0.0  # model only runs partitioned; skip the term
    per_board = PowerReport.evaluate(
        PowerModel(), accel.resources, accel.clock_mhz,
        latency_s=latency_ms / 1e3, gops=workload_gops,
        achieved_gbps=achieved_gbps)
    return per_board.total_w * n_fpgas, workload_gops, per_board


def _generation_lengths(accel: ProTEA,
                        opts: Mapping[str, Any]) -> Tuple[int, int]:
    """Prompt/output lengths clamped to the point's KV-cache capacity."""
    max_sl = accel.synth.max_seq_len
    prompt = min(int(opts["gen_prompt"]), max(1, max_sl // 2))
    output = min(int(opts["gen_output"]), max(1, max_sl - prompt))
    return prompt, output


def _generation_metrics(accel: ProTEA, cfg, devices: int, fleet: int,
                        opts: Mapping[str, Any]) -> Dict[str, float]:
    """The generation objectives for one design point.

    ``devices == 1``: a token-level continuous-batching simulation over
    the point's fleet (queueing-aware TTFT tail).  ``devices > 1``:
    the pipeline-parallel decode mode (no generation queueing model
    spans device groups yet, so the tail equals the unloaded TTFT).
    """
    from ..serving import (LengthSampler, PoissonArrivals,
                           attach_generation_lengths, simulate_generation,
                           summarize_generation)

    prompt, output = _generation_lengths(accel, opts)
    if devices > 1:
        link = get_link(str(opts["link"]))
        try:
            decode = PipelinePartitioner(accel, link).decode_report(
                cfg, devices, prompt, output)
            return {"ttft_p99_ms": decode.ttft_ms,
                    "tokens_per_s": decode.steady_tokens_per_s * fleet}
        except (ValueError, ResynthesisRequiredError):
            # No pure-pipeline decode split (e.g. fewer layers than
            # devices — the main path may still partition tensor-wise).
            # Decode gains nothing from tensor splits in this model, so
            # score the single-device decode path instead of erroring a
            # point whose other objectives are perfectly feasible.  A
            # model that also cannot fit one device is genuinely
            # unscoreable: raise so the engine records an error record
            # (a NaN objective would be undominatable on the frontier).
            if cfg.num_layers > accel.synth.max_layers:
                raise ValueError(
                    f"{cfg.name}: no pipeline-parallel decode split "
                    f"across {devices} device(s) and the model exceeds "
                    "one device — generation objectives unscoreable"
                ) from None
            rep = accel.generation_report(cfg, prompt, output)
            return {"ttft_p99_ms": rep.ttft_ms,
                    "tokens_per_s": rep.tokens_per_s * fleet}

    arrivals = PoissonArrivals(
        float(opts["gen_qps"]), ModelMix(cfg.name),
        seed=int(opts["seed"])).generate(float(opts["duration_ms"]))
    if not arrivals:
        # Degenerate workload: fall back to the analytic single-request
        # split so the objectives stay defined (and deterministic).
        rep = accel.generation_report(cfg, prompt, output)
        return {"ttft_p99_ms": rep.ttft_ms,
                "tokens_per_s": rep.tokens_per_s * fleet}
    requests = attach_generation_lengths(
        arrivals, LengthSampler("fixed", prompt),
        LengthSampler("fixed", output), seed=int(opts["seed"]),
        max_total=accel.synth.max_seq_len)
    report = summarize_generation(simulate_generation(
        accel, requests, fleet, slots=int(opts["gen_slots"]),
        scheduler=str(opts["scheduler"])))
    return {"ttft_p99_ms": report.p99_ttft_ms,
            "tokens_per_s": report.tokens_per_s}


def evaluate_point(point: Mapping[str, Any],
                   settings: Optional[Mapping[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Score one design point (the engine's standard evaluator).

    Raises for infeasible points; the engine turns that into an error
    record.  Module-level and picklable, so it runs under ``--jobs N``.
    """
    cfg = get_model(str(point["model"]))
    tiles_mha = int(point.get("tiles_mha", 12))
    tiles_ffn = int(point.get("tiles_ffn", 6))
    devices = int(point.get("devices", 1))
    fleet = int(point.get("fleet", 1))
    if devices < 1 or fleet < 1:
        raise ValueError("devices and fleet must be >= 1")
    opts = dict(DEFAULT_SETTINGS, **dict(settings or {}))

    accel = _synthesize(tiles_mha, tiles_ffn, str(point.get("format", "fix8")))
    util_pct = max(accel.utilization.percent.values())
    if util_pct > 100.0:
        worst = max(accel.utilization.percent,
                    key=accel.utilization.percent.get)
        raise ValueError(
            f"does not fit {accel.device.name}: {worst} at {util_pct:.0f}%")

    link = get_link(str(opts["link"]))
    if devices > 1:
        plan = PipelinePartitioner(accel, link).best_plan(cfg, devices)
        latency_ms = plan.latency_ms
        unit_inf_s = plan.steady_state_inf_per_s
        target = PipelineGroup(accel, devices, link=link)
    else:
        report = accel.latency_report(cfg)
        latency_ms = report.latency_ms
        unit_inf_s = 1e3 / latency_ms
        target = accel

    scheduler = str(point.get("scheduler", opts["scheduler"]))
    requests = PoissonArrivals(
        float(opts["qps"]), ModelMix(cfg.name),
        seed=int(opts["seed"])).generate(float(opts["duration_ms"]))
    if not requests:
        raise ValueError(
            "workload generated zero requests — raise qps or duration_ms")
    serving = summarize(simulate(target, requests, fleet,
                                 scheduler=scheduler))

    gen_metrics = (_generation_metrics(accel, cfg, devices, fleet, opts)
                   if opts["gen_objectives"] else {})

    fail_metrics: Dict[str, float] = {}
    watch_metrics: Dict[str, float] = {}
    if opts["fail_objectives"] or opts["watch_objectives"]:
        # Re-run the serving workload with MTBF/MTTR injection (the
        # kernel engine's scenario layer); seeded per instance index,
        # so every point sees the same fault history per replica.  The
        # watch objectives attach an SLO watchdog to this same run —
        # observers are read-only, so sharing it costs nothing and the
        # failure metrics are identical either way.
        from ..sim import FailurePlan

        plan = FailurePlan(
            mtbf_ms=float(opts["fail_mtbf_ms"]),
            mttr_ms=float(opts["fail_mttr_ms"]),
            seed=int(opts["seed"]))
        watchdog = None
        if opts["watch_objectives"]:
            from ..obs import Watchdog

            watchdog = Watchdog(
                slo_ms=float(opts["watch_slo_ms"]),
                target=float(opts["watch_target"]),
                fast_window_ms=float(opts["watch_fast_ms"]),
                slow_window_ms=float(opts["watch_slow_ms"]),
                burn_threshold=float(opts["watch_burn_threshold"]))
        degraded = summarize(simulate(target, requests, fleet,
                                      scheduler=scheduler, failures=plan,
                                      observer=watchdog))
        if opts["fail_objectives"]:
            fail_metrics = {"availability": degraded.availability,
                            "p99_degraded_ms": degraded.p99_degraded_ms}
        if watchdog is not None:
            watch = watchdog.summary()
            watch_metrics = {"alert_minutes": watch["alert_minutes"],
                             "budget_burn": watch["budget_burn"]}

    n_fpgas = devices * fleet
    power_w, workload_gops, per_board = _analytic_power_w(
        accel, cfg, latency_ms, n_fpgas)

    return {
        # objectives
        "latency_ms": latency_ms,
        "throughput_inf_s": unit_inf_s * fleet,
        "p99_ms": serving.p99_ms,
        "power_w": power_w,
        "util_pct": util_pct,
        **gen_metrics,
        **fail_metrics,
        **watch_metrics,
        # supporting metrics
        "clock_mhz": accel.clock_mhz,
        "ts_mha": accel.synth.ts_mha,
        "ts_ffn": accel.synth.ts_ffn,
        "gops": workload_gops,
        "gops_per_w": workload_gops / per_board.total_w,
        "n_fpgas": n_fpgas,
        "measured_rps": serving.throughput_rps,
        "fleet_utilization": serving.utilization,
        "p50_ms": serving.p50_ms,
    }
