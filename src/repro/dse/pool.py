"""Persistent evaluation workers: fork once, stream compact point batches.

The original engine created a fresh ``multiprocessing.Pool`` for every
:func:`~repro.dse.engine.explore` call and pickled the evaluator plus
the full settings dict into *every task* — per-sweep spawn and
per-point serialization that ``BENCH_results.json`` shows eating the
entire parallel win (``dse_parallel_speedup_x`` 0.60–0.99x in every
recorded run since PR 3).  This module is the fix:

* a :class:`PersistentPool` forks its workers **once per
  exploration** and ships the evaluator, the shared settings, and the
  error policy a single time, at spawn;
* thereafter only compact point batches travel parent → worker and
  scored batches travel back — a worker builds its evaluator stack
  (for the standard evaluator: the synthesis memo, model zoo, latency
  tables) on first use and amortizes it over every batch it is handed;
* dispatch is dynamic (next pending batch to the first idle worker)
  but results are assembled **by batch index**, so worker interleaving
  can never reorder, duplicate, or drop a point: a pooled sweep is
  byte-identical to a serial one.

A worker that dies mid-batch (the evaluator calls ``os._exit``,
segfaults, is OOM-killed) fails only the batch it was holding: those
points come back as ``worker died`` error records, a replacement
worker is forked into the slot, and the sweep completes.  The cache is
never touched here — the parent is the cache's single writer, and
workers only ever see points the parent already knows are uncached.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

__all__ = ["PersistentPool"]

#: One scored point as a worker reports it: (metrics, error, wall_s).
PointResult = Tuple[Dict[str, Any], str, float]


def _error_text(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _worker_main(conn, evaluator: Callable, settings: Dict[str, Any],
                 continue_on_error: bool) -> None:
    """Worker loop: evaluate point batches until told to stop.

    The evaluator and settings arrive exactly once, as spawn arguments
    — every later message is just ``("eval", batch_index, points)``.
    With ``continue_on_error`` evaluator exceptions become per-point
    error strings; otherwise the exception object itself is sent back
    for the parent to re-raise.
    """
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                return
            _, batch_index, points = message
            results: List[PointResult] = []
            for point in points:
                t0 = time.perf_counter()
                try:
                    metrics, error = dict(evaluator(point, settings)), ""
                except Exception as exc:  # noqa: BLE001 - DSE tolerates corners
                    if not continue_on_error:
                        try:
                            conn.send(("raise", batch_index, exc))
                        except Exception:  # noqa: BLE001 - unpicklable exc
                            conn.send(("raise", batch_index,
                                       _error_text(exc)))
                        return
                    metrics, error = {}, _error_text(exc)
                results.append((metrics, error, time.perf_counter() - t0))
            try:
                conn.send(("done", batch_index, results))
            except Exception as exc:  # noqa: BLE001 - unpicklable metrics
                conn.send(("done", batch_index,
                           [({}, _error_text(exc), 0.0) for _ in points]))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away — nothing left to report to
    finally:
        conn.close()


class _Worker:
    """One pool slot: its process, parent-side pipe, and stable label."""

    __slots__ = ("slot", "process", "conn")

    def __init__(self, slot: int, process, conn) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn

    @property
    def label(self) -> str:
        return f"worker-{self.slot}"


class PersistentPool:
    """A fixed-size pool of persistent evaluator processes.

    ``jobs`` workers are forked at construction; each receives
    ``(evaluator, settings, continue_on_error)`` once and then serves
    ``map_batches`` calls until :meth:`close`.  The pool survives
    across every batch of one exploration, so per-process state the
    evaluator builds (synthesis memos, model caches) is paid once.
    """

    def __init__(self, evaluator: Callable, settings: Mapping[str, Any],
                 *, jobs: int, continue_on_error: bool = True) -> None:
        if jobs < 2:
            raise ValueError(f"a pool needs jobs >= 2, got {jobs}")
        self._ctx = multiprocessing.get_context()
        self._evaluator = evaluator
        self._settings = dict(settings)
        self._continue_on_error = continue_on_error
        self.jobs = jobs
        #: Workers replaced after dying mid-batch (diagnostics only).
        self.respawns = 0
        self._closed = False
        self._workers = [self._spawn(slot) for slot in range(jobs)]

    # ------------------------------------------------------------------
    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._evaluator, self._settings,
                  self._continue_on_error),
            name=f"dse-worker-{slot}", daemon=True)
        process.start()
        child_conn.close()
        return _Worker(slot, process, parent_conn)

    def _replace(self, worker: _Worker) -> _Worker:
        """Fork a fresh worker into a dead worker's slot."""
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)
        self.respawns += 1
        fresh = self._spawn(worker.slot)
        self._workers[worker.slot] = fresh
        return fresh

    def _dead_batch(self, worker: _Worker,
                    points: Sequence[Mapping[str, Any]]
                    ) -> Tuple[str, List[PointResult]]:
        worker.process.join(timeout=1.0)
        code = worker.process.exitcode
        error = (f"worker died: {worker.label} exited with code {code} "
                 "while evaluating this batch")
        return worker.label, [({}, error, 0.0) for _ in points]

    # ------------------------------------------------------------------
    def map_batches(self, batches: Sequence[Sequence[Dict[str, Any]]]
                    ) -> List[Tuple[str, List[PointResult]]]:
        """Evaluate every batch; return ``(worker_label, results)`` per
        batch, aligned with the input order.

        Dispatch is work-stealing dynamic — the next pending batch goes
        to the first idle worker — but the return value is indexed by
        batch, so scheduling nondeterminism never reaches the results.
        A batch whose worker dies is *not* retried (a deterministic
        crasher would loop forever): its points come back as error
        records and a replacement worker takes the slot.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        pending = deque(enumerate(batches))
        out: List[Tuple[str, List[PointResult]]] = [None] * len(batches)
        inflight: Dict[Any, Tuple[_Worker, int]] = {}
        idle = list(self._workers)
        while pending or inflight:
            while pending and idle:
                worker = idle.pop(0)
                batch_index, points = pending.popleft()
                try:
                    worker.conn.send(("eval", batch_index, list(points)))
                except (OSError, ValueError):
                    # Died while idle: nothing of this batch ran yet, so
                    # one respawn-and-resend is safe (not a retry loop).
                    worker = self._replace(worker)
                    try:
                        worker.conn.send(("eval", batch_index, list(points)))
                    except (OSError, ValueError):
                        out[batch_index] = self._dead_batch(worker, points)
                        idle.append(self._replace(worker))
                        continue
                inflight[worker.conn] = (worker, batch_index)
            if not inflight:
                continue
            for conn in connection.wait(list(inflight)):
                worker, batch_index = inflight.pop(conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    out[batch_index] = self._dead_batch(
                        worker, batches[batch_index])
                    idle.append(self._replace(worker))
                    continue
                if message[0] == "raise":
                    payload = message[2]
                    if isinstance(payload, BaseException):
                        raise payload
                    raise RuntimeError(
                        f"evaluator raised in {worker.label}: {payload}")
                out[batch_index] = (worker.label, message[2])
                idle.append(worker)
        return out

    # ------------------------------------------------------------------
    def close(self, force: bool = False) -> None:
        """Stop every worker (``force`` terminates instead of asking)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if force:
                worker.process.terminate()
                continue
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(force=exc_type is not None)
