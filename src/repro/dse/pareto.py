"""Multi-objective comparison: domination, Pareto fronts, ranking.

Objectives are named and directed (``min`` or ``max``); a result's
objective vector is a plain mapping, so these helpers work on
:class:`~repro.dse.engine.EvalResult` objects and raw dicts alike via
the ``key`` extractor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Sequence

__all__ = ["Objective", "dominates", "pareto_front", "non_dominated_sort"]


@dataclass(frozen=True)
class Objective:
    """One scoring dimension: its metric name and direction."""

    name: str
    goal: str = "min"
    units: str = ""

    def __post_init__(self) -> None:
        if self.goal not in ("min", "max"):
            raise ValueError(
                f"objective {self.name!r}: goal must be 'min' or 'max', "
                f"not {self.goal!r}")

    def better(self, a: float, b: float) -> bool:
        """True when value ``a`` strictly beats ``b`` on this objective."""
        return a < b if self.goal == "min" else a > b


def dominates(a: Mapping[str, float], b: Mapping[str, float],
              objectives: Sequence[Objective]) -> bool:
    """Pareto domination: ``a`` is no worse everywhere, better somewhere."""
    if not objectives:
        raise ValueError("need at least one objective")
    strictly_better = False
    for obj in objectives:
        va, vb = a[obj.name], b[obj.name]
        if obj.better(vb, va):
            return False
        if obj.better(va, vb):
            strictly_better = True
    return strictly_better


def pareto_front(
    items: Sequence[Any],
    objectives: Sequence[Objective],
    key: Callable[[Any], Mapping[str, float]] = lambda item: item,
) -> List[Any]:
    """The non-dominated subset of ``items``, in input order.

    Ties (identical objective vectors) all survive: the frontier is a
    set of *points*, and distinct designs may score identically.
    """
    front: List[Any] = []
    for candidate in items:
        cv = key(candidate)
        if any(dominates(key(other), cv, objectives)
               for other in items if other is not candidate):
            continue
        front.append(candidate)
    return front


def non_dominated_sort(
    items: Sequence[Any],
    objectives: Sequence[Objective],
    key: Callable[[Any], Mapping[str, float]] = lambda item: item,
) -> List[List[Any]]:
    """Peel successive Pareto fronts (rank 0 = the frontier).

    The standard NSGA-style ranking, used by the evolutionary strategy
    to pick parents.  O(n^2) per front — spaces here are small.
    """
    remaining = list(items)
    fronts: List[List[Any]] = []
    while remaining:
        front = pareto_front(remaining, objectives, key)
        fronts.append(front)
        survivors = [it for it in remaining
                     if not any(it is f for f in front)]
        remaining = survivors
    return fronts
