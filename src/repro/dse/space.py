"""Declarative search spaces: named axes, grids, sampling, mutation.

A :class:`SearchSpace` is the *what* of a design-space exploration —
named axes with finite value lists, plus an optional feasibility
constraint — kept strictly separate from the *how* (strategies in
:mod:`.strategies`) and the *scoring* (evaluators such as
:func:`repro.dse.objectives.evaluate_point`).  Everything here is
deterministic: the grid enumerates in axis-declaration order (outer
axes first, exactly like nested loops), and all randomness flows
through a caller-supplied :class:`random.Random`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import product
from random import Random
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple

__all__ = ["Axis", "SearchSpace", "point_id"]


def point_id(point: Mapping[str, Any]) -> str:
    """Stable identity of one design point (axis values by name).

    Canonical JSON with sorted keys, so two dicts with the same
    contents — whatever their insertion order — collapse to one id.
    Non-JSON values fall back to ``repr``, which is stable for the
    value types axes realistically hold.
    """
    return json.dumps(dict(point), sort_keys=True, default=repr)


@dataclass(frozen=True)
class Axis:
    """One named dimension of the space and its candidate values."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis name must be non-empty")
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        object.__setattr__(self, "values", tuple(self.values))

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class SearchSpace:
    """Axes plus an optional feasibility constraint.

    ``constraint(point) -> bool`` prunes structurally-invalid corners
    *before* evaluation (e.g. a tensor-parallel width that does not
    divide the head count); expensive feasibility checks (device fit)
    belong in the evaluator, where failures are recorded per point.
    """

    axes: Tuple[Axis, ...]
    constraint: Optional[Callable[[Dict[str, Any]], bool]] = field(
        default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        if not self.axes:
            raise ValueError("a search space needs at least one axis")
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.axes)

    @property
    def size(self) -> int:
        """Raw grid cardinality (before the constraint prunes)."""
        n = 1
        for a in self.axes:
            n *= len(a)
        return n

    def axis(self, name: str) -> Axis:
        for a in self.axes:
            if a.name == name:
                return a
        raise KeyError(f"no axis named {name!r}; have {list(self.names)}")

    def feasible(self, point: Mapping[str, Any]) -> bool:
        return self.constraint is None or bool(self.constraint(dict(point)))

    # ------------------------------------------------------------------
    def grid(self) -> Iterator[Dict[str, Any]]:
        """Every feasible point, first axis outermost (nested-loop order)."""
        for combo in product(*(a.values for a in self.axes)):
            point = dict(zip(self.names, combo))
            if self.feasible(point):
                yield point

    def sample(self, rng: Random, max_tries: int = 256) -> Dict[str, Any]:
        """One feasible random point (rejection sampling)."""
        for _ in range(max_tries):
            point = {a.name: rng.choice(a.values) for a in self.axes}
            if self.feasible(point):
                return point
        raise ValueError(
            f"could not sample a feasible point in {max_tries} tries — "
            "is the constraint satisfiable?")

    def mutate(self, point: Mapping[str, Any], rng: Random,
               max_tries: int = 64) -> Dict[str, Any]:
        """Flip one axis to a different value (feasibility-preserving)."""
        mutable = [a for a in self.axes if len(a) > 1]
        if not mutable:
            return dict(point)
        for _ in range(max_tries):
            axis = rng.choice(mutable)
            alternatives = [v for v in axis.values if v != point[axis.name]]
            child = dict(point)
            child[axis.name] = rng.choice(alternatives)
            if self.feasible(child):
                return child
        return dict(point)

    def crossover(self, a: Mapping[str, Any], b: Mapping[str, Any],
                  rng: Random, max_tries: int = 64) -> Dict[str, Any]:
        """Uniform crossover of two parents (falls back to parent ``a``)."""
        for _ in range(max_tries):
            child = {ax.name: (a if rng.random() < 0.5 else b)[ax.name]
                     for ax in self.axes}
            if self.feasible(child):
                return child
        return dict(a)

    def validate_point(self, point: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` unless ``point`` lies on the grid."""
        missing = set(self.names) - set(point)
        extra = set(point) - set(self.names)
        if missing or extra:
            raise ValueError(
                f"point keys {sorted(point)} do not match axes "
                f"{list(self.names)}")
        for axis in self.axes:
            if point[axis.name] not in axis.values:
                raise ValueError(
                    f"{axis.name}={point[axis.name]!r} is not one of "
                    f"{list(axis.values)}")
        if not self.feasible(point):
            raise ValueError(f"point {dict(point)} violates the constraint")
