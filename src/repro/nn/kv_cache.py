"""Golden (float64) KV-cache for incremental decoder inference.

Autoregressive generation runs the decoder one token at a time: step
``t`` appends one row to the target sequence and only needs that row of
every sub-layer's output.  Masked self-attention at step ``t`` attends
over positions ``0..t`` — exactly the keys/values already computed at
earlier steps — so a **KV cache** stores each layer's per-head K/V rows
and the step computes one query row against them, instead of re-running
the full ``(t+1) x (t+1)`` masked pass.

:class:`DecoderKVCache` is the float oracle for that dataflow.  It
matches the full-sequence :class:`~repro.nn.decoder.Decoder` forward at
every step to float64 round-off (BLAS kernels may block a single-row
matmul differently from the same row of a full-matrix product, so the
last ulp is not guaranteed — the *fixed-point* cache in
:mod:`repro.core.kv_cache` is the bit-identical oracle).

Cross-attention keys/values depend only on the encoder memory, so they
are computed once at cache construction and reused by every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .decoder import Decoder
from .functional import attention_scale, layer_norm, softmax

__all__ = ["LayerKVCache", "DecoderKVCache"]


@dataclass
class LayerKVCache:
    """One decoder layer's cached state.

    ``self_k``/``self_v`` grow by one row per step (per head);
    ``cross_k``/``cross_v`` are the fixed encoder-memory projections.
    """

    self_k: List[np.ndarray]
    self_v: List[np.ndarray]
    cross_k: List[np.ndarray]
    cross_v: List[np.ndarray]

    @property
    def seq_len(self) -> int:
        return self.self_k[0].shape[0] if self.self_k else 0


@dataclass
class DecoderKVCache:
    """Incremental decoding state over a :class:`Decoder` stack."""

    decoder: Decoder
    memory: np.ndarray
    layers: List[LayerKVCache] = field(default_factory=list)

    @classmethod
    def initialize(cls, decoder: Decoder, memory: np.ndarray
                   ) -> "DecoderKVCache":
        """Empty cache with the cross-attention K/V precomputed."""
        memory = np.asarray(memory, dtype=np.float64)
        layers = []
        for layer in decoder.layers:
            ca = layer.cross_attention
            d_k = ca.d_k
            layers.append(LayerKVCache(
                self_k=[np.empty((0, d_k)) for _ in range(ca.num_heads)],
                self_v=[np.empty((0, d_k)) for _ in range(ca.num_heads)],
                cross_k=[ca.wk[h](memory) for h in range(ca.num_heads)],
                cross_v=[ca.wv[h](memory) for h in range(ca.num_heads)],
            ))
        return cls(decoder=decoder, memory=memory, layers=layers)

    @property
    def seq_len(self) -> int:
        """Tokens decoded so far."""
        return self.layers[0].seq_len if self.layers else 0

    # ------------------------------------------------------------------
    def step(self, x_row: np.ndarray) -> np.ndarray:
        """Decode one token: append its K/V, return its output row.

        ``x_row`` is the newest target position's embedding, shape
        ``(d_model,)`` or ``(1, d_model)``.  Equivalent to running the
        full-sequence decoder over all rows so far and keeping the last
        output row — without the quadratic recompute.
        """
        x = np.asarray(x_row, dtype=np.float64).reshape(1, -1)
        for layer, cache in zip(self.decoder.layers, self.layers):
            sa = layer.self_attention
            d_model = x.shape[1]
            scale = attention_scale(sa.d_k, d_model, sa.scale_mode)
            heads = []
            for h in range(sa.num_heads):
                q = sa.wq[h](x)
                cache.self_k[h] = np.concatenate(
                    [cache.self_k[h], sa.wk[h](x)])
                cache.self_v[h] = np.concatenate(
                    [cache.self_v[h], sa.wv[h](x)])
                # Newest row: every cached position is past-or-current,
                # so no mask lane exists to fill.
                w = softmax((q @ cache.self_k[h].T) * scale, axis=-1)
                heads.append(w @ cache.self_v[h])
            attn = sa.wo(np.concatenate(heads, axis=-1))
            h1 = layer_norm(x + attn, layer.ln1_gamma, layer.ln1_beta,
                            layer.eps)

            ca = layer.cross_attention
            c_scale = attention_scale(ca.d_k, d_model, ca.scale_mode)
            c_heads = []
            for h in range(ca.num_heads):
                q = ca.wq[h](h1)
                w = softmax((q @ cache.cross_k[h].T) * c_scale, axis=-1)
                c_heads.append(w @ cache.cross_v[h])
            cross = ca.wo(np.concatenate(c_heads, axis=-1))
            h2 = layer_norm(h1 + cross, layer.ln2_gamma, layer.ln2_beta,
                            layer.eps)

            x = layer_norm(h2 + layer.ffn(h2), layer.ln3_gamma,
                           layer.ln3_beta, layer.eps)
        return x

    def prefill(self, prompt: np.ndarray) -> np.ndarray:
        """Decode every prompt row in order; returns all output rows."""
        prompt = np.asarray(prompt, dtype=np.float64)
        if prompt.ndim != 2 or prompt.shape[0] < 1:
            raise ValueError("prompt must be a non-empty (SL, d) matrix")
        return np.concatenate([self.step(row) for row in prompt])
