"""Golden float transformer reference — the correctness oracle.

Provides the encoder stack (Fig. 1), multi-head attention (Fig. 2),
model zoo configurations used in the evaluation, and the weight
store/extractor that stands in for the paper's PyTorch ``.pth`` flow.
"""

from .attention import AttentionTrace, MultiHeadAttention
from .decoder import CrossAttention, Decoder, DecoderLayer, causal_mask
from .embedding import Embedding, sinusoidal_positional_encoding
from .encoder import ACTIVATIONS, Encoder, EncoderLayer, FeedForward
from .functional import (
    attention_scale,
    causal_fill,
    gelu,
    layer_norm,
    relu,
    scaled_dot_product_attention,
    score_mask_value,
    softmax,
)
from .kv_cache import DecoderKVCache, LayerKVCache
from .linear import Linear, xavier_uniform
from .model_zoo import BERT_VARIANT, MODEL_ZOO, TransformerConfig, get_model, table1_tests
from .weights import (
    ExtractedParams,
    build_encoder,
    encoder_state_dict,
    extract_hyperparameters,
    load_encoder,
    save_encoder,
)

__all__ = [
    "softmax",
    "relu",
    "gelu",
    "layer_norm",
    "scaled_dot_product_attention",
    "attention_scale",
    "score_mask_value",
    "causal_fill",
    "DecoderKVCache",
    "LayerKVCache",
    "Linear",
    "xavier_uniform",
    "MultiHeadAttention",
    "AttentionTrace",
    "CrossAttention",
    "Decoder",
    "DecoderLayer",
    "causal_mask",
    "FeedForward",
    "EncoderLayer",
    "Encoder",
    "ACTIVATIONS",
    "Embedding",
    "sinusoidal_positional_encoding",
    "TransformerConfig",
    "MODEL_ZOO",
    "BERT_VARIANT",
    "get_model",
    "table1_tests",
    "build_encoder",
    "encoder_state_dict",
    "save_encoder",
    "load_encoder",
    "extract_hyperparameters",
    "ExtractedParams",
]
