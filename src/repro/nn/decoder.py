"""Golden transformer decoder (Fig. 1, decoder side).

The paper's future-work target: "extend the architecture to support
both encoder and decoder layers of the transformer, using the same
design principles."  This module provides the float oracle for that
extension: masked self-attention (so position *i* cannot see *j > i*),
encoder–decoder cross attention, and the position-wise FFN, each with
its residual + post-layer-norm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .attention import MultiHeadAttention
from .encoder import FeedForward
from .functional import attention_scale, layer_norm, score_mask_value, softmax
from .linear import Linear

__all__ = ["causal_mask", "CrossAttention", "DecoderLayer", "Decoder"]


def causal_mask(seq_len: int, dtype=np.float64) -> np.ndarray:
    """Additive mask blocking future positions (upper triangle).

    The mask value is the *dtype's* finite minimum (see
    :func:`~repro.nn.functional.score_mask_value`), so adding it forces
    a masked score to the score format's minimum without ever leaving
    the representable range — a fixed ``-1e30`` breaks under float32
    downcasts.
    """
    if seq_len < 1:
        raise ValueError("seq_len must be positive")
    fill = score_mask_value(dtype)
    return np.triu(np.full((seq_len, seq_len), fill, dtype=dtype), k=1)


@dataclass
class CrossAttention:
    """Encoder–decoder attention: queries from the decoder state,
    keys/values from the encoder memory.

    Stored per head exactly like :class:`MultiHeadAttention` so the
    accelerator can reuse the same per-head engine layout.
    """

    wq: List[Linear]
    wk: List[Linear]
    wv: List[Linear]
    wo: Linear
    scale_mode: str = "sqrt_dk"

    @classmethod
    def initialize(
        cls, rng: np.random.Generator, d_model: int, num_heads: int,
        scale_mode: str = "sqrt_dk",
    ) -> "CrossAttention":
        if d_model % num_heads:
            raise ValueError("d_model must be divisible by num_heads")
        d_k = d_model // num_heads
        mk = lambda: Linear.initialize(rng, d_model, d_k)  # noqa: E731
        return cls(
            wq=[mk() for _ in range(num_heads)],
            wk=[mk() for _ in range(num_heads)],
            wv=[mk() for _ in range(num_heads)],
            wo=Linear.initialize(rng, d_model, d_model),
            scale_mode=scale_mode,
        )

    @property
    def num_heads(self) -> int:
        return len(self.wq)

    @property
    def d_k(self) -> int:
        return self.wq[0].out_features

    def __call__(self, x: np.ndarray, memory: np.ndarray) -> np.ndarray:
        """Attend decoder positions (``x``) over encoder ``memory``."""
        x = np.asarray(x, dtype=np.float64)
        memory = np.asarray(memory, dtype=np.float64)
        if x.shape[1] != memory.shape[1]:
            raise ValueError("decoder state and memory widths differ")
        d_model = x.shape[1]
        scale = attention_scale(self.d_k, d_model, self.scale_mode)
        heads = []
        for i in range(self.num_heads):
            q = self.wq[i](x)
            k = self.wk[i](memory)
            v = self.wv[i](memory)
            w = softmax((q @ k.T) * scale, axis=-1)
            heads.append(w @ v)
        return self.wo(np.concatenate(heads, axis=-1))


@dataclass
class DecoderLayer:
    """Masked self-attention + cross attention + FFN (post-LN)."""

    self_attention: MultiHeadAttention
    cross_attention: CrossAttention
    ffn: FeedForward
    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray
    ln3_gamma: np.ndarray
    ln3_beta: np.ndarray
    eps: float = 1e-5

    @classmethod
    def initialize(
        cls, rng: np.random.Generator, d_model: int, num_heads: int,
        d_ff: Optional[int] = None, activation: str = "gelu",
        scale_mode: str = "sqrt_dk",
    ) -> "DecoderLayer":
        ones, zeros = np.ones(d_model), np.zeros(d_model)
        return cls(
            self_attention=MultiHeadAttention.initialize(
                rng, d_model, num_heads, scale_mode),
            cross_attention=CrossAttention.initialize(
                rng, d_model, num_heads, scale_mode),
            ffn=FeedForward.initialize(rng, d_model, d_ff, activation),
            ln1_gamma=ones.copy(), ln1_beta=zeros.copy(),
            ln2_gamma=ones.copy(), ln2_beta=zeros.copy(),
            ln3_gamma=ones.copy(), ln3_beta=zeros.copy(),
        )

    def __call__(self, x: np.ndarray, memory: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        mask = causal_mask(x.shape[0])
        h1 = layer_norm(x + self.self_attention(x, mask=mask),
                        self.ln1_gamma, self.ln1_beta, self.eps)
        h2 = layer_norm(h1 + self.cross_attention(h1, memory),
                        self.ln2_gamma, self.ln2_beta, self.eps)
        return layer_norm(h2 + self.ffn(h2),
                          self.ln3_gamma, self.ln3_beta, self.eps)


@dataclass
class Decoder:
    """A stack of ``N`` identical decoder layers."""

    layers: List[DecoderLayer] = field(default_factory=list)

    @classmethod
    def initialize(
        cls, rng: np.random.Generator, num_layers: int, d_model: int,
        num_heads: int, d_ff: Optional[int] = None, activation: str = "gelu",
        scale_mode: str = "sqrt_dk",
    ) -> "Decoder":
        return cls(layers=[
            DecoderLayer.initialize(rng, d_model, num_heads, d_ff,
                                    activation, scale_mode)
            for _ in range(num_layers)
        ])

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def __call__(self, x: np.ndarray, memory: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x, memory)
        return x
