"""Reference (float64 NumPy) neural-network primitives.

These are the *golden* definitions the fixed-point accelerator is
validated against.  Shapes follow the paper: activations are
``(SL, d_model)`` row-major matrices (sequence length × embedding dim),
weights are ``(in_features, out_features)`` so a linear layer is a
plain ``x @ w + b``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "relu",
    "gelu",
    "layer_norm",
    "scaled_dot_product_attention",
    "attention_scale",
    "score_mask_value",
    "causal_fill",
]


def score_mask_value(dtype=np.float64) -> float:
    """The masked-score fill for a float score dtype: its finite minimum.

    A fixed ``-1e30`` is only safe in float64: under a float32 downcast
    repeated mask application can leave the representable range and
    turn scores into ``-inf``/NaN, which then breaks the fixed-point
    score-clamp contract (quantizers saturate *finite* values).  The
    dtype's own minimum is always finite, always saturates, and still
    underflows ``exp`` to exactly ``0.0`` after the row-max subtraction.
    """
    return float(np.finfo(np.dtype(dtype)).min)


def causal_fill(scores: np.ndarray, fill) -> np.ndarray:
    """Force strictly-future score positions to ``fill``.

    The mask unit's semantics, shared by the golden float path (``fill =
    score_mask_value(dtype)``) and the fixed-point path in
    :mod:`repro.core.decoder_module` (``fill = score_fmt.int_min``): one
    comparator per score lane forces position ``(i, j > i)`` to the
    score representation's minimum.  Rows index the query (newest-last),
    columns the keys; non-square inputs are aligned on the last row, so
    a single-row decode step (``1 x cache_len``) masks nothing.
    """
    out = np.array(scores, copy=True)
    if out.ndim != 2:
        raise ValueError("causal_fill expects a 2-D score matrix")
    rows, cols = out.shape
    iu = np.triu_indices(rows, k=1 + (cols - rows), m=cols)
    out[iu] = fill
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=np.float64), 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Exact GELU using the Gaussian CDF (erf form)."""
    from scipy.special import erf

    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + erf(x / np.sqrt(2.0)))


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Layer normalization over the last axis."""
    x = np.asarray(x, dtype=np.float64)
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    return gamma * (x - mean) / np.sqrt(var + eps) + beta


def attention_scale(d_k: int, d_model: int, mode: str = "sqrt_dk") -> float:
    """Score scaling factor.

    ``"sqrt_dk"`` is Eq. (1) of the paper (and Vaswani et al.):
    ``1/sqrt(d_k)``.  ``"paper_alg2"`` replicates the paper's
    Algorithm 2 line 9, which divides by the embedding dimension
    instead — kept selectable so the hardware simulation can be run
    exactly as published.
    """
    if mode == "sqrt_dk":
        return 1.0 / np.sqrt(float(d_k))
    if mode == "paper_alg2":
        return 1.0 / float(d_model)
    raise ValueError(f"unknown scale mode {mode!r}")


def scaled_dot_product_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None = None,
    scale: float | None = None,
) -> np.ndarray:
    """``softmax(mask(q kᵀ · scale)) v`` for one head.

    Parameters
    ----------
    q, k, v:
        ``(SL, d_k)`` matrices.
    mask:
        Optional additive mask broadcastable to ``(SL, SL)`` (use
        ``-inf`` / very negative entries to block positions).
    scale:
        Score multiplier; defaults to ``1/sqrt(d_k)``.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    scores = (q @ k.T) * scale
    if mask is not None:
        scores = scores + mask
    return softmax(scores, axis=-1) @ v
