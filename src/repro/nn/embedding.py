"""Token embedding and sinusoidal positional encoding (Fig. 1 front-end)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Embedding", "sinusoidal_positional_encoding"]


def sinusoidal_positional_encoding(seq_len: int, d_model: int) -> np.ndarray:
    """The Vaswani et al. fixed sin/cos positional encoding.

    ``PE[pos, 2i] = sin(pos / 10000^(2i/d))``,
    ``PE[pos, 2i+1] = cos(pos / 10000^(2i/d))``.
    """
    if seq_len < 1 or d_model < 1:
        raise ValueError("seq_len and d_model must be positive")
    positions = np.arange(seq_len, dtype=np.float64)[:, None]
    dims = np.arange(d_model, dtype=np.float64)[None, :]
    angle_rates = 1.0 / np.power(10000.0, (2.0 * (dims // 2)) / d_model)
    angles = positions * angle_rates
    pe = np.empty((seq_len, d_model), dtype=np.float64)
    pe[:, 0::2] = np.sin(angles[:, 0::2])
    pe[:, 1::2] = np.cos(angles[:, 1::2])
    return pe


@dataclass
class Embedding:
    """Token-id → embedding lookup plus positional encoding.

    Attributes
    ----------
    table:
        ``(vocab_size, d_model)`` embedding matrix.
    add_positional:
        Whether to add the sinusoidal positional encoding (the paper's
        front-end always does).
    """

    table: np.ndarray
    add_positional: bool = True

    def __post_init__(self) -> None:
        self.table = np.asarray(self.table, dtype=np.float64)
        if self.table.ndim != 2:
            raise ValueError("embedding table must be 2-D")

    @property
    def vocab_size(self) -> int:
        return self.table.shape[0]

    @property
    def d_model(self) -> int:
        return self.table.shape[1]

    @classmethod
    def initialize(
        cls, rng: np.random.Generator, vocab_size: int, d_model: int
    ) -> "Embedding":
        return cls(table=rng.normal(0.0, 0.02, size=(vocab_size, d_model)))

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 1:
            raise ValueError("token_ids must be a 1-D sequence")
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.vocab_size):
            raise ValueError("token id out of vocabulary range")
        x = self.table[token_ids]
        if self.add_positional:
            x = x + sinusoidal_positional_encoding(len(token_ids), self.d_model)
        return x
