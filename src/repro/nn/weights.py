"""Weight store and trained-model parameter extraction.

The paper's deployment flow: "TNN models are trained using the PyTorch
framework, and the resulting models should be saved as '.pth' files.
These files are then processed by a Python interpreter to extract key
parameters" (Section IV-D).  Torch is unavailable offline, so the store
round-trips through ``.npz`` with the same key schema a BERT-style
state dict uses; :func:`extract_hyperparameters` performs the "Python
interpreter" role of recovering ``(h, N, d_model, SL)`` from a saved
model — which is what the MicroBlaze software consumes.
"""

from __future__ import annotations

import io
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Union

import numpy as np

from .attention import MultiHeadAttention
from .encoder import Encoder, EncoderLayer, FeedForward
from .linear import Linear
from .model_zoo import TransformerConfig

__all__ = [
    "encoder_state_dict",
    "save_encoder",
    "load_encoder",
    "extract_hyperparameters",
    "build_encoder",
    "ExtractedParams",
]


def build_encoder(
    config: TransformerConfig, seed: int = 0
) -> Encoder:
    """Randomly initialize a golden encoder matching ``config``."""
    rng = np.random.default_rng(seed)
    return Encoder.initialize(
        rng,
        num_layers=config.num_layers,
        d_model=config.d_model,
        num_heads=config.num_heads,
        d_ff=config.d_ff,
        activation=config.activation,
        scale_mode=config.scale_mode,
    )


def encoder_state_dict(encoder: Encoder) -> Dict[str, np.ndarray]:
    """Flatten an encoder into a ``name -> array`` state dict.

    Key schema (mirrors a per-head-projection BERT export)::

        layer{L}.attn.head{i}.{wq|wk|wv}.{weight|bias}
        layer{L}.attn.wo.{weight|bias}
        layer{L}.ffn.{w1|w2}.{weight|bias}
        layer{L}.{ln1|ln2}.{gamma|beta}
    """
    state: Dict[str, np.ndarray] = {}
    for li, layer in enumerate(encoder.layers):
        p = f"layer{li}"
        for hi in range(layer.attention.num_heads):
            for nm, lins in (("wq", layer.attention.wq),
                             ("wk", layer.attention.wk),
                             ("wv", layer.attention.wv)):
                state[f"{p}.attn.head{hi}.{nm}.weight"] = lins[hi].weight
                state[f"{p}.attn.head{hi}.{nm}.bias"] = lins[hi].bias
        state[f"{p}.attn.wo.weight"] = layer.attention.wo.weight
        state[f"{p}.attn.wo.bias"] = layer.attention.wo.bias
        state[f"{p}.ffn.w1.weight"] = layer.ffn.w1.weight
        state[f"{p}.ffn.w1.bias"] = layer.ffn.w1.bias
        state[f"{p}.ffn.w2.weight"] = layer.ffn.w2.weight
        state[f"{p}.ffn.w2.bias"] = layer.ffn.w2.bias
        state[f"{p}.ln1.gamma"] = layer.ln1_gamma
        state[f"{p}.ln1.beta"] = layer.ln1_beta
        state[f"{p}.ln2.gamma"] = layer.ln2_gamma
        state[f"{p}.ln2.beta"] = layer.ln2_beta
    return state


def save_encoder(
    encoder: Encoder,
    path: Union[str, Path, io.BytesIO],
    config: TransformerConfig | None = None,
) -> None:
    """Persist an encoder (and optionally its workload metadata)."""
    state = encoder_state_dict(encoder)
    if config is not None:
        state["__meta.seq_len"] = np.asarray(config.seq_len)
        state["__meta.activation"] = np.frombuffer(
            config.activation.encode(), dtype=np.uint8
        )
    np.savez(path, **state)


@dataclass(frozen=True)
class ExtractedParams:
    """Hyper-parameters recovered from a saved model — exactly the
    quantities the MicroBlaze writes into ProTEA's config registers."""

    num_heads: int
    num_layers: int
    d_model: int
    d_ff: int
    seq_len: int | None = None


def extract_hyperparameters(
    path_or_state: Union[str, Path, io.BytesIO, Dict[str, np.ndarray]],
) -> ExtractedParams:
    """Recover ``(h, N, d_model, d_ff[, SL])`` from a saved state dict.

    This is the "Python interpreter" step of Section IV-D: runtime
    programming needs only these scalars, never a resynthesis.
    """
    if isinstance(path_or_state, dict):
        state = dict(path_or_state)
    else:
        with np.load(path_or_state) as z:
            state = {k: z[k] for k in z.files}
    layer_ids = set()
    head_ids = set()
    for key in state:
        m = re.match(r"layer(\d+)\.", key)
        if m:
            layer_ids.add(int(m.group(1)))
        m = re.match(r"layer0\.attn\.head(\d+)\.", key)
        if m:
            head_ids.add(int(m.group(1)))
    if not layer_ids or not head_ids:
        raise ValueError("state dict does not contain a recognizable encoder")
    wq = state["layer0.attn.head0.wq.weight"]
    w1 = state["layer0.ffn.w1.weight"]
    seq_len = None
    if "__meta.seq_len" in state:
        seq_len = int(state["__meta.seq_len"])
    return ExtractedParams(
        num_heads=len(head_ids),
        num_layers=len(layer_ids),
        d_model=int(wq.shape[0]),
        d_ff=int(w1.shape[1]),
        seq_len=seq_len,
    )


def load_encoder(
    path: Union[str, Path, io.BytesIO],
    activation: str = "gelu",
    scale_mode: str = "sqrt_dk",
) -> Encoder:
    """Rebuild a golden encoder from a saved state dict."""
    with np.load(path) as z:
        state = {k: z[k] for k in z.files}
    if "__meta.activation" in state:
        activation = bytes(state["__meta.activation"]).decode()
    params = extract_hyperparameters(state)
    layers = []
    for li in range(params.num_layers):
        p = f"layer{li}"
        heads_q, heads_k, heads_v = [], [], []
        for hi in range(params.num_heads):
            heads_q.append(Linear(state[f"{p}.attn.head{hi}.wq.weight"],
                                  state[f"{p}.attn.head{hi}.wq.bias"]))
            heads_k.append(Linear(state[f"{p}.attn.head{hi}.wk.weight"],
                                  state[f"{p}.attn.head{hi}.wk.bias"]))
            heads_v.append(Linear(state[f"{p}.attn.head{hi}.wv.weight"],
                                  state[f"{p}.attn.head{hi}.wv.bias"]))
        attn = MultiHeadAttention(
            wq=heads_q, wk=heads_k, wv=heads_v,
            wo=Linear(state[f"{p}.attn.wo.weight"], state[f"{p}.attn.wo.bias"]),
            scale_mode=scale_mode,
        )
        ffn = FeedForward(
            w1=Linear(state[f"{p}.ffn.w1.weight"], state[f"{p}.ffn.w1.bias"]),
            w2=Linear(state[f"{p}.ffn.w2.weight"], state[f"{p}.ffn.w2.bias"]),
            activation=activation,
        )
        layers.append(EncoderLayer(
            attention=attn,
            ffn=ffn,
            ln1_gamma=state[f"{p}.ln1.gamma"], ln1_beta=state[f"{p}.ln1.beta"],
            ln2_gamma=state[f"{p}.ln2.gamma"], ln2_beta=state[f"{p}.ln2.beta"],
        ))
    return Encoder(layers=layers)
