"""Golden transformer encoder layer and stack (Fig. 1, encoder side)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .attention import MultiHeadAttention
from .functional import gelu, layer_norm, relu
from .linear import Linear

__all__ = ["FeedForward", "EncoderLayer", "Encoder", "ACTIVATIONS"]

ACTIVATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": relu,
    "gelu": gelu,
}


@dataclass
class FeedForward:
    """Position-wise FFN: ``act(x W1 + b1) W2 + b2``.

    ``d_ff`` is conventionally ``4 * d_model`` (the paper hard-codes the
    4x expansion in its FFN tiling).
    """

    w1: Linear
    w2: Linear
    activation: str = "gelu"

    def __post_init__(self) -> None:
        if self.w1.out_features != self.w2.in_features:
            raise ValueError("FFN inner dimensions do not match")
        if self.activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {self.activation!r}")

    @property
    def d_model(self) -> int:
        return self.w1.in_features

    @property
    def d_ff(self) -> int:
        return self.w1.out_features

    @classmethod
    def initialize(
        cls,
        rng: np.random.Generator,
        d_model: int,
        d_ff: Optional[int] = None,
        activation: str = "gelu",
    ) -> "FeedForward":
        d_ff = 4 * d_model if d_ff is None else d_ff
        return cls(
            w1=Linear.initialize(rng, d_model, d_ff),
            w2=Linear.initialize(rng, d_ff, d_model),
            activation=activation,
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.w2(ACTIVATIONS[self.activation](self.w1(x)))


@dataclass
class EncoderLayer:
    """One encoder layer: MHA + Add&Norm + FFN + Add&Norm (post-LN).

    The paper's hardware places a layer-norm after the attention output
    projection (its ``FFN1_CE``) and after the final FFN linear (its
    ``FFN3_CE``); this is the standard post-LN BERT arrangement and is
    mirrored here.
    """

    attention: MultiHeadAttention
    ffn: FeedForward
    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray
    eps: float = 1e-5

    @classmethod
    def initialize(
        cls,
        rng: np.random.Generator,
        d_model: int,
        num_heads: int,
        d_ff: Optional[int] = None,
        activation: str = "gelu",
        scale_mode: str = "sqrt_dk",
    ) -> "EncoderLayer":
        return cls(
            attention=MultiHeadAttention.initialize(rng, d_model, num_heads, scale_mode),
            ffn=FeedForward.initialize(rng, d_model, d_ff, activation),
            ln1_gamma=np.ones(d_model),
            ln1_beta=np.zeros(d_model),
            ln2_gamma=np.ones(d_model),
            ln2_beta=np.zeros(d_model),
        )

    def __call__(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        attn = self.attention(x, mask=mask)
        h = layer_norm(x + attn, self.ln1_gamma, self.ln1_beta, self.eps)
        out = layer_norm(h + self.ffn(h), self.ln2_gamma, self.ln2_beta, self.eps)
        return out


@dataclass
class Encoder:
    """A stack of ``N`` identical encoder layers."""

    layers: List[EncoderLayer] = field(default_factory=list)

    @classmethod
    def initialize(
        cls,
        rng: np.random.Generator,
        num_layers: int,
        d_model: int,
        num_heads: int,
        d_ff: Optional[int] = None,
        activation: str = "gelu",
        scale_mode: str = "sqrt_dk",
    ) -> "Encoder":
        return cls(
            layers=[
                EncoderLayer.initialize(
                    rng, d_model, num_heads, d_ff, activation, scale_mode
                )
                for _ in range(num_layers)
            ]
        )

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def __call__(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        for layer in self.layers:
            x = layer(x, mask=mask)
        return x
