"""Linear layer and parameter initialization helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Linear", "xavier_uniform"]


def xavier_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a weight matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


@dataclass
class Linear:
    """A dense layer ``y = x @ weight + bias``.

    ``weight`` has shape ``(in_features, out_features)`` — the same
    orientation the accelerator tiles along (columns = output
    neurons, matching Fig. 5/6 of the paper).
    """

    weight: np.ndarray
    bias: np.ndarray

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float64)
        self.bias = np.asarray(self.bias, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be 2-D")
        if self.bias.shape != (self.weight.shape[1],):
            raise ValueError(
                f"bias shape {self.bias.shape} does not match "
                f"out_features {self.weight.shape[1]}"
            )

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    @classmethod
    def initialize(
        cls, rng: np.random.Generator, in_features: int, out_features: int
    ) -> "Linear":
        """Xavier-initialized weights, zero bias."""
        return cls(
            weight=xavier_uniform(rng, in_features, out_features),
            bias=np.zeros(out_features),
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return x @ self.weight + self.bias
