"""Golden multi-head attention (Fig. 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .functional import attention_scale, scaled_dot_product_attention, softmax
from .linear import Linear

__all__ = ["MultiHeadAttention", "AttentionTrace"]


@dataclass
class AttentionTrace:
    """Intermediate tensors of one MHA forward pass.

    Exposed so the accelerator's per-engine outputs (Q/K/V, scores,
    attention-weighted values) can be checked stage by stage rather
    than only end to end.
    """

    q: List[np.ndarray]
    k: List[np.ndarray]
    v: List[np.ndarray]
    scores: List[np.ndarray]
    weights: List[np.ndarray]
    head_outputs: List[np.ndarray]
    concat: np.ndarray
    output: np.ndarray


@dataclass
class MultiHeadAttention:
    """``h`` parallel scaled-dot-product heads + output projection.

    Per-head projections are stored as separate ``(d_model, d_k)``
    matrices (``wq[i]``…) because that is exactly how the accelerator
    stores them — one weight buffer per head engine.
    """

    wq: List[Linear]
    wk: List[Linear]
    wv: List[Linear]
    wo: Linear
    scale_mode: str = "sqrt_dk"

    def __post_init__(self) -> None:
        n = len(self.wq)
        if not (len(self.wk) == len(self.wv) == n) or n == 0:
            raise ValueError("need equal, non-zero numbers of per-head projections")
        d_k = self.wq[0].out_features
        for lin in (*self.wq, *self.wk, *self.wv):
            if lin.out_features != d_k:
                raise ValueError("all heads must share d_k")
        if self.wo.in_features != n * d_k:
            raise ValueError("output projection must accept h*d_k features")

    # ------------------------------------------------------------------
    @property
    def num_heads(self) -> int:
        return len(self.wq)

    @property
    def d_k(self) -> int:
        return self.wq[0].out_features

    @property
    def d_model(self) -> int:
        return self.wq[0].in_features

    @classmethod
    def initialize(
        cls,
        rng: np.random.Generator,
        d_model: int,
        num_heads: int,
        scale_mode: str = "sqrt_dk",
    ) -> "MultiHeadAttention":
        """Random Xavier weights for ``num_heads`` heads of ``d_model/h``."""
        if d_model % num_heads:
            raise ValueError("d_model must be divisible by num_heads")
        d_k = d_model // num_heads
        mk = lambda: Linear.initialize(rng, d_model, d_k)  # noqa: E731
        return cls(
            wq=[mk() for _ in range(num_heads)],
            wk=[mk() for _ in range(num_heads)],
            wv=[mk() for _ in range(num_heads)],
            wo=Linear.initialize(rng, d_model, d_model),
            scale_mode=scale_mode,
        )

    # ------------------------------------------------------------------
    def forward_trace(
        self, x: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> AttentionTrace:
        """Forward pass retaining every intermediate (for validation)."""
        x = np.asarray(x, dtype=np.float64)
        scale = attention_scale(self.d_k, self.d_model, self.scale_mode)
        qs, ks, vs, scs, ws, outs = [], [], [], [], [], []
        for i in range(self.num_heads):
            q, k, v = self.wq[i](x), self.wk[i](x), self.wv[i](x)
            scores = (q @ k.T) * scale
            if mask is not None:
                scores = scores + mask
            w = softmax(scores, axis=-1)
            qs.append(q); ks.append(k); vs.append(v)
            scs.append(scores); ws.append(w)
            outs.append(w @ v)
        concat = np.concatenate(outs, axis=-1)
        return AttentionTrace(qs, ks, vs, scs, ws, outs, concat, self.wo(concat))

    def __call__(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Attention output (projection of concatenated heads)."""
        x = np.asarray(x, dtype=np.float64)
        scale = attention_scale(self.d_k, self.d_model, self.scale_mode)
        heads = [
            scaled_dot_product_attention(
                self.wq[i](x), self.wk[i](x), self.wv[i](x), mask=mask, scale=scale
            )
            for i in range(self.num_heads)
        ]
        return self.wo(np.concatenate(heads, axis=-1))
