"""Named transformer configurations used throughout the evaluation.

``BERT_VARIANT`` is the paper's primary workload (Section V: "a variant
of BERT ... 768, 8, 12, and 64").  ``MODEL_1``–``MODEL_4`` are the four
TNN models of Tables II/III, whose hyper-parameters come from the cited
competitor papers; where a cited paper does not state a parameter we
pick the closest conventional value and note it (these models' absolute
sizes only affect absolute ms, not who wins).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["TransformerConfig", "MODEL_ZOO", "BERT_VARIANT", "get_model", "table1_tests"]


@dataclass(frozen=True)
class TransformerConfig:
    """Hyper-parameters of an encoder-only transformer workload.

    These are exactly the four runtime-programmable parameters of
    ProTEA plus the static choices (activation, d_ff multiple).
    """

    name: str
    d_model: int
    num_heads: int
    num_layers: int
    seq_len: int
    d_ff: int = 0  # 0 → 4*d_model
    activation: str = "gelu"
    scale_mode: str = "sqrt_dk"
    notes: str = ""

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads:
            raise ValueError(
                f"{self.name}: d_model={self.d_model} not divisible by "
                f"num_heads={self.num_heads}"
            )
        if min(self.d_model, self.num_heads, self.num_layers, self.seq_len) < 1:
            raise ValueError(f"{self.name}: all dimensions must be positive")
        if self.d_ff == 0:
            object.__setattr__(self, "d_ff", 4 * self.d_model)

    @property
    def d_k(self) -> int:
        """Per-head dimension ``d_model / h``."""
        return self.d_model // self.num_heads

    def with_(self, **kwargs) -> "TransformerConfig":
        """Functional update (keeps frozen semantics)."""
        return replace(self, **kwargs)


#: The paper's primary configuration (Table I test #1).
BERT_VARIANT = TransformerConfig(
    name="bert-variant",
    d_model=768,
    num_heads=8,
    num_layers=12,
    seq_len=64,
    notes="Section V: BERT variant with h=8 (not 12) fitted to the U55C",
)

MODEL_ZOO: Dict[str, TransformerConfig] = {
    "bert-variant": BERT_VARIANT,
    # Table II/III model #1 — workload of Peng et al. [21] (column-balanced
    # block pruning, ISQED'21): shallow encoder used for their latency study.
    "model1-peng-isqed21": TransformerConfig(
        name="model1-peng-isqed21",
        d_model=768,
        num_heads=8,
        num_layers=1,
        seq_len=32,
        notes="single encoder layer, short sequence (cited work reports "
        "per-layer latency on a pruned shallow model)",
    ),
    # Model #2 — Wojcicki et al. [23] LHC trigger TNN: tiny physics model.
    "model2-lhc-trigger": TransformerConfig(
        name="model2-lhc-trigger",
        d_model=64,
        num_heads=2,
        num_layers=1,
        seq_len=20,
        activation="relu",
        notes="high-energy-physics trigger model: O(10^5) ops, "
        "latency dominated by fixed overheads",
    ),
    # Model #3 — EFA-Trans [25] workload (ZCU102, dense mode).
    "model3-efa-trans": TransformerConfig(
        name="model3-efa-trans",
        d_model=512,
        num_heads=8,
        num_layers=2,
        seq_len=64,
        notes="base transformer block pair as evaluated by EFA-Trans",
    ),
    # Model #4 — Qi et al. [28] (ICCAD'21) co-optimized transformer.
    "model4-qi-iccad21": TransformerConfig(
        name="model4-qi-iccad21",
        d_model=768,
        num_heads=8,
        num_layers=2,
        seq_len=64,
        notes="two-layer encoder slice of their BERT-class model",
    ),
    # FTRANS [29] runs the same BERT-class workload as model #1 in Table II.
    "ftrans-workload": TransformerConfig(
        name="ftrans-workload",
        d_model=768,
        num_heads=8,
        num_layers=1,
        seq_len=32,
        notes="shares the model #1 row (paper reports ProTEA at 4.48 ms "
        "for both the [21] and [29] comparisons)",
    ),
}


def get_model(name: str) -> TransformerConfig:
    """Look up a named configuration (raises ``KeyError`` with choices)."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from None


def table1_tests() -> Dict[int, TransformerConfig]:
    """The nine runtime-programmability tests of Table I.

    All nine run on the *same* synthesized accelerator; only the
    runtime-programmable parameters change.
    """
    base = BERT_VARIANT
    return {
        1: base.with_(name="test1"),
        2: base.with_(name="test2", num_heads=4),
        3: base.with_(name="test3", num_heads=2),
        4: base.with_(name="test4", num_layers=8),
        5: base.with_(name="test5", num_layers=4),
        6: base.with_(name="test6", d_model=512, d_ff=4 * 512),
        7: base.with_(name="test7", d_model=256, d_ff=4 * 256),
        8: base.with_(name="test8", seq_len=128),
        9: base.with_(name="test9", seq_len=32),
    }
