"""Experiment regenerators — one module per table/figure of the paper.

* :mod:`repro.experiments.table1` — runtime programmability (Table I).
* :mod:`repro.experiments.table2` — FPGA accelerator comparison
  (Table II) incl. sparsity what-ifs.
* :mod:`repro.experiments.table3` — cross-platform comparison
  (Table III).
* :mod:`repro.experiments.figure7` — tile-size sweep (Fig. 7).
* :mod:`repro.experiments.scaling` — multi-FPGA pipeline/tensor
  scaling curve (beyond the paper; see :mod:`repro.parallel`).

Each exposes ``run() -> ExperimentResult`` and ``render() -> str``.
"""

from . import figure7, scaling, table1, table2, table3
from .common import ExperimentResult, default_accelerator, relative_error

__all__ = [
    "table1",
    "table2",
    "table3",
    "figure7",
    "scaling",
    "ExperimentResult",
    "default_accelerator",
    "relative_error",
]
