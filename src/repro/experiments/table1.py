"""Table I — runtime programmability on one synthesized accelerator.

Nine tests sweep the four runtime-programmable parameters (heads,
layers, embedding dimension, sequence length) on the *same* bitstream
(TS_MHA=64, TS_FFN=128, 8-bit fixed point, Alveo U55C).  Resource
utilization is constant across all nine rows — reprogramming touches
only CSRs.

Two GOPS conventions are reported:

* ``GOPS`` — true arithmetic work of the programmed model over the
  measured latency (this library's primary metric);
* ``GOPS*`` — the paper's apparent convention for the layer-sweep rows
  (tests 4–5), where the op count stays at the synthesized 12-layer
  maximum (80 ≈ 53·12/8 and 159 ≈ 53·12/4 in the published table).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from ..analysis.metrics import encoder_ops, gops
from ..analysis.tables import render_table
from ..nn.model_zoo import table1_tests
from .common import ExperimentResult, default_accelerator

__all__ = ["PAPER_TABLE1", "run", "render", "main"]

#: Published Table I rows: test → (latency_ms, gops).
PAPER_TABLE1: Dict[int, Tuple[float, float]] = {
    1: (279.0, 53.0),
    2: (285.0, 51.0),
    3: (295.0, 49.0),
    4: (186.0, 80.0),
    5: (93.0, 159.0),
    6: (186.0, 36.0),
    7: (95.0, 18.0),
    8: (560.0, 54.0),
    9: (165.0, 44.0),
}

#: Published utilization row (constant across tests).
PAPER_RESOURCES = {"dsp": 3612, "lut": 993107, "ff": 704115}


def run() -> ExperimentResult:
    """Regenerate Table I on the default synthesized instance."""
    accel = default_accelerator()
    util = accel.utilization
    rows = []
    for test_no, cfg in table1_tests().items():
        rep = accel.latency_report(cfg)
        true_gops = gops(cfg, rep.latency_s)
        # Paper convention: ops held at the synthesized 12-layer max.
        fixed_cfg = replace(cfg, num_layers=accel.synth.max_layers)
        paper_conv = encoder_ops(fixed_cfg) / rep.latency_s / 1e9
        p_lat, p_gops = PAPER_TABLE1[test_no]
        rows.append((
            test_no, cfg.seq_len, cfg.d_model, cfg.num_heads, cfg.num_layers,
            round(rep.latency_ms, 1), p_lat,
            round(true_gops, 1), round(paper_conv, 1), p_gops,
        ))
    notes = [
        f"resources (constant across tests): DSP {util.used['dsp']} "
        f"({util.percent['dsp']:.0f}%), LUT {util.used['lut']} "
        f"({util.percent['lut']:.0f}%), FF {util.used['ff']} "
        f"({util.percent['ff']:.0f}%)",
        f"paper resources: DSP {PAPER_RESOURCES['dsp']} (40%), "
        f"LUT {PAPER_RESOURCES['lut']} (76%), FF {PAPER_RESOURCES['ff']} (27%)",
        f"clock: {accel.clock_mhz:.0f} MHz (paper: 200 MHz)",
    ]
    return ExperimentResult(
        name="Table I — runtime programmability",
        headers=["test", "SL", "d_model", "heads", "layers",
                 "latency_ms", "paper_ms", "GOPS", "GOPS*", "paper_GOPS"],
        rows=rows,
        notes=notes,
    )


def render(result: ExperimentResult | None = None) -> str:
    result = result or run()
    table = render_table(result.headers, result.rows, title=result.name)
    return table + "\n" + "\n".join(f"  {n}" for n in result.notes)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
