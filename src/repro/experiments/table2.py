"""Table II — comparison with custom FPGA accelerators.

For every published comparator row, ProTEA runs that comparator's
workload (the competitor columns stay published constants — they are
closed designs on other boards).  The sparsity what-ifs at the bottom
reproduce the paper's own arithmetic: granting ProTEA the competitor's
sparsity/compression ratio and re-comparing.
"""

from __future__ import annotations

from typing import List

from ..analysis.metrics import gops, gops_per_dsp
from ..analysis.tables import render_table
from ..baselines.fpga_competitors import TABLE2_COMPETITORS
from ..baselines.sparsity import what_if
from ..nn.model_zoo import get_model
from .common import ExperimentResult, default_accelerator

__all__ = ["run", "render", "main"]


def run() -> ExperimentResult:
    """Regenerate Table II (plus the sparsity what-ifs as notes)."""
    accel = default_accelerator()
    dsp = accel.resources.dsps
    rows: List[tuple] = []
    notes: List[str] = []
    for rec in TABLE2_COMPETITORS:
        cfg = get_model(rec.protea_model)
        rep = accel.latency_report(cfg)
        g = gops(cfg, rep.latency_s)
        rows.append((
            rec.citation, rec.precision, rec.fpga, rec.dsp,
            rec.latency_ms, rec.gops, rec.gops_per_dsp_x1000,
            rec.method, f"{rec.sparsity:.0%}",
        ))
        rows.append((
            "ProTEA (ours)", f"Fix{accel.formats.weight_bits}",
            accel.device.name, dsp,
            round(rep.latency_ms, 3), round(g, 4),
            round(gops_per_dsp(g, dsp), 5), "HLS (sim)", "0%",
        ))
        notes.append(
            f"vs {rec.citation}: paper ProTEA latency "
            f"{rec.paper_protea_latency_ms} ms, ours {rep.latency_ms:.3f} ms "
            f"on workload {rec.protea_model}"
        )
        if rec.is_sparse:
            wi = what_if(rep.latency_ms, rec.sparsity, rec.latency_ms)
            wi_paper = what_if(rec.paper_protea_latency_ms, rec.sparsity,
                               rec.latency_ms)
            notes.append(
                f"  what-if {rec.sparsity:.0%} sparsity on ProTEA: "
                f"{wi.adjusted_latency_ms:.3f} ms -> {wi.verdict} than "
                f"{rec.citation} (paper: {wi_paper.adjusted_latency_ms:.3f} ms"
                f" -> {wi_paper.verdict})"
            )
    return ExperimentResult(
        name="Table II — comparison with FPGA accelerators",
        headers=["accelerator", "precision", "FPGA", "DSP",
                 "latency_ms", "GOPS", "(GOPS/DSP)x1000", "method",
                 "sparsity"],
        rows=rows,
        notes=notes,
    )


def render(result: ExperimentResult | None = None) -> str:
    result = result or run()
    table = render_table(result.headers, result.rows, title=result.name)
    return table + "\n" + "\n".join(f"  {n}" for n in result.notes)


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
