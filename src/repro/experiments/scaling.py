"""Multi-FPGA scaling curve — beyond the paper's single device.

For each zoo workload and device count K, the best feasible
pipeline-depth x tensor-width factorization is planned and priced:
single-inference (fill) latency, steady-state throughput, speedup over
one device, and pipeline efficiency (speedup / K).  The table makes the
scaling story quantitative: balanced layer counts scale near-linearly
until the interconnect or an indivisible layer count caps the depth,
and shallow models recover scaling through head-wise tensor splits.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..analysis.tables import render_table
from ..nn.model_zoo import get_model
from ..parallel import AURORA_64B66B, InterconnectLink, PipelinePartitioner
from .common import ExperimentResult, default_accelerator

__all__ = ["MODELS", "DEVICE_COUNTS", "run", "render", "main"]

#: Workloads with contrasting depth: 12 balanced layers vs 2 layers
#: (which must lean on tensor parallelism past K=2).
MODELS: Tuple[str, ...] = ("bert-variant", "model3-efa-trans")

DEVICE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)


def run(
    models: Sequence[str] = MODELS,
    device_counts: Sequence[int] = DEVICE_COUNTS,
    link: InterconnectLink = AURORA_64B66B,
) -> ExperimentResult:
    """Plan the scaling curve on the default synthesized instance.

    The (model x devices) grid runs through the :mod:`repro.dse`
    engine.  Only ``ValueError`` (no feasible factorization for that
    device count) is a tolerated corner — exactly the exception the old
    ``scaling_curve`` skipped; unknown models and genuine partitioner
    bugs still propagate.
    """
    from ..dse.engine import explore
    from ..dse.space import Axis, SearchSpace

    accel = default_accelerator()
    partitioner = PipelinePartitioner(accel, link)
    configs = {name: get_model(name) for name in models}
    space = SearchSpace((Axis("model", tuple(models)),
                         Axis("devices", tuple(sorted(device_counts)))))

    def _evaluate(point, _settings) -> dict:
        try:
            plan = partitioner.best_plan(configs[point["model"]],
                                         point["devices"])
        except ValueError:
            plan = None  # infeasible count for this model: skip the row
        return {"plan": plan}

    outcome = explore(space, _evaluate, continue_on_error=False)
    curves = {name: {} for name in models}
    for result in outcome.results:
        if result.metrics["plan"] is not None:
            curves[result.point["model"]][result.point["devices"]] = (
                result.metrics["plan"])

    rows = []
    series = {}
    for name in models:
        curve = curves[name]
        base = curve[min(curve)]
        series[name] = [
            (k, p.steady_state_inf_per_s) for k, p in sorted(curve.items())
        ]
        for k, plan in sorted(curve.items()):
            speedup = plan.speedup_over(base.bottleneck_cycles)
            rows.append((
                name, k, plan.num_stages, plan.stages[0].tp_ways,
                plan.latency_ms, plan.steady_state_inf_per_s,
                speedup, speedup / k, plan.bubble_fraction,
            ))
    return ExperimentResult(
        name="scaling",
        headers=["model", "devices", "stages", "tp", "latency ms",
                 "inf/s", "speedup", "efficiency", "bubbles"],
        rows=rows,
        notes=[f"link: {link.name} ({link.payload_gbps:.0f} Gb/s payload, "
               f"{link.latency_us:g} us)",
               "latency = pipeline fill (one inference); inf/s = "
               "steady-state bottleneck rate"],
        series=series,
    )


def render(result: ExperimentResult | None = None) -> str:
    """Paper-style text table of the scaling curve."""
    result = result or run()
    table = render_table(
        result.headers, result.rows,
        title="Multi-FPGA scaling (pipeline + tensor parallel)")
    return table + "\n" + "\n".join(f"note: {n}" for n in result.notes)


def main() -> None:  # pragma: no cover - convenience entry
    print(render())
