"""Table III — cross-platform comparison (CPUs, GPUs, ProTEA).

Four TNN models (#1–#4, hyper-parameters from the cited works) run on:

* the published base platform (CPU or GPU) — the anchored roofline
  model reproduces the published latency on the anchor workload by
  construction;
* any additional published platform for that row;
* ProTEA — *measured* on our simulated instance, reprogrammed per model
  at runtime (no resynthesis between rows: that is the paper's point).

The speed-up column is relative to each row's base platform, exactly
as in the paper.
"""

from __future__ import annotations

from typing import List

from ..analysis.metrics import speedup
from ..analysis.tables import render_table
from ..baselines.cpu import intel_i5_4460, intel_i5_5257u
from ..baselines.gpu import jetson_tx2, rtx_3060, titan_xp_hep, titan_xp_nlp
from ..core.runtime import RuntimeSession
from ..nn.model_zoo import get_model
from .common import ExperimentResult, default_accelerator

__all__ = ["run", "render", "main", "PAPER_TABLE3"]

#: Published rows: model → [(platform, freq_GHz, latency_ms, speedup)].
PAPER_TABLE3 = {
    "#1": [("Intel i5-5257U CPU", 2.7, 3.54, 1.0),
           ("Jetson TX2 GPU", 1.3, 0.673, 5.3),
           ("ProTEA (FPGA)", 0.2, 4.48, 0.79)],
    "#2": [("NVIDIA Titan XP GPU", 1.4, 1.062, 1.0),
           ("ProTEA (FPGA)", 0.2, 0.425, 2.5)],
    "#3": [("Intel i5-4460 CPU", 3.2, 4.66, 1.0),
           ("NVIDIA RTX 3060 GPU", 1.3, 0.71, 6.5),
           ("ProTEA (FPGA)", 0.2, 5.18, 0.89)],
    "#4": [("NVIDIA Titan XP GPU", 1.4, 147.0, 1.0),
           ("ProTEA (FPGA)", 0.2, 9.12, 16.0)],
}

#: model id → (zoo key, [platform models], citation)
_ROWS = [
    ("#1", "model1-peng-isqed21",
     [intel_i5_5257u, jetson_tx2], "[21]"),
    ("#2", "model2-lhc-trigger",
     [titan_xp_hep], "[23]"),
    ("#3", "model3-efa-trans",
     [intel_i5_4460, rtx_3060], "[25]"),
    ("#4", "model4-qi-iccad21",
     [titan_xp_nlp], "[28]"),
]


def run() -> ExperimentResult:
    """Regenerate Table III."""
    accel = default_accelerator()
    session = RuntimeSession(accel)
    rows: List[tuple] = []
    notes: List[str] = []
    for model_id, zoo_key, platform_factories, citation in _ROWS:
        cfg = get_model(zoo_key)
        base_ms = None
        for factory in platform_factories:
            platform = factory()
            ms = platform.latency_ms(cfg)
            if base_ms is None:
                base_ms = ms
                su = 1.0
            else:
                su = speedup(base_ms, ms)
            rows.append((model_id, citation, platform.name,
                         platform.frequency_ghz, round(ms, 3),
                         round(su, 2)))
        protea_ms = session.latency_ms(cfg)
        assert base_ms is not None
        rows.append((model_id, citation, "ProTEA (FPGA, ours)",
                     accel.clock_mhz / 1000.0, round(protea_ms, 3),
                     round(speedup(base_ms, protea_ms), 2)))
        paper_protea = PAPER_TABLE3[model_id][-1]
        notes.append(
            f"{model_id}: paper ProTEA {paper_protea[2]} ms "
            f"({paper_protea[3]}x vs base); ours {protea_ms:.3f} ms "
            f"({speedup(base_ms, protea_ms):.2f}x)"
        )
    notes.append(
        f"single synthesized instance reprogrammed "
        f"{session.reprogram_count} times, resynthesized "
        f"{session.resynthesis_count} times"
    )
    return ExperimentResult(
        name="Table III — cross-platform comparison",
        headers=["model", "work", "platform", "freq_GHz", "latency_ms",
                 "speedup_vs_base"],
        rows=rows,
        notes=notes,
    )


def render(result: ExperimentResult | None = None) -> str:
    result = result or run()
    table = render_table(result.headers, result.rows, title=result.name)
    return table + "\n" + "\n".join(f"  {n}" for n in result.notes)


def main() -> None:  # pragma: no cover
    print(render())


if __name__ == "__main__":  # pragma: no cover
    main()
