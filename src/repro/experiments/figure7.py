"""Figure 7 — choosing the optimum tile size.

Sweeps the number of tiles in MHA over {6, 12, 48} and, for each, the
number of tiles in FFN over {2..6}; reports the achieved frequency and
the latency normalized to the sweep minimum — the two y-axes of Fig. 7.

Published headline: the optimum is **12 tiles in MHA and 6 tiles in
FFN**, reaching 200 MHz; both the frequency maximum and the latency
minimum coincide there.  ``run()`` asserts nothing — the figure's
checks live in ``tests/experiments`` and ``benchmarks``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.tables import render_table
from ..core.design_space import find_optimum, tile_size_sweep
from .common import ExperimentResult

__all__ = ["run", "render", "main", "PAPER_OPTIMUM"]

#: Published optimum: (tiles_mha, tiles_ffn, fmax_MHz).
PAPER_OPTIMUM: Tuple[int, int, float] = (12, 6, 200.0)


def run() -> ExperimentResult:
    """Regenerate the Fig. 7 grid."""
    points = tile_size_sweep()
    rows = [
        (p.tiles_mha, p.tiles_ffn, p.ts_mha, p.ts_ffn,
         round(p.fmax_mhz, 1), round(p.latency_ms, 2),
         round(p.normalized_latency, 3), p.dsps)
        for p in points
    ]
    best_freq, best_lat = find_optimum(points)
    series: Dict[str, list] = {}
    for p in points:
        series.setdefault(f"freq_mha{p.tiles_mha}", []).append(
            (p.tiles_ffn, p.fmax_mhz))
        series.setdefault(f"latency_mha{p.tiles_mha}", []).append(
            (p.tiles_ffn, p.normalized_latency))
    notes = [
        f"highest frequency: {best_freq.tiles_mha} MHA tiles / "
        f"{best_freq.tiles_ffn} FFN tiles @ {best_freq.fmax_mhz:.0f} MHz",
        f"lowest latency:    {best_lat.tiles_mha} MHA tiles / "
        f"{best_lat.tiles_ffn} FFN tiles @ {best_lat.latency_ms:.1f} ms",
        f"paper optimum:     {PAPER_OPTIMUM[0]} MHA tiles / "
        f"{PAPER_OPTIMUM[1]} FFN tiles @ {PAPER_OPTIMUM[2]:.0f} MHz",
    ]
    return ExperimentResult(
        name="Figure 7 — tile-size sweep (frequency & normalized latency)",
        headers=["tiles_MHA", "tiles_FFN", "TS_MHA", "TS_FFN",
                 "fmax_MHz", "latency_ms", "norm_latency", "DSPs"],
        rows=rows,
        notes=notes,
        series=series,
    )


def render(result: ExperimentResult | None = None) -> str:
    result = result or run()
    table = render_table(result.headers, result.rows, title=result.name)
    return table + "\n" + "\n".join(f"  {n}" for n in result.notes)


def ascii_plot(result: ExperimentResult | None = None, width: int = 60) -> str:
    """Poor-man's Fig. 7: frequency bars per (MHA, FFN) tile pair."""
    result = result or run()
    lines: List[str] = ["fmax (MHz) by tiles_FFN, one block per tiles_MHA:"]
    fmax_col = result.column("fmax_MHz")
    peak = max(fmax_col)
    for row in result.rows:
        tiles_mha, tiles_ffn, _, _, fmax = row[:5]
        bar = "#" * max(1, int(width * fmax / peak))
        lines.append(f"MHA={tiles_mha:2d} FFN={tiles_ffn}: {bar} {fmax:.0f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(render())
    print()
    print(ascii_plot())


if __name__ == "__main__":  # pragma: no cover
    main()
