"""Shared experiment scaffolding.

Every experiment module exposes ``run() -> ExperimentResult`` (pure
data) and ``render(result) -> str`` (the paper-style table with a
"paper" column beside each measured one), so the benchmarks can time
``run`` and print ``render``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Sequence

from ..core.accelerator import ProTEA
from ..isa.controller import SynthParams

__all__ = ["ExperimentResult", "default_accelerator", "relative_error"]


@dataclass
class ExperimentResult:
    """Rows + headers of one regenerated table/figure."""

    name: str
    headers: List[str]
    rows: List[Sequence]
    notes: List[str] = field(default_factory=list)
    series: Dict[str, list] = field(default_factory=dict)

    def column(self, header: str) -> list:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


@lru_cache(maxsize=1)
def default_accelerator() -> ProTEA:
    """The evaluation instance: published tile sizes on the U55C.

    Cached because synthesis (resource + timing evaluation) is the
    expensive step, exactly as in the real flow.
    """
    return ProTEA.synthesize(SynthParams())


def relative_error(measured: float, paper: float) -> float:
    """Signed relative deviation of a measured value from the paper's."""
    if paper == 0:
        raise ValueError("paper value is zero; relative error undefined")
    return (measured - paper) / paper
