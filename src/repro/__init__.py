"""repro — a functional + cycle-level reproduction of

    *ProTEA: Programmable Transformer Encoder Acceleration on FPGA*
    (Kabir, Bakos, Andrews, Huang — SC24 Workshops, arXiv:2409.13975).

Quickstart::

    from repro import ProTEA, BERT_VARIANT, build_encoder
    accel = ProTEA.synthesize()            # freeze tiles, place, close timing
    accel.program(BERT_VARIANT)            # runtime CSR writes, no resynthesis
    accel.load_weights(build_encoder(BERT_VARIANT))
    y = accel.run(x)                       # bit-accurate fixed-point inference
    print(accel.latency_ms(), accel.throughput_gops())

Package map: ``repro.core`` (the accelerator), ``repro.nn`` (golden
float reference + model zoo), ``repro.fixedpoint`` / ``repro.hls`` /
``repro.memory`` / ``repro.fpga`` / ``repro.isa`` (substrates),
``repro.baselines`` (comparators), ``repro.experiments`` (Tables I-III
and Fig. 7 regenerators).
"""

from .core import (
    DatapathFormats,
    ProTEA,
    RuntimeSession,
    find_optimum,
    max_parallel_heads,
    tile_size_sweep,
)
from .fpga import ALVEO_U55C, get_part
from .isa import ResynthesisRequiredError, SynthParams
from .nn import BERT_VARIANT, MODEL_ZOO, TransformerConfig, build_encoder, get_model

__version__ = "1.0.0"

__all__ = [
    "ProTEA",
    "SynthParams",
    "DatapathFormats",
    "RuntimeSession",
    "ResynthesisRequiredError",
    "tile_size_sweep",
    "find_optimum",
    "max_parallel_heads",
    "TransformerConfig",
    "BERT_VARIANT",
    "MODEL_ZOO",
    "get_model",
    "build_encoder",
    "ALVEO_U55C",
    "get_part",
    "__version__",
]
