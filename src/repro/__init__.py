"""repro — a functional + cycle-level reproduction of

    *ProTEA: Programmable Transformer Encoder Acceleration on FPGA*
    (Kabir, Bakos, Andrews, Huang — SC24 Workshops, arXiv:2409.13975).

Quickstart::

    from repro import ProTEA, BERT_VARIANT, build_encoder
    accel = ProTEA.synthesize()            # freeze tiles, place, close timing
    accel.program(BERT_VARIANT)            # runtime CSR writes, no resynthesis
    accel.load_weights(build_encoder(BERT_VARIANT))
    y = accel.run(x)                       # bit-accurate fixed-point inference
    print(accel.latency_ms(), accel.throughput_gops())

Package map: ``repro.core`` (the accelerator), ``repro.nn`` (golden
float reference + model zoo), ``repro.fixedpoint`` / ``repro.hls`` /
``repro.memory`` / ``repro.fpga`` / ``repro.isa`` (substrates),
``repro.baselines`` (comparators), ``repro.experiments`` (Tables I-III,
Fig. 7, and the multi-FPGA scaling curve), ``repro.serving``
(multi-instance discrete-event serving simulator + SLO capacity
planning), ``repro.parallel`` (multi-FPGA pipeline/tensor partitioning
with an inter-device interconnect model), ``repro.dse`` (parallel
multi-objective design-space exploration with Pareto-frontier
extraction and an on-disk evaluation cache), ``repro.sim`` (the
unified event-driven simulation kernel every simulator runs on:
deterministic event heap, per-component RNG streams, heterogeneous
fleets, MTBF/MTTR failure injection), ``repro.obs`` (observability:
Chrome-trace recording, grid-sampled metrics, kernel and DSE
profiling, streaming SLO watchdogs with burn-rate alerting and
anomaly detection, and run-to-run regression analytics — all
zero-cost when detached).  The full layer stack is documented in
``docs/architecture.md``.

Serving quickstart::

    from repro import ModelMix, PoissonArrivals, simulate_cluster, summarize
    reqs = PoissonArrivals(500, ModelMix("model2-lhc-trigger"),
                           seed=0).generate(1_000)
    report = summarize(simulate_cluster(accel, reqs, n_instances=4))

Partitioning quickstart::

    from repro import PipelinePartitioner, get_model
    plan = PipelinePartitioner(accel).best_plan(get_model("bert-variant"), 4)
    print(plan.latency_ms, plan.steady_state_inf_per_s)
    print(plan.timeline(n_items=6).gantt())       # cross-device Gantt

    from repro import PipelineGroup, plan_capacity
    group = PipelineGroup(accel, n_devices=4)     # serves like 1 instance
    fleet = plan_capacity(group, reqs, target_p99_ms=20.0)

DSE quickstart::

    from repro import EvalCache, evaluate_point, explore, standard_space
    from repro.dse import get_objectives
    result = explore(standard_space(), evaluate_point,
                     objectives=get_objectives(), jobs=4,
                     cache=EvalCache(".dse_cache"))
    print([p.point for p in result.frontier])

Observability quickstart::

    from repro import MetricsSampler, TraceRecorder, simulate_cluster
    tracer, sampler = TraceRecorder(), MetricsSampler(grid_ms=10.0)
    from repro.obs import compose
    result = simulate_cluster(accel, reqs, n_instances=4,
                              observer=compose(tracer, sampler))
    tracer.dump("run.trace.json")          # chrome://tracing / Perfetto
    print(sampler.registry.as_dict()["counters"])

Watchdog quickstart::

    from repro import Watchdog
    wd = Watchdog(slo_ms=20.0, target=0.99)   # 1% error budget
    simulate_cluster(accel, reqs, n_instances=4, observer=wd)
    print(wd.summary()["alerts"], wd.summary()["budget_burn"])
"""

from .core import (
    DatapathFormats,
    ProTEA,
    RuntimeSession,
    find_optimum,
    max_parallel_heads,
    tile_size_sweep,
)
from .dse import (
    Axis,
    EvalCache,
    ExplorationResult,
    Objective,
    SearchSpace,
    evaluate_point,
    explore,
    pareto_front,
    standard_space,
)
from .fpga import ALVEO_U55C, get_part
from .isa import ResynthesisRequiredError, SynthParams
from .nn import BERT_VARIANT, MODEL_ZOO, TransformerConfig, build_encoder, get_model
from .parallel import (
    AURORA_64B66B,
    InterconnectLink,
    PipelineGroup,
    PipelinePartitioner,
    PipelinePlan,
    get_link,
)
from .serving import (
    BatchingPolicy,
    ClusterSimulator,
    GenerationRequest,
    GenerationServingReport,
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    ServingReport,
    attach_generation_lengths,
    attach_priorities,
    plan_capacity,
    simulate_generation,
    summarize,
    summarize_generation,
)
from .obs import (
    AnomalyDetector,
    BurnRateRule,
    DseProfile,
    KernelProfiler,
    MetricsRegistry,
    MetricsSampler,
    TraceRecorder,
    Watchdog,
    diff_runs,
)
from .serving import simulate as simulate_cluster
from .sim import FailurePlan, FleetSpec, InstanceSpec

# 1.5.0: persistent-worker parallel DSE (repro.dse.pool) with batched
# dispatch and a single-writer shared cache index, plus the
# closed-form surrogate prescreen (repro.dse.surrogate,
# PrescreenStrategy).  The bump re-keys the DSE evaluation cache:
# the evaluator stack moved under new dispatch machinery, so records
# scored by earlier releases must miss rather than be reused.
# 1.4.0: streaming SLO watchdogs (repro.obs.watch) — windowed
# aggregation, burn-rate alerting, anomaly detection — plus the
# `repro obs` analytics CLI and alert_minutes/budget_burn DSE
# objectives.  The version keys the DSE evaluation cache; bumping it
# re-keys records cleanly (evaluate_point now returns new keys).
# 1.3.0: observability layer (repro.obs) — trace recording, grid-
# sampled metrics, kernel/DSE profiling — plus observer hooks on the
# sim kernel and a run_config block in CLI JSON output.
__version__ = "1.5.0"

__all__ = [
    "ProTEA",
    "SynthParams",
    "DatapathFormats",
    "RuntimeSession",
    "ResynthesisRequiredError",
    "tile_size_sweep",
    "find_optimum",
    "max_parallel_heads",
    "TransformerConfig",
    "BERT_VARIANT",
    "MODEL_ZOO",
    "get_model",
    "build_encoder",
    "ALVEO_U55C",
    "get_part",
    "ModelMix",
    "PoissonArrivals",
    "BatchingPolicy",
    "ClusterSimulator",
    "simulate_cluster",
    "summarize",
    "ServingReport",
    "plan_capacity",
    "GenerationRequest",
    "LengthSampler",
    "attach_generation_lengths",
    "attach_priorities",
    "simulate_generation",
    "summarize_generation",
    "GenerationServingReport",
    "FleetSpec",
    "InstanceSpec",
    "FailurePlan",
    "InterconnectLink",
    "AURORA_64B66B",
    "get_link",
    "PipelinePartitioner",
    "PipelinePlan",
    "PipelineGroup",
    "Axis",
    "SearchSpace",
    "Objective",
    "EvalCache",
    "ExplorationResult",
    "explore",
    "evaluate_point",
    "standard_space",
    "pareto_front",
    "TraceRecorder",
    "MetricsRegistry",
    "MetricsSampler",
    "KernelProfiler",
    "DseProfile",
    "Watchdog",
    "BurnRateRule",
    "AnomalyDetector",
    "diff_runs",
    "__version__",
]
