"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1`` / ``table2`` / ``table3`` / ``figure7`` — regenerate one
  evaluation artifact and print the paper-style table.
* ``all`` — regenerate everything.
* ``summary`` — synthesize the published instance and print its
  resource/clock summary plus the BERT-variant headline numbers.
* ``latency <model>`` — latency/GOPS of one model-zoo workload
  (``--list`` to enumerate).
* ``power`` — power/energy profile of the published instance.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProTEA reproduction — regenerate the paper's "
                    "tables/figures and query the models.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("table1", "table2", "table3", "figure7", "all", "summary",
                 "power"):
        sub.add_parser(name)
    lat = sub.add_parser("latency")
    lat.add_argument("model", nargs="?", default=None,
                     help="model-zoo key (omit with --list)")
    lat.add_argument("--list", action="store_true", dest="list_models")
    return parser


def _cmd_experiment(name: str) -> None:
    from . import experiments

    module = getattr(experiments, name)
    print(module.render())
    if name == "figure7":
        print()
        print(module.ascii_plot())


def _cmd_summary() -> None:
    from .experiments.common import default_accelerator
    from .nn import BERT_VARIANT

    accel = default_accelerator()
    print(accel.summary())
    rep = accel.latency_report(BERT_VARIANT)
    print(f"BERT variant: {rep.latency_ms:.1f} ms, "
          f"{accel.throughput_gops(BERT_VARIANT):.1f} GOPS "
          f"(paper: 279 ms, 53 GOPS)")


def _cmd_latency(model: Optional[str], list_models: bool) -> None:
    from .analysis.metrics import gops
    from .experiments.common import default_accelerator
    from .nn import MODEL_ZOO, get_model

    if list_models or model is None:
        for name, cfg in sorted(MODEL_ZOO.items()):
            print(f"{name:24s} SL={cfg.seq_len:4d} d={cfg.d_model:4d} "
                  f"h={cfg.num_heads} N={cfg.num_layers}")
        return
    cfg = get_model(model)
    accel = default_accelerator()
    rep = accel.latency_report(cfg)
    print(f"{cfg.name}: {rep.latency_ms:.3f} ms, "
          f"{gops(cfg, rep.latency_s):.2f} GOPS "
          f"@ {accel.clock_mhz:.0f} MHz")


def _cmd_power() -> None:
    from .analysis.metrics import gops
    from .analysis.traffic import analyze_traffic
    from .experiments.common import default_accelerator
    from .fpga.power import GPU_CPU_TDP_W, PowerModel, PowerReport
    from .nn import BERT_VARIANT

    accel = default_accelerator()
    rep = accel.latency_report(BERT_VARIANT)
    traffic = analyze_traffic(accel, BERT_VARIANT)
    g = gops(BERT_VARIANT, rep.latency_s)
    power = PowerReport.evaluate(
        PowerModel(), accel.resources, accel.clock_mhz,
        rep.latency_s, g, traffic.achieved_gbps)
    print(f"ProTEA on {accel.device.name}:")
    print(f"  board power : {power.total_w:6.1f} W "
          f"({power.static_w:.1f} static + {power.dynamic_w:.1f} dynamic)")
    print(f"  energy      : {power.energy_per_inference_j:6.3f} J/inference")
    print(f"  efficiency  : {power.gops_per_w:6.2f} GOPS/W")
    print("\ncomparator TDPs (published):")
    for name, tdp in sorted(GPU_CPU_TDP_W.items()):
        print(f"  {name:24s} {tdp:6.1f} W")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("table1", "table2", "table3", "figure7"):
        _cmd_experiment(args.command)
    elif args.command == "all":
        for name in ("table1", "table2", "table3", "figure7"):
            _cmd_experiment(name)
            print()
    elif args.command == "summary":
        _cmd_summary()
    elif args.command == "latency":
        _cmd_latency(args.model, args.list_models)
    elif args.command == "power":
        _cmd_power()
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
