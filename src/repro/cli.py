"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1`` / ``table2`` / ``table3`` / ``figure7`` — regenerate one
  evaluation artifact and print the paper-style table.
* ``all`` — regenerate everything.
* ``summary`` — synthesize the published instance and print its
  resource/clock summary plus the BERT-variant headline numbers.
* ``latency <model>`` — latency/GOPS of one model-zoo workload
  (``--list`` to enumerate, ``--json`` for machine-readable output).
* ``power`` — power/energy profile of the published instance.
* ``serve`` — discrete-event multi-instance serving simulation
  (scenario x batching x scheduler x fleet size); ``--plan`` searches
  the minimum fleet meeting a p99 SLO, ``--heterogeneous`` describes
  per-instance speed/capability fleets, ``--failures`` injects
  MTBF/MTTR instance faults (availability + degraded-tail reporting).
* ``partition`` — split one model across K FPGAs (pipeline + tensor
  parallel) and report per-stage cycles, interconnect cost, fill
  latency, and steady-state throughput; ``--gantt`` draws the
  multi-device timeline.
* ``scaling`` — the multi-FPGA scaling-curve experiment.
* ``dse`` — multi-objective design-space exploration over
  (tiles x format x model x partitioning x fleet); ``--jobs`` fans the
  evaluations over a process pool, ``--resume`` reuses the on-disk
  evaluation cache, ``--pareto`` restricts output to the frontier.
* ``generate`` — autoregressive generation serving: token-level
  continuous batching over a fleet, prompt/output length
  distributions, TTFT/TPOT/goodput metrics (``--json``); also takes
  ``--heterogeneous``/``--failures``, plus ``--priority`` for
  priority admission with step-boundary preemption.
* ``obs`` — observability analytics over exported artifacts:
  ``obs diff`` compares two ``--json`` run exports and flags
  significant regressions, ``obs bench`` trends the benchmark
  history (``BENCH_results.json``) against rolling medians with
  optional ``--gate`` expressions, ``obs trace-summary`` aggregates
  a Chrome-trace export (top spans + alert timeline).

``serve`` and ``generate`` also take ``--watch``: an online SLO
watchdog (multi-window burn-rate alerting + anomaly detection) rides
the run as a read-only observer and lands in the report.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProTEA reproduction — regenerate the paper's "
                    "tables/figures and query the models.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("table1", "table2", "table3", "figure7", "scaling", "all",
                 "summary", "power"):
        sub.add_parser(name)
    lat = sub.add_parser("latency")
    lat.add_argument("model", nargs="?", default=None,
                     help="model-zoo key (omit with --list)")
    lat.add_argument("--list", action="store_true", dest="list_models")
    lat.add_argument("--json", action="store_true", dest="as_json",
                     help="machine-readable output")

    srv = sub.add_parser(
        "serve", help="simulate a multi-instance serving cluster")
    srv.add_argument("--scenario", default="poisson",
                     choices=("poisson", "bursty", "diurnal", "trace"))
    srv.add_argument("--qps", type=float, default=100.0,
                     help="offered load (peak qps for --scenario diurnal)")
    srv.add_argument("--instances", type=int, default=4)
    srv.add_argument("--policy", default="least-loaded",
                     choices=("round-robin", "least-loaded",
                              "model-affinity"))
    srv.add_argument("--model", action="append", dest="models",
                     metavar="NAME[:WEIGHT]",
                     help="model-zoo entry in the request mix (repeatable; "
                          "default model2-lhc-trigger)")
    srv.add_argument("--duration-ms", type=float, default=1000.0)
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--batch", default="none",
                     choices=("none", "fixed", "timeout"))
    srv.add_argument("--batch-size", type=int, default=8)
    srv.add_argument("--batch-timeout-ms", type=float, default=2.0)
    srv.add_argument("--reprogram-ms", type=float, default=0.0,
                     help="workload-switch penalty per instance")
    srv.add_argument("--heterogeneous", default=None, metavar="SPEC",
                     help="per-instance fleet spec "
                          "SPEED[xCOUNT][@MODEL[+MODEL..]],... "
                          "(overrides --instances; e.g. "
                          "'1.0x2,0.5@model2-lhc-trigger')")
    srv.add_argument("--failures", default=None, metavar="MTBF:MTTR",
                     help="inject instance faults: mean up-time and "
                          "mean repair time in ms (e.g. 200:20)")
    srv.add_argument("--slo-ms", type=float, default=None,
                     help="latency SLO for attainment reporting")
    srv.add_argument("--plan", action="store_true",
                     help="search the minimum fleet meeting --slo-ms at p99 "
                          "instead of simulating --instances")
    srv.add_argument("--analytic-only", action="store_true",
                     help="with --plan: report the closed-form fleet "
                          "proposal without confirming simulations")
    srv.add_argument("--confirm", choices=("analytic", "probe"),
                     default="analytic",
                     help="with --plan: how simulation confirms the search "
                          "— 'analytic' (default) starts at the closed-form "
                          "proposal, 'probe' replays the probe-from-1 "
                          "search")
    srv.add_argument("--trace-file", default=None,
                     help="JSON [[t_ms, model], ...] for --scenario trace")
    srv.add_argument("--trace", default=None, metavar="PATH",
                     help="write a Chrome-trace-event JSON of the run "
                          "(open in chrome://tracing or Perfetto)")
    srv.add_argument("--metrics", default=None, metavar="PATH",
                     help="write grid-sampled metrics (JSON, or CSV for "
                          "*.csv paths)")
    srv.add_argument("--metrics-grid-ms", type=float, default=10.0,
                     help="simulated-time sampling grid for --metrics")
    srv.add_argument("--watch", action="store_true",
                     help="attach an SLO watchdog (burn-rate alerting + "
                          "anomaly detection; requires --slo-ms)")
    srv.add_argument("--watch-window-ms", type=float, default=100.0,
                     help="fast burn-rate window for --watch")
    srv.add_argument("--watch-slow-window-ms", type=float, default=500.0,
                     help="slow burn-rate window for --watch")
    srv.add_argument("--watch-target", type=float, default=0.99,
                     help="SLO attainment target for the --watch error "
                          "budget (fraction in (0, 1))")
    srv.add_argument("--shards", type=int, default=1, metavar="N",
                     help="partition the fleet into N independent cells "
                          "and merge their summary reports (1 = the "
                          "ordinary single-loop run)")
    srv.add_argument("--shard-jobs", type=int, default=None, metavar="J",
                     help="run shard cells in J worker processes "
                          "(>= 2; default: serially in-process)")
    srv.add_argument("--profile", action="store_true",
                     help="report kernel wall time per event kind")
    srv.add_argument("--json", action="store_true", dest="as_json")

    gen = sub.add_parser(
        "generate",
        help="autoregressive generation serving (continuous batching)")
    gen.add_argument("--scenario", default="poisson",
                     choices=("poisson", "bursty", "diurnal"))
    gen.add_argument("--qps", type=float, default=20.0,
                     help="offered request load (peak for diurnal)")
    gen.add_argument("--instances", type=int, default=2)
    gen.add_argument("--slots", type=int, default=8,
                     help="in-flight sequence slots per instance")
    gen.add_argument("--policy", default="least-loaded",
                     choices=("round-robin", "least-loaded",
                              "model-affinity"))
    gen.add_argument("--model", action="append", dest="models",
                     metavar="NAME[:WEIGHT]",
                     help="model-zoo entry in the request mix (repeatable; "
                          "default model2-lhc-trigger)")
    gen.add_argument("--prompt-tokens", default="16", metavar="SPEC",
                     help="prompt length: N, LO:HI, or geo:LO:MEAN")
    gen.add_argument("--output-tokens", default="32", metavar="SPEC",
                     help="output length: N, LO:HI, or geo:LO:MEAN")
    gen.add_argument("--duration-ms", type=float, default=1000.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--reprogram-ms", type=float, default=0.0,
                     help="workload-switch penalty per instance")
    gen.add_argument("--heterogeneous", default=None, metavar="SPEC",
                     help="per-instance fleet spec "
                          "SPEED[/SLOTS][xCOUNT][@MODEL[+MODEL..]],... "
                          "(overrides --instances)")
    gen.add_argument("--failures", default=None, metavar="MTBF:MTTR",
                     help="inject instance faults: mean up-time and "
                          "mean repair time in ms (e.g. 200:20)")
    gen.add_argument("--priority", type=float, default=None,
                     metavar="FRAC",
                     help="mark this fraction of requests high-priority "
                          "(admitted first, may preempt at step "
                          "boundaries)")
    gen.add_argument("--ttft-slo-ms", type=float, default=None,
                     help="time-to-first-token SLO for goodput")
    gen.add_argument("--tpot-slo-ms", type=float, default=None,
                     help="time-per-output-token SLO for goodput")
    gen.add_argument("--trace", default=None, metavar="PATH",
                     help="write a Chrome-trace-event JSON of the run "
                          "(open in chrome://tracing or Perfetto)")
    gen.add_argument("--metrics", default=None, metavar="PATH",
                     help="write grid-sampled metrics (JSON, or CSV for "
                          "*.csv paths)")
    gen.add_argument("--metrics-grid-ms", type=float, default=10.0,
                     help="simulated-time sampling grid for --metrics")
    gen.add_argument("--watch", action="store_true",
                     help="attach an SLO watchdog on TTFT (burn-rate "
                          "alerting + anomaly detection; requires "
                          "--ttft-slo-ms)")
    gen.add_argument("--watch-window-ms", type=float, default=100.0,
                     help="fast burn-rate window for --watch")
    gen.add_argument("--watch-slow-window-ms", type=float, default=500.0,
                     help="slow burn-rate window for --watch")
    gen.add_argument("--watch-target", type=float, default=0.99,
                     help="SLO attainment target for the --watch error "
                          "budget (fraction in (0, 1))")
    gen.add_argument("--shards", type=int, default=1, metavar="N",
                     help="partition the fleet into N independent cells "
                          "and merge their summary reports (1 = the "
                          "ordinary single-loop run)")
    gen.add_argument("--shard-jobs", type=int, default=None, metavar="J",
                     help="run shard cells in J worker processes "
                          "(>= 2; default: serially in-process)")
    gen.add_argument("--profile", action="store_true",
                     help="report kernel wall time per event kind")
    gen.add_argument("--json", action="store_true", dest="as_json")

    par = sub.add_parser(
        "partition", help="partition one model across K FPGAs")
    par.add_argument("model", help="model-zoo key")
    par.add_argument("-k", "--devices", type=int, default=2,
                     help="total device count (default 2)")
    par.add_argument("--tp", default="auto",
                     help="tensor-parallel ways per stage (int, or 'auto' "
                          "to search the best depth x width factorization)")
    par.add_argument("--link", default="aurora",
                     choices=("aurora", "eth100g", "eth10g", "pcie4x8"),
                     help="inter-device interconnect preset")
    par.add_argument("--gantt", type=int, default=0, metavar="ITEMS",
                     help="also draw the pipeline timeline for N items")
    par.add_argument("--json", action="store_true", dest="as_json")

    dse = sub.add_parser(
        "dse", help="multi-objective design-space exploration")
    dse.add_argument("--strategy", default="grid",
                     choices=("grid", "random", "evolutionary"))
    dse.add_argument("--model", action="append", dest="models",
                     metavar="NAME",
                     help="model-zoo entries for the model axis "
                          "(repeatable; default bert-variant + "
                          "model2-lhc-trigger)")
    dse.add_argument("--tiles-mha", default="8,12,48", metavar="LIST",
                     help="MHA tile-count axis (comma-separated)")
    dse.add_argument("--tiles-ffn", default="3,6", metavar="LIST",
                     help="FFN tile-count axis (comma-separated)")
    dse.add_argument("--formats", default="fix8", metavar="LIST",
                     help="datapath-format axis (fix8, fix16)")
    dse.add_argument("--devices", default="1", metavar="LIST",
                     help="multi-FPGA partitioning-degree axis")
    dse.add_argument("--fleet", default="1", metavar="LIST",
                     help="serving fleet-size axis (replicas)")
    dse.add_argument("--schedulers", default="least-loaded",
                     metavar="LIST",
                     help="dispatch-policy axis (round-robin, "
                          "least-loaded, model-affinity)")
    dse.add_argument("--objectives",
                     default="latency_ms,throughput_inf_s,p99_ms,power_w",
                     metavar="LIST",
                     help="frontier dimensions (also: util_pct, "
                          "ttft_p99_ms, tokens_per_s, availability, "
                          "p99_degraded_ms, alert_minutes, budget_burn)")
    dse.add_argument("--qps", type=float, default=200.0,
                     help="offered load for the p99 objective")
    dse.add_argument("--duration-ms", type=float, default=300.0)
    dse.add_argument("--seed", type=int, default=0,
                     help="workload + strategy seed")
    dse.add_argument("--link", default="aurora",
                     choices=("aurora", "eth100g", "eth10g", "pcie4x8"),
                     help="interconnect preset for devices > 1")
    dse.add_argument("--samples", type=int, default=16,
                     help="point budget for --strategy random")
    dse.add_argument("--population", type=int, default=8,
                     help="per-generation size for --strategy evolutionary")
    dse.add_argument("--generations", type=int, default=4,
                     help="generation count for --strategy evolutionary")
    dse.add_argument("--jobs", type=int, default=1,
                     help="persistent evaluation worker processes "
                          "(forked once per exploration)")
    dse.add_argument("--batch", type=int, default=None, metavar="N",
                     help="points per worker dispatch (default: "
                          "auto-sized from the batch and axis sizes)")
    dse.add_argument("--prescreen", action="store_true",
                     help="score candidates with the closed-form "
                          "surrogate first and fully evaluate only "
                          "the surviving fronts")
    dse.add_argument("--prescreen-keep", type=float, default=None,
                     metavar="FRACTION",
                     help="fraction of each batch the prescreen "
                          "forwards (default 0.35; whole Pareto fronts "
                          "are kept, so survivors may exceed this)")
    dse.add_argument("--pareto", action="store_true",
                     help="report only the Pareto frontier")
    dse.add_argument("--resume", action="store_true",
                     help="reuse the on-disk evaluation cache "
                          "(skips already-scored points)")
    dse.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="evaluation-cache directory "
                          "(default .dse_cache; implies --resume)")
    dse.add_argument("--profile", action="store_true",
                     help="report cache hit/miss counts, per-point eval "
                          "wall time, and per-worker dispatch/idle time")
    dse.add_argument("--json", action="store_true", dest="as_json")

    obs = sub.add_parser(
        "obs", help="observability analytics over exported artifacts")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    od = obs_sub.add_parser(
        "diff", help="compare two --json run exports for regressions")
    od.add_argument("run_a", help="baseline --json export")
    od.add_argument("run_b", help="candidate --json export")
    od.add_argument("--rtol", type=float, default=0.05,
                    help="relative tolerance band (default 0.05)")
    od.add_argument("--atol", type=float, default=1e-9,
                    help="absolute tolerance floor (default 1e-9)")
    od.add_argument("--json", action="store_true", dest="as_json")
    ob = obs_sub.add_parser(
        "bench", help="trend the benchmark history vs rolling medians")
    ob.add_argument("--results",
                    default="benchmarks/output/BENCH_results.json",
                    metavar="PATH", help="BENCH results file")
    ob.add_argument("--window", type=int, default=8,
                    help="rolling-median baseline size (default 8)")
    ob.add_argument("--rtol", type=float, default=0.10,
                    help="steady band around the median (default 0.10)")
    ob.add_argument("--gate", action="append", dest="gates",
                    metavar="METRIC<=VALUE",
                    help="fail (exit 1) when a metric's latest value "
                         "violates the bound (repeatable; also >=)")
    ob.add_argument("--json", action="store_true", dest="as_json")
    ot = obs_sub.add_parser(
        "trace-summary",
        help="aggregate a Chrome-trace export (top spans, alerts)")
    ot.add_argument("trace", help="trace JSON written by --trace")
    ot.add_argument("--top", type=int, default=10,
                    help="span rows to show (default 10)")
    ot.add_argument("--json", action="store_true", dest="as_json")
    return parser


def _cmd_experiment(name: str) -> None:
    from . import experiments

    module = getattr(experiments, name)
    print(module.render())
    if name == "figure7":
        print()
        print(module.ascii_plot())


def _cmd_summary() -> None:
    from .experiments.common import default_accelerator
    from .nn import BERT_VARIANT

    accel = default_accelerator()
    print(accel.summary())
    rep = accel.latency_report(BERT_VARIANT)
    print(f"BERT variant: {rep.latency_ms:.1f} ms, "
          f"{accel.throughput_gops(BERT_VARIANT):.1f} GOPS "
          f"(paper: 279 ms, 53 GOPS)")


def _cmd_latency(model: Optional[str], list_models: bool,
                 as_json: bool = False) -> None:
    from .analysis.metrics import gops
    from .experiments.common import default_accelerator
    from .nn import MODEL_ZOO, get_model

    if list_models or model is None:
        if as_json:
            print(json.dumps({
                name: {"seq_len": cfg.seq_len, "d_model": cfg.d_model,
                       "num_heads": cfg.num_heads,
                       "num_layers": cfg.num_layers}
                for name, cfg in sorted(MODEL_ZOO.items())
            }, indent=2))
            return
        for name, cfg in sorted(MODEL_ZOO.items()):
            print(f"{name:24s} SL={cfg.seq_len:4d} d={cfg.d_model:4d} "
                  f"h={cfg.num_heads} N={cfg.num_layers}")
        return
    cfg = get_model(model)
    accel = default_accelerator()
    rep = accel.latency_report(cfg)
    if as_json:
        print(json.dumps({
            "model": cfg.name,
            "latency_ms": rep.latency_ms,
            "gops": gops(cfg, rep.latency_s),
            "clock_mhz": accel.clock_mhz,
            "total_cycles": rep.total_cycles,
        }, indent=2))
        return
    print(f"{cfg.name}: {rep.latency_ms:.3f} ms, "
          f"{gops(cfg, rep.latency_s):.2f} GOPS "
          f"@ {accel.clock_mhz:.0f} MHz")


def _cmd_power() -> None:
    from .analysis.metrics import gops
    from .analysis.traffic import analyze_traffic
    from .experiments.common import default_accelerator
    from .fpga.power import GPU_CPU_TDP_W, PowerModel, PowerReport
    from .nn import BERT_VARIANT

    accel = default_accelerator()
    rep = accel.latency_report(BERT_VARIANT)
    traffic = analyze_traffic(accel, BERT_VARIANT)
    g = gops(BERT_VARIANT, rep.latency_s)
    power = PowerReport.evaluate(
        PowerModel(), accel.resources, accel.clock_mhz,
        rep.latency_s, g, traffic.achieved_gbps)
    print(f"ProTEA on {accel.device.name}:")
    print(f"  board power : {power.total_w:6.1f} W "
          f"({power.static_w:.1f} static + {power.dynamic_w:.1f} dynamic)")
    print(f"  energy      : {power.energy_per_inference_j:6.3f} J/inference")
    print(f"  efficiency  : {power.gops_per_w:6.2f} GOPS/W")
    print("\ncomparator TDPs (published):")
    for name, tdp in sorted(GPU_CPU_TDP_W.items()):
        print(f"  {name:24s} {tdp:6.1f} W")


def _parse_mix(entries: Optional[List[str]]):
    """``name[:weight]`` CLI entries → ModelMix (validates names)."""
    from .nn import MODEL_ZOO
    from .serving import ModelMix

    if not entries:
        entries = ["model2-lhc-trigger"]
    weights = {}
    for entry in entries:
        name, _, w = entry.partition(":")
        if name not in MODEL_ZOO:
            raise SystemExit(
                f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}")
        try:
            weight = float(w) if w else 1.0
        except ValueError:
            raise SystemExit(
                f"invalid weight {w!r} in --model {entry!r} "
                "(expected NAME or NAME:FLOAT)") from None
        weights[name] = weights.get(name, 0.0) + weight
    try:
        return ModelMix(weights)
    except ValueError as exc:  # e.g. negative weights
        raise SystemExit(f"invalid model mix: {exc}") from None


def _build_workload(args, mix):
    from .serving import (BurstyArrivals, DiurnalArrivals, PoissonArrivals,
                          TraceReplay)

    if args.scenario == "poisson":
        gen = PoissonArrivals(args.qps, mix, seed=args.seed)
    elif args.scenario == "bursty":
        gen = BurstyArrivals(args.qps, mix, seed=args.seed)
    elif args.scenario == "diurnal":
        gen = DiurnalArrivals(args.qps, mix, seed=args.seed,
                              period_ms=args.duration_ms)
    else:  # trace
        from .nn import MODEL_ZOO

        if not args.trace_file:
            raise SystemExit("--scenario trace requires --trace-file")
        with open(args.trace_file) as fh:
            events = [(float(t), str(m)) for t, m in json.load(fh)]
        unknown = sorted({m for _, m in events} - set(MODEL_ZOO))
        if unknown:
            raise SystemExit(
                f"trace names unknown models {unknown}; "
                f"available: {sorted(MODEL_ZOO)}")
        gen = TraceReplay(events)
    return gen.generate(args.duration_ms)


def _parse_fleet(args, requests, generation: bool):
    """``--heterogeneous`` / ``--failures`` → (FleetSpec, FailurePlan).

    Validates eagerly — unknown pinned models, capability sets that
    leave part of the workload unservable, and serve-mode ``/SLOTS``
    entries all exit with a message here instead of crashing the
    simulation mid-run.
    """
    from .nn import MODEL_ZOO
    from .sim import FailurePlan, FleetSpec

    fleet = failures = None
    if args.heterogeneous:
        try:
            fleet = FleetSpec.parse(args.heterogeneous)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        unknown = sorted(
            {m for s in fleet.specs for m in (s.models or ())}
            - set(MODEL_ZOO))
        if unknown:
            raise SystemExit(
                f"--heterogeneous pins unknown models {unknown}; "
                f"available: {sorted(MODEL_ZOO)}")
        if not generation and any(s.slots is not None for s in fleet.specs):
            raise SystemExit(
                "--heterogeneous /SLOTS entries are a generate-mode "
                "knob; the request-level serve simulation has no "
                "sequence slots")
        unservable = sorted(
            {r.model for r in requests}
            - {m for s in fleet.specs for m in (s.models or MODEL_ZOO)})
        if unservable:
            raise SystemExit(
                f"--heterogeneous leaves the workload's models "
                f"{unservable} unservable: no instance's capability "
                "set covers them")
    if args.failures:
        try:
            failures = FailurePlan.parse(args.failures, seed=args.seed)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    return fleet, failures


def _make_observer(args, watch_slo_ms=None, watch_slo_flag="--slo-ms"):
    """Build (observer, tracer, sampler, watchdog, profiler) from
    serve/generate observability flags; everything is None when the
    flags are off.

    Knob values are validated eagerly — a bad grid or window width
    exits with a message even when the flag that would consume it
    (``--metrics``/``--watch``) is off, instead of silently riding
    along until someone turns it on.
    """
    from .obs import (KernelProfiler, MetricsSampler, TraceRecorder,
                      Watchdog, compose)

    if args.metrics_grid_ms <= 0:
        raise SystemExit(
            f"invalid --metrics-grid-ms {args.metrics_grid_ms:g}: "
            "grid_ms must be positive")
    for flag, value in (("--watch-window-ms", args.watch_window_ms),
                        ("--watch-slow-window-ms",
                         args.watch_slow_window_ms)):
        if value <= 0:
            raise SystemExit(
                f"invalid {flag} {value:g}: window widths must be "
                "positive")
    if args.watch_slow_window_ms < args.watch_window_ms:
        raise SystemExit(
            f"--watch-slow-window-ms ({args.watch_slow_window_ms:g}) "
            f"must be >= --watch-window-ms ({args.watch_window_ms:g})")
    if not 0.0 < args.watch_target < 1.0:
        raise SystemExit(
            f"invalid --watch-target {args.watch_target:g}: expected "
            "an attainment fraction in (0, 1)")
    tracer = TraceRecorder() if args.trace else None
    sampler = (MetricsSampler(grid_ms=args.metrics_grid_ms)
               if args.metrics else None)
    watchdog = None
    if args.watch:
        if watch_slo_ms is None:
            raise SystemExit(f"--watch requires {watch_slo_flag} "
                             "(the SLO the watchdog guards)")
        watchdog = Watchdog(slo_ms=watch_slo_ms, target=args.watch_target,
                            fast_window_ms=args.watch_window_ms,
                            slow_window_ms=args.watch_slow_window_ms)
    profiler = KernelProfiler() if args.profile else None
    return (compose(tracer, sampler, watchdog), tracer, sampler, watchdog,
            profiler)


def _dump_obs(args, tracer, sampler, run_config) -> None:
    """Write --trace / --metrics exports, owning the exit message."""
    try:
        if tracer is not None:
            tracer.dump(args.trace, run_config)
        if sampler is not None:
            sampler.registry.dump(args.metrics, run_config)
    except OSError as exc:
        raise SystemExit(
            f"cannot write observability output: {exc}") from None


def _run_config(args, command: str, fleet) -> dict:
    """The knobs that reproduce this run (embedded in --json output,
    trace metadata, and metrics exports so they stay correlatable)."""
    from . import __version__

    rc = {
        "command": command,
        "repro_version": __version__,
        "scenario": args.scenario,
        "qps": args.qps,
        "duration_ms": args.duration_ms,
        "seed": args.seed,
        "policy": args.policy,
        "models": list(args.models) if args.models else None,
        "reprogram_ms": args.reprogram_ms,
        "failures": args.failures,
    }
    if fleet is not None:
        rc["fleet"] = fleet.describe()
    else:
        rc["instances"] = args.instances
    if command == "serve":
        rc.update(batch=args.batch, batch_size=args.batch_size,
                  batch_timeout_ms=args.batch_timeout_ms,
                  slo_ms=args.slo_ms)
    else:
        rc.update(slots=args.slots, prompt_tokens=args.prompt_tokens,
                  output_tokens=args.output_tokens,
                  priority_fraction=args.priority,
                  ttft_slo_ms=args.ttft_slo_ms,
                  tpot_slo_ms=args.tpot_slo_ms)
    if args.watch:
        rc["watch"] = {"target": args.watch_target,
                       "fast_window_ms": args.watch_window_ms,
                       "slow_window_ms": args.watch_slow_window_ms}
    return rc


def _shard_kwargs(args, observing: bool) -> dict:
    """Validate ``--shards``/``--shard-jobs`` into simulate() kwargs.

    ``--shards 1`` (the default) is the ordinary single-loop run;
    anything larger switches to the summary-detail sharded path, which
    a :func:`summarize`/:func:`summarize_generation` call consumes the
    same way it consumes a full result.
    """
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.shards == 1:
        if args.shard_jobs is not None:
            raise SystemExit("--shard-jobs needs --shards > 1")
        return {}
    if args.profile:
        raise SystemExit(
            "--profile times one event loop and cannot span --shards "
            "cells; profile a --shards 1 run")
    if observing and args.shard_jobs is not None and args.shard_jobs >= 2:
        raise SystemExit(
            "--trace/--metrics/--watch observers cannot cross "
            "--shard-jobs processes; drop --shard-jobs to run the "
            "cells serially in-process")
    return {"detail": "summary", "shards": args.shards,
            "shard_jobs": args.shard_jobs}


def _cmd_serve(args) -> None:
    from .experiments.common import default_accelerator
    from .serving import (get_batching, plan_capacity, render_capacity_plan,
                          render_serving_report, simulate, summarize)

    mix = _parse_mix(args.models)
    requests = _build_workload(args, mix)
    accel = default_accelerator()
    batching = get_batching(args.batch, args.batch_size,
                            args.batch_timeout_ms)
    fleet, failures = _parse_fleet(args, requests, generation=False)

    if args.plan:
        if fleet is not None:
            raise SystemExit(
                "--plan searches fleet *size* and cannot honor a fixed "
                "--heterogeneous spec")
        if args.slo_ms is None:
            raise SystemExit("--plan requires --slo-ms")
        if args.trace or args.metrics or args.profile or args.watch:
            raise SystemExit(
                "--trace/--metrics/--profile/--watch instrument a "
                "single run and cannot observe a --plan search "
                "(many runs)")
        if args.analytic_only and args.confirm == "probe":
            raise SystemExit(
                "--analytic-only skips the confirming simulations that "
                "--confirm probe asks for; drop one of the two")
        # The confirming probes run summary-detail, so they can shard:
        # reuse the ordinary validation (shards >= 1, --shard-jobs
        # needs --shards > 1) and thread the kwargs through.
        shard_kwargs = _shard_kwargs(args, observing=False)
        # Gate throughput on the *realized* offered load: for diurnal
        # (where --qps is the peak) and bursty seeds the generated rate
        # sits below nominal, and the nominal gate could never be met.
        realized_qps = (len(requests) / args.duration_ms * 1e3
                        if args.scenario != "trace" and requests else None)
        plan = plan_capacity(
            accel, requests, target_p99_ms=args.slo_ms,
            target_qps=realized_qps,
            scheduler=args.policy, batching=batching,
            reprogram_latency_ms=args.reprogram_ms,
            failures=failures,
            mode=args.confirm, confirm=not args.analytic_only,
            shards=shard_kwargs.get("shards", 1),
            shard_jobs=shard_kwargs.get("shard_jobs"))
        if args.as_json:
            out = {
                "instances": plan.instances,
                "target_p99_ms": plan.target_p99_ms,
                "mode": ("analytic-only" if args.analytic_only
                         else args.confirm),
                "probes": {str(n): p for n, p in plan.probes.items()},
            }
            if plan.report is not None:
                out["report"] = plan.report.as_dict()
            if plan.analytic is not None:
                out["analytic"] = plan.analytic.as_dict()
            print(json.dumps(out, indent=2))
        else:
            print(render_capacity_plan(plan))
        return

    if args.analytic_only or args.confirm != "analytic":
        raise SystemExit(
            "--analytic-only/--confirm steer a --plan search; add --plan")

    observer, tracer, sampler, watchdog, profiler = _make_observer(
        args, watch_slo_ms=args.slo_ms, watch_slo_flag="--slo-ms")
    shard_kwargs = _shard_kwargs(args, observing=observer is not None)
    run_cfg = _run_config(args, "serve", fleet)
    result = simulate(
        accel, requests, None if fleet else args.instances,
        scheduler=args.policy, batching=batching,
        reprogram_latency_ms=args.reprogram_ms,
        fleet=fleet, failures=failures,
        observer=observer, profiler=profiler, **shard_kwargs)
    report = summarize(
        result, slo_ms=args.slo_ms,
        watch=watchdog.summary() if watchdog is not None else None)
    if watchdog is not None and tracer is not None:
        watchdog.annotate(tracer)
    _dump_obs(args, tracer, sampler, run_cfg)
    n_inst = fleet.n if fleet else args.instances
    if args.as_json:
        out = {"scenario": args.scenario, "qps": args.qps,
               "duration_ms": args.duration_ms, "seed": args.seed,
               "reprogram_ms": args.reprogram_ms,
               "run_config": run_cfg}
        if fleet is not None:
            out["fleet"] = fleet.describe()
        out.update(report.as_dict())
        if profiler is not None:
            out["profile"] = profiler.as_dict()
        print(json.dumps(out, indent=2))
    else:
        print(render_serving_report(
            report,
            title=(f"Serving: {args.scenario} @ {args.qps:g} qps, "
                   f"{n_inst} instance(s), {args.policy}")))
        if profiler is not None:
            from .obs import render_kernel_profile

            print()
            print(render_kernel_profile(profiler))


def _cmd_generate(args) -> None:
    from .experiments.common import default_accelerator
    from .serving import (LengthSampler, attach_generation_lengths,
                          attach_priorities, render_generation_report,
                          simulate_generation, summarize_generation)

    mix = _parse_mix(args.models)
    arrivals = _build_workload(args, mix)
    accel = default_accelerator()
    try:
        prompt = LengthSampler.parse(args.prompt_tokens)
        output = LengthSampler.parse(args.output_tokens)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    fleet, failures = _parse_fleet(args, arrivals, generation=True)
    requests = attach_generation_lengths(
        arrivals, prompt, output, seed=args.seed,
        max_total=accel.synth.max_seq_len)
    if args.priority is not None:
        try:
            requests = attach_priorities(requests, args.priority,
                                         seed=args.seed)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    observer, tracer, sampler, watchdog, profiler = _make_observer(
        args, watch_slo_ms=args.ttft_slo_ms, watch_slo_flag="--ttft-slo-ms")
    shard_kwargs = _shard_kwargs(args, observing=observer is not None)
    run_cfg = _run_config(args, "generate", fleet)
    result = simulate_generation(
        accel, requests, None if fleet else args.instances,
        slots=args.slots, scheduler=args.policy,
        reprogram_latency_ms=args.reprogram_ms,
        fleet=fleet, failures=failures,
        observer=observer, profiler=profiler, **shard_kwargs)
    report = summarize_generation(
        result, ttft_slo_ms=args.ttft_slo_ms,
        tpot_slo_ms=args.tpot_slo_ms,
        watch=watchdog.summary() if watchdog is not None else None)
    if watchdog is not None and tracer is not None:
        watchdog.annotate(tracer)
    _dump_obs(args, tracer, sampler, run_cfg)
    n_inst = fleet.n if fleet else args.instances
    if args.as_json:
        out = {"scenario": args.scenario, "qps": args.qps,
               "duration_ms": args.duration_ms, "seed": args.seed,
               "prompt_tokens": args.prompt_tokens,
               "output_tokens": args.output_tokens,
               "reprogram_ms": args.reprogram_ms,
               "run_config": run_cfg}
        if fleet is not None:
            out["fleet"] = fleet.describe()
        if args.priority is not None:
            out["priority_fraction"] = args.priority
        out.update(report.as_dict())
        if profiler is not None:
            out["profile"] = profiler.as_dict()
        print(json.dumps(out, indent=2))
    else:
        print(render_generation_report(
            report,
            title=(f"Generation: {args.scenario} @ {args.qps:g} qps, "
                   f"{n_inst} instance(s) x {args.slots} slot(s), "
                   f"{args.policy}")))
        if profiler is not None:
            from .obs import render_kernel_profile

            print()
            print(render_kernel_profile(profiler))


def _cmd_partition(args) -> None:
    from .analysis.tables import render_table
    from .experiments.common import default_accelerator
    from .nn import get_model
    from .parallel import PipelinePartitioner, get_link

    cfg = get_model(args.model)
    accel = default_accelerator()
    partitioner = PipelinePartitioner(accel, get_link(args.link))
    if args.tp == "auto":
        plan = partitioner.best_plan(cfg, args.devices)
    else:
        try:
            tp = int(args.tp)
        except ValueError:
            raise SystemExit(
                f"invalid --tp {args.tp!r} (expected an integer or 'auto')"
            ) from None
        plan = partitioner.plan(cfg, args.devices, tp)

    # Single-device comparison (only when the workload fits one device).
    single_ms = single_inf_s = None
    if cfg.num_layers <= accel.synth.max_layers:
        rep = accel.latency_report(cfg)
        single_ms = rep.latency_ms
        single_inf_s = 1e3 / rep.latency_ms

    if args.as_json:
        out = plan.as_dict()
        if single_ms is not None:
            out["single_device"] = {"latency_ms": single_ms,
                                    "inf_per_s": single_inf_s}
            out["steady_state"]["speedup"] = (
                plan.steady_state_inf_per_s * single_ms / 1e3)
        print(json.dumps(out, indent=2))
    else:
        rows = [
            (s.index, f"[{s.layer_start}, {s.layer_end})", s.num_layers,
             s.tp_ways, s.cycles, plan.bubble_cycles[s.index])
            for s in plan.stages
        ]
        print(render_table(
            ("stage", "layers", "n", "tp", "cycles", "bubble cyc"), rows,
            title=(f"{cfg.name} across {plan.n_devices} device(s): "
                   f"{plan.num_stages} stage(s) x tp"
                   f"{plan.stages[0].tp_ways} over {plan.link.name}")))
        print(f"\ninterconnect : {plan.boundary_bytes} B/boundary, "
              f"{plan.link_cycles} cyc/hop, "
              f"{plan.interconnect_cycles} cyc end-to-end")
        print(f"fill latency : {plan.fill_ms:.3f} ms "
              f"({plan.fill_cycles:,} cyc)")
        print(f"steady state : {plan.steady_state_inf_per_s:.2f} inf/s "
              f"(period {plan.bottleneck_cycles:,} cyc, "
              f"bubbles {plan.bubble_fraction:.1%})")
        if single_ms is not None:
            print(f"single device: {single_ms:.3f} ms, "
                  f"{single_inf_s:.2f} inf/s  ->  speedup "
                  f"{plan.steady_state_inf_per_s / single_inf_s:.2f}x")
        if args.gantt:
            print()
            print(plan.timeline(args.gantt).gantt())


def _csv_ints(text: str, flag: str) -> tuple:
    try:
        return tuple(int(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise SystemExit(
            f"invalid {flag} {text!r} (expected comma-separated "
            "integers)") from None


def _csv_strs(text: str) -> tuple:
    return tuple(v.strip() for v in text.split(",") if v.strip())


def _cmd_dse(args) -> None:
    from .dse import (EvalCache, evaluate_point, explore, get_objectives,
                      render_exploration, standard_space)
    from .dse.objectives import (FAILURE_OBJECTIVE_NAMES,
                                 GENERATION_OBJECTIVE_NAMES,
                                 WATCH_OBJECTIVE_NAMES)

    if args.jobs < 1:
        raise SystemExit(f"invalid --jobs {args.jobs} (expected >= 1)")
    if args.batch is not None and args.batch < 1:
        raise SystemExit(f"invalid --batch {args.batch} (expected >= 1)")
    if args.prescreen_keep is not None and not args.prescreen:
        raise SystemExit("--prescreen-keep requires --prescreen")
    try:
        space = standard_space(
            models=tuple(args.models or ("bert-variant",
                                         "model2-lhc-trigger")),
            tiles_mha=_csv_ints(args.tiles_mha, "--tiles-mha"),
            tiles_ffn=_csv_ints(args.tiles_ffn, "--tiles-ffn"),
            formats=_csv_strs(args.formats),
            devices=_csv_ints(args.devices, "--devices"),
            fleets=_csv_ints(args.fleet, "--fleet"),
            schedulers=_csv_strs(args.schedulers),
        )
        objectives = get_objectives(_csv_strs(args.objectives))
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"invalid search space: {exc}") from None

    cache = None
    if args.resume or args.cache_dir:
        cache = EvalCache(args.cache_dir or ".dse_cache")
    # The generation and failure-injection simulations each add real
    # per-point cost: only pay for the ones whose objectives are asked.
    selected = {o.name for o in objectives}
    needs_gen = bool(set(GENERATION_OBJECTIVE_NAMES) & selected)
    needs_fail = bool(set(FAILURE_OBJECTIVE_NAMES) & selected)
    needs_watch = bool(set(WATCH_OBJECTIVE_NAMES) & selected)
    settings = {"qps": args.qps, "duration_ms": args.duration_ms,
                "seed": args.seed, "link": args.link,
                "gen_objectives": needs_gen,
                "fail_objectives": needs_fail,
                "watch_objectives": needs_watch}
    strategy = args.strategy
    strategy_options = {"seed": args.seed, "samples": args.samples,
                        "population": args.population,
                        "generations": args.generations}
    if args.prescreen:
        # The chosen strategy becomes the inner proposal loop; the
        # prescreen wrapper filters its batches through the surrogate.
        strategy_options["inner"] = strategy
        strategy = "prescreen"
        if args.prescreen_keep is not None:
            strategy_options["keep"] = args.prescreen_keep
    result = explore(
        space, evaluate_point,
        objectives=objectives,
        strategy=strategy,
        strategy_options=strategy_options,
        settings=settings,
        jobs=args.jobs,
        batch_size=args.batch,
        cache=cache,
        profile=args.profile,
    )
    if args.as_json:
        out = result.as_dict()
        if args.pareto:
            del out["results"]
        print(json.dumps(out, indent=2))
    else:
        print(render_exploration(
            result, pareto_only=args.pareto,
            title=f"DSE: {result.strategy} over {space.size} "
                  "grid point(s)"))


def _cmd_obs(args) -> int:
    """``obs diff`` / ``obs bench`` / ``obs trace-summary``.

    Returns the process exit code: 1 when a diff finds regressions or
    a bench gate is violated, 0 otherwise — so CI can gate on it.
    """
    if args.obs_command == "diff":
        from .obs.diff import diff_runs, load_run, render_diff

        try:
            run_a = load_run(args.run_a)
            run_b = load_run(args.run_b)
        except (OSError, ValueError) as exc:
            # ValueError also covers json.JSONDecodeError
            raise SystemExit(f"cannot read run export: {exc}") from None
        try:
            report = diff_runs(run_a, run_b, rtol=args.rtol,
                               atol=args.atol)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        if args.as_json:
            print(json.dumps(report.as_dict(), indent=2))
        else:
            print(render_diff(report, name_a=args.run_a,
                              name_b=args.run_b))
        return 0 if report.ok else 1

    if args.obs_command == "bench":
        from .obs.bench_history import (bench_trend, check_gates,
                                        load_history, parse_gate,
                                        render_bench_trend)

        try:
            gates = [parse_gate(g) for g in (args.gates or [])]
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        try:
            history = load_history(args.results)
        except (OSError, ValueError) as exc:
            # ValueError also covers json.JSONDecodeError
            raise SystemExit(
                f"cannot read benchmark history: {exc}") from None
        try:
            rows = bench_trend(history, window=args.window,
                               rtol=args.rtol)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        violations = check_gates(rows, gates)
        if args.as_json:
            print(json.dumps(
                {"rows": [r.as_dict() for r in rows],
                 "gates": [f"{m}{op}{v:g}" for m, op, v in gates],
                 "violations": violations,
                 "ok": not violations}, indent=2))
        else:
            print(render_bench_trend(rows))
            for violation in violations:
                print(f"GATE VIOLATION: {violation}")
        return 1 if violations else 0

    # trace-summary
    from .obs import render_trace_summary, summarize_trace

    try:
        with open(args.trace) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"cannot read trace: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"invalid trace JSON: {exc}") from None
    try:
        summary = summarize_trace(doc)
    except ValueError as exc:
        raise SystemExit(f"{args.trace}: {exc}") from None
    if args.as_json:
        print(json.dumps(summary, indent=2))
    else:
        print(render_trace_summary(summary, top=args.top))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("table1", "table2", "table3", "figure7", "scaling"):
        _cmd_experiment(args.command)
    elif args.command == "all":
        for name in ("table1", "table2", "table3", "figure7", "scaling"):
            _cmd_experiment(name)
            print()
    elif args.command == "summary":
        _cmd_summary()
    elif args.command == "latency":
        _cmd_latency(args.model, args.list_models, args.as_json)
    elif args.command == "power":
        _cmd_power()
    elif args.command == "serve":
        _cmd_serve(args)
    elif args.command == "generate":
        _cmd_generate(args)
    elif args.command == "partition":
        _cmd_partition(args)
    elif args.command == "dse":
        _cmd_dse(args)
    elif args.command == "obs":
        return _cmd_obs(args)
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
