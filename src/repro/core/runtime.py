"""Runtime layer: instruction-level execution and reprogramming sessions.

Two pieces:

* :class:`ProgramExecutor` — executes a *compiled instruction stream*
  against tile-granular engine state.  This is the controller-eye view
  of the accelerator: every LOAD marks a tile resident, every RUN
  performs exactly that tile's arithmetic, and running a tile that was
  never loaded raises (catching compiler/controller bugs).  Its final
  output is bit-identical to :meth:`repro.core.accelerator.ProTEA.run_fx`
  — asserted by the integration tests.
* :class:`RuntimeSession` — the user-facing "no resynthesis" workflow:
  hop between models on one synthesized instance, accumulating
  reprogramming statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..fixedpoint import FxTensor, saturate
from ..isa.compiler import compile_program
from ..isa.instructions import Instruction, Opcode
from ..isa.interpreter import Interpreter
from ..nn.model_zoo import TransformerConfig
from .accelerator import ProTEA
from .engines import add_bias_and_requantize
from .quantized import QuantizedEncoder, QuantizedLayer

__all__ = ["ProgramExecutor", "RuntimeSession", "TileNotResidentError"]


class TileNotResidentError(RuntimeError):
    """A RUN instruction referenced a tile that was never loaded."""


@dataclass
class _LayerState:
    """Mutable per-layer execution state of the executor."""

    x: FxTensor
    qkv_acc: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=dict)
    qkv_tiles: Set[Tuple[int, int]] = field(default_factory=set)
    head_out: Dict[int, FxTensor] = field(default_factory=dict)
    concat: Optional[FxTensor] = None
    ffn_acc: Dict[int, np.ndarray] = field(default_factory=dict)
    ffn_tiles: Dict[int, Set[int]] = field(default_factory=dict)
    ffn_in: Dict[int, FxTensor] = field(default_factory=dict)
    ln1_out: Optional[FxTensor] = None
    out: Optional[FxTensor] = None


class ProgramExecutor:
    """Executes compiled programs tile by tile (see module docstring)."""

    def __init__(self, accel: ProTEA, weights: QuantizedEncoder):
        self.accel = accel
        self.weights = weights
        self._state: Optional[_LayerState] = None
        self._layer_idx = -1
        self._output: Optional[FxTensor] = None
        self.interp = Interpreter()
        self.interp.register_many({
            Opcode.CONFIGURE: self._nop,
            Opcode.LOAD_BIASES: self._nop,
            Opcode.LOAD_INPUT: self._nop,
            Opcode.LOAD_QKV_WEIGHTS: self._load_qkv,
            Opcode.LOAD_FFN_WEIGHTS: self._load_ffn,
            Opcode.RUN_QKV: self._run_qkv,
            Opcode.RUN_QK: self._run_attention_head,
            Opcode.RUN_SOFTMAX: self._nop,   # fused into RUN_QK handler
            Opcode.RUN_SV: self._nop,        # fused into RUN_QK handler
            Opcode.RUN_FFN1: self._run_ffn,
            Opcode.RUN_FFN2: self._run_ffn,
            Opcode.RUN_FFN3: self._run_ffn,
            Opcode.RUN_LN1: self._run_ln1,
            Opcode.RUN_LN2: self._run_ln2,
            Opcode.STORE_OUTPUT: self._store,
        })

    # ------------------------------------------------------------------
    def run(self, x: FxTensor) -> FxTensor:
        """Compile + execute the programmed workload on input ``x``."""
        cfg = self.accel.config
        program = compile_program(cfg, self.accel.synth)
        self._state = _LayerState(x=x)
        self._layer_idx = 0
        self._output = None
        self.interp.run(program)
        if self._output is None:
            raise RuntimeError("program halted without STORE_OUTPUT")
        return self._output

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _nop(self, instr: Instruction) -> None:
        self._maybe_advance_layer(instr)

    def _maybe_advance_layer(self, instr: Instruction) -> None:
        if instr.opcode is Opcode.CONFIGURE:
            return
        if instr.layer != self._layer_idx:
            # The previous layer must have completed (LN2 ran).
            state = self._state
            assert state is not None
            if state.out is None:
                raise RuntimeError(
                    f"layer {self._layer_idx} never finalized before "
                    f"layer {instr.layer} began"
                )
            self._state = _LayerState(x=state.out)
            self._layer_idx = instr.layer

    def _layer(self) -> QuantizedLayer:
        return self.weights.layers[self._layer_idx]

    def _tile_bounds(self, index: int) -> Tuple[int, int]:
        ts = self.accel.synth.ts_mha
        d = self.accel.config.d_model
        start = index * ts
        return start, min(start + ts, d)

    # ------------------------------------------------------------------
    # attention
    # ------------------------------------------------------------------
    def _load_qkv(self, instr: Instruction) -> None:
        self._maybe_advance_layer(instr)
        assert self._state is not None
        self._state.qkv_tiles.add((instr.head, instr.tile))

    def _run_qkv(self, instr: Instruction) -> None:
        self._maybe_advance_layer(instr)
        state = self._state
        assert state is not None
        cfg = self.accel.config
        layer = self._layer()
        start, stop = self._tile_bounds(instr.tile)
        x_tile = state.x.raw[:, start:stop]
        for head in range(cfg.num_heads):
            if (head, instr.tile) not in state.qkv_tiles:
                raise TileNotResidentError(
                    f"QKV tile {instr.tile} for head {head} not loaded"
                )
            if head not in state.qkv_acc:
                d_k = cfg.d_model // cfg.num_heads
                z = lambda: np.zeros((cfg.seq_len, d_k), dtype=np.int64)  # noqa: E731
                state.qkv_acc[head] = (z(), z(), z())
            accs = state.qkv_acc[head]
            for acc, q in zip(accs, (layer.wq[head], layer.wk[head],
                                     layer.wv[head])):
                acc += x_tile @ q.weight.raw[start:stop, :]

    def _run_attention_head(self, instr: Instruction) -> None:
        """RUN_QK: finalize the head's Q/K/V and run scores → softmax →
        SV (the RUN_SOFTMAX / RUN_SV instructions are the occupancy
        markers for those engines; arithmetic happens here)."""
        self._maybe_advance_layer(instr)
        state = self._state
        assert state is not None
        head = instr.head
        layer = self._layer()
        att = self.accel.attention
        fmts = self.accel.formats
        accs = state.qkv_acc[head]
        wq = layer.wq[head]
        # Reconstruct accumulator-format tensors exactly as the module does.
        from .engines import _accumulate_fmt

        d = self.accel.config.d_model
        fmt = _accumulate_fmt(state.x.fmt, wq.weight.fmt, d)
        qkv = []
        for acc, lin in zip(accs, (layer.wq[head], layer.wk[head],
                                   layer.wv[head])):
            wide = FxTensor(saturate(acc, fmt), fmt)
            qkv.append(add_bias_and_requantize(wide, lin.bias, fmts.qkv))
        q, k, v = qkv

        from ..nn.functional import attention_scale

        scale = attention_scale(q.raw.shape[1], d, att.scale_mode)
        scores_val = (q.raw @ k.raw.T) * (q.fmt.scale * k.fmt.scale) * scale
        scores = FxTensor.from_float(scores_val, fmts.score)
        probs = att.softmax(scores)
        sv_val = (probs.raw @ v.raw) * (probs.fmt.scale * v.fmt.scale)
        state.head_out[head] = FxTensor.from_float(sv_val, fmts.activation)

    # ------------------------------------------------------------------
    # FFN
    # ------------------------------------------------------------------
    def _ensure_concat(self) -> None:
        state = self._state
        assert state is not None
        if state.concat is None:
            cfg = self.accel.config
            parts = [state.head_out[h].raw for h in range(cfg.num_heads)]
            state.concat = FxTensor(np.concatenate(parts, axis=1),
                                    self.accel.formats.activation)
            state.ffn_in[1] = state.concat

    def _ffn_weight(self, engine: int) -> FxTensor:
        layer = self._layer()
        return {1: layer.wo.weight, 2: layer.w1.weight,
                3: layer.w2.weight}[engine]

    def _load_ffn(self, instr: Instruction) -> None:
        self._maybe_advance_layer(instr)
        assert self._state is not None
        self._state.ffn_tiles.setdefault(instr.arg, set()).add(instr.tile)

    def _engine_of(self, opcode: Opcode) -> int:
        return {Opcode.RUN_FFN1: 1, Opcode.RUN_FFN2: 2, Opcode.RUN_FFN3: 3}[
            opcode]

    def _run_ffn(self, instr: Instruction) -> None:
        self._maybe_advance_layer(instr)
        state = self._state
        assert state is not None
        engine = self._engine_of(instr.opcode)
        if engine == 1:
            self._ensure_concat()
        if engine == 2 and 2 not in state.ffn_in:
            raise RuntimeError("FFN2 ran before LN1 produced its input")
        if engine == 3 and 3 not in state.ffn_in:
            self._finalize_ffn2()

        synth = self.accel.synth
        cfg = self.accel.config
        w = self._ffn_weight(engine)
        x_in = state.ffn_in[engine]
        d_in = x_in.raw.shape[1]
        d_out = w.raw.shape[1]
        t_in = max(1, math.ceil(cfg.d_model / synth.ts_ffn))
        # FFN3 reduces 4*d_model in 4*TS-tall blocks → same t_in blocks.
        row_ts = synth.ts_ffn if engine != 3 else 4 * synth.ts_ffn
        c, r = divmod(instr.tile, t_in)
        c0, c1 = c * synth.ts_ffn, min((c + 1) * synth.ts_ffn, d_out)
        r0, r1 = r * row_ts, min((r + 1) * row_ts, d_in)
        if c0 >= d_out or r0 >= d_in:
            return  # zero-gated grid invocation (no real columns)
        if instr.tile not in state.ffn_tiles.get(engine, set()):
            raise TileNotResidentError(
                f"FFN{engine} tile {instr.tile} not loaded"
            )
        if engine not in state.ffn_acc:
            state.ffn_acc[engine] = np.zeros(
                (cfg.seq_len, d_out), dtype=np.int64)
        state.ffn_acc[engine][:, c0:c1] += (
            x_in.raw[:, r0:r1] @ w.raw[r0:r1, c0:c1]
        )

    def _finalize_linear(self, engine: int, out_fmt) -> FxTensor:
        from .engines import _accumulate_fmt

        state = self._state
        assert state is not None
        layer = self._layer()
        lin = {1: layer.wo, 2: layer.w1, 3: layer.w2}[engine]
        x_in = state.ffn_in[engine]
        fmt = _accumulate_fmt(x_in.fmt, lin.weight.fmt, x_in.raw.shape[1])
        wide = FxTensor(saturate(state.ffn_acc[engine], fmt), fmt)
        return add_bias_and_requantize(wide, lin.bias, out_fmt)

    def _finalize_ffn2(self) -> None:
        state = self._state
        assert state is not None
        fmts = self.accel.formats
        hid = self._finalize_linear(2, fmts.hidden)
        hid = self.accel.ffn._activate(hid, self._layer().activation)
        state.ffn_in[3] = hid

    def _run_ln1(self, instr: Instruction) -> None:
        self._maybe_advance_layer(instr)
        state = self._state
        assert state is not None
        layer = self._layer()
        fmts = self.accel.formats
        proj = self._finalize_linear(1, fmts.activation)
        state.ln1_out = self.accel.ffn.layernorm(
            proj, state.x, layer.ln1_gamma, layer.ln1_beta)
        state.ffn_in[2] = state.ln1_out

    def _run_ln2(self, instr: Instruction) -> None:
        self._maybe_advance_layer(instr)
        state = self._state
        assert state is not None
        layer = self._layer()
        fmts = self.accel.formats
        con = self._finalize_linear(3, fmts.activation)
        state.out = self.accel.ffn.layernorm(
            con, state.ln1_out, layer.ln2_gamma, layer.ln2_beta)

    def _store(self, instr: Instruction) -> None:
        state = self._state
        assert state is not None
        if state.out is None:
            raise RuntimeError("STORE_OUTPUT before the last layer finished")
        self._output = state.out


@dataclass
class RuntimeSession:
    """Hop between workloads on one synthesized accelerator.

    Tracks how many times the instance was reprogrammed versus
    resynthesized (the latter is always zero — that is the point).

    ``reprogram_latency_ms`` is the cost model for a *workload switch*:
    CSR writes are microseconds, but swapping to a different model also
    means streaming a new weight set into HBM, so serving simulations
    charge this penalty whenever a deploy changes the programmed
    workload.  Deploying the already-resident workload is free."""

    accel: ProTEA
    reprogram_count: int = 0
    history: List[TransformerConfig] = field(default_factory=list)
    #: Penalty charged when a deploy switches the resident workload.
    reprogram_latency_ms: float = 0.0
    #: Total switch penalty accumulated across this session's deploys.
    reprogram_time_ms: float = 0.0
    #: Deploys that actually changed the resident workload.
    switch_count: int = 0

    def _switches(self, config: TransformerConfig) -> bool:
        """Would deploying ``config`` change the resident workload?"""
        return not self.history or self.history[-1] != config

    def switch_cost_ms(self, config: TransformerConfig) -> float:
        """Cost of deploying ``config`` next (0 if already resident)."""
        return self.reprogram_latency_ms if self._switches(config) else 0.0

    def deploy(self, config: TransformerConfig) -> ProTEA:
        """Program a new workload; never resynthesizes."""
        switched = self._switches(config)
        self.accel.program(config)  # validates first; a reject leaves no trace
        if switched:
            self.switch_count += 1
            self.reprogram_time_ms += self.reprogram_latency_ms
        self.reprogram_count += 1
        self.history.append(config)
        return self.accel

    def latency_ms(self, config: TransformerConfig) -> float:
        self.deploy(config)
        return self.accel.latency_ms()

    @property
    def resynthesis_count(self) -> int:
        """Always 0: runtime reprogramming never rebuilds the bitstream."""
        return 0
