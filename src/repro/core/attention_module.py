"""The multi-head attention module: QKV_CE, QK_CE, softmax, SV_CE.

One engine set exists per attention head ("The number of these engines
is determined by the number of attention heads"), all heads executing
in parallel.  The module provides three coupled views of the same
hardware:

* **functional** — bit-accurate fixed-point forward pass per head
  (:meth:`AttentionModule.forward`), validated against the golden
  float MHA;
* **cycles** — per-engine cycle counts from the Algorithm 1–3 loop
  nests (:meth:`AttentionModule.compute_cycles`);
* **resources / timing** — PE and buffer inventory
  (:meth:`AttentionModule.resources`, :meth:`AttentionModule.timing_paths`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..fixedpoint import FxTensor, requantize, saturate
from ..hls import (
    ArrayPartition,
    ArraySpec,
    EnginePath,
    PartitionKind,
    ResourceEstimate,
    estimate_loop_resources,
    schedule_loop,
)
from ..isa.controller import SynthParams
from ..nn.functional import attention_scale
from .engines import (
    DatapathFormats,
    add_bias_and_requantize,
    qk_loop_nest,
    qkv_loop_nest,
    sv_loop_nest,
    tiled_fx_matmul_reduction,
)
from .quantized import QuantizedLayer
from .softmax_unit import SoftmaxUnit

__all__ = ["AttentionModule", "HeadTrace"]


@dataclass
class HeadTrace:
    """Per-head intermediates of one attention forward pass."""

    q: FxTensor
    k: FxTensor
    v: FxTensor
    scores: FxTensor
    probs: FxTensor
    sv: FxTensor


@dataclass
class AttentionModule:
    """All per-head attention engines of one synthesized ProTEA."""

    synth: SynthParams
    formats: DatapathFormats = field(default_factory=DatapathFormats.fix8)
    scale_mode: str = "sqrt_dk"
    softmax: SoftmaxUnit = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.softmax is None:
            self.softmax = SoftmaxUnit(formats=self.formats)

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------
    def forward_head(
        self, x: FxTensor, layer: QuantizedLayer, head: int
    ) -> HeadTrace:
        """One head's QKV → scores → softmax → SV pipeline."""
        ts = self.synth.ts_mha
        wq, wk, wv = layer.wq[head], layer.wk[head], layer.wv[head]
        q_acc = tiled_fx_matmul_reduction(x, wq.weight, ts)
        k_acc = tiled_fx_matmul_reduction(x, wk.weight, ts)
        v_acc = tiled_fx_matmul_reduction(x, wv.weight, ts)
        q = add_bias_and_requantize(q_acc, wq.bias, self.formats.qkv)
        k = add_bias_and_requantize(k_acc, wk.bias, self.formats.qkv)
        v = add_bias_and_requantize(v_acc, wv.bias, self.formats.qkv)

        d_k = q.raw.shape[1]
        scale = attention_scale(d_k, x.raw.shape[1], self.scale_mode)
        # Exact integer Q.K^T, then the fixed scale multiplier, then the
        # score-buffer quantization.
        scores_val = (q.raw @ k.raw.T) * (q.fmt.scale * k.fmt.scale) * scale
        scores = FxTensor.from_float(scores_val, self.formats.score)

        probs = self.softmax(scores)

        sv_raw = probs.raw @ v.raw  # exact integer product
        prod_scale = probs.fmt.scale * v.fmt.scale
        sv = FxTensor.from_float(sv_raw * prod_scale, self.formats.activation)
        return HeadTrace(q=q, k=k, v=v, scores=scores, probs=probs, sv=sv)

    def forward(
        self, x: FxTensor, layer: QuantizedLayer
    ) -> tuple[FxTensor, List[HeadTrace]]:
        """All heads in parallel; returns the concatenated attention
        output (pre output-projection) and per-head traces."""
        traces = [self.forward_head(x, layer, h)
                  for h in range(layer.num_heads)]
        concat = np.concatenate([t.sv.raw for t in traces], axis=1)
        return FxTensor(concat, self.formats.activation), traces

    # ------------------------------------------------------------------
    # Cycle model
    # ------------------------------------------------------------------
    def compute_cycles(
        self, seq_len: int, d_model: int, num_heads: int
    ) -> Dict[str, int]:
        """Per-engine compute cycles for one layer (heads in parallel).

        Sequences longer than the synthesized chunk are processed in
        ``ceil(SL/chunk)`` chunks: the score-dependent engines (QK,
        softmax, SV) iterate over chunk pairs, which is what makes long
        sequences scale super-linearly.
        """
        synth = self.synth
        d_k = d_model // num_heads
        tiles = max(1, math.ceil(d_model / synth.ts_mha))
        chunk = synth.seq_chunk
        chunks = math.ceil(seq_len / chunk)
        rows = min(seq_len, chunk)
        dk_synth = synth.max_d_model // synth.max_heads
        passes = math.ceil(d_k / dk_synth)

        qkv = tiles * schedule_loop(
            qkv_loop_nest(seq_len, d_k, synth.ts_mha)).cycles
        qk = chunks * chunks * schedule_loop(
            qk_loop_nest(rows, rows, dk_synth, reduction_passes=passes)).cycles
        sm = chunks * schedule_loop(
            self.softmax.loop_nest(rows, seq_len)).cycles
        sv = chunks * schedule_loop(
            sv_loop_nest(rows, d_k, chunk, key_chunks=chunks)).cycles
        return {"qkv": qkv, "qk": qk, "softmax": sm, "sv": sv,
                "total": qkv + qk + sm + sv}

    def decode_compute_cycles(
        self, cache_len: int, d_model: int, num_heads: int
    ) -> Dict[str, int]:
        """Per-engine cycles of ONE new query row against ``cache_len`` keys.

        The KV-cache decode step: Q/K/V projections run for a single
        row (the cached keys/values are *not* recomputed), while the
        score-dependent engines sweep the whole cache — the term that
        grows with generated length.  ``cache_len`` counts the keys the
        new row attends over, including itself.
        """
        if cache_len < 1:
            raise ValueError("cache_len must be >= 1")
        synth = self.synth
        d_k = d_model // num_heads
        tiles = max(1, math.ceil(d_model / synth.ts_mha))
        chunk = synth.seq_chunk
        m_chunks = math.ceil(cache_len / chunk)
        k_rows = min(cache_len, chunk)
        dk_synth = synth.max_d_model // synth.max_heads
        passes = math.ceil(d_k / dk_synth)

        qkv = tiles * schedule_loop(
            qkv_loop_nest(1, d_k, synth.ts_mha)).cycles
        qk = m_chunks * schedule_loop(
            qk_loop_nest(1, k_rows, dk_synth, reduction_passes=passes)).cycles
        sm = schedule_loop(self.softmax.loop_nest(1, cache_len)).cycles
        sv = schedule_loop(
            sv_loop_nest(1, d_k, chunk, key_chunks=m_chunks)).cycles
        return {"qkv": qkv, "qk": qk, "softmax": sm, "sv": sv,
                "total": qkv + qk + sm + sv}

    def weight_bytes_per_tile(self, d_model: int, num_heads: int) -> int:
        """Off-chip bytes of one head's Wq+Wk+Wv tile."""
        d_k = d_model // num_heads
        elem = (self.formats.weight_bits + 7) // 8
        return 3 * d_k * self.synth.ts_mha * elem

    def input_bytes_per_tile(self, seq_len: int) -> int:
        """Off-chip bytes of one input (X) tile."""
        elem = (self.formats.activation.total_bits + 7) // 8
        return seq_len * self.synth.ts_mha * elem

    # ------------------------------------------------------------------
    # Resource / timing model
    # ------------------------------------------------------------------
    def _head_arrays(self) -> List[ArraySpec]:
        synth = self.synth
        dk_synth = synth.max_d_model // synth.max_heads
        part2 = (ArrayPartition(PartitionKind.COMPLETE, dim=2),)
        wbits = self.formats.weight_bits
        return [
            ArraySpec("wq", (dk_synth, synth.ts_mha), wbits, part2),
            ArraySpec("wk", (dk_synth, synth.ts_mha), wbits, part2),
            ArraySpec("wv", (dk_synth, synth.ts_mha), wbits, part2),
            ArraySpec("x", (synth.seq_chunk, synth.ts_mha),
                      self.formats.activation.total_bits, part2),
            ArraySpec("q", (synth.seq_chunk, dk_synth),
                      self.formats.qkv.total_bits, part2),
            ArraySpec("k", (synth.seq_chunk, dk_synth),
                      self.formats.qkv.total_bits, part2),
            ArraySpec("v", (synth.seq_chunk, dk_synth),
                      self.formats.qkv.total_bits, part2),
            ArraySpec("s", (synth.seq_chunk, synth.seq_chunk),
                      self.formats.score.total_bits, part2),
        ]

    def resources(self) -> ResourceEstimate:
        """Whole-module resources: per-head engines x ``max_heads``."""
        synth = self.synth
        dk_synth = synth.max_d_model // synth.max_heads
        chunk = synth.seq_chunk
        per_head = (
            estimate_loop_resources(
                qkv_loop_nest(chunk, dk_synth, synth.ts_mha),
                arrays=self._head_arrays(), label="qkv_ce")
            + estimate_loop_resources(
                qk_loop_nest(chunk, chunk, dk_synth), label="qk_ce")
            + estimate_loop_resources(
                sv_loop_nest(chunk, dk_synth, chunk), label="sv_ce")
            + estimate_loop_resources(
                self.softmax.loop_nest(chunk, chunk), label="softmax")
        )
        return per_head.scaled(synth.max_heads)

    def timing_paths(self) -> List[EnginePath]:
        """Critical-path descriptors for the Fmax model.

        The attention engine class's routing sweet spot is the
        published optimum: a 64-wide unroll iterated over 12 tiles.
        """
        from ..hls.timing import tile_regularity

        synth = self.synth
        tiles = synth.tiles_mha_max
        dk_synth = synth.max_d_model // synth.max_heads
        reg = tile_regularity(synth.max_d_model, synth.ts_mha)
        return [
            EnginePath("qkv_ce", width=synth.ts_mha, iters=tiles,
                       width_ref=64, iters_ref=12, **reg),
            EnginePath("qk_ce", width=dk_synth, iters=1,
                       width_ref=dk_synth, iters_ref=1),
            EnginePath("sv_ce", width=synth.seq_chunk, iters=1,
                       width_ref=synth.seq_chunk, iters_ref=1),
        ]

    # ------------------------------------------------------------------
    def reference_concat(
        self, x: FxTensor, layer: QuantizedLayer
    ) -> np.ndarray:
        """Float reference of the concatenated head outputs, computed
        from the *dequantized* weights (isolates datapath error from
        weight-quantization error)."""
        xf = x.to_float()
        outs = []
        d_model = xf.shape[1]
        for h in range(layer.num_heads):
            q = xf @ layer.wq[h].weight.to_float() + layer.wq[h].bias.to_float()
            k = xf @ layer.wk[h].weight.to_float() + layer.wk[h].bias.to_float()
            v = xf @ layer.wv[h].weight.to_float() + layer.wv[h].bias.to_float()
            scale = attention_scale(q.shape[1], d_model, self.scale_mode)
            s = (q @ k.T) * scale
            e = np.exp(s - s.max(axis=1, keepdims=True))
            outs.append((e / e.sum(axis=1, keepdims=True)) @ v)
        return np.concatenate(outs, axis=1)
