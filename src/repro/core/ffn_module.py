"""The feed-forward module: FFN1_CE, FFN2_CE, FFN3_CE + layer norms.

Roles (Section IV-B):

* ``FFN1_CE`` — "first linear transformation on the attention scores"
  = the attention **output projection** (``d_model x d_model``),
  followed by a layer-norm (with the residual from the layer input);
* ``FFN2_CE`` — the expansion linear ``d_model → 4 d_model`` with the
  activation function;
* ``FFN3_CE`` — the contraction linear ``4 d_model → d_model``,
  followed by the second layer-norm (residual from the FFN input).

Weights are tiled along **both** dimensions (Fig. 6).  The output-dim
tile counts are frozen at the synthesized maxima — the buffers and
controller iteration grids exist in silicon regardless of the runtime
``d_model`` — while the reduction-dim tile count follows the runtime
value.  That asymmetry is what makes measured latency scale *linearly*
in ``d_model`` (Table I tests 6–7) even though FLOPs scale
quadratically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..fixedpoint import ErfLUT, FxTensor, quantize
from ..hls import (
    ArrayPartition,
    ArraySpec,
    EnginePath,
    PartitionKind,
    ResourceEstimate,
    estimate_loop_resources,
    schedule_loop,
)
from ..isa.controller import SynthParams
from .engines import (
    DatapathFormats,
    add_bias_and_requantize,
    ffn_loop_nest,
    tiled_fx_matmul_2d,
)
from .layernorm_unit import LayerNormUnit
from .quantized import QuantizedLayer

__all__ = ["FFNModule", "FFNTrace"]


@dataclass
class FFNTrace:
    """Intermediates of one FFN-module pass (for stagewise validation)."""

    proj: FxTensor      # FFN1 output (pre-LN)
    ln1: FxTensor       # post first layer norm
    hidden: FxTensor    # FFN2 output, post-activation
    contract: FxTensor  # FFN3 output (pre-LN)
    out: FxTensor       # post second layer norm


@dataclass
class FFNModule:
    """The three FFN engines plus the two layer-norm units."""

    synth: SynthParams
    formats: DatapathFormats = field(default_factory=DatapathFormats.fix8)
    layernorm: LayerNormUnit = None  # type: ignore[assignment]
    erf_lut: ErfLUT = field(default_factory=lambda: ErfLUT(entries=1024))

    def __post_init__(self) -> None:
        if self.layernorm is None:
            self.layernorm = LayerNormUnit(formats=self.formats)

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------
    def _activate(self, x: FxTensor, activation: str) -> FxTensor:
        """Fixed-point activation: ReLU is an integer max; GELU goes
        through the erf LUT."""
        if activation == "relu":
            return FxTensor(np.maximum(x.raw, 0), x.fmt)
        if activation == "gelu":
            val = x.to_float()
            erf_codes = quantize(self.erf_lut(val / np.sqrt(2.0)),
                                 self.formats.prob)
            gelu = 0.5 * val * (1.0 + erf_codes * self.formats.prob.scale)
            return FxTensor.from_float(gelu, self.formats.hidden)
        raise ValueError(f"unknown activation {activation!r}")

    def forward(
        self,
        concat: FxTensor,
        layer_input: FxTensor,
        layer: QuantizedLayer,
    ) -> FFNTrace:
        """Full FFN-module pass.

        ``concat`` is the attention module's concatenated head output;
        ``layer_input`` is the encoder layer's input (residual source
        for the first layer norm).
        """
        ts = self.synth.ts_ffn
        # FFN1: output projection + residual + LN1.
        proj_acc = tiled_fx_matmul_2d(concat, layer.wo.weight, ts, ts)
        proj = add_bias_and_requantize(proj_acc, layer.wo.bias,
                                       self.formats.activation)
        ln1 = self.layernorm(proj, layer_input, layer.ln1_gamma, layer.ln1_beta)

        # FFN2: expansion + activation.
        hid_acc = tiled_fx_matmul_2d(ln1, layer.w1.weight, ts, ts)
        hid = add_bias_and_requantize(hid_acc, layer.w1.bias,
                                      self.formats.hidden)
        hid = self._activate(hid, layer.activation)

        # FFN3: contraction + residual + LN2.
        con_acc = tiled_fx_matmul_2d(hid, layer.w2.weight, ts, ts)
        con = add_bias_and_requantize(con_acc, layer.w2.bias,
                                      self.formats.activation)
        out = self.layernorm(con, ln1, layer.ln2_gamma, layer.ln2_beta)
        return FFNTrace(proj=proj, ln1=ln1, hidden=hid, contract=con, out=out)

    # ------------------------------------------------------------------
    # Cycle model
    # ------------------------------------------------------------------
    def tile_grid(self, d_model: int) -> Dict[str, int]:
        """Invocation counts of each engine for runtime ``d_model``.

        Reduction-dim tiles follow the runtime dimension; output-dim
        tiles stay at the synthesized grid (see module docstring).
        """
        synth = self.synth
        t_in = max(1, math.ceil(d_model / synth.ts_ffn))
        t_out = synth.tiles_ffn_max
        return {
            "ffn1": t_in * t_out,
            "ffn2": t_in * (4 * t_out),
            # FFN3 reduces 4*d_model with a 4*TS-wide PE array: the
            # reduction covers 4*d_model/(4*TS) = t_in row blocks.
            "ffn3": t_in * t_out,
        }

    def compute_cycles(self, seq_len: int, d_model: int) -> Dict[str, int]:
        """Per-engine compute cycles for one layer."""
        synth = self.synth
        grid = self.tile_grid(d_model)
        per1 = schedule_loop(
            ffn_loop_nest(seq_len, synth.ts_ffn, synth.ts_ffn, name="ffn1")).cycles
        per2 = schedule_loop(
            ffn_loop_nest(seq_len, synth.ts_ffn, synth.ts_ffn, name="ffn2")).cycles
        per3 = schedule_loop(
            ffn_loop_nest(seq_len, synth.ts_ffn, 4 * synth.ts_ffn,
                          name="ffn3")).cycles
        ln = schedule_loop(self.layernorm.loop_nest(seq_len, d_model)).cycles
        cycles = {
            "ffn1": grid["ffn1"] * per1,
            "ffn2": grid["ffn2"] * per2,
            "ffn3": grid["ffn3"] * per3,
            "ln": 2 * ln,
        }
        cycles["total"] = sum(cycles.values())
        return cycles

    def weight_bytes(self, d_model: int) -> Dict[str, int]:
        """Per-engine off-chip weight traffic for one layer (runtime
        weights only — padding lanes are zero-gated, not loaded)."""
        elem = (self.formats.weight_bits + 7) // 8
        return {
            "ffn1": d_model * d_model * elem,
            "ffn2": d_model * 4 * d_model * elem,
            "ffn3": 4 * d_model * d_model * elem,
        }

    # ------------------------------------------------------------------
    # Resource / timing model
    # ------------------------------------------------------------------
    def _arrays(self) -> List[ArraySpec]:
        synth = self.synth
        part1 = (ArrayPartition(PartitionKind.COMPLETE, dim=1),)
        wbits = self.formats.weight_bits
        abits = self.formats.activation.total_bits
        return [
            ArraySpec("w_ffn12", (synth.ts_ffn, synth.ts_ffn), wbits, part1),
            ArraySpec("w_ffn3", (4 * synth.ts_ffn, synth.ts_ffn), wbits, part1),
            ArraySpec("ffn_in", (synth.seq_chunk, synth.ts_ffn), abits, part1),
            ArraySpec("ffn_out", (synth.seq_chunk, synth.max_d_model), abits,
                      (ArrayPartition(PartitionKind.CYCLIC, factor=16, dim=2),)),
            ArraySpec("ffn_hidden", (synth.seq_chunk, 4 * synth.ts_ffn), abits,
                      (ArrayPartition(PartitionKind.CYCLIC, factor=16, dim=2),)),
        ]

    def resources(self) -> ResourceEstimate:
        synth = self.synth
        chunk = synth.seq_chunk
        est = (
            estimate_loop_resources(
                ffn_loop_nest(chunk, synth.ts_ffn, synth.ts_ffn, name="ffn1"),
                arrays=self._arrays(), label="ffn1_ce")
            + estimate_loop_resources(
                ffn_loop_nest(chunk, synth.ts_ffn, synth.ts_ffn, name="ffn2"),
                label="ffn2_ce")
            + estimate_loop_resources(
                ffn_loop_nest(chunk, synth.ts_ffn, 4 * synth.ts_ffn,
                              name="ffn3"),
                label="ffn3_ce")
            + estimate_loop_resources(
                self.layernorm.loop_nest(chunk, synth.max_d_model),
                label="ln1")
            + estimate_loop_resources(
                self.layernorm.loop_nest(chunk, synth.max_d_model),
                label="ln2")
        )
        return est

    def timing_paths(self) -> List[EnginePath]:
        """Critical-path descriptors; the FFN engine class's sweet spot
        is the published optimum (128-wide, 6 output tiles — 24 for the
        expansion engine whose grid is 4x, 512-wide for FFN3 whose PE
        array is 4 accumulator groups)."""
        from ..hls.timing import tile_regularity

        synth = self.synth
        iters = synth.tiles_ffn_max
        reg = tile_regularity(synth.max_d_model, synth.ts_ffn)
        return [
            EnginePath("ffn1_ce", width=synth.ts_ffn, iters=iters,
                       width_ref=128, iters_ref=6, **reg),
            EnginePath("ffn2_ce", width=synth.ts_ffn, iters=4 * iters,
                       width_ref=128, iters_ref=24, **reg),
            EnginePath("ffn3_ce", width=4 * synth.ts_ffn, iters=iters,
                       width_ref=512, iters_ref=6, **reg),
        ]
