"""ProTEA top level: synthesize once, program at runtime, run.

The lifecycle mirrors the silicon reality:

1. :meth:`ProTEA.synthesize` — freeze tile sizes and maxima, place the
   design on a device (resource check), close timing (Fmax model).
   This is the ~36-hour step the paper performs exactly once.
2. :meth:`ProTEA.program` — MicroBlaze writes the four runtime
   parameters over AXI-Lite.  Milliseconds; no resynthesis.  Raises
   :class:`~repro.isa.controller.ResynthesisRequiredError` if a request
   exceeds the synthesized maxima.
3. :meth:`ProTEA.load_weights` / :meth:`ProTEA.run` — bit-accurate
   fixed-point inference through the tiled engines.
4. :meth:`ProTEA.latency_report` / :meth:`ProTEA.throughput_gops` —
   the measured quantities of Tables I–III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..analysis.metrics import encoder_ops, gops
from ..fixedpoint import FxTensor
from ..fpga.device import FPGADevice, Utilization
from ..fpga.parts import ALVEO_U55C
from ..hls import DEFAULT_TIMING, ResourceEstimate, TimingModel
from ..isa.controller import ConfigRegisterFile, ResynthesisRequiredError, SynthParams
from ..nn.encoder import Encoder
from ..nn.model_zoo import TransformerConfig
from .attention_module import AttentionModule
from .engines import DatapathFormats
from .ffn_module import FFNModule
from .latency import LatencyModel, LatencyOptions, LatencyReport
from .quantized import QuantizedEncoder
from .resource_model import accelerator_resources, device_utilization

__all__ = ["ProTEA"]


@dataclass
class ProTEA:
    """One synthesized ProTEA instance (use :meth:`synthesize`)."""

    synth: SynthParams
    device: FPGADevice
    formats: DatapathFormats
    clock_mhz: float
    attention: AttentionModule
    ffn: FFNModule
    latency_model: LatencyModel
    resources: ResourceEstimate
    utilization: Utilization
    csr: ConfigRegisterFile = field(init=False)
    _weights: Optional[QuantizedEncoder] = field(default=None, init=False)
    _config: Optional[TransformerConfig] = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.csr = ConfigRegisterFile(self.synth)

    # ------------------------------------------------------------------
    # 1. Synthesis
    # ------------------------------------------------------------------
    @classmethod
    def synthesize(
        cls,
        synth: SynthParams | None = None,
        device: FPGADevice = ALVEO_U55C,
        formats: DatapathFormats | None = None,
        scale_mode: str = "sqrt_dk",
        timing: TimingModel = DEFAULT_TIMING,
        latency_options: LatencyOptions | None = None,
        enforce_fit: bool = True,
    ) -> "ProTEA":
        """Build (and "place & route") one accelerator instance.

        The achieved clock is the Fmax model evaluated over every
        engine's critical path, capped by the device's practical
        kernel-clock ceiling.
        """
        synth = synth or SynthParams()
        formats = formats or DatapathFormats.fix8()
        attention = AttentionModule(synth, formats, scale_mode=scale_mode)
        ffn = FFNModule(synth, formats)
        resources = accelerator_resources(synth, formats)
        utilization = device_utilization(synth, device, formats,
                                         enforce=enforce_fit)
        paths = attention.timing_paths() + ffn.timing_paths()
        clock = min(timing.fmax_mhz(paths), device.default_clock_mhz)
        model = LatencyModel(synth, attention, ffn, latency_options)
        return cls(
            synth=synth,
            device=device,
            formats=formats,
            clock_mhz=clock,
            attention=attention,
            ffn=ffn,
            latency_model=model,
            resources=resources,
            utilization=utilization,
        )

    # ------------------------------------------------------------------
    # 2. Runtime programming
    # ------------------------------------------------------------------
    def program(self, config: TransformerConfig) -> "ProTEA":
        """Write the runtime parameters; validates against the maxima."""
        self.csr.program(config)
        self._config = config
        return self

    @property
    def config(self) -> TransformerConfig:
        if self._config is None:
            raise RuntimeError("accelerator not programmed; call program()")
        return self._config

    # ------------------------------------------------------------------
    # 3. Weights and inference
    # ------------------------------------------------------------------
    def load_weights(self, model: Encoder | QuantizedEncoder) -> "ProTEA":
        """Quantize (if needed) and stage the model's weights."""
        if isinstance(model, Encoder):
            model = QuantizedEncoder.from_encoder(model, self.formats)
        self._weights = model
        if self._config is not None and model.num_layers < self._config.num_layers:
            raise ValueError(
                f"model has {model.num_layers} layers but the programmed "
                f"configuration needs {self._config.num_layers}"
            )
        return self

    @property
    def weights(self) -> QuantizedEncoder:
        if self._weights is None:
            raise RuntimeError("no weights loaded; call load_weights()")
        return self._weights

    def run_fx(self, x: FxTensor) -> FxTensor:
        """Fixed-point inference through the programmed layer count."""
        cfg = self.config
        if x.raw.shape != (cfg.seq_len, cfg.d_model):
            raise ValueError(
                f"input shape {x.raw.shape} does not match the programmed "
                f"(SL, d_model) = ({cfg.seq_len}, {cfg.d_model})"
            )
        state = x
        for li in range(cfg.num_layers):
            layer = self.weights.layers[li]
            concat, _ = self.attention.forward(state, layer)
            trace = self.ffn.forward(concat, state, layer)
            state = trace.out
        return state

    def run(self, x: np.ndarray) -> np.ndarray:
        """Float-in/float-out inference (quantize, run, dequantize)."""
        fx = FxTensor.from_float(np.asarray(x, dtype=np.float64),
                                 self.formats.activation)
        return self.run_fx(fx).to_float()

    # ------------------------------------------------------------------
    # 4. Measurements
    # ------------------------------------------------------------------
    def latency_report(
        self, config: TransformerConfig | None = None
    ) -> LatencyReport:
        """Latency of ``config`` (default: the programmed workload)."""
        cfg = config or self.config
        if config is not None:
            # evaluate() re-validates against the synthesized maxima
            pass
        return self.latency_model.evaluate(cfg, self.clock_mhz)

    def latency_ms(self, config: TransformerConfig | None = None) -> float:
        return self.latency_report(config).latency_ms

    def generation_report(
        self,
        config: TransformerConfig | None = None,
        prompt_len: int = 16,
        output_len: int = 16,
    ):
        """Prefill/decode split of one autoregressive generation call
        (see :meth:`~repro.core.latency.LatencyModel.generation_report`)."""
        cfg = config or self.config
        return self.latency_model.generation_report(
            cfg, prompt_len, output_len, self.clock_mhz)

    def throughput_gops(
        self, config: TransformerConfig | None = None
    ) -> float:
        cfg = config or self.config
        return gops(cfg, self.latency_report(cfg).latency_s)

    def ops(self, config: TransformerConfig | None = None) -> int:
        return encoder_ops(config or self.config)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-paragraph instance description (README/examples)."""
        u = self.utilization
        return (
            f"ProTEA on {self.device.name} @ {self.clock_mhz:.0f} MHz | "
            f"TS_MHA={self.synth.ts_mha}, TS_FFN={self.synth.ts_ffn}, "
            f"h<= {self.synth.max_heads}, N<= {self.synth.max_layers}, "
            f"d<= {self.synth.max_d_model}, SL<= {self.synth.max_seq_len} | "
            f"DSP {u.used['dsp']} ({u.percent['dsp']:.0f}%), "
            f"LUT {u.used['lut']} ({u.percent['lut']:.0f}%), "
            f"FF {u.used['ff']} ({u.percent['ff']:.0f}%)"
        )
