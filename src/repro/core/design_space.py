"""Design-space exploration: the tile-size sweep of Fig. 7.

"The number of tiles in MHA was varied from 6 to 48, and for each MHA
tile count, the number of tiles in FFN ranged from 2 to 6.  The results
indicate that the optimal configuration ... was 12 tiles in MHA and 6
tiles in FFN ... a maximum frequency of 200 MHz."

A sweep point fixes both tile counts, derives the tile sizes for the
target ``d_model``, evaluates the Fmax model over every engine's
critical path, evaluates the cycle model for the reference workload,
and reports absolute and normalized latency.  Device-fit is *not*
enforced here (the paper synthesized the losing points too) but the
utilization is reported so over-budget points are visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

from ..hls import DEFAULT_TIMING, TimingModel
from ..isa.controller import SynthParams
from ..nn.model_zoo import BERT_VARIANT, TransformerConfig
from .attention_module import AttentionModule
from .engines import DatapathFormats
from .ffn_module import FFNModule
from .latency import LatencyModel, LatencyOptions
from .resource_model import accelerator_resources

__all__ = ["SweepPoint", "tile_size_sweep", "normalize_latency", "find_optimum"]


@dataclass(frozen=True)
class SweepPoint:
    """One (tiles-in-MHA, tiles-in-FFN) design point."""

    tiles_mha: int
    tiles_ffn: int
    ts_mha: int
    ts_ffn: int
    fmax_mhz: float
    total_cycles: int
    latency_ms: float
    dsps: int
    luts: int
    normalized_latency: float = float("nan")


def _point(
    tiles_mha: int,
    tiles_ffn: int,
    config: TransformerConfig,
    base: SynthParams,
    timing: TimingModel,
    formats: DatapathFormats,
    options: LatencyOptions,
) -> SweepPoint:
    ts_mha = max(1, math.ceil(base.max_d_model / tiles_mha))
    ts_ffn = max(1, math.ceil(base.max_d_model / tiles_ffn))
    synth = replace(base, ts_mha=ts_mha, ts_ffn=ts_ffn)
    attention = AttentionModule(synth, formats)
    ffn = FFNModule(synth, formats)
    paths = attention.timing_paths() + ffn.timing_paths()
    fmax = timing.fmax_mhz(paths)
    model = LatencyModel(synth, attention, ffn, options)
    report = model.evaluate(config, clock_mhz=fmax)
    est = accelerator_resources(synth, formats)
    return SweepPoint(
        tiles_mha=tiles_mha,
        tiles_ffn=tiles_ffn,
        ts_mha=ts_mha,
        ts_ffn=ts_ffn,
        fmax_mhz=fmax,
        total_cycles=report.total_cycles,
        latency_ms=report.latency_ms,
        dsps=est.dsps,
        luts=est.luts,
    )


def tile_size_sweep(
    config: TransformerConfig = BERT_VARIANT,
    tiles_mha_options: Sequence[int] = (6, 12, 48),
    tiles_ffn_options: Sequence[int] = (2, 3, 4, 5, 6),
    base: SynthParams | None = None,
    timing: TimingModel = DEFAULT_TIMING,
    formats: DatapathFormats | None = None,
    options: LatencyOptions | None = None,
) -> List[SweepPoint]:
    """Fig. 7's grid, normalized in one pass.

    The grid runs through the :mod:`repro.dse` engine (imported lazily
    — ``dse`` sits above ``core``), which keeps this sweep on the same
    code path as every other exploration in the repo.
    """
    from ..dse.engine import explore
    from ..dse.space import Axis, SearchSpace

    base = base or SynthParams()
    formats = formats or DatapathFormats.fix8()
    options = options or LatencyOptions()
    space = SearchSpace((Axis("tiles_mha", tuple(tiles_mha_options)),
                         Axis("tiles_ffn", tuple(tiles_ffn_options))))

    def _evaluate(point, _settings) -> dict:
        return {"sweep_point": _point(point["tiles_mha"], point["tiles_ffn"],
                                      config, base, timing, formats, options)}

    outcome = explore(space, _evaluate, continue_on_error=False)
    return normalize_latency(
        [r.metrics["sweep_point"] for r in outcome.results])


def normalize_latency(points: List[SweepPoint]) -> List[SweepPoint]:
    """Attach latency normalized to the sweep minimum (Fig. 7 y-axis)."""
    if not points:
        return points
    best = min(p.latency_ms for p in points)
    return [replace(p, normalized_latency=p.latency_ms / best) for p in points]


def find_optimum(points: List[SweepPoint]) -> Tuple[SweepPoint, SweepPoint]:
    """Return ``(highest-frequency point, lowest-latency point)``.

    The paper's headline: both coincide at 12 MHA tiles / 6 FFN tiles.
    """
    if not points:
        raise ValueError("empty sweep")
    by_freq = max(points, key=lambda p: p.fmax_mhz)
    by_latency = min(points, key=lambda p: p.latency_ms)
    return by_freq, by_latency
