"""Quantized KV-cache: incremental decode on the synthesized engines.

The deployment form of :mod:`repro.nn.kv_cache`: per-layer, per-head
K/V rows in the Q/K/V buffer format, appended one row per decoded
token.  A decode step runs the newest target row through every decoder
layer — one query projection against the cached keys/values instead of
the full ``(t+1) x (t+1)`` masked sweep.

**Bit-identity oracle.**  Every engine op on this path is either exact
integer arithmetic (tiled matmuls, bias adds, row sums) or an
elementwise/row-wise float op (score scaling, LUT lookups, layer norm),
so the step's output row is *bit-identical* to row ``t`` of
:meth:`~repro.core.decoder_module.DecoderModule.forward` over the first
``t + 1`` tokens — provided masked softmax lanes contribute exactly
zero, which the mask comparators in
:class:`~repro.core.softmax_unit.SoftmaxUnit` guarantee.  The property
tests assert raw-code equality at every step.

Cache capacity is a synthesis-time ceiling: the score/SV buffers were
generated for ``max_seq_len`` keys, so growing the cache past it raises
:class:`~repro.isa.controller.ResynthesisRequiredError`, exactly like
programming an over-long sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..fixedpoint import FxTensor
from ..isa.controller import ResynthesisRequiredError
from ..nn.functional import attention_scale
from .decoder_module import DecoderModule, QuantizedDecoder, QuantizedDecoderLayer

__all__ = ["FxLayerKVCache", "FxDecoderKVCache"]


@dataclass
class FxLayerKVCache:
    """One layer's cached K/V rows (per head, in the QKV format)."""

    self_k: List[FxTensor]
    self_v: List[FxTensor]
    cross_k: List[FxTensor]
    cross_v: List[FxTensor]

    @property
    def seq_len(self) -> int:
        return self.self_k[0].raw.shape[0] if self.self_k else 0

    def cache_bytes(self) -> int:
        """On-chip/HBM residency of this layer's self-attention cache."""
        elem = (self.self_k[0].fmt.total_bits + 7) // 8 if self.self_k else 0
        return sum(t.raw.size * elem for t in (*self.self_k, *self.self_v))


@dataclass
class FxDecoderKVCache:
    """Incremental decoding state over a deployed decoder stack."""

    module: DecoderModule
    weights: QuantizedDecoder
    memory: FxTensor
    layers: List[FxLayerKVCache]

    @classmethod
    def initialize(
        cls, module: DecoderModule, weights: QuantizedDecoder,
        memory: FxTensor,
    ) -> "FxDecoderKVCache":
        """Empty cache; cross-attention K/V projected once from memory."""
        layers = []
        for layer in weights.layers:
            d_k = layer.self_wq[0].weight.raw.shape[1]
            empty = lambda: FxTensor(  # noqa: E731
                np.empty((0, d_k), dtype=np.int64), module.formats.qkv)
            layers.append(FxLayerKVCache(
                self_k=[empty() for _ in layer.self_wk],
                self_v=[empty() for _ in layer.self_wv],
                cross_k=[module._project(memory, w) for w in layer.cross_wk],
                cross_v=[module._project(memory, w) for w in layer.cross_wv],
            ))
        return cls(module=module, weights=weights, memory=memory,
                   layers=layers)

    @property
    def seq_len(self) -> int:
        """Tokens decoded so far (= cached key rows per head)."""
        return self.layers[0].seq_len if self.layers else 0

    def cache_bytes(self) -> int:
        """Total K/V residency across layers (capacity planning)."""
        return sum(layer.cache_bytes() for layer in self.layers)

    # ------------------------------------------------------------------
    def _attend_row(
        self, q: FxTensor, keys: FxTensor, values: FxTensor, d_model: int
    ) -> np.ndarray:
        """One head's score → softmax → SV sweep for a single query row.

        No mask lanes exist: every cached position is past-or-current,
        so the row equals the full pass's masked row exactly (its future
        lanes are gated to zero there).
        """
        module = self.module
        scale = attention_scale(q.raw.shape[1], d_model, module.scale_mode)
        scores_val = ((q.raw @ keys.raw.T)
                      * (q.fmt.scale * keys.fmt.scale) * scale)
        scores = FxTensor.from_float(scores_val, module.formats.score)
        probs = module.softmax(scores)
        sv = (probs.raw @ values.raw) * (probs.fmt.scale * values.fmt.scale)
        return FxTensor.from_float(sv, module.formats.activation).raw

    def _append(self, store: List[FxTensor], head: int, row: FxTensor) -> None:
        store[head] = FxTensor(
            np.concatenate([store[head].raw, row.raw]), row.fmt)

    def step(self, x_row: FxTensor) -> FxTensor:
        """Decode one token; returns its output row ``(1, d_model)``."""
        module, synth = self.module, self.module.synth
        if self.seq_len >= synth.max_seq_len:
            raise ResynthesisRequiredError(
                f"KV cache already holds {self.seq_len} positions — the "
                f"synthesized buffers stop at max_seq_len="
                f"{synth.max_seq_len}")
        x = x_row
        if x.raw.ndim == 1:
            x = FxTensor(x.raw.reshape(1, -1), x.fmt)
        if x.raw.shape[0] != 1:
            raise ValueError("decode step expects exactly one target row")
        d_model = x.raw.shape[1]
        for layer, cache in zip(self.weights.layers, self.layers):
            x = self._layer_step(x, layer, cache, d_model)
        return x

    def _layer_step(
        self, x: FxTensor, layer: QuantizedDecoderLayer,
        cache: FxLayerKVCache, d_model: int,
    ) -> FxTensor:
        module = self.module
        # Masked self-attention against the (appended) cache.
        outs = []
        for h in range(layer.num_heads):
            q = module._project(x, layer.self_wq[h])
            self._append(cache.self_k, h, module._project(x, layer.self_wk[h]))
            self._append(cache.self_v, h, module._project(x, layer.self_wv[h]))
            outs.append(self._attend_row(q, cache.self_k[h],
                                         cache.self_v[h], d_model))
        sa = FxTensor(np.concatenate(outs, axis=1),
                      module.formats.activation)
        h1 = module._output_projection(sa, layer.self_wo, x,
                                       layer.ln1_gamma, layer.ln1_beta)
        # Cross attention over the precomputed memory projections.
        outs = []
        for h in range(layer.num_heads):
            q = module._project(h1, layer.cross_wq[h])
            outs.append(self._attend_row(q, cache.cross_k[h],
                                         cache.cross_v[h], d_model))
        ca = FxTensor(np.concatenate(outs, axis=1),
                      module.formats.activation)
        h2 = module._output_projection(ca, layer.cross_wo, h1,
                                       layer.ln2_gamma, layer.ln2_beta)
        return module._ffn_sublayer(h2, layer)

    def prefill(self, prompt: FxTensor) -> FxTensor:
        """Decode every prompt row in order; returns all output rows."""
        if prompt.raw.ndim != 2 or prompt.raw.shape[0] < 1:
            raise ValueError("prompt must be a non-empty (SL, d) matrix")
        rows = [self.step(prompt[t:t + 1]).raw
                for t in range(prompt.raw.shape[0])]
        return FxTensor(np.concatenate(rows), self.module.formats.activation)
