"""Event-driven timeline simulation of one inference.

The analytic model in :mod:`repro.core.latency` *sums* per-stage
formulas; this module instead **replays the compiled instruction
stream** against explicit resource constraints — one shared weight-load
AXI port, one engine instance per compute stage (per-head engines run
in parallel as one resource), and a configurable number of tile-buffer
slots — assigning every instruction a start/end cycle.

Two reasons to have both:

1. **Cross-validation** — for the single-buffered design the timeline
   total must agree with the analytic total (the integration tests
   assert a tight bound); a disagreement means one of the two models
   mis-handles a dependency.
2. **Visibility** — the timeline yields per-engine occupancy and an
   ASCII Gantt chart, answering "where do the cycles go?" at
   instruction granularity.

Dependency rules (the dataflow of Figs. 3/4):

* a RUN needs its tile's LOAD finished (and, with ``buffer_slots = s``,
  the load of tile *t* needs the compute of tile *t−s* finished);
* QK/softmax/SV chain per head after the whole QKV tile sweep;
* FFN1 after all SV; LN1 after all FFN1 tiles; FFN2 after LN1; FFN3
  after all FFN2; LN2 after all FFN3; the next layer after LN2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from ..isa.compiler import compile_program
from ..isa.instructions import Instruction, Opcode
from ..nn.model_zoo import TransformerConfig
from .attention_module import AttentionModule
from .ffn_module import FFNModule
from .latency import LatencyOptions

__all__ = ["TimelineEvent", "Timeline", "TimelineSimulator"]


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled hardware activity."""

    name: str
    resource: str
    start: int
    end: int
    layer: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Timeline:
    """The full event schedule of one inference."""

    events: List[TimelineEvent] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return max((e.end for e in self.events), default=0)

    def occupancy(self) -> Dict[str, float]:
        """Busy fraction per resource over the whole run."""
        total = self.total_cycles or 1
        busy: Dict[str, int] = {}
        for e in self.events:
            busy[e.resource] = busy.get(e.resource, 0) + e.duration
        return {r: b / total for r, b in sorted(busy.items())}

    def by_resource(self, resource: str) -> List[TimelineEvent]:
        return [e for e in self.events if e.resource == resource]

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart, one row per resource."""
        total = self.total_cycles
        if total == 0:
            return "(empty timeline)"
        rows = []
        resources = sorted({e.resource for e in self.events})
        for res in resources:
            line = [" "] * width
            for e in self.by_resource(res):
                a = int(e.start / total * (width - 1))
                b = max(a + 1, int(math.ceil(e.end / total * (width - 1))))
                for i in range(a, min(b, width)):
                    line[i] = "#"
            rows.append(f"{res:12s} |{''.join(line)}|")
        rows.append(f"{'':12s}  0{' ' * (width - 10)}{total:,} cyc")
        return "\n".join(rows)


class TimelineSimulator:
    """Replay a compiled program into a :class:`Timeline`."""

    def __init__(
        self,
        attention: AttentionModule,
        ffn: FFNModule,
        options: LatencyOptions | None = None,
    ):
        self.attention = attention
        self.ffn = ffn
        self.synth = attention.synth
        self.options = options or LatencyOptions()

    # ------------------------------------------------------------------
    def _durations(self, cfg: TransformerConfig) -> Dict[str, int]:
        """Per-instruction durations from the same engine formulas the
        analytic model uses (that is the point of the comparison)."""
        synth = self.synth
        att = self.attention.compute_cycles(cfg.seq_len, cfg.d_model,
                                            cfg.num_heads)
        ffn = self.ffn.compute_cycles(cfg.seq_len, cfg.d_model)
        grid = self.ffn.tile_grid(cfg.d_model)
        tiles_mha = max(1, math.ceil(cfg.d_model / synth.ts_mha))
        xfer = self.options.hbm.transfer_cycles
        axi = self.options.axi
        elem = (self.attention.formats.weight_bits + 7) // 8
        return {
            "load_qkv": xfer(self.attention.weight_bytes_per_tile(
                cfg.d_model, cfg.num_heads), axi),
            "load_x": xfer(self.attention.input_bytes_per_tile(
                cfg.seq_len), axi),
            "load_ffn12": xfer(synth.ts_ffn * synth.ts_ffn * elem, axi),
            "load_ffn3": xfer(4 * synth.ts_ffn * synth.ts_ffn * elem, axi),
            "qkv": att["qkv"] // tiles_mha,
            "qk": att["qk"],
            "softmax": att["softmax"],
            "sv": att["sv"],
            "ffn1": ffn["ffn1"] // grid["ffn1"],
            "ffn2": ffn["ffn2"] // grid["ffn2"],
            "ffn3": ffn["ffn3"] // grid["ffn3"],
            "ln": ffn["ln"] // 2,
        }

    # ------------------------------------------------------------------
    def simulate(self, cfg: TransformerConfig) -> Timeline:
        """Schedule every instruction of the compiled program."""
        program = compile_program(cfg, self.synth)
        dur = self._durations(cfg)
        slots = 2 if self.options.double_buffered else 1

        timeline = Timeline()
        res_free: Dict[str, int] = {}
        # Per (engine) ring of recent compute completions for the
        # buffer-slot constraint, and per-stage completion milestones.
        compute_hist: Dict[str, List[int]] = {}
        pending_load_end: Dict[tuple, int] = {}
        stage_done: Dict[str, int] = {"layer": 0}

        def schedule(name: str, resource: str, ready: int, duration: int,
                     layer: int) -> int:
            start = max(ready, res_free.get(resource, 0))
            end = start + duration
            res_free[resource] = end
            timeline.events.append(TimelineEvent(
                name=name, resource=resource, start=start, end=end,
                layer=layer))
            return end

        def slot_ready(engine: str) -> int:
            hist = compute_hist.get(engine, [])
            if len(hist) < slots:
                return 0
            return hist[-slots]

        def note_compute(engine: str, end: int) -> None:
            compute_hist.setdefault(engine, []).append(end)

        attn_done = 0     # all SV chains of the current layer
        qkv_done = 0      # QKV tile sweep of the current layer
        ffn_stage_done = {"ffn1": 0, "ffn2": 0, "ffn3": 0}
        head_chain: Dict[int, int] = {}

        for ins in program:
            op, layer = ins.opcode, ins.layer
            if op is Opcode.CONFIGURE or op is Opcode.BARRIER:
                continue
            if op is Opcode.HALT:
                break
            layer_ready = stage_done["layer"]

            if op is Opcode.LOAD_BIASES:
                schedule(f"L{layer}.biases", "axi", layer_ready, 64, layer)
            elif op is Opcode.LOAD_INPUT:
                end = schedule(f"L{layer}.x.t{ins.tile}", "axi",
                               max(layer_ready, slot_ready("qkv_ce")),
                               dur["load_x"], layer)
                pending_load_end[("x", ins.tile)] = end
            elif op is Opcode.LOAD_QKV_WEIGHTS:
                end = schedule(f"L{layer}.wqkv.h{ins.head}.t{ins.tile}",
                               "axi",
                               max(layer_ready, slot_ready("qkv_ce")),
                               dur["load_qkv"], layer)
                pending_load_end[("qkv", ins.tile)] = max(
                    pending_load_end.get(("qkv", ins.tile), 0), end)
            elif op is Opcode.RUN_QKV:
                ready = max(layer_ready,
                            pending_load_end.pop(("x", ins.tile), 0),
                            pending_load_end.pop(("qkv", ins.tile), 0))
                end = schedule(f"L{layer}.qkv.t{ins.tile}", "qkv_ce",
                               ready, dur["qkv"], layer)
                note_compute("qkv_ce", end)
                qkv_done = max(qkv_done, end)
            elif op in (Opcode.RUN_QK, Opcode.RUN_SOFTMAX, Opcode.RUN_SV):
                stage = {Opcode.RUN_QK: ("qk", "qk_ce"),
                         Opcode.RUN_SOFTMAX: ("softmax", "softmax"),
                         Opcode.RUN_SV: ("sv", "sv_ce")}[op]
                # Per-head engines: resource key includes the head.
                ready = max(qkv_done, head_chain.get(ins.head, 0))
                end = schedule(f"L{layer}.{stage[0]}.h{ins.head}",
                               f"{stage[1]}[{ins.head}]", ready,
                               dur[stage[0]], layer)
                head_chain[ins.head] = end
                if op is Opcode.RUN_SV:
                    attn_done = max(attn_done, end)
            elif op is Opcode.LOAD_FFN_WEIGHTS:
                engine = {1: "ffn1", 2: "ffn2", 3: "ffn3"}[ins.arg]
                kind = "load_ffn3" if engine == "ffn3" else "load_ffn12"
                end = schedule(f"L{layer}.w{engine}.t{ins.tile}", "axi",
                               max(layer_ready,
                                   slot_ready(f"{engine}_ce")),
                               dur[kind], layer)
                pending_load_end[(engine, ins.tile)] = end
            elif op in (Opcode.RUN_FFN1, Opcode.RUN_FFN2, Opcode.RUN_FFN3):
                engine = {Opcode.RUN_FFN1: "ffn1", Opcode.RUN_FFN2: "ffn2",
                          Opcode.RUN_FFN3: "ffn3"}[op]
                upstream = {"ffn1": attn_done,
                            "ffn2": stage_done.get("ln1", 0),
                            "ffn3": ffn_stage_done["ffn2"]}[engine]
                ready = max(upstream,
                            pending_load_end.pop((engine, ins.tile), 0))
                end = schedule(f"L{layer}.{engine}.t{ins.tile}",
                               f"{engine}_ce", ready, dur[engine], layer)
                note_compute(f"{engine}_ce", end)
                ffn_stage_done[engine] = max(ffn_stage_done[engine], end)
            elif op is Opcode.RUN_LN1:
                end = schedule(f"L{layer}.ln1", "ln",
                               ffn_stage_done["ffn1"], dur["ln"], layer)
                stage_done["ln1"] = end
            elif op is Opcode.RUN_LN2:
                end = schedule(f"L{layer}.ln2", "ln",
                               ffn_stage_done["ffn3"], dur["ln"], layer)
                # Layer boundary: reset per-layer milestones.
                stage_done["layer"] = end
                stage_done["ln1"] = 0
                qkv_done = attn_done = 0
                ffn_stage_done = {"ffn1": 0, "ffn2": 0, "ffn3": 0}
                head_chain.clear()
                compute_hist.clear()
                pending_load_end.clear()
            elif op is Opcode.STORE_OUTPUT:
                out_bytes = (cfg.seq_len * cfg.d_model
                             * ((self.attention.formats.activation.total_bits
                                 + 7) // 8))
                schedule("store", "axi", stage_done["layer"],
                         self.options.hbm.transfer_cycles(
                             out_bytes, self.options.axi), layer)
        return timeline
