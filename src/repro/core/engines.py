"""Compute-engine building blocks shared by the MHA and FFN modules.

Contains:

* :class:`DatapathFormats` — the fixed-point formats flowing between
  engines (``fix8`` reproduces the paper's 8-bit datapath; ``fix16``
  is the "larger bit width" variant mentioned in Section V).
* Exact tiled integer matmuls (:func:`tiled_fx_matmul_reduction`,
  :func:`tiled_fx_matmul_2d`) — the functional semantics of a PE-array
  sweep over weight tiles, accumulating in wide registers exactly like
  the DSP48 cascade.
* Loop-nest builders (``*_loop_nest``) — the pragma-annotated loop
  structures of Algorithms 1–4, consumed by the HLS scheduler for cycle
  counts and by the resource estimator for PE counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..fixedpoint import FxTensor, QFormat, requantize, saturate
from ..hls import Loop, Pipeline, Statement, Unroll

__all__ = [
    "DatapathFormats",
    "tiled_fx_matmul_reduction",
    "tiled_fx_matmul_2d",
    "qkv_loop_nest",
    "qk_loop_nest",
    "sv_loop_nest",
    "ffn_loop_nest",
    "softmax_loop_nest",
    "layernorm_loop_nest",
    "MAC_DEPTH",
]

#: Pipeline depth of one DSP48 MAC stage at 200+ MHz (mult reg + two
#: accumulate regs + output reg).
MAC_DEPTH = 4


@dataclass(frozen=True)
class DatapathFormats:
    """Fixed-point formats at each inter-engine buffer.

    Attributes
    ----------
    weight_bits:
        Storage width of weights (per-tensor fractional calibration).
    activation:
        Encoder input/output and residual-path format.
    qkv:
        Q/K/V intermediate-buffer format.
    score:
        Attention-score buffer (post scaling).
    prob:
        Softmax output format (values in [0, 1]).
    hidden:
        FFN intermediate (post-activation) format.
    """

    weight_bits: int = 8
    activation: QFormat = QFormat(8, 4)
    qkv: QFormat = QFormat(8, 4)
    score: QFormat = QFormat(8, 4)
    prob: QFormat = QFormat(8, 6)
    hidden: QFormat = QFormat(8, 4)

    @classmethod
    def fix8(cls) -> "DatapathFormats":
        """The paper's 8-bit datapath."""
        return cls()

    @classmethod
    def fix16(cls) -> "DatapathFormats":
        """16-bit variant: tight agreement with the float golden model."""
        return cls(
            weight_bits=16,
            activation=QFormat(16, 10),
            qkv=QFormat(16, 10),
            score=QFormat(16, 10),
            prob=QFormat(16, 14),
            hidden=QFormat(16, 10),
        )


# ---------------------------------------------------------------------------
# Exact tiled integer matmuls
# ---------------------------------------------------------------------------

def _accumulate_fmt(a: QFormat, b: QFormat, reduction: int) -> QFormat:
    """Exact accumulator format for a ``reduction``-length dot product."""
    guard = max(1, math.ceil(math.log2(max(reduction, 2))))
    return QFormat(a.total_bits + b.total_bits + guard,
                   a.frac_bits + b.frac_bits, True)


def tiled_fx_matmul_reduction(
    x: FxTensor, w: FxTensor, tile: int
) -> FxTensor:
    """MHA-style tiled matmul: reduction-axis tiles, exact accumulation.

    ``x`` is ``(SL, d)``, ``w`` is ``(d, d_k)``; tiles split ``d``.
    Bit-identical to the untiled product — the tests assert this, which
    is the functional content of Fig. 5.
    """
    sl, d = x.raw.shape
    if w.raw.shape[0] != d:
        raise ValueError("reduction dimensions disagree")
    acc = np.zeros((sl, w.raw.shape[1]), dtype=np.int64)
    for start in range(0, d, tile):
        stop = min(start + tile, d)
        acc += x.raw[:, start:stop] @ w.raw[start:stop, :]
    fmt = _accumulate_fmt(x.fmt, w.fmt, d)
    return FxTensor(saturate(acc, fmt), fmt)


def tiled_fx_matmul_2d(
    x: FxTensor, w: FxTensor, tile_rows: int, tile_cols: int
) -> FxTensor:
    """FFN-style tiled matmul: 2-D weight tiles, exact accumulation.

    Column tiles outer, reduction (row) tiles inner — Fig. 6's order.
    """
    sl, d_in = x.raw.shape
    if w.raw.shape[0] != d_in:
        raise ValueError("reduction dimensions disagree")
    d_out = w.raw.shape[1]
    out = np.zeros((sl, d_out), dtype=np.int64)
    for c0 in range(0, d_out, tile_cols):
        c1 = min(c0 + tile_cols, d_out)
        for r0 in range(0, d_in, tile_rows):
            r1 = min(r0 + tile_rows, d_in)
            out[:, c0:c1] += x.raw[:, r0:r1] @ w.raw[r0:r1, c0:c1]
    fmt = _accumulate_fmt(x.fmt, w.fmt, d_in)
    return FxTensor(saturate(out, fmt), fmt)


def add_bias_and_requantize(
    acc: FxTensor, bias: FxTensor, out_fmt: QFormat
) -> FxTensor:
    """Bias add in the accumulator domain, then requantize to ``out_fmt``.

    Mirrors the hardware: "biases ... are simultaneously loaded into
    registers ... subsequently added to the Q, K, and V matrices".
    """
    aligned = requantize(bias.raw, bias.fmt, acc.fmt)
    summed = saturate(acc.raw + aligned, acc.fmt)
    return FxTensor(requantize(summed, acc.fmt, out_fmt), out_fmt)


# ---------------------------------------------------------------------------
# Loop-nest builders (Algorithms 1-4)
# ---------------------------------------------------------------------------

def _mac(name: str = "mac", depth: int = MAC_DEPTH) -> Statement:
    return Statement(name=name, depth=depth, dsps=1)


def qkv_loop_nest(seq_len: int, d_k: int, ts_mha: int, ii: int = 1) -> Loop:
    """Algorithm 1: one tile iteration of ``QKV_CE``.

    Outer row loop (pipeline off) over ``SL``; middle loop over
    ``d_k`` pipelined at ``II=ii``; inner loop over the tile width
    fully unrolled with *three* MACs (Sq, Sk, Sv computed together).
    """
    inner = Loop(
        name="j_tile",
        trip=ts_mha,
        body=[_mac("mac_q"), _mac("mac_k"), _mac("mac_v")],
        unroll=Unroll(None),
    )
    middle = Loop(name="k_dk", trip=d_k, body=[inner], pipeline=Pipeline(ii=ii))
    return Loop(name="i_rows", trip=seq_len, body=[middle],
                pipeline=Pipeline(off=True))


def qk_loop_nest(q_rows: int, k_rows: int, d_k_unroll: int,
                 reduction_passes: int = 1, ii: int = 1) -> Loop:
    """Algorithm 2: ``Q x K^T``.

    ``d_k_unroll`` is the synthesized inner unroll (``d_model_max /
    h_max``); when the runtime ``d_k`` exceeds it the reduction takes
    ``reduction_passes`` sweeps.
    """
    inner = Loop(name="k_dk", trip=d_k_unroll, body=[_mac("mac_qk")],
                 unroll=Unroll(None))
    middle = Loop(name="j_cols", trip=k_rows * reduction_passes, body=[inner],
                  pipeline=Pipeline(ii=ii))
    return Loop(name="i_rows", trip=q_rows, body=[middle],
                pipeline=Pipeline(off=True))


def sv_loop_nest(q_rows: int, d_k: int, sl_unroll: int,
                 key_chunks: int = 1, ii: int = 1) -> Loop:
    """Algorithm 3: ``S x V``.

    Inner reduction over keys is unrolled ``sl_unroll`` wide (the
    synthesized sequence chunk); longer runtime sequences accumulate
    over ``key_chunks`` sweeps.
    """
    inner = Loop(name="k_keys", trip=sl_unroll, body=[_mac("mac_sv")],
                 unroll=Unroll(None))
    middle = Loop(name="j_dk", trip=d_k * key_chunks, body=[inner],
                  pipeline=Pipeline(ii=ii))
    return Loop(name="i_rows", trip=q_rows, body=[middle],
                pipeline=Pipeline(off=True))


def ffn_loop_nest(seq_len: int, out_cols: int, reduction_unroll: int,
                  ii: int = 1, name: str = "ffn") -> Loop:
    """Algorithm 4: one tile invocation of an FFN engine.

    ``out_cols`` output columns per tile (pipelined middle loop),
    ``reduction_unroll`` MACs fully unrolled (TS_FFN, or 4*TS_FFN for
    FFN3 which the paper gives 4x the PEs).
    """
    inner = Loop(name="k_red", trip=reduction_unroll, body=[_mac(f"mac_{name}")],
                 unroll=Unroll(None))
    middle = Loop(name="j_cols", trip=out_cols, body=[inner],
                  pipeline=Pipeline(ii=ii))
    return Loop(name="i_rows", trip=seq_len, body=[middle],
                pipeline=Pipeline(off=True))


def softmax_loop_nest(rows: int, row_len: int) -> Loop:
    """Softmax unit: per row, three pipelined passes (max, exp+sum,
    normalize) plus one reciprocal lookup.

    The exp and reciprocal LUT statements carry their own depths; the
    two DSPs per unit (scale multiply + normalize multiply) match the
    paper's residual DSP count.
    """
    max_pass = Loop(name="max", trip=row_len,
                    body=[Statement("cmp", depth=1)], pipeline=Pipeline(ii=1))
    exp_pass = Loop(name="exp_sum", trip=row_len,
                    body=[Statement("exp_lut", depth=3),
                          Statement("sum", depth=1)],
                    pipeline=Pipeline(ii=1))
    recip = Statement("recip_lut", depth=8, dsps=1)
    norm_pass = Loop(name="normalize", trip=row_len,
                     body=[Statement("mul", depth=MAC_DEPTH, dsps=1)],
                     pipeline=Pipeline(ii=1))
    return Loop(name="rows", trip=rows,
                body=[max_pass, exp_pass, recip, norm_pass],
                pipeline=Pipeline(off=True))


def layernorm_loop_nest(rows: int, row_len: int) -> Loop:
    """Layer-norm unit: mean pass, variance pass, normalize pass.

    Three pipelined sweeps over each row plus an rsqrt lookup; six DSPs
    per unit (squaring, two scaling multipliers x pipelining) as per
    the residual DSP accounting.
    """
    mean_pass = Loop(name="mean", trip=row_len,
                     body=[Statement("sum", depth=1)], pipeline=Pipeline(ii=1))
    var_pass = Loop(name="var", trip=row_len,
                    body=[Statement("square", depth=MAC_DEPTH, dsps=2),
                          Statement("sum", depth=1)],
                    pipeline=Pipeline(ii=1))
    rsqrt = Statement("rsqrt_lut", depth=8, dsps=2)
    norm_pass = Loop(name="normalize", trip=row_len,
                     body=[Statement("scale", depth=MAC_DEPTH, dsps=2)],
                     pipeline=Pipeline(ii=1))
    return Loop(name="rows", trip=rows,
                body=[mean_pass, var_pass, rsqrt, norm_pass],
                pipeline=Pipeline(off=True))


def reduction_passes(runtime_extent: int, synth_unroll: int) -> Tuple[int, int]:
    """How a runtime reduction maps onto a fixed synthesized unroll.

    Returns ``(passes, padded_extent)``; short extents still occupy one
    full pass (lanes beyond the extent are gated off).
    """
    if runtime_extent < 1 or synth_unroll < 1:
        raise ValueError("extents must be positive")
    passes = math.ceil(runtime_extent / synth_unroll)
    return passes, passes * synth_unroll
