"""Whole-accelerator resource model and device-fit analysis.

Reproduces the paper's Table I utilization row and its design
discussion: "The design achieved high resource utilization, with 40% of
DSPs and 76% of LUTs in use.  Further DSP utilization was limited by
the available LUTs, and the optimal number of parallel attention heads
was determined to be 8 on the Alveo U55C to avoid overutilization by
the QKV_CE engine."  :func:`max_parallel_heads` recomputes that "8".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..fpga.device import FPGADevice, OverUtilizationError, Utilization
from ..hls import ResourceEstimate, static_infrastructure
from ..isa.controller import SynthParams
from .attention_module import AttentionModule
from .engines import DatapathFormats
from .ffn_module import FFNModule

__all__ = [
    "accelerator_resources",
    "device_utilization",
    "max_parallel_heads",
]


def accelerator_resources(
    synth: SynthParams,
    formats: Optional[DatapathFormats] = None,
) -> ResourceEstimate:
    """Full-design resource estimate for one set of synthesis params."""
    formats = formats or DatapathFormats.fix8()
    attention = AttentionModule(synth, formats)
    ffn = FFNModule(synth, formats)
    return attention.resources() + ffn.resources() + static_infrastructure()


def device_utilization(
    synth: SynthParams,
    device: FPGADevice,
    formats: Optional[DatapathFormats] = None,
    enforce: bool = True,
    limit_pct: float = 100.0,
) -> Utilization:
    """Utilization of ``synth`` on ``device`` (optionally enforcing fit)."""
    est = accelerator_resources(synth, formats)
    used = est.as_dict()
    if enforce:
        device.check_fit(used, limit_pct=limit_pct)
    return device.utilization(used)


def max_parallel_heads(
    synth: SynthParams,
    device: FPGADevice,
    formats: Optional[DatapathFormats] = None,
    limit_pct: float = 85.0,
    search_up_to: int = 32,
) -> int:
    """Largest ``max_heads`` whose QKV engine replication still fits.

    Sweeps the head count holding everything else fixed; the binding
    resource on the U55C is LUTs (per-PE control logic), exactly as the
    paper reports.  ``limit_pct`` defaults to 85% — the practical LUT
    ceiling for closing timing at 200 MHz on an UltraScale+ SLR; above
    it routing congestion collapses Fmax (which is what the paper means
    by "avoid overutilization by the QKV_CE engine").
    """
    best = 0
    for h in range(1, search_up_to + 1):
        if synth.max_d_model % h:
            continue
        candidate = replace(synth, max_heads=h)
        try:
            device_utilization(candidate, device, formats,
                               enforce=True, limit_pct=limit_pct)
        except OverUtilizationError:
            break
        best = h
    if best == 0:
        raise OverUtilizationError(
            f"no head count fits {device.name} with these tile sizes"
        )
    return best
