"""Fixed-point layer-normalization hardware unit.

Each of the two LN modules (after FFN1 and after FFN3) normalizes a
``(SL, d_model)`` activation row-wise:

1. **mean pass** — wide integer row sum, multiply by the precomputed
   ``1/d`` constant (integer multiplier + shift);
2. **variance pass** — sum of squared deviations (DSP squarer);
3. **normalize pass** — rsqrt LUT of the variance, per-element scale
   by ``gamma * rsqrt`` plus ``beta``.

Residual addition happens at the unit's input (the hardware adds the
skip path while streaming rows in), so :meth:`__call__` takes both the
sublayer output and the residual operand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fixedpoint import FxTensor, QFormat, RsqrtLUT, quantize
from ..hls import Loop
from .engines import DatapathFormats, layernorm_loop_nest

__all__ = ["LayerNormUnit"]

_GAMMA_FMT = QFormat(16, 12)
_RSQRT_FMT = QFormat(18, 12)


@dataclass
class LayerNormUnit:
    """Row-wise fixed-point layer norm with fused residual add."""

    formats: DatapathFormats = field(default_factory=DatapathFormats.fix8)
    rsqrt_lut: RsqrtLUT = field(
        default_factory=lambda: RsqrtLUT(lo=2.0 ** -12, hi=256.0, entries=4096)
    )
    eps: float = 1e-5

    # ------------------------------------------------------------------
    def __call__(
        self,
        x: FxTensor,
        residual: FxTensor | None,
        gamma: np.ndarray,
        beta: np.ndarray,
    ) -> FxTensor:
        """Normalize ``x (+ residual)`` row-wise; output in the
        activation format."""
        if x.raw.ndim != 2:
            raise ValueError("layer-norm unit expects a 2-D activation")
        val = x.to_float()
        if residual is not None:
            if residual.raw.shape != x.raw.shape:
                raise ValueError("residual shape mismatch")
            val = val + residual.to_float()
        # Integer-pipeline equivalents: the mean/variance are exact wide
        # sums scaled by 1/d; only the rsqrt goes through a LUT and only
        # gamma/beta are quantized parameters.
        mean = val.mean(axis=1, keepdims=True)
        centered = val - mean
        var = np.mean(centered * centered, axis=1, keepdims=True)
        inv = quantize(self.rsqrt_lut(var + self.eps), _RSQRT_FMT) * _RSQRT_FMT.scale
        g = quantize(np.asarray(gamma, dtype=np.float64), _GAMMA_FMT) * _GAMMA_FMT.scale
        b = quantize(np.asarray(beta, dtype=np.float64), _GAMMA_FMT) * _GAMMA_FMT.scale
        out = centered * inv * g + b
        return FxTensor.from_float(out, self.formats.activation)

    def reference(
        self,
        x: FxTensor,
        residual: FxTensor | None,
        gamma: np.ndarray,
        beta: np.ndarray,
    ) -> np.ndarray:
        """Float layer norm of the dequantized inputs."""
        val = x.to_float()
        if residual is not None:
            val = val + residual.to_float()
        mean = val.mean(axis=1, keepdims=True)
        var = val.var(axis=1, keepdims=True)
        return gamma * (val - mean) / np.sqrt(var + self.eps) + beta

    # ------------------------------------------------------------------
    def loop_nest(self, rows: int, row_len: int) -> Loop:
        """Cycle-model loop nest (three pipelined passes per row)."""
        return layernorm_loop_nest(rows, row_len)

    @property
    def dsps(self) -> int:
        """Six DSPs: squarer pair, rsqrt scale pair, gamma-scale pair."""
        return 6
