"""ProTEA core: the paper's contribution.

Public entry points:

* :class:`~repro.core.accelerator.ProTEA` — synthesize / program / run.
* :class:`~repro.core.runtime.RuntimeSession` and
  :class:`~repro.core.runtime.ProgramExecutor` — runtime workflows.
* :func:`~repro.core.design_space.tile_size_sweep` — Fig. 7.
* :func:`~repro.core.resource_model.max_parallel_heads` — the "8 heads
  fit the U55C" analysis.
"""

from .accelerator import ProTEA
from .attention_module import AttentionModule, HeadTrace
from .decoder_module import DecoderModule, QuantizedDecoder, QuantizedDecoderLayer
from .design_space import SweepPoint, find_optimum, normalize_latency, tile_size_sweep
from .engines import DatapathFormats
from .ffn_module import FFNModule, FFNTrace
from .kv_cache import FxDecoderKVCache, FxLayerKVCache
from .latency import (
    GenerationReport,
    LatencyModel,
    LatencyOptions,
    LatencyReport,
    LayerLatency,
)
from .layernorm_unit import LayerNormUnit
from .quantized import QuantizedEncoder, QuantizedLayer, QuantizedLinear
from .resource_model import (
    accelerator_resources,
    device_utilization,
    max_parallel_heads,
)
from .runtime import ProgramExecutor, RuntimeSession, TileNotResidentError
from .softmax_unit import SoftmaxUnit
from .timeline import Timeline, TimelineEvent, TimelineSimulator
from .tiling import (
    Tile2D,
    TileIndex,
    iter_reduction_tiles,
    iter_tiles_2d,
    num_tiles,
    tiled_matmul_ffn,
    tiled_matmul_mha,
)

__all__ = [
    "ProTEA",
    "DatapathFormats",
    "AttentionModule",
    "HeadTrace",
    "FFNModule",
    "FFNTrace",
    "DecoderModule",
    "QuantizedDecoder",
    "QuantizedDecoderLayer",
    "SoftmaxUnit",
    "Timeline",
    "TimelineEvent",
    "TimelineSimulator",
    "LayerNormUnit",
    "QuantizedEncoder",
    "QuantizedLayer",
    "QuantizedLinear",
    "LatencyModel",
    "LatencyOptions",
    "LatencyReport",
    "LayerLatency",
    "GenerationReport",
    "FxDecoderKVCache",
    "FxLayerKVCache",
    "accelerator_resources",
    "device_utilization",
    "max_parallel_heads",
    "RuntimeSession",
    "ProgramExecutor",
    "TileNotResidentError",
    "SweepPoint",
    "tile_size_sweep",
    "normalize_latency",
    "find_optimum",
    "TileIndex",
    "Tile2D",
    "num_tiles",
    "iter_reduction_tiles",
    "iter_tiles_2d",
    "tiled_matmul_mha",
    "tiled_matmul_ffn",
]
