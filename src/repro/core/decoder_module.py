"""Decoder acceleration — the paper's future-work extension.

"Although this paper focuses solely on encoder layers, future work will
extend the architecture to support both encoder and decoder layers of
the transformer, using the same design principles."  This module does
exactly that, on the same substrates:

* **masked self-attention** — the encoder's QKV/QK/softmax/SV engines
  plus a mask unit: masked score positions are forced to the score
  format's minimum before the softmax lookup (one comparator per score
  lane; no extra DSPs).
* **cross attention** — the same engine layout with queries projected
  from the decoder state and keys/values from the encoder memory; the
  QKV engine runs in a 1-of-3 mode for Q and a 2-of-3 mode for K/V of
  the memory (which is loaded once per layer, not per step).
* **FFN** — the encoder's FFN module verbatim (the third sub-layer of
  Fig. 1's decoder is identical to the encoder's).

Cycle/resource accounting reuses the Algorithm 1–3 loop nests; the
extra cost over an encoder layer is one more attention block and one
more layer norm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..fixedpoint import FxTensor
from ..hls import ResourceEstimate, schedule_loop
from ..isa.controller import SynthParams
from ..nn.decoder import Decoder, DecoderLayer
from ..nn.functional import attention_scale, causal_fill
from .attention_module import AttentionModule
from .engines import (
    DatapathFormats,
    add_bias_and_requantize,
    qk_loop_nest,
    qkv_loop_nest,
    sv_loop_nest,
    tiled_fx_matmul_reduction,
)
from .ffn_module import FFNModule
from .layernorm_unit import LayerNormUnit
from .quantized import QuantizedLinear
from .softmax_unit import SoftmaxUnit

__all__ = ["QuantizedDecoderLayer", "QuantizedDecoder", "DecoderModule"]


@dataclass
class QuantizedDecoderLayer:
    """One decoder layer's weights in deployment form."""

    self_wq: List[QuantizedLinear]
    self_wk: List[QuantizedLinear]
    self_wv: List[QuantizedLinear]
    self_wo: QuantizedLinear
    cross_wq: List[QuantizedLinear]
    cross_wk: List[QuantizedLinear]
    cross_wv: List[QuantizedLinear]
    cross_wo: QuantizedLinear
    w1: QuantizedLinear
    w2: QuantizedLinear
    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray
    ln3_gamma: np.ndarray
    ln3_beta: np.ndarray
    activation: str

    @classmethod
    def from_layer(cls, layer: DecoderLayer, weight_bits: int) -> "QuantizedDecoderLayer":
        q = lambda lin: QuantizedLinear.from_linear(lin, weight_bits)  # noqa: E731
        sa, ca = layer.self_attention, layer.cross_attention
        return cls(
            self_wq=[q(l) for l in sa.wq],
            self_wk=[q(l) for l in sa.wk],
            self_wv=[q(l) for l in sa.wv],
            self_wo=q(sa.wo),
            cross_wq=[q(l) for l in ca.wq],
            cross_wk=[q(l) for l in ca.wk],
            cross_wv=[q(l) for l in ca.wv],
            cross_wo=q(ca.wo),
            w1=q(layer.ffn.w1),
            w2=q(layer.ffn.w2),
            ln1_gamma=np.asarray(layer.ln1_gamma, dtype=np.float64),
            ln1_beta=np.asarray(layer.ln1_beta, dtype=np.float64),
            ln2_gamma=np.asarray(layer.ln2_gamma, dtype=np.float64),
            ln2_beta=np.asarray(layer.ln2_beta, dtype=np.float64),
            ln3_gamma=np.asarray(layer.ln3_gamma, dtype=np.float64),
            ln3_beta=np.asarray(layer.ln3_beta, dtype=np.float64),
            activation=layer.ffn.activation,
        )

    @property
    def num_heads(self) -> int:
        return len(self.self_wq)


@dataclass
class QuantizedDecoder:
    """A deployed decoder stack."""

    layers: List[QuantizedDecoderLayer]
    formats: DatapathFormats

    @classmethod
    def from_decoder(
        cls, decoder: Decoder, formats: DatapathFormats | None = None
    ) -> "QuantizedDecoder":
        formats = formats or DatapathFormats.fix8()
        return cls(
            layers=[QuantizedDecoderLayer.from_layer(l, formats.weight_bits)
                    for l in decoder.layers],
            formats=formats,
        )


@dataclass
class DecoderModule:
    """Decoder-layer execution on the synthesized encoder engines."""

    synth: SynthParams
    formats: DatapathFormats = field(default_factory=DatapathFormats.fix8)
    scale_mode: str = "sqrt_dk"
    softmax: SoftmaxUnit = None  # type: ignore[assignment]
    layernorm: LayerNormUnit = None  # type: ignore[assignment]
    ffn: FFNModule = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.softmax is None:
            self.softmax = SoftmaxUnit(formats=self.formats)
        if self.layernorm is None:
            self.layernorm = LayerNormUnit(formats=self.formats)
        if self.ffn is None:
            self.ffn = FFNModule(synth=self.synth, formats=self.formats,
                                 layernorm=self.layernorm)

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------
    def _project(self, x: FxTensor, lin: QuantizedLinear) -> FxTensor:
        acc = tiled_fx_matmul_reduction(x, lin.weight, self.synth.ts_mha)
        return add_bias_and_requantize(acc, lin.bias, self.formats.qkv)

    def _attention(
        self,
        x_q: FxTensor,
        x_kv: FxTensor,
        wq: List[QuantizedLinear],
        wk: List[QuantizedLinear],
        wv: List[QuantizedLinear],
        masked: bool,
    ) -> FxTensor:
        """Shared per-head attention sweep (self or cross)."""
        d_model = x_q.raw.shape[1]
        outs = []
        for h in range(len(wq)):
            q = self._project(x_q, wq[h])
            k = self._project(x_kv, wk[h])
            v = self._project(x_kv, wv[h])
            scale = attention_scale(q.raw.shape[1], d_model, self.scale_mode)
            scores_val = (q.raw @ k.raw.T) * (q.fmt.scale * k.fmt.scale) * scale
            scores = FxTensor.from_float(scores_val, self.formats.score)
            if masked:
                # Mask unit: force future positions to the score format's
                # minimum (shared causal_fill semantics) and gate their
                # exp lanes to exactly zero in the softmax unit, so a
                # masked lane leaks nothing into the row sum.
                mask_bits = causal_fill(
                    np.zeros(scores.raw.shape, dtype=bool), True)
                scores = FxTensor(
                    causal_fill(scores.raw, scores.fmt.int_min), scores.fmt)
                probs = self.softmax(scores, masked=mask_bits)
            else:
                probs = self.softmax(scores)
            sv = (probs.raw @ v.raw) * (probs.fmt.scale * v.fmt.scale)
            outs.append(FxTensor.from_float(sv, self.formats.activation).raw)
        return FxTensor(np.concatenate(outs, axis=1), self.formats.activation)

    def _output_projection(
        self, concat: FxTensor, wo: QuantizedLinear, residual: FxTensor,
        gamma: np.ndarray, beta: np.ndarray,
    ) -> FxTensor:
        from .engines import tiled_fx_matmul_2d

        acc = tiled_fx_matmul_2d(concat, wo.weight, self.synth.ts_ffn,
                                 self.synth.ts_ffn)
        proj = add_bias_and_requantize(acc, wo.bias, self.formats.activation)
        return self.layernorm(proj, residual, gamma, beta)

    def forward_layer(
        self, x: FxTensor, memory: FxTensor, layer: QuantizedDecoderLayer
    ) -> FxTensor:
        """One decoder layer: masked self-attn → cross-attn → FFN."""
        if x.raw.shape[1] != memory.raw.shape[1]:
            raise ValueError("decoder state and memory widths differ")
        sa = self._attention(x, x, layer.self_wq, layer.self_wk,
                             layer.self_wv, masked=True)
        h1 = self._output_projection(sa, layer.self_wo, x,
                                     layer.ln1_gamma, layer.ln1_beta)
        ca = self._attention(h1, memory, layer.cross_wq, layer.cross_wk,
                             layer.cross_wv, masked=False)
        h2 = self._output_projection(ca, layer.cross_wo, h1,
                                     layer.ln2_gamma, layer.ln2_beta)
        return self._ffn_sublayer(h2, layer)

    def _ffn_sublayer(
        self, h2: FxTensor, layer: QuantizedDecoderLayer
    ) -> FxTensor:
        """FFN sub-layer: expansion + activation + contraction + LN.

        Row-wise (shared by the full pass and the KV-cache decode step).
        """
        from .engines import tiled_fx_matmul_2d

        ts = self.synth.ts_ffn
        hid_acc = tiled_fx_matmul_2d(h2, layer.w1.weight, ts, ts)
        hid = add_bias_and_requantize(hid_acc, layer.w1.bias,
                                      self.formats.hidden)
        hid = self.ffn._activate(hid, layer.activation)
        con_acc = tiled_fx_matmul_2d(hid, layer.w2.weight, ts, ts)
        con = add_bias_and_requantize(con_acc, layer.w2.bias,
                                      self.formats.activation)
        return self.layernorm(con, h2, layer.ln3_gamma, layer.ln3_beta)

    def forward(
        self, x: FxTensor, memory: FxTensor, weights: QuantizedDecoder
    ) -> FxTensor:
        for layer in weights.layers:
            x = self.forward_layer(x, memory, layer)
        return x

    # ------------------------------------------------------------------
    # Cycle model
    # ------------------------------------------------------------------
    def compute_cycles(
        self, tgt_len: int, mem_len: int, d_model: int, num_heads: int
    ) -> Dict[str, int]:
        """Per-engine cycles of one decoder layer.

        Self-attention matches the encoder's accounting at ``tgt_len``;
        cross-attention adds a K/V projection over ``mem_len`` rows and
        a ``tgt_len x mem_len`` score sweep; the FFN block is the
        encoder's.  Masking is free (comparators in the score path).
        """
        synth = self.synth
        d_k = d_model // num_heads
        tiles = max(1, math.ceil(d_model / synth.ts_mha))
        dk_synth = synth.max_d_model // synth.max_heads
        passes = math.ceil(d_k / dk_synth)
        chunk = synth.seq_chunk
        t_chunks = math.ceil(tgt_len / chunk)
        m_chunks = math.ceil(mem_len / chunk)
        t_rows = min(tgt_len, chunk)
        m_rows = min(mem_len, chunk)

        self_attn = AttentionModule(
            synth, self.formats, self.scale_mode
        ).compute_cycles(tgt_len, d_model, num_heads)

        cross_q = tiles * schedule_loop(
            qkv_loop_nest(tgt_len, d_k, synth.ts_mha)).cycles
        cross_kv = tiles * schedule_loop(
            qkv_loop_nest(mem_len, d_k, synth.ts_mha)).cycles
        cross_qk = t_chunks * m_chunks * schedule_loop(
            qk_loop_nest(t_rows, m_rows, dk_synth,
                         reduction_passes=passes)).cycles
        cross_sm = t_chunks * schedule_loop(
            self.softmax.loop_nest(t_rows, mem_len)).cycles
        cross_sv = t_chunks * schedule_loop(
            sv_loop_nest(t_rows, d_k, chunk, key_chunks=m_chunks)).cycles

        ffn = self.ffn.compute_cycles(tgt_len, d_model)
        ln_extra = schedule_loop(
            self.layernorm.loop_nest(tgt_len, d_model)).cycles

        cycles = {
            "self_attention": self_attn["total"],
            "cross_q": cross_q,
            "cross_kv": cross_kv,
            "cross_qk": cross_qk,
            "cross_softmax": cross_sm,
            "cross_sv": cross_sv,
            "ffn": ffn["total"],
            "ln_extra": ln_extra,
        }
        cycles["total"] = sum(cycles.values())
        return cycles

    def resources(self) -> ResourceEstimate:
        """Decoder support reuses the encoder's engines; the increment
        is one extra layer-norm unit and the mask comparators."""
        from .engines import layernorm_loop_nest
        from ..hls import estimate_loop_resources

        extra_ln = estimate_loop_resources(
            layernorm_loop_nest(self.synth.seq_chunk, self.synth.max_d_model),
            label="ln3")
        mask_luts = self.synth.seq_chunk * 4  # one comparator per lane
        extra_ln.luts += mask_luts
        return extra_ln
