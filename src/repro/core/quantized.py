"""Quantized weight containers: the golden encoder, deployed.

The deployment flow quantizes every weight tensor independently
(per-tensor fractional-bit calibration) into the accelerator's weight
width.  These containers are what the LOAD instructions stream into the
on-chip buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..fixedpoint import FxTensor, calibrate_format
from ..nn.encoder import Encoder, EncoderLayer
from ..nn.linear import Linear
from .engines import DatapathFormats

__all__ = ["QuantizedLinear", "QuantizedLayer", "QuantizedEncoder"]


@dataclass
class QuantizedLinear:
    """A linear layer's weight/bias as calibrated fixed-point tensors."""

    weight: FxTensor
    bias: FxTensor

    @classmethod
    def from_linear(cls, lin: Linear, weight_bits: int) -> "QuantizedLinear":
        wfmt = calibrate_format(lin.weight, total_bits=weight_bits)
        bfmt = calibrate_format(lin.bias, total_bits=max(16, weight_bits))
        return cls(
            weight=FxTensor.from_float(lin.weight, wfmt),
            bias=FxTensor.from_float(lin.bias, bfmt),
        )

    @property
    def nbytes(self) -> int:
        """Off-chip footprint of the weights (bias registers excluded)."""
        return self.weight.raw.size * ((self.weight.fmt.total_bits + 7) // 8)


@dataclass
class QuantizedLayer:
    """One encoder layer's weights in deployment form."""

    wq: List[QuantizedLinear]
    wk: List[QuantizedLinear]
    wv: List[QuantizedLinear]
    wo: QuantizedLinear
    w1: QuantizedLinear
    w2: QuantizedLinear
    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray
    activation: str

    @classmethod
    def from_layer(cls, layer: EncoderLayer, weight_bits: int) -> "QuantizedLayer":
        q = lambda lin: QuantizedLinear.from_linear(lin, weight_bits)  # noqa: E731
        return cls(
            wq=[q(l) for l in layer.attention.wq],
            wk=[q(l) for l in layer.attention.wk],
            wv=[q(l) for l in layer.attention.wv],
            wo=q(layer.attention.wo),
            w1=q(layer.ffn.w1),
            w2=q(layer.ffn.w2),
            ln1_gamma=np.asarray(layer.ln1_gamma, dtype=np.float64),
            ln1_beta=np.asarray(layer.ln1_beta, dtype=np.float64),
            ln2_gamma=np.asarray(layer.ln2_gamma, dtype=np.float64),
            ln2_beta=np.asarray(layer.ln2_beta, dtype=np.float64),
            activation=layer.ffn.activation,
        )

    @property
    def num_heads(self) -> int:
        return len(self.wq)

    @property
    def d_model(self) -> int:
        return self.wq[0].weight.raw.shape[0]

    def weight_bytes(self) -> int:
        """Total off-chip weight traffic for this layer."""
        total = sum(q.nbytes for q in (*self.wq, *self.wk, *self.wv))
        total += self.wo.nbytes + self.w1.nbytes + self.w2.nbytes
        return total


@dataclass
class QuantizedEncoder:
    """The full deployed model."""

    layers: List[QuantizedLayer]
    formats: DatapathFormats

    @classmethod
    def from_encoder(
        cls, encoder: Encoder, formats: DatapathFormats | None = None
    ) -> "QuantizedEncoder":
        formats = formats or DatapathFormats.fix8()
        return cls(
            layers=[QuantizedLayer.from_layer(l, formats.weight_bits)
                    for l in encoder.layers],
            formats=formats,
        )

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def weight_bytes(self) -> int:
        return sum(l.weight_bytes() for l in self.layers)
