"""End-to-end latency model: compute cycles + weight/input loads.

Composition per encoder layer (all cycle counts at the kernel clock):

* **MHA stage** — per tile iteration, every active head's Wq/Wk/Wv tile
  plus the shared X tile stream over the (single, shared) weight-load
  AXI master, then the QKV engines compute; QK → softmax → SV follow
  with no further off-chip traffic.
* **FFN stages** — per tile invocation, one weight tile load (only
  *real* weights are fetched — output-grid invocations past the
  runtime ``d_model`` compute on zero-gated lanes without traffic)
  then the engine sweep.
* Loads and compute serialize by default (the published design
  single-buffers its weight tiles; BRAM was spent on banking width,
  not depth).  ``double_buffered=True`` enables the Section V overlap
  study — the model then hides each tile's load under the previous
  tile's compute.

The FFN output-dimension invocation grid stays at the synthesized
maximum while only the reduction-dim tile count tracks the runtime
``d_model`` — reproducing the *linear* latency scaling in ``d_model``
the paper measures (Tests 6–7), where a naive model would predict
quadratic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..isa.controller import (
    ConfigRegisterFile,
    ResynthesisRequiredError,
    SynthParams,
)
from ..memory.axi import AXI4Master
from ..memory.dma import TilePhase, overlapped_cycles, serialized_cycles
from ..memory.hbm import HBMSubsystem
from ..nn.model_zoo import TransformerConfig
from .attention_module import AttentionModule
from .ffn_module import FFNModule

__all__ = ["LatencyOptions", "LayerLatency", "LatencyReport",
           "GenerationReport", "LatencyModel"]


@dataclass(frozen=True)
class LatencyOptions:
    """Knobs of the latency composition (defaults = published design)."""

    double_buffered: bool = False
    axi: AXI4Master = field(default_factory=lambda: AXI4Master(data_bits=64))
    hbm: HBMSubsystem = field(default_factory=HBMSubsystem)


@dataclass
class LayerLatency:
    """Cycle breakdown of one encoder layer."""

    compute: Dict[str, int]
    loads: Dict[str, int]
    total: int

    @property
    def compute_total(self) -> int:
        return sum(self.compute.values())

    @property
    def load_total(self) -> int:
        return sum(self.loads.values())


@dataclass
class LatencyReport:
    """Whole-model latency at a given clock."""

    layer: LayerLatency
    num_layers: int
    clock_mhz: float
    config: TransformerConfig

    @property
    def total_cycles(self) -> int:
        return self.layer.total * self.num_layers

    @property
    def latency_ms(self) -> float:
        return self.total_cycles / (self.clock_mhz * 1e3)

    @property
    def latency_s(self) -> float:
        return self.latency_ms / 1e3

    def breakdown_ms(self) -> Dict[str, float]:
        """Per-engine milliseconds over the whole model."""
        scale = self.num_layers / (self.clock_mhz * 1e3)
        out = {k: v * scale for k, v in self.layer.compute.items()}
        out.update({f"load_{k}": v * scale for k, v in self.layer.loads.items()})
        return out


@dataclass
class GenerationReport:
    """Prefill/decode latency split of one autoregressive invocation.

    Prefill is the existing full-sequence pass at the prompt length and
    produces the first token (TTFT).  Each subsequent token is one
    decode step whose weight-streaming cost is fixed (every layer's
    tiles stream again — batch size one amortizes nothing) and whose
    attention cost grows with the KV-cache length.
    """

    config: TransformerConfig
    prompt_len: int
    output_len: int
    clock_mhz: float
    prefill: LatencyReport
    #: Whole-model decode cycles per generated token after the first
    #: (token ``i`` attends over ``prompt_len + i + 1`` cached keys).
    decode_step_cycles: List[int]
    #: One decode step's layer breakdown at the final cache length.
    decode_layer: LayerLatency

    @property
    def ttft_ms(self) -> float:
        """Time to first token = the prefill pass."""
        return self.prefill.latency_ms

    @property
    def decode_ms(self) -> float:
        """Total decode time across the remaining tokens."""
        return sum(self.decode_step_cycles) / (self.clock_mhz * 1e3)

    @property
    def tpot_ms(self) -> float:
        """Mean time per output token after the first (0 if none)."""
        steps = len(self.decode_step_cycles)
        return self.decode_ms / steps if steps else 0.0

    @property
    def total_ms(self) -> float:
        return self.ttft_ms + self.decode_ms

    @property
    def tokens_per_s(self) -> float:
        """Output tokens per second over the whole invocation."""
        return self.output_len / (self.total_ms / 1e3)

    @property
    def decode_tokens_per_s(self) -> float:
        """Steady decode rate (excludes prefill; inf-free: 0 if none)."""
        return (len(self.decode_step_cycles) / (self.decode_ms / 1e3)
                if self.decode_step_cycles else 0.0)

    def as_dict(self) -> dict:
        return {
            "model": self.config.name,
            "prompt_tokens": self.prompt_len,
            "output_tokens": self.output_len,
            "clock_mhz": self.clock_mhz,
            "ttft_ms": self.ttft_ms,
            "tpot_ms": self.tpot_ms,
            "decode_ms": self.decode_ms,
            "total_ms": self.total_ms,
            "tokens_per_s": self.tokens_per_s,
            "decode_tokens_per_s": self.decode_tokens_per_s,
        }


class LatencyModel:
    """Latency evaluator for one synthesized accelerator instance."""

    def __init__(
        self,
        synth: SynthParams,
        attention: AttentionModule,
        ffn: FFNModule,
        options: LatencyOptions | None = None,
    ):
        self.synth = synth
        self.attention = attention
        self.ffn = ffn
        self.options = options or LatencyOptions()

    # ------------------------------------------------------------------
    def _xfer(self, nbytes: int) -> int:
        """Cycles for one load through the shared AXI weight port."""
        return self.options.hbm.transfer_cycles(nbytes, self.options.axi)

    def _stage(self, n_tiles: int, load: int, compute: int) -> int:
        """Total for a tiled stage under the configured buffering."""
        phases = [TilePhase(load=load, compute=compute)] * n_tiles
        if self.options.double_buffered:
            return overlapped_cycles(phases).total
        return serialized_cycles(phases).total

    def _ffn_stages(
        self, d_model: int, ffn: Dict[str, int]
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """FFN stage totals + load cycles (real weight tiles only)."""
        synth = self.synth
        elem = (self.attention.formats.weight_bits + 7) // 8
        t_in = max(1, math.ceil(d_model / synth.ts_ffn))
        ffn12_tile_bytes = synth.ts_ffn * synth.ts_ffn * elem
        ffn3_tile_bytes = 4 * synth.ts_ffn * synth.ts_ffn * elem
        grid = self.ffn.tile_grid(d_model)
        real = {
            "ffn1": t_in * t_in,
            "ffn2": t_in * max(1, math.ceil(4 * d_model / synth.ts_ffn)),
            "ffn3": t_in * t_in,
        }
        stages: Dict[str, int] = {}
        loads: Dict[str, int] = {}
        for name, tile_bytes in (("ffn1", ffn12_tile_bytes),
                                 ("ffn2", ffn12_tile_bytes),
                                 ("ffn3", ffn3_tile_bytes)):
            inv = grid[name]
            per_inv = ffn[name] // inv
            n_loaded = min(real[name], inv)
            load = self._xfer(tile_bytes)
            loaded_part = self._stage(n_loaded, load, per_inv)
            dry_part = (inv - n_loaded) * per_inv
            stages[name] = loaded_part + dry_part
            loads[name] = n_loaded * load
        return stages, loads

    # ------------------------------------------------------------------
    def layer_cycles(
        self, seq_len: int, d_model: int, num_heads: int
    ) -> LayerLatency:
        """One encoder layer's full cycle breakdown."""
        synth = self.synth
        att = self.attention.compute_cycles(seq_len, d_model, num_heads)
        ffn = self.ffn.compute_cycles(seq_len, d_model)

        # --- MHA loads: per tile, every head's W tiles + shared X tile.
        tiles_mha = max(1, math.ceil(d_model / synth.ts_mha))
        w_tile = self.attention.weight_bytes_per_tile(d_model, num_heads)
        x_tile = self.attention.input_bytes_per_tile(seq_len)
        qkv_tile_load = num_heads * self._xfer(w_tile) + self._xfer(x_tile)
        qkv_per_tile_compute = att["qkv"] // tiles_mha
        qkv_stage = self._stage(tiles_mha, qkv_tile_load, qkv_per_tile_compute)

        stages, loads = self._ffn_stages(d_model, ffn)
        loads["qkv"] = tiles_mha * qkv_tile_load

        compute = {
            "qkv": att["qkv"],
            "qk": att["qk"],
            "softmax": att["softmax"],
            "sv": att["sv"],
            "ffn1": ffn["ffn1"],
            "ffn2": ffn["ffn2"],
            "ffn3": ffn["ffn3"],
            "ln": ffn["ln"],
        }
        total = (
            qkv_stage
            + att["qk"] + att["softmax"] + att["sv"]
            + stages["ffn1"] + stages["ffn2"] + stages["ffn3"]
            + ffn["ln"]
        )
        return LayerLatency(compute=compute, loads=loads, total=total)

    # ------------------------------------------------------------------
    def decode_layer_cycles(
        self, cache_len: int, d_model: int, num_heads: int
    ) -> LayerLatency:
        """One KV-cache decode step's cycle breakdown for one layer.

        The weight-streaming term dominates: every Q/K/V and FFN weight
        tile streams again for a single new row, so loads are the full
        per-layer traffic while compute shrinks to one row — except the
        score-path engines (QK/softmax/SV), which sweep the whole
        ``cache_len``-deep cache and grow with generated length.
        """
        synth = self.synth
        att = self.attention.decode_compute_cycles(cache_len, d_model,
                                                   num_heads)
        ffn = self.ffn.compute_cycles(1, d_model)

        tiles_mha = max(1, math.ceil(d_model / synth.ts_mha))
        w_tile = self.attention.weight_bytes_per_tile(d_model, num_heads)
        x_tile = self.attention.input_bytes_per_tile(1)
        qkv_tile_load = num_heads * self._xfer(w_tile) + self._xfer(x_tile)
        qkv_per_tile_compute = att["qkv"] // tiles_mha
        qkv_stage = self._stage(tiles_mha, qkv_tile_load, qkv_per_tile_compute)

        stages, loads = self._ffn_stages(d_model, ffn)
        loads["qkv"] = tiles_mha * qkv_tile_load

        compute = {
            "qkv": att["qkv"],
            "qk": att["qk"],
            "softmax": att["softmax"],
            "sv": att["sv"],
            "ffn1": ffn["ffn1"],
            "ffn2": ffn["ffn2"],
            "ffn3": ffn["ffn3"],
            "ln": ffn["ln"],
        }
        total = (
            qkv_stage
            + att["qk"] + att["softmax"] + att["sv"]
            + stages["ffn1"] + stages["ffn2"] + stages["ffn3"]
            + ffn["ln"]
        )
        return LayerLatency(compute=compute, loads=loads, total=total)

    def generation_report(
        self,
        config: TransformerConfig,
        prompt_len: int,
        output_len: int,
        clock_mhz: float,
    ) -> GenerationReport:
        """Prefill + per-token decode latency of one generation call.

        The KV cache must hold every prompt *and* output position in
        the synthesized score/SV buffers, so ``prompt_len + output_len``
        is validated against ``max_seq_len`` exactly like a programmed
        sequence length.
        """
        if prompt_len < 1 or output_len < 1:
            raise ValueError("prompt_len and output_len must be >= 1")
        total_len = prompt_len + output_len
        if total_len > self.synth.max_seq_len:
            raise ResynthesisRequiredError(
                f"generation needs a {total_len}-position KV cache "
                f"(prompt {prompt_len} + output {output_len}) but the "
                f"synthesized buffers stop at max_seq_len="
                f"{self.synth.max_seq_len}")
        prefill = self.evaluate(config.with_(seq_len=prompt_len), clock_mhz)
        steps = [
            self.decode_layer_cycles(prompt_len + i + 1, config.d_model,
                                     config.num_heads).total
            * config.num_layers
            for i in range(output_len - 1)
        ]
        final_layer = self.decode_layer_cycles(total_len - 1 if output_len > 1
                                               else prompt_len + 1,
                                               config.d_model,
                                               config.num_heads)
        return GenerationReport(
            config=config,
            prompt_len=prompt_len,
            output_len=output_len,
            clock_mhz=clock_mhz,
            prefill=prefill,
            decode_step_cycles=steps,
            decode_layer=final_layer,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self, config: TransformerConfig, clock_mhz: float
    ) -> LatencyReport:
        """Latency of a runtime-programmed workload at ``clock_mhz``.

        Programs a register file first so every synthesized-maximum
        constraint is enforced exactly once, here.
        """
        csr = ConfigRegisterFile(self.synth)
        csr.program(config)
        layer = self.layer_cycles(config.seq_len, config.d_model,
                                  config.num_heads)
        return LatencyReport(layer=layer, num_layers=config.num_layers,
                             clock_mhz=clock_mhz, config=config)
