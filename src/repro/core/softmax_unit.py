"""Fixed-point softmax hardware unit.

"The softmax function, implemented in HLS, utilizes LUTs and flip-flops
to compute the result" (Section IV-A2).  The unit works row-wise in
three pipelined passes:

1. **max pass** — integer row maximum (exact);
2. **exp pass** — subtract the max (exact in the score format), look
   up ``exp`` in a sampled table, accumulate the sum in a wide
   register;
3. **normalize pass** — reciprocal lookup of the sum, one multiply per
   element, output quantized to the probability format.

The LUT outputs themselves are quantized (the tables store fixed-point
codes), so the whole unit is a deterministic integer pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fixedpoint import ExpLUT, FxTensor, QFormat, ReciprocalLUT, quantize
from ..hls import Loop
from .engines import DatapathFormats, softmax_loop_nest

__all__ = ["SoftmaxUnit"]

#: Internal format of tabulated exp values (sub-unit, fine resolution).
_EXP_FMT = QFormat(16, 15)
#: Internal format of the row-sum reciprocal.
_RECIP_FMT = QFormat(18, 16)


@dataclass
class SoftmaxUnit:
    """One per-head softmax unit (LUT-based, fixed point)."""

    formats: DatapathFormats = field(default_factory=DatapathFormats.fix8)
    exp_lut: ExpLUT = field(default_factory=lambda: ExpLUT(entries=512))
    recip_lut: ReciprocalLUT = field(
        default_factory=lambda: ReciprocalLUT(lo=0.5, hi=1024.0, entries=2048)
    )

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------
    def __call__(self, scores: FxTensor,
                 masked: "np.ndarray | None" = None) -> FxTensor:
        """Row-wise softmax of a ``(rows, cols)`` score tensor.

        ``masked`` is an optional boolean matrix naming lanes the mask
        unit blocked: their exp codes are gated to exactly 0 (the
        comparator output overrides the LUT), so a masked lane
        contributes nothing to the row sum or the SV reduction.  A
        coarse score format alone cannot guarantee that — ``fix8``'s
        score minimum is only -8.0, whose exp code is *nonzero* — and
        exact zeroing is what makes incremental KV-cache decode
        bit-identical to the masked full-sequence pass.
        """
        raw = scores.raw
        if raw.ndim != 2:
            raise ValueError("softmax unit expects a 2-D score matrix")
        # Pass 1: integer row max (exact).
        row_max = raw.max(axis=1, keepdims=True)
        shifted = (raw - row_max) * scores.fmt.scale  # real-valued, <= 0
        # Pass 2: exp LUT (table stores _EXP_FMT codes) + wide-sum.
        exp_codes = quantize(self.exp_lut(shifted), _EXP_FMT)
        if masked is not None:
            masked = np.asarray(masked, dtype=bool)
            if masked.shape != raw.shape:
                raise ValueError("masked shape must match the score matrix")
            exp_codes = np.where(masked, 0, exp_codes)
        row_sum = exp_codes.sum(axis=1, keepdims=True) * _EXP_FMT.scale
        # Pass 3: reciprocal LUT + one multiply per element.
        recip_codes = quantize(self.recip_lut(row_sum), _RECIP_FMT)
        probs = (exp_codes * _EXP_FMT.scale) * (recip_codes * _RECIP_FMT.scale)
        return FxTensor.from_float(probs, self.formats.prob)

    def reference(self, scores: FxTensor) -> np.ndarray:
        """Float softmax of the dequantized scores (accuracy baseline)."""
        x = scores.to_float()
        shifted = x - x.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=1, keepdims=True)

    def max_abs_error(self, scores: FxTensor) -> float:
        """Worst-case deviation of the unit vs. float softmax."""
        return float(np.max(np.abs(self(scores).to_float() - self.reference(scores))))

    # ------------------------------------------------------------------
    # Hardware model
    # ------------------------------------------------------------------
    def loop_nest(self, rows: int, row_len: int) -> Loop:
        """Cycle-model loop nest (three pipelined passes per row)."""
        return softmax_loop_nest(rows, row_len)

    @property
    def dsps(self) -> int:
        """Two DSPs per unit: normalization multiply + reciprocal scale."""
        return 2
