"""Tiling strategies for MHA and FFN weight matrices (Figs. 5 & 6).

**MHA tiling** (Fig. 5): the per-head weight matrices are stored
transposed as ``(d_k, d_model)`` and tiled *only along the second
dimension* (the ``d_model`` reduction axis) into ``d_model/TS_MHA``
column tiles; the input buffer is tiled the same way.  Each iteration
multiplies one input tile ``(SL, TS)`` with one weight tile ``(TS,
d_k)`` and accumulates: "the final output is the cumulative sum of the
results computed across all tiles".

**FFN tiling** (Fig. 6): weight matrices are tiled along *both*
dimensions into ``TS_FFN x TS_FFN`` blocks; for every output-column
tile the engine sweeps the reduction (row) tiles and accumulates, then
moves to the next output tile — "results are first accumulated along
the columns, followed by accumulation along the rows".

Both iterators yield views (no copies) in the exact order the
controller issues LOAD/RUN instructions, so the functional engines and
the instruction compiler agree on tile identity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = [
    "TileIndex",
    "Tile2D",
    "num_tiles",
    "iter_reduction_tiles",
    "iter_tiles_2d",
    "tiled_matmul_mha",
    "tiled_matmul_ffn",
]


@dataclass(frozen=True)
class TileIndex:
    """Identity of one 1-D (reduction) tile."""

    index: int
    start: int
    stop: int

    @property
    def width(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class Tile2D:
    """Identity of one 2-D FFN tile (reduction row-block x output col-block)."""

    row: int
    col: int
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def linear(self) -> int:
        """Row-major linear index (matches the instruction encoding)."""
        return self.row * 10**6 + self.col  # unique, order-preserving per row

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.row_stop - self.row_start, self.col_stop - self.col_start)


def num_tiles(extent: int, tile: int) -> int:
    """Tiles needed to cover ``extent`` with stride ``tile``."""
    if extent < 1 or tile < 1:
        raise ValueError("extent and tile must be positive")
    return math.ceil(extent / tile)


def iter_reduction_tiles(extent: int, tile: int) -> Iterator[TileIndex]:
    """1-D tile sweep along a reduction axis of length ``extent``."""
    for i in range(num_tiles(extent, tile)):
        yield TileIndex(index=i, start=i * tile, stop=min((i + 1) * tile, extent))


def iter_tiles_2d(
    rows: int, cols: int, tile_rows: int, tile_cols: int
) -> Iterator[Tile2D]:
    """2-D tile sweep: output-column-major, reduction rows inner.

    Iteration order (col block outer, row block inner) matches Fig. 6:
    for each output tile, all reduction tiles are accumulated before
    moving on.
    """
    for c in range(num_tiles(cols, tile_cols)):
        for r in range(num_tiles(rows, tile_rows)):
            yield Tile2D(
                row=r,
                col=c,
                row_start=r * tile_rows,
                row_stop=min((r + 1) * tile_rows, rows),
                col_start=c * tile_cols,
                col_stop=min((c + 1) * tile_cols, cols),
            )


def tiled_matmul_mha(
    x: np.ndarray, w: np.ndarray, ts_mha: int
) -> np.ndarray:
    """Reference float tiled matmul with MHA (reduction-only) tiling.

    ``x`` is ``(SL, d_model)``, ``w`` is ``(d_model, d_k)``.  Exactly
    equivalent to ``x @ w`` — the point of the function (and its tests)
    is that the tile-accumulation order of Fig. 5 is lossless.
    """
    sl, d_model = x.shape
    if w.shape[0] != d_model:
        raise ValueError("reduction dimensions disagree")
    acc = np.zeros((sl, w.shape[1]), dtype=np.float64)
    for t in iter_reduction_tiles(d_model, ts_mha):
        acc += x[:, t.start:t.stop] @ w[t.start:t.stop, :]
    return acc


def tiled_matmul_ffn(
    x: np.ndarray, w: np.ndarray, ts_ffn: int, ts_out: int | None = None
) -> np.ndarray:
    """Reference float tiled matmul with FFN (2-D) tiling.

    ``x`` is ``(SL, d_in)``, ``w`` is ``(d_in, d_out)``; tiles are
    ``ts_ffn`` tall (reduction) and ``ts_out`` wide (defaults to
    ``ts_ffn`` — square tiles as in the paper).
    """
    ts_out = ts_ffn if ts_out is None else ts_out
    sl, d_in = x.shape
    if w.shape[0] != d_in:
        raise ValueError("reduction dimensions disagree")
    out = np.zeros((sl, w.shape[1]), dtype=np.float64)
    for t in iter_tiles_2d(d_in, w.shape[1], ts_ffn, ts_out):
        out[:, t.col_start:t.col_stop] += (
            x[:, t.row_start:t.row_stop] @ w[t.row_start:t.row_stop,
                                             t.col_start:t.col_stop]
        )
    return out
