"""Design-space exploration: reproduce Fig. 7, then search beyond it.

The paper spent ~36 hours of HLS compilation per tile configuration;
the analytic models answer the same questions in milliseconds.  This
example (a) regenerates the published sweep (now running through the
``repro.dse`` engine), (b) extends it to a finer FFN-tile grid the
paper could not afford, (c) recomputes the "8 parallel heads fit the
U55C" analysis across boards, and (d) runs a full multi-objective
exploration — latency x throughput x tail latency x power — with
Pareto-frontier extraction and the on-disk evaluation cache, showing a
resumed sweep re-evaluating nothing.

Run:  python examples/design_space_exploration.py
"""

import tempfile

from repro import ALVEO_U55C, SynthParams, get_part, max_parallel_heads, tile_size_sweep
from repro.analysis import render_table
from repro.core import find_optimum
from repro.dse import (
    EvalCache,
    evaluate_point,
    explore,
    get_objectives,
    render_exploration,
    standard_space,
)
from repro.fpga import OverUtilizationError

# ----------------------------------------------------------------- #
# (a) The published Fig. 7 grid (through the DSE engine).
# ----------------------------------------------------------------- #
points = tile_size_sweep()
best_freq, best_lat = find_optimum(points)
print(render_table(
    ["tiles_MHA", "tiles_FFN", "fmax_MHz", "latency_ms", "norm"],
    [(p.tiles_mha, p.tiles_ffn, round(p.fmax_mhz, 1),
      round(p.latency_ms, 1), round(p.normalized_latency, 2))
     for p in points],
    title="Fig. 7 sweep"))
print(f"\noptimum: {best_lat.tiles_mha} MHA tiles / {best_lat.tiles_ffn} "
      f"FFN tiles @ {best_freq.fmax_mhz:.0f} MHz "
      f"(paper: 12 / 6 @ 200 MHz)\n")

# ----------------------------------------------------------------- #
# (b) A finer grid the paper could not afford to synthesize.
# ----------------------------------------------------------------- #
fine = tile_size_sweep(tiles_mha_options=(8, 12, 16, 24),
                       tiles_ffn_options=(4, 6, 8, 12))
fb, fl = find_optimum(fine)
print(f"finer grid optimum: {fl.tiles_mha} MHA / {fl.tiles_ffn} FFN tiles "
      f"→ {fl.latency_ms:.1f} ms @ {fl.fmax_mhz:.0f} MHz")

# ----------------------------------------------------------------- #
# (c) Head-count feasibility per device.
# ----------------------------------------------------------------- #
print("\nmax parallel attention heads (85% LUT routability ceiling):")
for part_name in ("Alveo U55C", "Alveo U250", "Alveo U200", "VCU118"):
    device = get_part(part_name)
    try:
        h = max_parallel_heads(SynthParams(), device)
        note = " <- the paper's 8" if device is ALVEO_U55C and h == 8 else ""
        print(f"  {part_name:12s}: {h}{note}")
    except OverUtilizationError as exc:
        print(f"  {part_name:12s}: does not fit ({exc})")

# ----------------------------------------------------------------- #
# (d) Multi-objective DSE: tiles x model, four objectives, cached.
#     The frontier is the set of deployments nothing else beats on
#     every axis at once; the second run resumes from the cache and
#     re-evaluates nothing.
# ----------------------------------------------------------------- #
space = standard_space(models=("bert-variant", "model2-lhc-trigger"),
                       tiles_mha=(8, 12, 48), tiles_ffn=(3, 6))
objectives = get_objectives()
with tempfile.TemporaryDirectory() as cache_dir:
    cold = explore(space, evaluate_point, objectives=objectives,
                   cache=EvalCache(cache_dir))
    print()
    print(render_exploration(cold, title="Multi-objective DSE (cold)"))

    warm = explore(space, evaluate_point, objectives=objectives,
                   cache=EvalCache(cache_dir))
    assert warm.n_evaluated == 0, "resume must re-evaluate nothing"
    assert ([(r.point, r.objectives) for r in warm.frontier]
            == [(r.point, r.objectives) for r in cold.frontier]), \
        "resumed frontier must be identical"
    print(f"\nresumed run: {warm.cache_hits} cache hit(s), "
          f"{warm.n_evaluated} re-evaluation(s) — frontier identical. OK")
