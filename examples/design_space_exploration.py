"""Design-space exploration: reproduce Fig. 7 and go beyond it.

The paper spent ~36 hours of HLS compilation per tile configuration;
the analytic models answer the same questions in milliseconds.  This
example (a) regenerates the published sweep, (b) extends it to a finer
FFN-tile grid the paper could not afford, and (c) recomputes the
"8 parallel heads fit the U55C" analysis and tries the same design on
other boards.

Run:  python examples/design_space_exploration.py
"""

from repro import ALVEO_U55C, SynthParams, get_part, max_parallel_heads, tile_size_sweep
from repro.analysis import render_table
from repro.core import find_optimum
from repro.fpga import OverUtilizationError

# ----------------------------------------------------------------- #
# (a) The published Fig. 7 grid.
# ----------------------------------------------------------------- #
points = tile_size_sweep()
best_freq, best_lat = find_optimum(points)
print(render_table(
    ["tiles_MHA", "tiles_FFN", "fmax_MHz", "latency_ms", "norm"],
    [(p.tiles_mha, p.tiles_ffn, round(p.fmax_mhz, 1),
      round(p.latency_ms, 1), round(p.normalized_latency, 2))
     for p in points],
    title="Fig. 7 sweep"))
print(f"\noptimum: {best_lat.tiles_mha} MHA tiles / {best_lat.tiles_ffn} "
      f"FFN tiles @ {best_freq.fmax_mhz:.0f} MHz "
      f"(paper: 12 / 6 @ 200 MHz)\n")

# ----------------------------------------------------------------- #
# (b) A finer grid the paper could not afford to synthesize.
# ----------------------------------------------------------------- #
fine = tile_size_sweep(tiles_mha_options=(8, 12, 16, 24),
                       tiles_ffn_options=(4, 6, 8, 12))
fb, fl = find_optimum(fine)
print(f"finer grid optimum: {fl.tiles_mha} MHA / {fl.tiles_ffn} FFN tiles "
      f"→ {fl.latency_ms:.1f} ms @ {fl.fmax_mhz:.0f} MHz")

# ----------------------------------------------------------------- #
# (c) Head-count feasibility per device.
# ----------------------------------------------------------------- #
print("\nmax parallel attention heads (85% LUT routability ceiling):")
for part_name in ("Alveo U55C", "Alveo U250", "Alveo U200", "VCU118"):
    device = get_part(part_name)
    try:
        h = max_parallel_heads(SynthParams(), device)
        note = " <- the paper's 8" if device is ALVEO_U55C and h == 8 else ""
        print(f"  {part_name:12s}: {h}{note}")
    except OverUtilizationError as exc:
        print(f"  {part_name:12s}: does not fit ({exc})")
