"""Multi-FPGA partitioning: one model, K devices, one interconnect.

The serving example scales *out* (independent replicas); this one
scales *up*: a single workload partitioned across several ProTEA
instances joined by a serial link.

1. Partition the 12-layer BERT variant across 4 devices and read the
   plan: stage assignment, fill latency, steady-state throughput, and
   the cross-device Gantt chart.
2. Compare objectives: deep pipelines maximize throughput, head-wise
   tensor splits minimize a single request's latency.
3. Serve a model *too large for any single device* (24 layers vs the
   synthesized max of 12) through a PipelineGroup.
4. Trade replica count against pipeline depth under one device budget
   using the unchanged serving stack.

Run:  python examples/multi_fpga_pipeline.py
"""

from repro import (
    AURORA_64B66B,
    PipelineGroup,
    PipelinePartitioner,
    ProTEA,
    SynthParams,
    get_model,
    simulate_cluster,
    summarize,
)
from repro.isa import ResynthesisRequiredError
from repro.serving import ModelMix, PoissonArrivals

accel = ProTEA.synthesize(SynthParams())
print("instance:", accel.summary(), "\n")

# ------------------------------------------------------------------ #
# 1. Four-stage pipeline over Aurora.
# ------------------------------------------------------------------ #
bert = get_model("bert-variant")
partitioner = PipelinePartitioner(accel, AURORA_64B66B)
plan = partitioner.plan(bert, n_devices=4)
single = partitioner.plan(bert, n_devices=1)
print(f"{bert.name} on 4 devices over {plan.link.name}:")
for s in plan.stages:
    print(f"  stage {s.index}: layers [{s.layer_start}, {s.layer_end}) "
          f"-> {s.cycles:,} cyc")
print(f"  boundary: {plan.boundary_bytes} B = {plan.link_cycles} cyc/hop")
print(f"  fill {plan.fill_ms:.1f} ms | steady state "
      f"{plan.steady_state_inf_per_s:.1f} inf/s "
      f"({plan.speedup_over(single.bottleneck_cycles):.2f}x one device)\n")
assert plan.steady_state_inf_per_s > single.steady_state_inf_per_s
print(plan.timeline(n_items=6).gantt(), "\n")

# ------------------------------------------------------------------ #
# 2. Throughput vs latency objectives.
# ------------------------------------------------------------------ #
tput = partitioner.best_plan(bert, 4, objective="throughput")
lat = partitioner.best_plan(bert, 4, objective="latency")
print(f"throughput objective: {tput.num_stages} stages x "
      f"tp{tput.stages[0].tp_ways} -> {tput.steady_state_inf_per_s:.1f} "
      f"inf/s, {tput.latency_ms:.1f} ms/request")
print(f"latency objective   : {lat.num_stages} stages x "
      f"tp{lat.stages[0].tp_ways} -> {lat.steady_state_inf_per_s:.1f} "
      f"inf/s, {lat.latency_ms:.1f} ms/request\n")
assert lat.latency_ms < tput.latency_ms
assert tput.steady_state_inf_per_s > lat.steady_state_inf_per_s

# ------------------------------------------------------------------ #
# 3. A model no single device can serve.
# ------------------------------------------------------------------ #
big = bert.with_(name="bert-24L", num_layers=24)
try:
    accel.program(big)
    raise AssertionError("a single device must reject 24 layers")
except ResynthesisRequiredError as exc:
    print(f"single device: {exc}")
group = PipelineGroup(accel, n_devices=4)
group.program(big)
big_plan = group.plan_for(big)
print(f"PipelineGroup: {big_plan.num_stages} stages x "
      f"tp{big_plan.stages[0].tp_ways} serve {big.name} at "
      f"{group.latency_ms(big):.1f} ms\n")

# ------------------------------------------------------------------ #
# 4. Replicas vs depth under an 8-device budget.
# ------------------------------------------------------------------ #
reqs = PoissonArrivals(60, ModelMix("model3-efa-trans"),
                       seed=0).generate(2_000)
print("8-device budget serving model3-efa-trans at 60 qps:")
for depth in (1, 2, 4):
    replicas = 8 // depth
    group = PipelineGroup(accel, n_devices=depth)
    rep = summarize(simulate_cluster(group, reqs, n_instances=replicas))
    print(f"  {replicas} x depth-{depth}: p50 {rep.p50_ms:6.1f} ms, "
          f"p99 {rep.p99_ms:6.1f} ms, util {rep.utilization:.2f}")

print("\nOK: multi-FPGA pipeline example passed")
