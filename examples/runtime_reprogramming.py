"""Runtime reprogramming: one bitstream, many transformers.

The paper's differentiator: "ProTEA does not require resynthesis for
each model; only minor software modifications are necessary."  This
example deploys five different published workloads on one synthesized
instance back to back — a BERT variant, three competitor configurations
from Table II/III and the tiny LHC trigger model — and shows what a
*disallowed* request looks like (a model beyond the synthesized maxima
raises ResynthesisRequiredError instead of silently rebuilding).

Run:  python examples/runtime_reprogramming.py
"""

from repro import BERT_VARIANT, ProTEA, ResynthesisRequiredError, SynthParams
from repro.analysis import render_table
from repro.core import RuntimeSession
from repro.nn import get_model

accel = ProTEA.synthesize(SynthParams())
session = RuntimeSession(accel)
print(accel.summary(), "\n")

workloads = [
    BERT_VARIANT,
    get_model("model1-peng-isqed21"),
    get_model("model2-lhc-trigger"),
    get_model("model3-efa-trans"),
    get_model("model4-qi-iccad21"),
]

rows = []
for cfg in workloads:
    ms = session.latency_ms(cfg)
    rows.append((cfg.name, cfg.seq_len, cfg.d_model, cfg.num_heads,
                 cfg.num_layers, round(ms, 3),
                 round(accel.throughput_gops(cfg), 2)))

print(render_table(
    ["model", "SL", "d_model", "h", "N", "latency_ms", "GOPS"],
    rows,
    title="Five workloads on ONE synthesized bitstream"))
print(f"\nreprogrammed {session.reprogram_count} times, "
      f"resynthesized {session.resynthesis_count} times")

# A workload beyond the synthesized maxima is rejected, not rebuilt:
try:
    session.deploy(BERT_VARIANT.with_(name="bert-24L", num_layers=24))
except ResynthesisRequiredError as exc:
    print(f"\nexpected rejection: {exc}")
