"""Scenario layer on the unified simulation kernel.

Both serving simulators now run on ``repro.sim`` — one deterministic
event kernel — which is what makes the scenarios below expressible at
all.  Three deployments the plain fleets couldn't model:

1. **Heterogeneous fleet**: two full-speed instances plus one
   half-speed instance pinned to a single model (think: an older board
   kept around for one workload).  Capability-aware dispatch keeps the
   pinned model on its board whenever that is the better choice.
2. **Failure injection**: the same fleet with MTBF/MTTR faults —
   in-flight batches abort and retry elsewhere, the report gains
   availability, retry counts, and the degraded-window p99.
3. **Priority generation**: an overloaded single-slot generation
   instance where 15% of requests are latency-critical; priority
   admission + step-boundary preemption collapses their wait while
   plain FIFO drowns them.

Run:  python examples/sim_scenarios.py
"""

from repro import FailurePlan, FleetSpec, ProTEA, SynthParams
from repro.serving import (
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    attach_priorities,
    fixed_size,
    render_serving_report,
    simulate,
    simulate_generation,
    summarize,
    summarize_generation,
)

accel = ProTEA.synthesize(SynthParams())
print("instance:", accel.summary(), "\n")

# ------------------------------------------------------------------ #
# 1. Heterogeneous fleet: 2x full speed + a half-speed pinned board.
# ------------------------------------------------------------------ #
mix = ModelMix({"model2-lhc-trigger": 3.0, "model1-peng-isqed21": 1.0})
reqs = PoissonArrivals(600, mix, seed=0).generate(1_000)

fleet = FleetSpec.parse("1.0x2,0.5@model1-peng-isqed21")
hetero = simulate(accel, reqs, fleet=fleet, scheduler="least-loaded",
                  batching=fixed_size(4), reprogram_latency_ms=5.0)
print(render_serving_report(
    summarize(hetero),
    title=f"Heterogeneous fleet {fleet.describe()} @ 600 qps"))

pinned = [r for r in hetero.records if r.instance == 2]
assert pinned, "the pinned instance served nothing"
assert all(r.model == "model1-peng-isqed21" for r in pinned)
print(f"\npinned instance served {len(pinned)} requests, all "
      "model1-peng-isqed21 (capability dispatch held)\n")

# ------------------------------------------------------------------ #
# 2. The same traffic under MTBF/MTTR failure injection.
# ------------------------------------------------------------------ #
plan = FailurePlan(mtbf_ms=250.0, mttr_ms=30.0, seed=7)
faulty = simulate(accel, reqs, 3, scheduler="least-loaded",
                  batching=fixed_size(4), reprogram_latency_ms=5.0,
                  failures=plan)
report = summarize(faulty, slo_ms=50.0)
print(render_serving_report(
    report, title="3 instances, faults at MTBF 250 ms / MTTR 30 ms"))
assert len(faulty.records) == len(reqs)  # nothing lost to faults
assert report.availability is not None and report.availability < 1.0
print(f"\navailability {report.availability:.3f}, "
      f"{report.total_failures} faults, {report.total_retries} retries, "
      f"degraded p99 {report.p99_degraded_ms:.2f} ms "
      f"(healthy p99 {report.p99_ms:.2f} ms)\n")

# ------------------------------------------------------------------ #
# 3. Priority admission + preemption on an overloaded generator.
# ------------------------------------------------------------------ #
arrivals = PoissonArrivals(400, ModelMix("model2-lhc-trigger"),
                           seed=8).generate(300)
base = attach_generation_lengths(
    arrivals, LengthSampler("fixed", 12), LengthSampler("fixed", 48),
    max_total=accel.synth.max_seq_len)
critical = attach_priorities(base, 0.15, seed=4)
marked = {r.rid for r in critical if r.priority}

fifo = simulate_generation(accel, base, 1, slots=1)
prio = simulate_generation(accel, critical, 1, slots=1)


def class_wait(result, rids):
    recs = [r for r in result.records if r.rid in rids]
    return sum(r.wait_ms for r in recs) / len(recs)


fifo_wait = class_wait(fifo, marked)
prio_wait = class_wait(prio, marked)
rep = summarize_generation(prio, ttft_slo_ms=20.0)
print(f"critical-class mean wait: FIFO {fifo_wait:.1f} ms -> "
      f"priority {prio_wait:.1f} ms "
      f"({prio.total_preemptions} preemptions)")
assert prio_wait < fifo_wait / 10
assert prio.total_preemptions > 0
assert sorted(r.rid for r in prio.records) == [r.rid for r in base]

print("\nOK: heterogeneous dispatch, failure injection, and priority "
      "preemption all behaved as modeled")
