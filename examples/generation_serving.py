"""Autoregressive generation on ProTEA: KV cache to continuous batching.

The encoder serves one-shot fixed-length invocations; generation is the
workload class above it: a prompt **prefill** emits the first token,
then the decoder produces one token per step against a growing KV
cache.  This example walks the whole path:

1. The KV-cache oracle: incremental fixed-point decode is bit-identical
   to the full-sequence masked decoder at every step.
2. The prefill/decode latency split: TTFT vs TPOT on the synthesized
   instance, and why decode is weight-streaming bound.
3. Token-level continuous batching: a fleet serving an open stream of
   generation requests, TTFT/TPOT tails and goodput under SLOs —
   including the batching win over one-sequence-at-a-time slots.
4. Pipeline-parallel decode: per-token microbatches through K devices.

Run:  python examples/generation_serving.py
"""

import numpy as np

from repro import ProTEA, SynthParams, get_model
from repro.core import DatapathFormats, DecoderModule, QuantizedDecoder
from repro.fixedpoint import FxTensor
from repro.generation import (
    FxDecoderKVCache,
    LengthSampler,
    attach_generation_lengths,
    simulate_generation,
    summarize_generation,
)
from repro.nn import Decoder
from repro.parallel import PipelinePartitioner
from repro.serving import ModelMix, PoissonArrivals, render_generation_report

accel = ProTEA.synthesize(SynthParams())
print("instance:", accel.summary(), "\n")

# ------------------------------------------------------------------ #
# 1. KV-cache decode == full-sequence masked decode, bit for bit.
# ------------------------------------------------------------------ #
synth = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=2,
                    max_d_model=64, max_seq_len=32, seq_chunk=16)
fmts = DatapathFormats.fix8()
rng = np.random.default_rng(0)
golden = Decoder.initialize(rng, num_layers=2, d_model=64, num_heads=2)
module = DecoderModule(synth, fmts)
weights = QuantizedDecoder.from_decoder(golden, fmts)
x = FxTensor.from_float(rng.normal(0, 0.5, (10, 64)), fmts.activation)
memory = FxTensor.from_float(rng.normal(0, 0.5, (8, 64)), fmts.activation)

cache = FxDecoderKVCache.initialize(module, weights, memory)
for t in range(10):
    step = cache.step(x[t:t + 1])
    full = module.forward(x[:t + 1], memory, weights)
    assert np.array_equal(step.raw, full.raw[t:t + 1]), f"step {t} diverged"
print(f"KV-cache decode: 10/10 steps bit-identical to the full pass "
      f"(cache holds {cache.seq_len} positions, "
      f"{cache.cache_bytes()} bytes)\n")

# ------------------------------------------------------------------ #
# 2. Prefill/decode split: TTFT vs TPOT on the published instance.
# ------------------------------------------------------------------ #
cfg = get_model("model2-lhc-trigger")
rep = accel.generation_report(cfg, prompt_len=16, output_len=32)
print(f"{cfg.name}: prompt 16 + output 32 tokens")
print(f"  TTFT (prefill)  : {rep.ttft_ms:8.3f} ms")
print(f"  TPOT (decode)   : {rep.tpot_ms:8.3f} ms/token")
print(f"  end to end      : {rep.total_ms:8.3f} ms "
      f"({rep.tokens_per_s:.1f} tok/s)")
dl = rep.decode_layer
print(f"  decode layer    : {dl.load_total:,} load cycles vs "
      f"{dl.compute_total:,} compute — weight streaming dominates\n")
assert dl.load_total > dl.compute_total

# ------------------------------------------------------------------ #
# 3. Continuous batching under open traffic.
# ------------------------------------------------------------------ #
arrivals = PoissonArrivals(400, ModelMix(cfg.name), seed=0).generate(2_000)
requests = attach_generation_lengths(
    arrivals, LengthSampler("uniform", 8, 16),
    LengthSampler("geometric", 8, 64, mean_extra=12.0),
    seed=1, max_total=accel.synth.max_seq_len)
report = summarize_generation(
    simulate_generation(accel, requests, n_instances=2, slots=8),
    ttft_slo_ms=50.0, tpot_slo_ms=5.0)
print(render_generation_report(report,
                               title="Poisson 400 qps, 2 instances x 8 slots"))

# The continuous-batching win: single-sequence slots serialize whole
# requests, so under the same load the queue (and the TTFT tail) grows.
solo = summarize_generation(
    simulate_generation(accel, requests, n_instances=2, slots=1))
print(f"\nslots=8 vs slots=1: mean TTFT {report.mean_ttft_ms:.2f} ms vs "
      f"{solo.mean_ttft_ms:.2f} ms, p99 TTFT {report.p99_ttft_ms:.2f} ms "
      f"vs {solo.p99_ttft_ms:.2f} ms")
assert report.p99_ttft_ms < solo.p99_ttft_ms

# ------------------------------------------------------------------ #
# 4. Pipeline-parallel decode: per-token microbatches through stages.
# ------------------------------------------------------------------ #
big = get_model("bert-variant")
decode = PipelinePartitioner(accel).decode_report(
    big, n_devices=4, prompt_len=32, output_len=32)
print(f"\n{big.name} across {decode.num_stages} stages "
      f"({decode.link.name}):")
print(f"  TTFT through pipeline : {decode.ttft_ms:8.3f} ms")
print(f"  per-token latency     : {decode.per_token_ms:8.3f} ms")
print(f"  one sequence          : {decode.sequential_tokens_per_s:8.1f} tok/s")
print(f"  pipeline full         : {decode.steady_tokens_per_s:8.1f} tok/s")
assert decode.steady_tokens_per_s > decode.sequential_tokens_per_s

print("\nAll generation-path checks passed.")
