"""Deploy a trained checkpoint: the Section IV-D software flow.

"TNN models are trained using the PyTorch framework, and the resulting
models should be saved as '.pth' files.  These files are then processed
by a Python interpreter to extract key parameters ... The software ...
utilizes the extracted data to generate instructions and control
signals."

This example walks that exact pipeline (with ``.npz`` standing in for
``.pth``): save a "trained" encoder, extract its hyper-parameters from
the file alone, program the accelerator from the extraction, compile
the controller instruction stream, and execute it instruction by
instruction — verifying bit-identity with the direct datapath.

Run:  python examples/deploy_from_checkpoint.py
"""

import io

import numpy as np

from repro import ProTEA, SynthParams, TransformerConfig
from repro.core.runtime import ProgramExecutor
from repro.fixedpoint import FxTensor
from repro.isa import compile_program, program_stats
from repro.nn import (
    build_encoder,
    extract_hyperparameters,
    load_encoder,
    save_encoder,
)

# --- "training" side: build and save a checkpoint -------------------- #
train_cfg = TransformerConfig("sentiment-small", d_model=64, num_heads=2,
                              num_layers=2, seq_len=16, activation="gelu")
encoder = build_encoder(train_cfg, seed=123)
checkpoint = io.BytesIO()
save_encoder(encoder, checkpoint, config=train_cfg)
print(f"saved checkpoint: {len(checkpoint.getvalue())} bytes")

# --- deployment side: extract parameters from the file alone --------- #
checkpoint.seek(0)
params = extract_hyperparameters(checkpoint)
print(f"extracted: h={params.num_heads} N={params.num_layers} "
      f"d={params.d_model} d_ff={params.d_ff} SL={params.seq_len}")

runtime_cfg = TransformerConfig(
    "deployed", d_model=params.d_model, num_heads=params.num_heads,
    num_layers=params.num_layers, seq_len=params.seq_len, d_ff=params.d_ff)

synth = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=4,
                    max_d_model=64, max_seq_len=32, seq_chunk=16)
accel = ProTEA.synthesize(synth, enforce_fit=False)
accel.program(runtime_cfg)
checkpoint.seek(0)
accel.load_weights(load_encoder(checkpoint))

# --- the controller's view: compile + execute the instruction stream - #
program = compile_program(runtime_cfg, synth)
stats = program_stats(program)
print(f"\ncompiled {stats.total} controller instructions "
      f"({stats.layers} layers)")
top = sorted(stats.by_opcode.items(), key=lambda kv: -kv[1])[:5]
for opcode, count in top:
    print(f"  {opcode.name:18s} x {count}")

x = np.random.default_rng(0).normal(0.0, 0.5, (16, 64))
fx = FxTensor.from_float(x, accel.formats.activation)
y_direct = accel.run_fx(fx)
y_program = ProgramExecutor(accel, accel.weights).run(fx)
assert np.array_equal(y_direct.raw, y_program.raw)
print("\ninstruction-stream execution is bit-identical to the datapath")
print("deployment flow OK")
