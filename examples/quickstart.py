"""Quickstart: synthesize ProTEA once, program it, run an encoder.

Mirrors the paper's headline flow on the published configuration
(TS_MHA=64, TS_FFN=128, Alveo U55C, 8-bit fixed point):

1. synthesize            — the once-per-bitstream step;
2. program(BERT_VARIANT) — runtime CSR writes;
3. load_weights + run    — bit-accurate fixed-point inference on a
   small stand-in model (BERT-768 functional sim takes minutes in
   NumPy; the latency/throughput numbers come from the cycle model
   and are reported for the real BERT variant).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BERT_VARIANT, ProTEA, SynthParams, TransformerConfig
from repro.nn import build_encoder

# ----------------------------------------------------------------- #
# 1. Synthesize the published instance (resource check + Fmax).
# ----------------------------------------------------------------- #
accel = ProTEA.synthesize(SynthParams())
print("synthesized:", accel.summary())

# ----------------------------------------------------------------- #
# 2. Program the BERT variant of Table I and read the cycle model.
# ----------------------------------------------------------------- #
accel.program(BERT_VARIANT)
report = accel.latency_report()
print(f"\nBERT variant (SL=64, d=768, h=8, N=12):")
print(f"  latency    : {report.latency_ms:8.1f} ms   (paper: 279 ms)")
print(f"  throughput : {accel.throughput_gops():8.1f} GOPS (paper: 53 GOPS)")
print("  per-engine ms:", {k: round(v, 1)
                           for k, v in report.breakdown_ms().items()})

# ----------------------------------------------------------------- #
# 3. Functional inference on a small workload (same datapath).
# ----------------------------------------------------------------- #
small = TransformerConfig("quickstart", d_model=64, num_heads=2,
                          num_layers=2, seq_len=16)
small_synth = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=2,
                          max_d_model=64, max_seq_len=16, seq_chunk=16)
sim = ProTEA.synthesize(small_synth, enforce_fit=False)
encoder = build_encoder(small, seed=0)
sim.program(small).load_weights(encoder)

x = np.random.default_rng(0).normal(0.0, 0.5, (16, 64))
y_fx = sim.run(x)            # 8-bit fixed-point datapath
y_golden = encoder(x)        # float64 golden reference
rms = float(np.sqrt(np.mean((y_fx - y_golden) ** 2)))
print(f"\nfunctional check (8-bit datapath vs float golden):")
print(f"  output shape {y_fx.shape}, RMS error {rms:.4f}")
assert rms < 0.25, "8-bit datapath drifted from the golden model"
print("quickstart OK")
