"""Seq2seq on ProTEA: the future-work decoder extension, working.

The paper closes with: "future work will extend the architecture to
support both encoder and decoder layers of the transformer, using the
same design principles."  This example runs a full encoder→decoder
pipeline on the simulated engines:

1. encode a source sequence with the (published) encoder datapath;
2. decode a target sequence with masked self-attention + cross
   attention on the same engine substrates;
3. verify causality bit-exactly and accuracy against the float golden
   decoder;
4. report the cycle-model cost of a decoder layer next to an encoder
   layer, and the (tiny) incremental hardware the extension needs.

Run:  python examples/seq2seq_decoder_extension.py
"""

import numpy as np

from repro import ProTEA, SynthParams, TransformerConfig
from repro.core import DatapathFormats, DecoderModule, QuantizedDecoder
from repro.fixedpoint import FxTensor
from repro.nn import Decoder, build_encoder

D_MODEL, HEADS, SRC_LEN, TGT_LEN = 64, 2, 16, 12

cfg = TransformerConfig("seq2seq-enc", d_model=D_MODEL, num_heads=HEADS,
                        num_layers=2, seq_len=SRC_LEN)
synth = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=2,
                    max_d_model=64, max_seq_len=32, seq_chunk=16)

# --- 1. encode ------------------------------------------------------- #
accel = ProTEA.synthesize(synth, formats=DatapathFormats.fix16(),
                          enforce_fit=False)
encoder = build_encoder(cfg, seed=1)
accel.program(cfg).load_weights(encoder)
rng = np.random.default_rng(0)
src = rng.normal(0.0, 0.5, (SRC_LEN, D_MODEL))
memory_fx = accel.run_fx(FxTensor.from_float(src, accel.formats.activation))
print(f"encoded source: {memory_fx.raw.shape}")

# --- 2. decode ------------------------------------------------------- #
golden_dec = Decoder.initialize(np.random.default_rng(2), num_layers=2,
                                d_model=D_MODEL, num_heads=HEADS)
dec_module = DecoderModule(synth, accel.formats)
dec_weights = QuantizedDecoder.from_decoder(golden_dec, accel.formats)
tgt = rng.normal(0.0, 0.5, (TGT_LEN, D_MODEL))
tgt_fx = FxTensor.from_float(tgt, accel.formats.activation)
out_fx = dec_module.forward(tgt_fx, memory_fx, dec_weights)
print(f"decoded target: {out_fx.raw.shape}")

# --- 3. verify ------------------------------------------------------- #
# causality (bit exact): perturbing future target positions leaves
# earlier outputs untouched.
tgt2 = tgt_fx.raw.copy()
tgt2[6:] = np.clip(tgt2[6:] + 9, tgt_fx.fmt.int_min, tgt_fx.fmt.int_max)
out2 = dec_module.forward(FxTensor(tgt2, tgt_fx.fmt), memory_fx, dec_weights)
assert np.array_equal(out_fx.raw[:6], out2.raw[:6])
print("causality: positions 0-5 bit-identical under future perturbation")

ref = golden_dec(tgt, memory_fx.to_float())
rms = float(np.sqrt(np.mean((out_fx.to_float() - ref) ** 2)))
print(f"fix16 decoder vs float golden: RMS {rms:.4f}")
assert rms < 0.08

# --- 4. cost accounting ---------------------------------------------- #
full = DecoderModule(SynthParams(), DatapathFormats.fix8())
dec_cycles = full.compute_cycles(tgt_len=64, mem_len=64, d_model=768,
                                 num_heads=8)
from repro.core.attention_module import AttentionModule
from repro.core.ffn_module import FFNModule

enc_cycles = (AttentionModule(SynthParams(), DatapathFormats.fix8())
              .compute_cycles(64, 768, 8)["total"]
              + FFNModule(SynthParams(), DatapathFormats.fix8())
              .compute_cycles(64, 768)["total"])
extra_hw = full.resources()
print(f"\ncycle model @ published config (SL=64, d=768, h=8):")
print(f"  encoder layer : {enc_cycles:>10,} cycles")
print(f"  decoder layer : {dec_cycles['total']:>10,} cycles "
      f"({dec_cycles['total'] / enc_cycles:.2f}x)")
print(f"  incremental hardware: +{extra_hw.dsps} DSP, "
      f"+{extra_hw.luts} LUT (mask unit + third layer norm)")
print("seq2seq extension OK")
