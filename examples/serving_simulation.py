"""Serving simulation: a fleet of ProTEA instances under open traffic.

The single-instance story is "one inference takes X ms"; this example
climbs one level: N runtime-reprogrammable instances behind a
dispatcher, serving a seeded Poisson stream of mixed workloads.

1. Simulate 4 instances at 500 qps of the LHC-trigger model and read
   throughput / utilization / tail latency.
2. Show why model affinity matters: with a 20 ms reprogramming penalty
   on a two-model mix, affinity dispatch thrashes weight sets far less
   than round-robin and wins on every latency percentile.
3. Show dynamic batching digesting an overload one instance cannot
   sustain unbatched.
4. Plan capacity: the minimum fleet meeting a 5 ms p99 SLO at
   3000 qps, confirmed by a direct simulation run.

Run:  python examples/serving_simulation.py
"""

from repro import ProTEA, SynthParams, plan_capacity, simulate_cluster, summarize
from repro.serving import (
    ModelMix,
    PoissonArrivals,
    fixed_size,
    render_serving_report,
)

accel = ProTEA.synthesize(SynthParams())
print("instance:", accel.summary(), "\n")

# ------------------------------------------------------------------ #
# 1. Baseline: 4 instances, 500 qps, least-loaded dispatch.
# ------------------------------------------------------------------ #
mix = ModelMix("model2-lhc-trigger")
reqs = PoissonArrivals(500, mix, seed=0).generate(1_000)
report = summarize(simulate_cluster(accel, reqs, n_instances=4,
                                    scheduler="least-loaded"), slo_ms=5.0)
print(render_serving_report(report, title="Poisson 500 qps, 4 instances"))
assert report.slo_attainment == 1.0
assert 0 < report.utilization < 0.5

# ------------------------------------------------------------------ #
# 2. Model affinity vs round-robin under a reprogramming penalty.
# ------------------------------------------------------------------ #
mix2 = ModelMix({"model1-peng-isqed21": 1.0, "model3-efa-trans": 1.0})
w = PoissonArrivals(50, mix2, seed=3).generate(2_000)
rr = summarize(simulate_cluster(accel, w, 2, scheduler="round-robin",
                                reprogram_latency_ms=20.0))
aff = summarize(simulate_cluster(accel, w, 2, scheduler="model-affinity",
                                 reprogram_latency_ms=20.0))
print(f"\nround-robin   : mean {rr.mean_latency_ms:6.1f} ms, "
      f"p95 {rr.p95_ms:6.1f} ms, {rr.total_switches} switches")
print(f"model-affinity: mean {aff.mean_latency_ms:6.1f} ms, "
      f"p95 {aff.p95_ms:6.1f} ms, {aff.total_switches} switches")
assert aff.total_switches < rr.total_switches
assert aff.mean_latency_ms < rr.mean_latency_ms

# ------------------------------------------------------------------ #
# 3. Dynamic batching under single-instance overload.
# ------------------------------------------------------------------ #
hot = PoissonArrivals(3000, mix, seed=6).generate(300)
plain = summarize(simulate_cluster(accel, hot, 1))
batched = summarize(simulate_cluster(accel, hot, 1,
                                     batching=fixed_size(6)))
print(f"\n1 instance @ 3000 qps: unbatched {plain.throughput_rps:7.0f} req/s"
      f", batch-6 {batched.throughput_rps:7.0f} req/s "
      f"(mean batch {batched.per_model[mix.names[0]].mean_batch_size:.1f})")
assert batched.throughput_rps > plain.throughput_rps

# ------------------------------------------------------------------ #
# 4. Capacity planning against a p99 SLO.
# ------------------------------------------------------------------ #
heavy = PoissonArrivals(3000, mix, seed=1).generate(1_000)
plan = plan_capacity(accel, heavy, target_p99_ms=5.0, target_qps=3000)
print(f"\n3000 qps at p99 <= 5 ms needs {plan.instances} instance(s); "
      f"probes: { {n: round(p, 2) for n, p in plan.probes.items()} }")
confirm = summarize(simulate_cluster(accel, heavy, plan.instances))
assert confirm.p99_ms <= 5.0
assert plan.meets_slo

print("\nOK: serving simulation example passed all checks")
