"""Quantization study: where the 8-bit datapath loses precision.

The paper: "Data was quantized to 8-bit fixed-point format; while this
might result in accuracy loss depending on the application, it was not
a primary focus."  This example makes the loss a first-class artifact:
it runs the same encoder through the Fix8 and Fix16 datapaths, prints a
stagewise SQNR table, identifies the weakest stage, and profiles the
off-chip traffic both variants generate.

Run:  python examples/quantization_study.py
"""

import numpy as np

from repro import ProTEA, SynthParams, TransformerConfig
from repro.analysis import analyze_traffic, evaluate_accuracy, render_table
from repro.core import DatapathFormats
from repro.nn import BERT_VARIANT, build_encoder

cfg = TransformerConfig("study", d_model=64, num_heads=2, num_layers=3,
                        seq_len=16)
synth = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=4,
                    max_d_model=64, max_seq_len=16, seq_chunk=16)
encoder = build_encoder(cfg, seed=9)
x = np.random.default_rng(9).normal(0.0, 0.5, (16, 64))

rows = []
reports = {}
for name, fmts in (("Fix8 (published)", DatapathFormats.fix8()),
                   ("Fix16 (wider variant)", DatapathFormats.fix16())):
    accel = ProTEA.synthesize(synth, formats=fmts, enforce_fit=False)
    accel.program(cfg).load_weights(encoder)
    report = evaluate_accuracy(accel, encoder, x)
    reports[name] = report
    worst = report.worst_stage()
    rows.append((name, f"{report.output_rms:.4f}",
                 f"{report.output_sqnr_db:.1f}",
                 f"L{worst.layer}:{worst.stage}",
                 f"{worst.sqnr_db:.1f}"))

print(render_table(
    ["datapath", "output RMS", "output SQNR dB", "worst stage",
     "worst SQNR dB"],
    rows, title="End-to-end quantization accuracy"))

print("\nStagewise SQNR (dB), Fix8:")
for stage in reports["Fix8 (published)"].stages:
    bar = "#" * max(1, int(stage.sqnr_db))
    print(f"  L{stage.layer} {stage.stage:17s} {stage.sqnr_db:6.1f} {bar}")

# Traffic: what the bit width costs off-chip at BERT scale.
print("\nOff-chip traffic at BERT scale:")
for name, fmts in (("Fix8", DatapathFormats.fix8()),
                   ("Fix16", DatapathFormats.fix16())):
    accel = ProTEA.synthesize(SynthParams(), formats=fmts,
                              enforce_fit=False)
    t = analyze_traffic(accel, BERT_VARIANT)
    bound = "compute-bound" if t.compute_bound else "memory-bound"
    print(f"  {name:6s}: {t.total_bytes / 1e6:7.1f} MB/inference, "
          f"{t.achieved_gbps:6.2f} GB/s achieved "
          f"({100 * t.bandwidth_utilization:.1f}% of peak), "
          f"intensity {t.arithmetic_intensity:.0f} ops/B → {bound}")
print("quantization study OK")
