"""High-energy-physics trigger inference (the [23] scenario).

Wojcicki et al. deployed a tiny transformer on an Alveo card for LHC
trigger-level inference where the latency budget is microseconds-to-
milliseconds per event batch.  This example deploys the same class of
model on ProTEA (runtime-programmed, no resynthesis), runs a stream of
synthetic "events", checks the classification decisions against the
float golden model, and verifies the cycle-model latency beats the
published GPU baseline — the Table III model #2 story.

Run:  python examples/physics_trigger_inference.py
"""

import numpy as np

from repro import ProTEA, SynthParams
from repro.baselines import titan_xp_hep
from repro.nn import build_encoder, get_model

EVENTS = 32  # synthetic event stream

cfg = get_model("model2-lhc-trigger")  # SL=20, d=64, h=2, N=1, ReLU
print(f"trigger model: SL={cfg.seq_len} d={cfg.d_model} h={cfg.num_heads} "
      f"N={cfg.num_layers} ({cfg.activation})")

# One synthesized instance — the same bitstream the NLP workloads use.
accel = ProTEA.synthesize(SynthParams())
accel.program(cfg)
encoder = build_encoder(cfg, seed=42)
accel.load_weights(encoder)

# Synthetic events: each is a (SL, d_model) matrix of detector features.
rng = np.random.default_rng(7)
events = rng.normal(0.0, 0.4, size=(EVENTS, cfg.seq_len, cfg.d_model))

# Trigger decision = sign of the pooled first output feature (a toy
# head; the interesting part is the datapath underneath it).
agree = 0
for ev in events:
    y_fx = accel.run(ev)
    y_ref = encoder(ev)
    decision_fx = float(y_fx.mean(axis=0)[0]) > 0
    decision_ref = float(y_ref.mean(axis=0)[0]) > 0
    agree += decision_fx == decision_ref
print(f"\n8-bit trigger decisions matching float: {agree}/{EVENTS}")
assert agree >= EVENTS - 2, "fixed-point trigger diverged from golden"

# Latency: ProTEA cycle model vs the published Titan XP number.
protea_ms = accel.latency_ms()
gpu_ms = titan_xp_hep().latency_ms(cfg)
print(f"per-inference latency: ProTEA {protea_ms:.3f} ms  "
      f"vs Titan XP {gpu_ms:.3f} ms "
      f"→ {gpu_ms / protea_ms:.2f}x speedup (paper: 2.5x)")
assert protea_ms < gpu_ms, "ProTEA should beat the GPU on tiny models"
print("trigger scenario OK")
